#!/usr/bin/env python3
"""Trace inspection: where does each node's time go under FCFS vs OURS?

Runs the paper's Scenario 1 under the locality-blind FCFS scheduler and
under the paper's scheduler (OURS) with full tracing enabled, then
prints the two per-node time profiles side by side.  The contrast *is*
the paper's story: under FCFS every node spends most of its pipeline
stalled on I/O (cache misses force ~512 MiB reads per task), while
under OURS the same workload renders from warm caches and the I/O
column collapses to zero.

Optionally writes Chrome trace-event files — load them at
``chrome://tracing`` or https://ui.perfetto.dev to see the io/render/
composite spans and the queue-depth / busy-nodes / cache counters.

Run:
    python examples/trace_inspection.py [--scale 0.2] [--trace-dir DIR]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro import RunConfig, Tracer, run_simulation, scenario_1, write_chrome_trace


def traced_run(scale: float, scheduler: str):
    """Run Scenario 1 under ``scheduler`` with a live tracer attached."""
    tracer = Tracer()
    result = run_simulation(
        scenario_1(scale=scale), scheduler, config=RunConfig(tracer=tracer)
    )
    return tracer, result


def side_by_side(left: str, right: str, gap: str = "   |   ") -> str:
    """Join two text tables line by line into one two-column block."""
    left_lines = left.splitlines()
    right_lines = right.splitlines()
    width = max(len(line) for line in left_lines)
    rows = max(len(left_lines), len(right_lines))
    left_lines += [""] * (rows - len(left_lines))
    right_lines += [""] * (rows - len(right_lines))
    return "\n".join(
        f"{l:<{width}}{gap}{r}" for l, r in zip(left_lines, right_lines)
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.2,
        help="fraction of the paper's 60 s run to simulate (default 0.2)",
    )
    parser.add_argument(
        "--trace-dir",
        type=Path,
        default=None,
        help="also write Chrome trace JSON files into this directory",
    )
    args = parser.parse_args()

    profiles = {}
    for scheduler in ("FCFS", "OURS"):
        tracer, result = traced_run(args.scale, scheduler)
        profiles[scheduler] = result
        print(
            f"{scheduler}: {result.jobs_completed} jobs, "
            f"{result.interactive_fps:.1f} fps, hit rate "
            f"{result.hit_rate:.1%}, {tracer.span_count} spans, "
            f"{len(tracer.counter_tracks())} counter tracks"
        )
        if args.trace_dir is not None:
            args.trace_dir.mkdir(parents=True, exist_ok=True)
            path = write_chrome_trace(
                args.trace_dir / f"scenario1_{scheduler}.json",
                tracer,
                metadata={"scenario": "scenario1", "scheduler": scheduler},
            )
            print(f"  trace written to {path}")
    print()

    print(
        side_by_side(
            profiles["FCFS"].profile_table(title="FCFS (locality-blind)"),
            profiles["OURS"].profile_table(title="OURS (locality-aware)"),
        )
    )
    print()

    fcfs_io = profiles["FCFS"].profile.mean_fractions()["io"]
    ours_io = profiles["OURS"].profile.mean_fractions()["io"]
    print(
        f"Mean I/O-stall fraction: FCFS {fcfs_io:.1%} vs OURS {ours_io:.1%} "
        f"— the scheduler turns disk time into render (and idle) time."
    )


if __name__ == "__main__":
    main()

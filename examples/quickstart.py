#!/usr/bin/env python3
"""Quickstart: run one scenario under two schedulers and compare.

This is the 60-second tour of the library: build the paper's Scenario 1
(six users interactively exploring six 2 GB datasets on an 8-node GPU
cluster), run it under the paper's locality-aware scheduler (OURS) and
under plain FCFS, and print the comparison — the locality-blind
scheduler collapses to under 1 fps while OURS holds the 33.33 fps
target.

Run:
    python examples/quickstart.py [--scale 0.5]
"""

from __future__ import annotations

import argparse

from repro import compare_schedulers, comparison_table, scenario_1


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.5,
        help="fraction of the paper's 60 s run to simulate (default 0.5)",
    )
    args = parser.parse_args()

    scenario = scenario_1(scale=args.scale)
    print(scenario.summary())
    print()

    results = compare_schedulers(scenario, ["OURS", "FCFS"])
    print(
        comparison_table(
            [r.summary() for r in results],
            title="Scenario 1: locality-aware vs locality-blind scheduling",
            target_fps=scenario.target_framerate,
        )
    )
    print()

    ours, fcfs = results
    speedup = ours.interactive_fps / max(fcfs.interactive_fps, 1e-9)
    print(
        f"OURS delivers {ours.interactive_fps:.1f} fps at "
        f"{ours.interactive_latency.mean * 1e3:.0f} ms mean latency; "
        f"FCFS delivers {fcfs.interactive_fps:.2f} fps "
        f"({speedup:.0f}x difference) because without data locality every "
        f"task re-reads ~512 MiB from disk."
    )
    print(
        f"Cache hit rates: OURS {ours.hit_rate:.1%} vs FCFS "
        f"{fcfs.hit_rate:.1%}."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""A multi-user visualization service: mixed interactive + batch load.

Models the paper's motivating deployment — a shared GPU cluster serving
several scientists at once: some explore datasets interactively (every
mouse drag is a 33 fps request stream), others submit batch animation
jobs.  The example builds a custom workload from the library's
generators, runs it under all six scheduling policies, and prints the
full comparison, per-action framerates, and the batch deferral story.

Run:
    python examples/multi_user_service.py [--nodes 8] [--duration 40]
"""

from __future__ import annotations

import argparse

from repro import comparison_table, run_simulation
from repro.core.chunks import dataset_suite
from repro.core.registry import SCHEDULER_NAMES
from repro.sim.config import system_linux8
from repro.util.units import GiB
from repro.workload.actions import poisson_action_stream
from repro.workload.batch import poisson_batch_stream
from repro.workload.scenarios import custom_scenario
from repro.workload.trace import merge_traces


def build_scenario(nodes: int, duration: float):
    """Six datasets; ~4 concurrent explorers; a stream of batch jobs."""
    system = system_linux8(node_count=nodes)
    datasets = dataset_suite(6, 2 * GiB)
    interactive = poisson_action_stream(
        datasets,
        duration,
        arrival_rate=1.0,
        mean_action_duration=4.0,  # ~4 concurrent actions
        target_framerate=100.0 / 3.0,
        seed=11,
        name="explorers",
    )
    batch = poisson_batch_stream(
        datasets,
        duration,
        submission_rate=0.2,
        mean_frames=60,  # ~12 batch frames/s: animation production
        seed=12,
        name="animations",
    )
    trace = merge_traces([interactive, batch], name="multi-user")
    return custom_scenario(
        system,
        trace,
        name="multi-user-service",
        description="mixed interactive exploration and batch animation",
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--nodes", type=int, default=8)
    parser.add_argument("--duration", type=float, default=40.0)
    args = parser.parse_args()

    scenario = build_scenario(args.nodes, args.duration)
    print(scenario.summary())
    print()

    results = {}
    for name in SCHEDULER_NAMES:
        results[name] = run_simulation(scenario, name)

    print(
        comparison_table(
            [results[n].summary() for n in SCHEDULER_NAMES],
            title="All six schedulers on the mixed workload",
            target_fps=scenario.target_framerate,
        )
    )

    ours = results["OURS"]
    print()
    print("Per-action delivered framerates under OURS:")
    rates = sorted(ours.delivered_framerates().items())
    for action, fps in rates[:10]:
        print(f"  action {action:>4}: {fps:6.2f} fps")
    if len(rates) > 10:
        print(f"  ... and {len(rates) - 10} more actions")

    print()
    batch_stats = ours.batch_latency
    print(
        f"Batch under OURS: {batch_stats.count} jobs completed, mean "
        f"latency {batch_stats.mean:.2f} s (deferred behind interactive "
        f"work per Algorithm 1), p95 {batch_stats.p95:.2f} s."
    )
    print(
        f"Node utilization {ours.mean_node_utilization:.1%}, data-reuse "
        f"hit rate {ours.hit_rate:.2%}."
    )


if __name__ == "__main__":
    main()

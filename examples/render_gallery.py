#!/usr/bin/env python3
"""Fig. 10 gallery: sort-last parallel rendering of the three datasets.

The paper's Fig. 10 shows volume renderings of a plume simulation
(252x252x1024), a combustion simulation (2025x1600x400), and a
supernova simulation (864^3) produced by its parallel visualization
system.  This example renders the synthetic stand-ins with the real
NumPy ray caster, distributed across simulated rendering ranks with 2-3
swap compositing, verifies the parallel image matches a monolithic
render, and writes PPM images.

Run:
    python examples/render_gallery.py [--size 64] [--ranks 6] [--out DIR]
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.render import (
    cool_warm,
    default_camera_for,
    fire,
    make_volume,
    max_channel_difference,
    render_sort_last,
    render_volume,
    write_ppm,
)

GALLERY = [
    # (name, aspect mimicking the paper's dataset, transfer function)
    ("plume", (1.0, 1.0, 2.0), "fire"),  # 252x252x1024 is tall
    ("combustion", (2.0, 1.6, 0.8), "fire"),  # 2025x1600x400 is flat
    ("supernova", (1.0, 1.0, 1.0), "cool_warm"),  # 864^3 is cubic
]
TFS = {"fire": fire, "cool_warm": cool_warm}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=64, help="base voxels/axis")
    parser.add_argument("--image", type=int, default=192, help="image pixels")
    parser.add_argument("--ranks", type=int, default=6)
    parser.add_argument("--out", type=Path, default=Path("gallery"))
    args = parser.parse_args()

    args.out.mkdir(parents=True, exist_ok=True)
    for name, aspect, tf_name in GALLERY:
        shape = tuple(max(16, int(args.size * a)) for a in aspect)
        volume = make_volume(name, shape)
        camera = default_camera_for(
            volume.shape,
            width=args.image,
            height=args.image,
            azimuth=35.0,
            elevation=18.0,
        )
        tf = TFS[tf_name]()

        result = render_sort_last(
            volume, camera, tf, ranks=args.ranks, algorithm="2-3-swap", step=0.6
        )
        reference = render_volume(volume, camera, tf, step=0.6)
        diff = max_channel_difference(reference, result.image)

        path = write_ppm(args.out / f"{name}.ppm", result.image, background=0.08)
        comp = result.compositing
        print(
            f"{name:<11} {shape!s:<15} -> {path}  "
            f"({result.render_stats.samples:,} samples, "
            f"{comp.messages} messages / {comp.bytes_sent / 2**20:.1f} MiB "
            f"composited over {comp.stages} stages; "
            f"parallel-vs-monolithic max diff {diff:.1e})"
        )
        assert diff < 1e-4, "sort-last render must match the monolithic one"

    print(f"\nWrote {len(GALLERY)} images to {args.out}/ (PPM, viewable with "
          "any image viewer or convertible via e.g. ImageMagick).")


if __name__ == "__main__":
    main()

"""Overload management: protect an over-subscribed service.

Scenario 2 is driven at 2.5x its Table II arrival rate — far beyond
what 8 nodes can serve.  The unprotected service accepts everything
(the paper's Algorithm 1), the head-node queue grows without bound,
and every user's latency diverges; the completed-job percentiles just
hide it, because the backlog never finishes.

The overload-management frontend turns that into an explicit policy:

* admission control caps concurrent interactive sessions (rejected
  sessions get a clean busy signal, recorded, never silently dropped);
* a bounded head-node queue sheds the *stale* frames first;
* an SLO-burn controller walks sessions down a quality ladder (frame
  thinning, then reduced resolution) and hysteretically restores.

Run::

    python examples/overload_management.py [--scale 0.1] [--load 2.5]
"""

import argparse

from repro import (
    FrontendConfig,
    RunConfig,
    make_scenario,
    run_simulation,
)
from repro.obs import SLObjective, SLOMonitor, slo_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--load", type=float, default=2.5)
    parser.add_argument("--scheduler", default="OURS")
    args = parser.parse_args()

    scenario = make_scenario(2, scale=args.scale, load=args.load)
    print(scenario.summary())
    print(f"offered load: {args.load:g}x the Table II arrival rate\n")

    baseline = run_simulation(scenario, args.scheduler)
    protected = run_simulation(
        scenario,
        args.scheduler,
        config=RunConfig(
            frontend=FrontendConfig.protective(max_sessions=8, queue_limit=32)
        ),
    )

    objective = SLObjective(kind="latency", target=0.25, quantile=99.0)
    reports = []
    for label, result in (("bare", baseline), ("fronted", protected)):
        report = SLOMonitor([objective]).evaluate(result)[0]
        report.scheduler = f"{args.scheduler}/{label}"
        reports.append(report)
        print(
            f"{label:>8}: completed {result.jobs_completed}/"
            f"{result.jobs_submitted} jobs, "
            f"p99 latency {result.interactive_latency.p99:.3f} s, "
            f"{result.interactive_fps:.1f} fps delivered"
        )
    print(f"    {protected.frontend.summary()}")

    print()
    print(
        slo_table(
            reports,
            title="Admitted sessions, judged honestly (empty window = "
            "maximal violation):",
        )
    )
    print(
        "\nshape: the bare service leaves a large backlog unfinished and "
        "admitted users stare at stalled frames; the frontend refuses or "
        "sheds what cannot be served, and what it admits, it serves "
        "inside the objective."
    )


if __name__ == "__main__":
    main()

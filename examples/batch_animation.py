#!/usr/bin/env python3
"""What a batch submission actually renders: an orbit animation.

The scheduling scenarios model batch submissions abstractly (N frame
jobs over one dataset).  This example executes one such submission with
the real renderer: a camera orbit over the supernova dataset, each
frame ray-cast across simulated rendering ranks and composited with 2-3
swap, with Blinn-Phong shading.  Frames are written as PPM files; the
per-frame compositing traffic is the communication the interconnect
model charges for.

Run:
    python examples/batch_animation.py [--frames 12] [--ranks 6] [--out DIR]
"""

from __future__ import annotations

import argparse
import time
from pathlib import Path

from repro.render import (
    Lighting,
    OrbitPath,
    cool_warm,
    make_volume,
    render_animation,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--frames", type=int, default=12)
    parser.add_argument("--size", type=int, default=40)
    parser.add_argument("--image", type=int, default=128)
    parser.add_argument("--ranks", type=int, default=6)
    parser.add_argument("--dataset", default="supernova")
    parser.add_argument("--out", type=Path, default=Path("animation"))
    args = parser.parse_args()

    volume = make_volume(args.dataset, (args.size, args.size, args.size))
    path = OrbitPath(
        frames=args.frames,
        azimuth_start=0.0,
        azimuth_end=360.0,
        elevation=18.0,
        elevation_swing=10.0,
    )
    print(
        f"Rendering a {args.frames}-frame orbit of '{args.dataset}' "
        f"({volume.shape} voxels) across {args.ranks} ranks..."
    )
    t0 = time.perf_counter()
    result = render_animation(
        volume,
        path,
        cool_warm(),
        ranks=args.ranks,
        width=args.image,
        height=args.image,
        lighting=Lighting(ambient=0.35, diffuse=0.6, specular=0.25),
        output_dir=args.out,
    )
    elapsed = time.perf_counter() - t0

    print(f"\n{result.frames} frames -> {args.out}/frame_*.ppm")
    print(
        f"ray casting: {result.total_samples:,} samples total "
        f"({result.total_samples // result.frames:,} per frame)"
    )
    print(
        f"compositing: {result.total_messages} messages, "
        f"{result.total_bytes / 2**20:.1f} MiB across all frames "
        f"({result.algorithm})"
    )
    print(f"wall time {elapsed:.1f} s ({elapsed / result.frames * 1e3:.0f} ms/frame)")
    print(
        "\nIn the scheduling model, this submission is one BatchSubmission "
        f"of {result.frames} jobs over dataset '{args.dataset}' — the unit "
        "the paper's scheduler defers behind interactive work."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fault tolerance in action: crash rendering nodes mid-service.

The paper (§VI-D): "Our scheduling method has a certain degree of fault
tolerance when some of the nodes crash … the rendering can still carry
on as long as the system has copies of the required data chunks on
other rendering nodes."  This example runs Scenario 1 under OURS and
crashes two of the eight nodes mid-run; the timeline sparklines show
the busy-node count stepping down, the brief miss burst while lost
chunks reload on survivors, and the service continuing at the reduced
capacity — no job is ever lost.

Run:
    python examples/fault_tolerance.py [--scale 0.5]
"""

from __future__ import annotations

import argparse

from repro import RunConfig, run_simulation, scenario_1
from repro.faults import FaultPlan
from repro.reporting import sparkline


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    args = parser.parse_args()

    scenario = scenario_1(scale=args.scale)
    duration = scenario.trace.duration
    crashes = [(duration / 3, 3), (2 * duration / 3, 6)]
    print(scenario.summary())
    print(
        f"crashing node 3 at t={crashes[0][0]:.1f}s and node 6 at "
        f"t={crashes[1][0]:.1f}s\n"
    )

    healthy = run_simulation(
        scenario, "OURS", config=RunConfig(timeline_interval=0.25)
    )
    failed = run_simulation(
        scenario,
        "OURS",
        config=RunConfig(
            timeline_interval=0.25,
            faults=FaultPlan.from_node_failures(crashes),
        ),
    )

    for label, result in (("healthy", healthy), ("with crashes", failed)):
        tl = result.timeline_samples
        print(f"--- {label} ---")
        print(
            f"fps {result.interactive_fps:6.2f} | mean latency "
            f"{result.interactive_latency.mean:7.3f} s | completed "
            f"{result.jobs_completed}/{result.jobs_submitted} | hit "
            f"{result.hit_rate:.2%}"
        )
        print(f"  busy nodes       {sparkline(tl.series('busy_nodes'))}")
        print(f"  backlog (tasks)  {sparkline(tl.series('backlog_tasks'))}")
        misses = [
            b.tasks_missed - a.tasks_missed
            for a, b in zip(tl.samples, tl.samples[1:])
        ]
        print(f"  misses / tick    {sparkline(misses)}")
        print()

    print(
        "Each crash shows as a step down in busy nodes, a short burst of "
        "cache misses (the dead node's chunks reloading on survivors — "
        "chunks with live replicas need no reload), and a backlog bump "
        "that drains at the surviving capacity.  The service never stops."
    )


if __name__ == "__main__":
    main()

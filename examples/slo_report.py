#!/usr/bin/env python3
"""SLO report: where, for how long, and how badly objectives were missed.

The paper's Fig. 5 compares schedulers by *mean* framerate, but a
visualization service commits to per-user objectives: "every user sees
>= 33.33 fps" (Definition 4) and "p95 interaction latency stays under
250 ms" (Definition 3).  This example runs Scenario 2 — interactive
exploration plus batch movie rendering under memory pressure — with the
paper's scheduler (OURS) and the immediate-dispatch FCFS variants, then
evaluates both objectives over sliding windows.  OURS defers batch work
away from interactive bursts, so it accumulates strictly less
framerate-SLO violation time than the FCFS family.

Run:
    python examples/slo_report.py [--scale 0.25] [--fps 33.33]
"""

from __future__ import annotations

import argparse

from repro.obs import SLObjective, SLOMonitor, slo_table
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_2

SCHEDULERS = ["OURS", "FCFSL", "FCFSU"]


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        type=float,
        default=0.25,
        help="fraction of the paper's 120 s run to simulate (default 0.25)",
    )
    parser.add_argument(
        "--fps",
        type=float,
        default=100.0 / 3.0,
        help="framerate objective in frames/s (default 33.33)",
    )
    parser.add_argument(
        "--latency",
        type=float,
        default=0.25,
        help="p95 latency objective in seconds (default 0.25)",
    )
    parser.add_argument(
        "--window",
        type=float,
        default=1.0,
        help="sliding-window length in simulated seconds (default 1.0)",
    )
    args = parser.parse_args()

    scenario = scenario_2(scale=args.scale)
    print(scenario.summary())
    print()

    monitor = SLOMonitor(
        [
            SLObjective(kind="fps", target=args.fps, window=args.window),
            SLObjective(
                kind="latency",
                target=args.latency,
                window=args.window,
                quantile=95.0,
            ),
        ]
    )
    reports = {
        name: monitor.evaluate(run_simulation(scenario, name))
        for name in SCHEDULERS
    }

    for index, objective in enumerate(monitor.objectives):
        rows = [reports[name][index] for name in SCHEDULERS]
        print(slo_table(rows, title="SLO report"))
        print()

    ours, fcfsl = reports["OURS"][0], reports["FCFSL"][0]
    print(
        f"framerate-SLO violation time: OURS {ours.total_violation_time:.1f} s "
        f"vs FCFSL {fcfsl.total_violation_time:.1f} s — deferring batch "
        "jobs keeps interactive users inside their objective for "
        f"{(fcfsl.total_violation_time - ours.total_violation_time):.1f} s "
        "longer of user time."
    )


if __name__ == "__main__":
    main()

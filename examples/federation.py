#!/usr/bin/env python3
"""Shard one scenario across a federation of simulator instances.

One head node fronting 64 render nodes caps out far below a fleet.
``repro.federation`` runs N independent simulator shards behind a user
router and merges their results deterministically.  This example runs
the same Scenario 4 population under both routers and shows why the
locality router exists: users placed on the shard that homes their
dominant dataset hit a warm Cache table, users hashed onto an
arbitrary shard fault their working set in cold.

The CLI wraps this flow as ``repro federate``; this example shows the
library API (`repro.federate` plus the merged-result accessors).

Run:
    python examples/federation.py [--scale 0.05] [--shards 4]
"""

from __future__ import annotations

import argparse

from repro import FederationConfig, federate
from repro.obs import SLObjective, slo_table


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--shards", type=int, default=4)
    args = parser.parse_args()

    merged = {}
    for router in ("hash", "locality"):
        merged[router] = federate(
            scenario=4,
            scheduler="OURS",
            scale=args.scale,
            config=FederationConfig(shards=args.shards, router=router),
        )

    for router, result in merged.items():
        print(f"\n=== {router} router ===")
        print(result.shard_table())
        print(
            slo_table(
                result.evaluate_slos(
                    [SLObjective.parse(f"fps={result.target_framerate:g}")]
                ),
                title="SLO report (merged)",
            )
        )

    delta = merged["locality"].hit_rate - merged["hash"].hit_rate
    print(
        f"\nlocality-minus-hash hit-rate delta: {delta * 100:+.2f} pts "
        f"({args.shards} shards, scale {args.scale:g}) — routing users to "
        "their data's home shard keeps each shard's cache warm."
    )


if __name__ == "__main__":
    main()

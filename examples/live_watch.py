#!/usr/bin/env python3
"""Live telemetry streaming: watch a run from its NDJSON stream file.

A production visualization service is a long-lived process — the
operator's first question is always "what is it doing *right now*?".
This example runs Scenario 1 under OURS with a :class:`StreamConfig`
attached, so the simulator emits schema-versioned NDJSON snapshots on
the metrics sampler grid *while the run executes*, then replays the
stream file the way ``repro watch`` does: a live status table, fault
markers, online anomaly alarms, and the closing summary.

With ``--storm`` a deterministic four-fault storm is injected and the
online detectors (EWMA z-score + CUSUM) are scored against the ground
truth plan — the same leaves the ``BENCH_stream`` regression gate pins.

Run:
    python examples/live_watch.py [--scale 0.1] [--storm] [--out run.ndjson]
"""

from __future__ import annotations

import argparse
import tempfile
from pathlib import Path

from repro import RunConfig, run_simulation, scenario_1
from repro.faults import FaultPlan
from repro.obs import StreamConfig, read_stream, score_anomalies


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--storm", action="store_true",
                        help="inject the deterministic 4-fault storm")
    parser.add_argument("--out", type=Path, default=None,
                        help="stream file path (default: a temp file)")
    args = parser.parse_args()

    path = args.out or Path(tempfile.mkdtemp()) / "run.ndjson"
    scenario = scenario_1(scale=args.scale)

    plan = None
    if args.storm:
        plan = FaultPlan.storm(
            11,
            node_count=scenario.system.node_count,
            duration=scenario.trace.duration,
            heal=True,
        )

    result = run_simulation(
        scenario,
        "OURS",
        config=RunConfig(
            drain=args.storm,
            faults=plan,
            stream=StreamConfig(path=path),
        ),
    )
    report = result.stream
    print(f"streamed {report.snapshots} snapshots "
          f"({report.records_written} records) to {report.path}")
    print(f"{result.events_processed:,} events in "
          f"{result.wall_seconds:.2f}s wall "
          f"({result.events_per_sec:,.0f} events/s)\n")

    # Replay the file the way `repro watch` does — everything below
    # uses only the NDJSON records, not the in-memory result.
    records = read_stream(path)
    header = records[0]
    print(f"--- replaying {header['scenario']} / {header['scheduler']} "
          f"(schema {header['schema']}) ---")
    print(f"{'t':>7} {'done':>6} {'queue':>6} {'fps':>7} "
          f"{'p95 ms':>7} {'hit%':>6}")
    for record in records:
        kind = record["type"]
        if kind == "snapshot" and int(record["t"] / header["interval"]) % 8 == 0:
            print(f"{record['t']:7.1f} {record['jobs_completed']:6d} "
                  f"{record['outstanding']:6d} {record['fps']:7.2f} "
                  f"{record['latency_p95'] * 1e3:7.1f} "
                  f"{record['hit_rate'] * 100:6.1f}")
        elif kind == "fault":
            print(f"        fault: {record['kind']} at t={record['time']:.1f}s")
        elif kind == "anomaly":
            print(f"        !! {record['kind']} at t={record['time']:.1f}s "
                  f"({record['detector']}, score {record['score']:.1f})")
    summary = records[-1]
    print(f"--- summary: {summary['snapshots']} snapshots, "
          f"{summary['anomalies']} anomalies, {summary['stalls']} stalls ---")

    if plan is not None:
        grade = score_anomalies(report.anomalies, plan)
        print(f"\nonline detection score: {grade['localized']}/"
              f"{grade['total']} faults localized "
              f"(recall {grade['recall']:.0%}, "
              f"{grade['false_positives']} false positives)")


if __name__ == "__main__":
    main()

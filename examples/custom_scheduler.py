#!/usr/bin/env python3
"""Extending the library: plug in your own scheduling policy.

The harness that benchmarks the paper's six policies accepts any
:class:`repro.core.scheduler_base.Scheduler`.  This example implements
**delay scheduling** (Zaharia et al., EuroSys 2010 — reference [26] of
the paper): a task that would miss the cache *waits* up to a small
delay for a node holding its data to free up, instead of running
remotely immediately.  We register it and race it against the paper's
schedulers on Scenario 1.

Run:
    python examples/custom_scheduler.py [--scale 0.25]
"""

from __future__ import annotations

import argparse
from collections import deque
from typing import Deque, Sequence

from repro import comparison_table, run_simulation, scenario_1
from repro.core.job import RenderJob, RenderTask
from repro.core.registry import register_scheduler
from repro.core.scheduler_base import (
    Scheduler,
    SchedulerContext,
    Trigger,
    greedy_min_available,
)


class DelayScheduler(Scheduler):
    """Cycle-based delay scheduling.

    Every cycle, each pending task is placed on a node that caches its
    chunk if that node's backlog is acceptable; otherwise the task waits
    — but no longer than ``max_delay`` seconds, after which it runs on
    the least-loaded node regardless of locality (paying the I/O).
    """

    name = "DELAY"
    trigger = Trigger.CYCLE

    def __init__(self, cycle: float = 0.015, max_delay: float = 0.09) -> None:
        self.cycle = cycle
        self.max_delay = max_delay
        self._waiting: Deque[RenderTask] = deque()
        self._deadline: dict = {}

    def reset(self) -> None:
        self._waiting.clear()
        self._deadline.clear()

    def pending_task_count(self) -> int:
        return len(self._waiting)

    def schedule(
        self, jobs: Sequence[RenderJob], ctx: SchedulerContext
    ) -> None:
        now = ctx.now
        for job in jobs:
            for task in ctx.decompose(job):
                self._waiting.append(task)
                self._deadline[task] = now + self.max_delay
        still_waiting: Deque[RenderTask] = deque()
        tables = ctx.tables
        while self._waiting:
            task = self._waiting.popleft()
            chunk = task.chunk
            group = task.job.composite_group_size
            render = ctx.cost.render_time(chunk.size, group)
            cached = tables.cached_nodes(chunk)
            best_cached = None
            best_free = None
            for k in cached:
                avail = tables.predicted_available(k, now)
                if best_free is None or avail < best_free:
                    best_free, best_cached = avail, k
            # Accept the cached node if it frees up within one cycle.
            if best_cached is not None and best_free <= now + self.cycle:
                ctx.assign(task, best_cached)
            elif now >= self._deadline[task] or not cached:
                ctx.assign(task, greedy_min_available(task, ctx))
            else:
                still_waiting.append(task)
                continue
            del self._deadline[task]
        self._waiting = still_waiting


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    try:
        register_scheduler("DELAY", DelayScheduler)
    except ValueError:
        pass  # already registered (re-run in the same session)

    scenario = scenario_1(scale=args.scale)
    print(scenario.summary())
    print()

    names = ["OURS", "FCFSL", "DELAY", "FCFS"]
    summaries = [run_simulation(scenario, n).summary() for n in names]
    print(
        comparison_table(
            summaries,
            title="Custom policy (DELAY) vs the paper's schedulers",
            target_fps=scenario.target_framerate,
        )
    )
    print()
    print(
        "Delay scheduling recovers most of the locality benefit by "
        "waiting briefly for the caching node — the idea the paper cites "
        "from Hadoop's fair scheduler [26] and specializes for "
        "interactive rendering with its cycle + ε heuristics."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Build a self-contained HTML run report from a traced simulation.

Every run that carries a ``Tracer`` can be turned into a single HTML
file: per-node Gantt lanes (io/render/composite), queue-depth and
utilization tracks, a dataset→node cache-residency heatmap, SLO and
fault overlays, and the worst-p99 jobs with their critical paths drawn
onto the timeline.  With two schedulers the report renders the runs
side by side and marks the first scheduling decision where they
diverge — the moment the two policies stop being the same policy.

The CLI wraps this exact flow as ``repro report``; this example shows
the library API so reports can ride inside other experiments.

Run:
    python examples/run_report.py [--scale 0.1] [--out run.html]
"""

from __future__ import annotations

import argparse

from repro import RunConfig, run_simulation, scenario_2
from repro.obs import (
    AuditConfig,
    SLObjective,
    SLOMonitor,
    Tracer,
    first_divergence,
    render_report_html,
    write_report,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--out", default="run.html")
    args = parser.parse_args()

    results, models = [], []
    for name in ("OURS", "FCFS"):
        # Each run carries its own job-id allocator counting from 0,
        # so trace span names — and the rendered bytes — are identical
        # across reruns with no reset bookkeeping.
        scenario = scenario_2(scale=args.scale)
        result = run_simulation(
            scenario,
            name,
            config=RunConfig(
                tracer=Tracer(),  # spans + counters feed the Gantt
                audit=AuditConfig(capacity=None),  # decisions + paths
            ),
        )
        monitor = SLOMonitor(
            [SLObjective.parse(f"fps={scenario.target_framerate:g}")]
        )
        results.append(result)
        models.append(
            result.timeline(slo_reports=monitor.evaluate(result))
        )
        print(
            f"{name:>5}: fps {result.interactive_fps:6.2f} | hit "
            f"{result.hit_rate:.2%} | segments "
            f"{len(models[-1].segments)}"
        )

    divergence = first_divergence(
        list(results[0].audit), list(results[1].audit)
    )
    if divergence is not None:
        print(
            f"first divergence at decision #{divergence.index}: "
            f"t={divergence.a.time:.3f}s — OURS chose node "
            f"{divergence.a.node} ({divergence.a.reason}), FCFS chose "
            f"node {divergence.b.node} ({divergence.b.reason})"
        )

    page = render_report_html(models, divergence=divergence)
    write_report(args.out, page)
    print(f"wrote {args.out} ({len(page) / 1024:.0f} KiB, self-contained)")


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Watch the service's dynamics: backlog, utilization, completion rate.

Aggregate numbers hide the story; this example samples the cluster
every 250 ms of simulated time during a Scenario 2 run (memory
pressure, mixed interactive+batch) and prints text sparklines of the
dynamics under OURS versus FCFSL:

* OURS: backlog stays bounded, the scheduler's deferred-batch queue
  absorbs pressure, completion rate tracks the request rate;
* FCFSL: batch-induced cold loads stall nodes, the node backlog spikes
  and the completion rate craters during every swap episode.

Run:
    python examples/service_dynamics.py [--scale 0.5]
"""

from __future__ import annotations

import argparse

from repro import RunConfig, run_simulation, scenario_2
from repro.reporting import sparkline


def describe(result) -> None:
    tl = result.timeline_samples
    print(f"--- {result.scheduler_name} ---")
    print(
        f"fps {result.interactive_fps:6.2f} | mean latency "
        f"{result.interactive_latency.mean:7.3f} s | hit rate "
        f"{result.hit_rate:.2%} | {len(tl.samples)} samples"
    )
    print(f"  node backlog (tasks) {sparkline(tl.series('backlog_tasks'))}")
    print(f"  busy nodes           {sparkline(tl.series('busy_nodes'))}")
    print(f"  deferred batch tasks {sparkline(tl.series('scheduler_pending'))}")
    print(f"  completions / s      {sparkline(tl.completion_rate())}")
    misses = [
        b.tasks_missed - a.tasks_missed
        for a, b in zip(tl.samples, tl.samples[1:])
    ]
    print(f"  cache misses / tick  {sparkline(misses)}")
    print()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.5)
    parser.add_argument("--interval", type=float, default=0.25)
    args = parser.parse_args()

    scenario = scenario_2(scale=args.scale)
    print(scenario.summary())
    print()
    for name in ("OURS", "FCFSL"):
        result = run_simulation(
            scenario, name, config=RunConfig(timeline_interval=args.interval)
        )
        describe(result)

    print(
        "Reading the sparklines: under FCFSL every batch submission on a "
        "cold dataset triggers 512 MiB loads on nodes that also serve "
        "interactive streams — visible as miss bursts followed by backlog "
        "spikes and completion-rate dips.  OURS holds those loads in its "
        "deferred queue until nodes go interactively idle."
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Fig. 3 illustrated: the cost model on a concrete job timeline.

Reproduces the paper's cost-model walkthrough (Definitions 1-4, Fig. 3):
two interactive user actions and one batch job on a 4-node cluster.
Jobs within a scheduling cycle are processed together; the example
prints each task's ``TS``/``TF`` per node (a text Gantt chart), each
job's ``JI``/``JS``/``JF``, latency, and the resulting per-action
framerates.

Run:
    python examples/cost_model_timeline.py
"""

from __future__ import annotations

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters
from repro.core.chunks import Dataset
from repro.core.cost_model import (
    framerate,
    job_execution_time,
    job_latency,
    task_execution_time,
)
from repro.core.job import JobType, RenderJob
from repro.core.ours import OursScheduler
from repro.sim.service import VisualizationService
from repro.util.units import GiB, MiB


def timeline_bar(start: float, end: float, horizon: float, width: int = 60) -> str:
    """Render one task as a text bar on a [0, horizon] axis."""
    a = int(width * start / horizon)
    b = max(a + 1, int(width * end / horizon))
    return " " * a + "#" * (b - a) + " " * (width - b)


def main() -> None:
    cost = CostParameters(render_jitter=0.0)
    cluster = Cluster(4, 1 * GiB, cost)
    scheduler = OursScheduler(cycle=0.015)
    service = VisualizationService(cluster, scheduler, chunk_max=256 * MiB)

    ds_a = Dataset("dataset-A", 1 * GiB)  # 4 chunks
    ds_b = Dataset("dataset-B", 512 * MiB)  # 2 chunks
    service.prewarm([ds_a, ds_b])

    # Two interactive actions at 33.33 fps plus one batch job.
    jobs = []
    events = cluster.events
    for i in range(3):  # user action 0 on dataset A
        events.schedule(
            0.03 * i,
            lambda t=0.03 * i, s=i: jobs.append(
                submit(service, ds_a, JobType.INTERACTIVE, action=0, seq=s)
            ),
        )
    for i in range(3):  # user action 1 on dataset B
        events.schedule(
            0.005 + 0.03 * i,
            lambda t=i, s=i: jobs.append(
                submit(service, ds_b, JobType.INTERACTIVE, action=1, seq=s)
            ),
        )
    events.schedule(
        0.002,
        lambda: jobs.append(
            submit(service, ds_b, JobType.BATCH, action=99, seq=0)
        ),
    )
    service.start()
    events.run()

    horizon = max(j.finish_time for j in jobs) * 1.05
    print("Task timeline (one row per task; '#' spans TS..TF):")
    print(f"{'':>26}0{'':{56}}{horizon * 1e3:.0f} ms")
    for job in sorted(jobs, key=lambda j: j.job_id):
        for task in job.tasks:
            label = (
                f"J{job.job_id}/{job.job_type.value[:5]:<5} "
                f"{task.chunk.dataset[-1]}[{task.chunk.index}] n{task.node}"
            )
            print(
                f"{label:>24} |"
                + timeline_bar(task.start_time, task.finish_time, horizon)
                + "|"
            )

    print("\nPer-job cost model quantities (Definitions 1-3):")
    header = (
        f"{'job':>5} {'type':<12} {'JI(s)':>8} {'JS(s)':>8} {'JF(s)':>8} "
        f"{'JExec(s)':>9} {'Latency(s)':>11} {'max TExec':>10}"
    )
    print(header)
    print("-" * len(header))
    for job in sorted(jobs, key=lambda j: j.job_id):
        texec = max(task_execution_time(t) for t in job.tasks)
        print(
            f"{job.job_id:>5} {job.job_type.value:<12} "
            f"{job.arrival_time:>8.4f} {job.start_time():>8.4f} "
            f"{job.finish_time:>8.4f} {job_execution_time(job):>9.4f} "
            f"{job_latency(job):>11.4f} {texec:>10.4f}"
        )

    print("\nPer-action framerates (Definition 4):")
    for action in (0, 1):
        finishes = sorted(
            j.finish_time for j in jobs if j.action == action
        )
        print(f"  action {action}: {framerate(finishes):.2f} fps "
              f"(target 33.33)")


def submit(service, dataset, job_type, *, action, seq):
    job = RenderJob(
        job_type,
        dataset,
        service.cluster.now,
        user=action,
        action=action,
        sequence=seq,
    )
    service.submit(job)
    return job


if __name__ == "__main__":
    main()

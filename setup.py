"""Setuptools shim for editable installs without the ``wheel`` package.

The environment has no network and no ``wheel`` distribution, so PEP 517
editable builds (which need ``bdist_wheel``) fail; ``pip install -e .
--no-use-pep517 --no-build-isolation`` with this shim works everywhere.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()

"""Batch rendering submissions.

Batch jobs come from users producing animations or visualizing
time-varying data (paper §I): one *submission* expands into a series of
rendering jobs over the same dataset, all queued at submission time
(the frames of an animation are known upfront).  Batch jobs have no
framerate target; the evaluation reports their latency and mean working
time (Figs. 5-7, bottom charts).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.core.chunks import Dataset
from repro.core.job import JobType
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_positive
from repro.workload.trace import Request, WorkloadTrace


@dataclass(frozen=True)
class BatchSubmission:
    """One batch request: render ``frames`` jobs over ``dataset``.

    Attributes:
        submission_id: Unique id (the ``action`` field of its requests).
        user: Submitting user.
        dataset: Dataset to render.
        time: Submission time; all frame jobs are queued at this instant.
        frames: Number of rendering jobs in the submission.
    """

    submission_id: int
    user: int
    dataset: str
    time: float
    frames: int

    def requests(self) -> List[Request]:
        """Expand into per-frame rendering requests."""
        check_positive("frames", self.frames)
        return [
            Request(
                time=self.time,
                job_type=JobType.BATCH,
                dataset=self.dataset,
                user=self.user,
                action=self.submission_id,
                sequence=i,
            )
            for i in range(self.frames)
        ]


@dataclass(frozen=True)
class TimeVaryingSubmission:
    """A batch submission over a *time-varying* dataset series.

    Visualizing time-varying data is the second batch use the paper
    names (§I): every frame renders a different timestep, so unlike an
    animation over one dataset, each job needs a different set of
    chunks — the worst case for caching, and the workload for which
    batch deferral (as opposed to batch locality) matters most.

    Attributes:
        submission_id: Unique id (the ``action`` of its requests).
        user: Submitting user.
        timesteps: Dataset names in playback order.
        time: Submission time; all frame jobs are queued at once.
        frames: Number of rendering jobs; frame ``i`` renders timestep
            ``i % len(timesteps)`` (looping playback).
    """

    submission_id: int
    user: int
    timesteps: Sequence[str]
    time: float
    frames: int

    def requests(self) -> List[Request]:
        """Expand into per-frame rendering requests."""
        check_positive("frames", self.frames)
        if not self.timesteps:
            raise ValueError("a time-varying submission needs >= 1 timestep")
        return [
            Request(
                time=self.time,
                job_type=JobType.BATCH,
                dataset=self.timesteps[i % len(self.timesteps)],
                user=self.user,
                action=self.submission_id,
                sequence=i,
            )
            for i in range(self.frames)
        ]


def time_varying_batch_stream(
    timestep_datasets: Sequence[Dataset],
    duration: float,
    *,
    submission_rate: float,
    frames_per_submission: int,
    target_framerate: float = 33.33,
    seed: SeedLike = 0,
    first_submission_id: int = 2_000_000,
    first_user: int = 2_000_000,
    name: str = "time-varying-batch",
) -> WorkloadTrace:
    """Poisson submissions that each play back the timestep series.

    Every submission renders ``frames_per_submission`` jobs sweeping
    through ``timestep_datasets`` in order (looping if frames exceed
    timesteps).
    """
    check_positive("duration", duration)
    check_positive("submission_rate", submission_rate)
    check_positive("frames_per_submission", frames_per_submission)
    if not timestep_datasets:
        raise ValueError("need at least one timestep dataset")
    rng = make_rng(seed)
    names = [d.name for d in timestep_datasets]
    requests: List[Request] = []
    sid = first_submission_id
    t = float(rng.exponential(1.0 / submission_rate))
    index = 0
    while t < duration:
        submission = TimeVaryingSubmission(
            submission_id=sid,
            user=first_user + index,
            timesteps=names,
            time=t,
            frames=frames_per_submission,
        )
        requests.extend(submission.requests())
        sid += 1
        index += 1
        t += float(rng.exponential(1.0 / submission_rate))
    return WorkloadTrace(
        requests=requests,
        datasets=list(timestep_datasets),
        duration=duration,
        target_framerate=target_framerate,
        name=name,
    )


def poisson_batch_stream(
    datasets: Sequence[Dataset],
    duration: float,
    *,
    submission_rate: float,
    mean_frames: float,
    target_framerate: float = 33.33,
    seed: SeedLike = 0,
    first_submission_id: int = 1_000_000,
    first_user: int = 1_000_000,
    name: str = "poisson-batch",
) -> WorkloadTrace:
    """Poisson batch submissions with geometric frame counts.

    The expected batch-job total is
    ``duration * submission_rate * mean_frames`` — the knob used to
    match Table II's batch-job counts.

    Args:
        submission_rate: Submissions per second.
        mean_frames: Mean frames per submission (geometric, >= 1).
        first_submission_id / first_user: Id offsets so merged traces
            keep interactive and batch identities disjoint.
    """
    check_positive("duration", duration)
    check_positive("submission_rate", submission_rate)
    check_positive("mean_frames", mean_frames)
    rng = make_rng(seed)
    requests: List[Request] = []
    sid = first_submission_id
    t = float(rng.exponential(1.0 / submission_rate))
    index = 0
    while t < duration:
        ds = datasets[int(rng.integers(len(datasets)))]
        if mean_frames <= 1.0:
            frames = 1
        else:
            # Geometric with mean `mean_frames`, support {1, 2, ...}.
            frames = 1 + int(rng.geometric(1.0 / mean_frames)) - 1
            frames = max(1, frames)
        submission = BatchSubmission(
            submission_id=sid,
            user=first_user + index,
            dataset=ds.name,
            time=t,
            frames=frames,
        )
        requests.extend(submission.requests())
        sid += 1
        index += 1
        t += float(rng.exponential(1.0 / submission_rate))
    return WorkloadTrace(
        requests=requests,
        datasets=list(datasets),
        duration=duration,
        target_framerate=target_framerate,
        name=name,
    )


__all__ = [
    "BatchSubmission",
    "poisson_batch_stream",
    "TimeVaryingSubmission",
    "time_varying_batch_stream",
]

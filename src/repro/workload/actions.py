"""Interactive user-action streams.

An interactive *user action* is a sequence of continuous interactions
(rotating, zooming, adjusting a transfer function) over one dataset.
Per the paper's experiment design (§VI-B), an action issues rendering
requests **open-loop** at the target framerate — one request per 30 ms
for a 33.33 fps target — regardless of whether earlier frames have
completed.  Overload therefore shows up as completion backlog (rising
latency, falling measured framerate), exactly as in Scenario 4.

Two generators are provided:

* :func:`persistent_actions` — Scenario 1 style: ``n`` users, each
  exploring a distinct dataset for the whole run.
* :func:`poisson_action_stream` — Scenarios 2-4 style: actions arrive as
  a Poisson process with exponentially distributed durations over a
  dataset suite, giving "many short user actions".
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.chunks import Dataset
from repro.core.job import JobType
from repro.util.rng import SeedLike, make_rng
from repro.util.validation import check_non_negative, check_positive
from repro.workload.trace import Request, WorkloadTrace


@dataclass(frozen=True)
class UserAction:
    """One continuous interactive exploration session.

    Attributes:
        action_id: Unique action id within the trace.
        user: The user performing the action.
        dataset: Dataset being explored.
        start: Time of the first request.
        duration: Length of the action; requests are emitted at
            ``start, start + interval, ...`` while strictly inside
            ``start + duration``.
        interval: Spacing between requests (1 / target framerate).
    """

    action_id: int
    user: int
    dataset: str
    start: float
    duration: float
    interval: float

    def requests(
        self,
        *,
        jitter: float = 0.0,
        rng: Optional["object"] = None,
    ) -> List[Request]:
        """Expand the action into its open-loop request series.

        Args:
            jitter: Half-width of uniform arrival jitter as a *fraction*
                of the interval, in ``[0, 0.5)``.  Real interaction
                streams are not metronomic: mouse-drag events arrive
                with millisecond-scale noise.  Jitter below half an
                interval preserves both request order and the long-run
                rate.  (Without it, phase-locked actions make even
                locality-blind schedulers accidentally periodic — every
                chunk deterministically revisits the same node — which
                is an artifact, not locality.)
            rng: ``numpy.random.Generator`` used when ``jitter > 0``.
        """
        check_positive("interval", self.interval)
        if not 0.0 <= jitter < 0.5:
            raise ValueError(f"jitter must be in [0, 0.5), got {jitter}")
        if jitter > 0.0 and rng is None:
            raise ValueError("jitter requires an rng")
        out: List[Request] = []
        # Inclusive endpoint with a float-robust count: an action of
        # duration 60 s at one request per 30 ms issues 2001 requests
        # (the paper's 12 006 = 6 x 2001 in Scenario 1).
        n = int(math.floor(self.duration / self.interval + 1e-9)) + 1
        tolerance = 1e-9 * max(1.0, abs(self.start) + self.duration)
        half = jitter * self.interval
        for i in range(n):
            t = self.start + i * self.interval
            if i > 0 and t > self.start + self.duration + tolerance:
                break
            if half and i > 0:  # keep the first frame at the action start
                t += float(rng.uniform(-half, half))  # type: ignore[union-attr]
            out.append(
                Request(
                    time=t,
                    job_type=JobType.INTERACTIVE,
                    dataset=self.dataset,
                    user=self.user,
                    action=self.action_id,
                    sequence=i,
                )
            )
        return out


def persistent_actions(
    datasets: Sequence[Dataset],
    duration: float,
    *,
    actions: Optional[int] = None,
    target_framerate: float = 33.33,
    jitter: float = 0.25,
    seed: SeedLike = 0,
    name: str = "persistent",
) -> WorkloadTrace:
    """Always-on actions for the whole run (Scenario 1 style).

    By default one action per dataset: with six 2 GiB datasets and 60 s
    at 33.33 fps this yields the paper's 12 006 interactive jobs
    (6 actions x 2001 requests).  Pass ``actions`` to run more (or
    fewer) simultaneous actions than datasets — action ``i`` explores
    dataset ``i mod len(datasets)`` (the Fig. 8 sweep uses up to 128
    actions over 16 datasets).  Per-request arrival jitter (see
    :meth:`UserAction.requests`) desynchronizes the streams as real
    users would be.
    """
    check_positive("duration", duration)
    check_positive("target_framerate", target_framerate)
    if not datasets:
        raise ValueError("persistent_actions needs at least one dataset")
    n_actions = len(datasets) if actions is None else int(actions)
    check_positive("actions", n_actions)
    rng = make_rng(seed)
    interval = 1.0 / target_framerate
    requests: List[Request] = []
    for i in range(n_actions):
        ds = datasets[i % len(datasets)]
        # Random phase offset: users do not start in lockstep, and a
        # shared exact period would make cycle-based schedulers see the
        # same job composition every cycle (another phantom-locality
        # artifact).  The per-action request count is unchanged.
        phase = float(rng.uniform(0.0, interval))
        action = UserAction(
            action_id=i,
            user=i,
            dataset=ds.name,
            start=phase,
            duration=duration,
            interval=interval,
        )
        requests.extend(action.requests(jitter=jitter, rng=rng))
    return WorkloadTrace(
        requests=requests,
        datasets=list(datasets),
        duration=duration,
        target_framerate=target_framerate,
        name=name,
    )


def poisson_action_stream(
    datasets: Sequence[Dataset],
    duration: float,
    *,
    arrival_rate: float,
    mean_action_duration: float,
    target_framerate: float = 33.33,
    jitter: float = 0.25,
    seed: SeedLike = 0,
    first_action_id: int = 0,
    first_user: int = 0,
    users: Optional[int] = None,
    dataset_weights: Optional[Sequence[float]] = None,
    name: str = "poisson-actions",
) -> WorkloadTrace:
    """Poisson arrivals of exponentially long actions (Scenarios 2-4).

    The long-run mean number of concurrent actions is
    ``arrival_rate * mean_action_duration`` (an M/G/inf queue), which is
    how the Table II interactive-job counts are matched: e.g. Scenario 3
    needs ~535 interactive jobs/s at 33.33 fps → ~16 concurrent actions.

    Args:
        arrival_rate: Action arrivals per second.
        mean_action_duration: Mean action length in seconds; actions are
            truncated at the trace end.
        users: Number of distinct users to attribute actions to
            (round-robin); defaults to one user per action.
        dataset_weights: Optional per-dataset selection weights
            (normalized internally).  Interactive exploration exhibits
            strong popularity skew — users revisit the datasets under
            active study — while batch production ranges wider; weights
            let scenarios model an interactive working set smaller than
            the full suite.
    """
    check_positive("duration", duration)
    check_positive("arrival_rate", arrival_rate)
    check_positive("mean_action_duration", mean_action_duration)
    rng = make_rng(seed)
    probs = None
    if dataset_weights is not None:
        if len(dataset_weights) != len(datasets):
            raise ValueError(
                f"{len(dataset_weights)} weights for {len(datasets)} datasets"
            )
        total_w = float(sum(dataset_weights))
        check_positive("sum(dataset_weights)", total_w)
        probs = [w / total_w for w in dataset_weights]
    interval = 1.0 / target_framerate
    requests: List[Request] = []
    action_id = first_action_id
    t = float(rng.exponential(1.0 / arrival_rate))
    index = 0
    while t < duration:
        if probs is None:
            ds = datasets[int(rng.integers(len(datasets)))]
        else:
            ds = datasets[int(rng.choice(len(datasets), p=probs))]
        raw = float(rng.exponential(mean_action_duration))
        # An action must be at least one frame long and end by the horizon.
        action_duration = min(max(raw, interval), duration - t)
        user = (
            first_user + (index % users) if users else first_user + index
        )
        action = UserAction(
            action_id=action_id,
            user=user,
            dataset=ds.name,
            start=t,
            duration=action_duration,
            interval=interval,
        )
        requests.extend(action.requests(jitter=jitter, rng=rng))
        action_id += 1
        index += 1
        t += float(rng.exponential(1.0 / arrival_rate))
    return WorkloadTrace(
        requests=requests,
        datasets=list(datasets),
        duration=duration,
        target_framerate=target_framerate,
        name=name,
    )


def expected_interactive_jobs(
    duration: float, arrival_rate: float, mean_action_duration: float,
    target_framerate: float,
) -> float:
    """Expected request count of :func:`poisson_action_stream` (sizing aid)."""
    check_non_negative("duration", duration)
    return duration * arrival_rate * mean_action_duration * target_framerate


__all__ = [
    "UserAction",
    "persistent_actions",
    "poisson_action_stream",
    "expected_interactive_jobs",
]

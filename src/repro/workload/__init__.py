"""Workload generation: interactive actions, batch streams, scenarios."""

from repro.workload.actions import (
    UserAction,
    expected_interactive_jobs,
    persistent_actions,
    poisson_action_stream,
)
from repro.workload.batch import (
    BatchSubmission,
    TimeVaryingSubmission,
    poisson_batch_stream,
    time_varying_batch_stream,
)
from repro.workload.closedloop import (
    ClosedLoopResult,
    ClosedLoopUser,
    run_closed_loop,
)
from repro.workload.scenarios import (
    SCENARIO_FACTORIES,
    TARGET_FPS,
    Scenario,
    custom_scenario,
    make_scenario,
    scenario_1,
    scenario_2,
    scenario_3,
    scenario_4,
)
from repro.workload.trace import Request, WorkloadTrace, merge_traces

__all__ = [
    "UserAction",
    "expected_interactive_jobs",
    "persistent_actions",
    "poisson_action_stream",
    "BatchSubmission",
    "TimeVaryingSubmission",
    "poisson_batch_stream",
    "time_varying_batch_stream",
    "ClosedLoopResult",
    "ClosedLoopUser",
    "run_closed_loop",
    "SCENARIO_FACTORIES",
    "TARGET_FPS",
    "Scenario",
    "custom_scenario",
    "make_scenario",
    "scenario_1",
    "scenario_2",
    "scenario_3",
    "scenario_4",
    "Request",
    "WorkloadTrace",
    "merge_traces",
]

"""Closed-loop interactive users: request pacing by delivered frames.

The Table II scenarios drive the system *open-loop* — one request per
30 ms per action regardless of completions — which is how the paper
measures (its Scenario 4 note: latencies soar "because rendering jobs
are unceasingly pushed into the system.  But in a real scenario, users
usually do not continuously make actions and would stop the
interactions when they sense a lag").

:class:`ClosedLoopUser` models that real user: it issues requests at
the target interval only while fewer than ``window`` of its frames are
outstanding; otherwise it waits for a completion before continuing.
Under overload this bounds the user-perceived latency to roughly
``window x service time`` instead of growing without bound, at the cost
of a lower issued-frame rate — the trade the open/closed-loop ablation
bench quantifies.

Closed-loop traffic cannot be pre-generated as a trace (it depends on
completions), so these drivers live inside the simulation:
:func:`run_closed_loop` wires users to a service and runs the event
loop.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Sequence, Union

from repro.cluster.event_queue import PRIORITY_ARRIVAL, EventQueue
from repro.core.chunks import Dataset
from repro.core.job import JobType, RenderJob
from repro.core.registry import make_scheduler
from repro.core.scheduler_base import Scheduler
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only (sim imports workload)
    from repro.sim.config import SystemConfig
    from repro.sim.service import VisualizationService


class ClosedLoopUser:
    """One user who stops requesting when the system lags.

    Args:
        service: The visualization service to submit to.
        dataset: Dataset the user explores.
        action_id / user_id: Identity for metrics.
        interval: Desired request spacing (1 / target fps).
        window: Maximum outstanding (issued, uncompleted) frames before
            the user pauses — their lag tolerance.
        start / duration: Active span of the session.
    """

    def __init__(
        self,
        service: VisualizationService,
        dataset: Dataset,
        *,
        action_id: int,
        user_id: int,
        interval: float,
        window: int,
        start: float,
        duration: float,
    ) -> None:
        check_positive("interval", interval)
        check_positive("window", window)
        check_positive("duration", duration)
        self.service = service
        self.dataset = dataset
        self.action_id = action_id
        self.user_id = user_id
        self.interval = interval
        self.window = window
        self.start = start
        self.end = start + duration
        self.issued = 0
        self.outstanding = 0
        self.stalled = 0  # ticks skipped because the window was full
        self._waiting = False
        service.add_completion_listener(self._on_complete)

    # -- driving -----------------------------------------------------------

    def begin(self) -> None:
        """Arm the first request tick."""
        self.service.cluster.events.schedule(
            self.start, self._tick, priority=PRIORITY_ARRIVAL
        )

    def _tick(self) -> None:
        events = self.service.cluster.events
        now = events.now
        if now >= self.end:
            return
        if self.outstanding >= self.window:
            # Lag sensed: pause until a frame comes back.
            self.stalled += 1
            self._waiting = True
            return
        job = RenderJob(
            JobType.INTERACTIVE,
            self.dataset,
            now,
            user=self.user_id,
            action=self.action_id,
            sequence=self.issued,
        )
        self.issued += 1
        self.outstanding += 1
        self.service.submit(job)
        events.schedule(
            now + self.interval, self._tick, priority=PRIORITY_ARRIVAL
        )

    def _on_complete(self, job: RenderJob) -> None:
        if job.action != self.action_id:
            return
        self.outstanding -= 1
        if self._waiting:
            self._waiting = False
            events = self.service.cluster.events
            if events.now < self.end:
                events.schedule(
                    events.now + self.interval,
                    self._tick,
                    priority=PRIORITY_ARRIVAL,
                )


@dataclass
class ClosedLoopResult:
    """Outcome of a closed-loop run."""

    service: VisualizationService
    users: List[ClosedLoopUser]
    duration: float

    @property
    def issued(self) -> int:
        """Requests actually issued (paced by the users)."""
        return sum(u.issued for u in self.users)

    @property
    def completed(self) -> int:
        """Jobs completed."""
        return self.service.jobs_completed

    def mean_interactive_latency(self) -> float:
        """Mean Definition-3 latency of completed interactive jobs."""
        records = self.service.collector.interactive_records()
        if not records:
            return 0.0
        return sum(r.latency for r in records) / len(records)

    def delivered_fps_per_user(self) -> Dict[int, float]:
        """Completed frames per active second, per user."""
        counts: Dict[int, int] = {}
        for record in self.service.collector.interactive_records():
            counts[record.action] = counts.get(record.action, 0) + 1
        return {
            u.action_id: counts.get(u.action_id, 0) / (u.end - u.start)
            for u in self.users
        }


def run_closed_loop(
    system: SystemConfig,
    datasets: Sequence[Dataset],
    *,
    scheduler: Union[str, Scheduler],
    users: int,
    duration: float,
    target_framerate: float = 100.0 / 3.0,
    window: int = 3,
    prewarm: bool = True,
) -> ClosedLoopResult:
    """Run closed-loop users against a cluster (user i → dataset i mod n).

    Args:
        window: Each user's lag tolerance in outstanding frames.
    """
    from repro.sim.service import VisualizationService  # deferred: sim imports workload

    check_positive("users", users)
    if not datasets:
        raise ValueError("need at least one dataset")
    events = EventQueue()
    cluster = system.build_cluster(events=events)
    sched = make_scheduler(scheduler) if isinstance(scheduler, str) else scheduler
    sched.reset()
    service = VisualizationService(cluster, sched, system.chunk_max)
    if prewarm:
        service.prewarm(list(datasets))
    interval = 1.0 / target_framerate
    drivers: List[ClosedLoopUser] = []
    for i in range(users):
        user = ClosedLoopUser(
            service,
            datasets[i % len(datasets)],
            action_id=i,
            user_id=i,
            interval=interval,
            window=window,
            start=(i * interval / max(users, 1)),  # staggered phases
            duration=duration,
        )
        user.begin()
        drivers.append(user)
    service.start()
    events.run(until=duration)
    return ClosedLoopResult(service=service, users=drivers, duration=duration)


__all__ = ["ClosedLoopUser", "ClosedLoopResult", "run_closed_loop"]

"""The four evaluation scenarios of Table II, plus custom scenarios.

Each factory reproduces one row of Table II:

====  =====  ============  ==========  ==========  ======  ===========
 #    nodes  total memory  # datasets  total size   length  jobs (b/i)
====  =====  ============  ==========  ==========  ======  ===========
 1      8      16 GB           6         12 GB       60 s    0 / 12006
 2      8      16 GB          12         24 GB      120 s    2251 / 21011
 3     64     512 GB          32        256 GB      300 s    9844 / 160633
 4     64     512 GB         128          1 TB      600 s    35176 / 388481
====  =====  ============  ==========  ==========  ======  ===========

All four target 33.33 fps (one request per 30 ms per action).

Scenario 1 uses persistent actions (exactly 12 006 requests).  The
mixed scenarios use Poisson action/batch streams whose rates are sized
to the Table II totals; generated counts land within sampling noise of
the paper's (the exact values are properties of the authors' traces,
not of the design).

Every factory takes a ``scale`` factor that shrinks the simulated
duration while preserving all rates and the dataset suite, so the
request *intensity* — the thing the schedulers react to — is unchanged.
``scale=1.0`` reproduces the full Table II runs.

The mixed scenarios (2-4) also take a ``load`` factor that multiplies
the action and batch arrival rates: ``load=2.0`` submits twice the
Table II demand onto the same cluster.  Over-subscribed variants are
the overload-management studies' workload (the frontend's admission /
backpressure / degradation pipeline exists for exactly this regime).

All factories additionally take a ``users`` multiplier for the
federation tier: ``users=N`` multiplies the user *population* (and with
it the total demand) N-fold, the way ``load`` multiplies demand per
user.  A federation of N shards runs ``users=N`` so that after routing
each shard sees roughly one scenario's worth of Table II load.
``users=1`` is float-exact identical to the plain factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.chunks import Dataset, dataset_suite
from repro.sim.config import SystemConfig, system_anl, system_linux8
from repro.util.units import GiB
from repro.util.validation import check_positive
from repro.workload.actions import persistent_actions, poisson_action_stream
from repro.workload.batch import poisson_batch_stream
from repro.workload.trace import WorkloadTrace, merge_traces

#: The paper's target framerate for all scenarios: "33.33 fps (one
#: request per 30ms for each action)" — exactly 100/3 so the request
#: interval is exactly 30 ms.
TARGET_FPS = 100.0 / 3.0


@dataclass(frozen=True)
class Scenario:
    """A system configuration plus the workload to run on it.

    ``prewarm`` replays the paper's pre-measurement "test run": dataset
    chunks are made memory-resident (as far as they fit without
    eviction) before the first request, so runs start from the warmed
    state the evaluation assumes ("total data ... can be completely
    cached", Scenarios 1 and 3).
    """

    name: str
    system: SystemConfig
    trace: WorkloadTrace
    description: str = ""
    prewarm: bool = True

    @property
    def datasets(self) -> List[Dataset]:
        """The dataset suite of the workload."""
        return self.trace.datasets

    @property
    def target_framerate(self) -> float:
        """The interactive framerate target."""
        return self.trace.target_framerate

    def summary(self) -> str:
        """Table II-style one-liner."""
        return f"[{self.system.name} x{self.system.node_count}] {self.trace.summary()}"


def _mixed_trace(
    datasets: List[Dataset],
    duration: float,
    *,
    action_rate: float,
    mean_action_duration: float,
    batch_rate: float,
    mean_batch_frames: float,
    seed: int,
    name: str,
    interactive_datasets: int = 0,
) -> WorkloadTrace:
    """Interactive Poisson stream merged with a batch Poisson stream.

    ``interactive_datasets`` > 0 restricts interactive actions to the
    first that many datasets (the hot working set under active study);
    batch submissions always range over the whole suite.  This models
    the paper's multi-user narrative — interactive exploration of
    resident data, batch production over everything — and is what makes
    the memory-pressure scenarios' swapping come from *batch* traffic.
    """
    weights = None
    if interactive_datasets:
        if not 0 < interactive_datasets <= len(datasets):
            raise ValueError(
                f"interactive_datasets must be in 1..{len(datasets)}, "
                f"got {interactive_datasets}"
            )
        weights = [1.0] * interactive_datasets + [0.0] * (
            len(datasets) - interactive_datasets
        )
    interactive = poisson_action_stream(
        datasets,
        duration,
        arrival_rate=action_rate,
        mean_action_duration=mean_action_duration,
        target_framerate=TARGET_FPS,
        seed=seed,
        dataset_weights=weights,
        name=f"{name}-interactive",
    )
    batch = poisson_batch_stream(
        datasets,
        duration,
        submission_rate=batch_rate,
        mean_frames=mean_batch_frames,
        target_framerate=TARGET_FPS,
        seed=seed + 101,
        name=f"{name}-batch",
    )
    return merge_traces([interactive, batch], name=name)


def scenario_1(*, scale: float = 1.0, seed: int = 1, users: int = 1) -> Scenario:
    """Scenario 1: workload balancing, all data cacheable (Fig. 4).

    8 nodes with 2 GB quota each (16 GB total); six 2 GB datasets
    (12 GB total, fully cacheable); six simultaneous persistent user
    actions at 33.33 fps; no batch jobs; 60 seconds.  ``users``
    multiplies the persistent-action count (``users=N`` runs ``6 * N``
    simultaneous actions over the same suite).
    """
    check_positive("scale", scale)
    check_positive("users", users)
    duration = 60.0 * scale
    datasets = dataset_suite(6, 2 * GiB)
    trace = persistent_actions(
        datasets,
        duration,
        actions=len(datasets) * users,
        target_framerate=TARGET_FPS,
        name="scenario1",
    )
    return Scenario(
        name="scenario1",
        system=system_linux8(),
        trace=trace,
        description=(
            "6 persistent interactive actions over 6x2GB datasets on 8 "
            "nodes; measures pure workload balancing (all data fits in "
            "memory)"
        ),
    )


def scenario_2(
    *, scale: float = 1.0, seed: int = 2, load: float = 1.0, users: int = 1
) -> Scenario:
    """Scenario 2: data locality under memory pressure (Fig. 5).

    Doubles the datasets (12 x 2 GB = 24 GB > 16 GB of memory) and adds
    batch submissions to the short-action interactive mix; 120 seconds.
    Table II totals: 2 251 batch / 21 011 interactive jobs
    → ~175 interactive jobs/s (≈5.3 concurrent actions) and
    ~19 batch jobs/s.  ``load`` multiplies both arrival rates
    (``load=2.5`` ≈ 2.5x over-subscription); ``users`` multiplies the
    user population the same way (federation fan-out).
    """
    check_positive("scale", scale)
    check_positive("load", load)
    check_positive("users", users)
    duration = 120.0 * scale
    datasets = dataset_suite(12, 2 * GiB)
    trace = _mixed_trace(
        datasets,
        duration,
        action_rate=1.75 * load * users,  # x 3 s mean = 5.25 concurrent actions
        mean_action_duration=3.0,
        batch_rate=0.25 * load * users,  # x 75 mean frames = 18.75 batch jobs/s
        mean_batch_frames=75.0,
        seed=seed,
        name="scenario2",
        # The 8-dataset hot working set fills the 16 GB aggregate memory
        # exactly, so batch loads of the other 4 datasets force the
        # interactive/batch data swapping the paper describes; batch
        # ranges over all 12 datasets.
        interactive_datasets=8,
    )
    return Scenario(
        name="scenario2",
        system=system_linux8(),
        trace=trace,
        description=(
            "Short interactive actions + batch submissions over 12x2GB "
            "datasets (24GB > 16GB memory) on 8 nodes; measures data-"
            "locality utilization and batch deferral"
        ),
    )


def scenario_3(
    *, scale: float = 1.0, seed: int = 3, load: float = 1.0, users: int = 1
) -> Scenario:
    """Scenario 3: light-load large-scale hybrid environment (Fig. 6).

    64 ANL nodes with 8 GB quota (512 GB total); 32 x 8 GB datasets
    (256 GB, fully cacheable); 300 seconds.  Table II totals: 9 844
    batch / 160 633 interactive jobs → ~535 interactive jobs/s (≈16
    concurrent actions) and ~33 batch jobs/s.  ``load`` multiplies both
    arrival rates; ``users`` multiplies the user population.
    """
    check_positive("scale", scale)
    check_positive("load", load)
    check_positive("users", users)
    duration = 300.0 * scale
    datasets = dataset_suite(32, 8 * GiB)
    trace = _mixed_trace(
        datasets,
        duration,
        action_rate=3.2 * load * users,  # x 5 s mean = 16 concurrent actions
        mean_action_duration=5.0,
        batch_rate=0.44 * load * users,  # x 75 mean frames = 33 batch jobs/s
        mean_batch_frames=75.0,
        seed=seed,
        name="scenario3",
    )
    return Scenario(
        name="scenario3",
        system=system_anl(),
        trace=trace,
        description=(
            "Hybrid interactive+batch on 64 ANL nodes over 32x8GB "
            "datasets (fully cacheable); light load"
        ),
    )


def scenario_4(
    *, scale: float = 1.0, seed: int = 4, load: float = 1.0, users: int = 1
) -> Scenario:
    """Scenario 4: heavy-load environment, 1 TB of data (Fig. 7).

    128 x 8 GB datasets (1 TB, double the 512 GB aggregate memory);
    600 seconds.  Table II totals: 35 176 batch / 388 481 interactive
    jobs → ~647 interactive jobs/s (≈19.4 concurrent actions, above the
    sustainable capacity — latencies soar, as the paper notes) and
    ~59 batch jobs/s.  ``load`` multiplies both arrival rates; ``users``
    multiplies the user population (federation fan-out: hundreds of
    thousands of users at ``users=100``-scale populations).
    """
    check_positive("scale", scale)
    check_positive("load", load)
    check_positive("users", users)
    duration = 600.0 * scale
    datasets = dataset_suite(128, 8 * GiB)
    trace = _mixed_trace(
        datasets,
        duration,
        action_rate=3.9 * load * users,  # x 5 s mean = 19.5 concurrent actions
        mean_action_duration=5.0,
        batch_rate=0.78 * load * users,  # x 75 mean frames = 58.5 batch jobs/s
        mean_batch_frames=75.0,
        seed=seed,
        name="scenario4",
        # 64-dataset working set = the full 512 GB aggregate memory;
        # batch production ranges over the whole 1 TB suite.
        interactive_datasets=64,
    )
    return Scenario(
        name="scenario4",
        system=system_anl(),
        trace=trace,
        description=(
            "Heavy-load hybrid on 64 ANL nodes over 128x8GB datasets "
            "(1TB, twice the aggregate memory)"
        ),
    )


def custom_scenario(
    system: SystemConfig,
    trace: WorkloadTrace,
    *,
    name: Optional[str] = None,
    description: str = "",
) -> Scenario:
    """Wrap an arbitrary system + trace pair as a scenario."""
    return Scenario(
        name=name if name is not None else trace.name,
        system=system,
        trace=trace,
        description=description,
    )


SCENARIO_FACTORIES = {
    1: scenario_1,
    2: scenario_2,
    3: scenario_3,
    4: scenario_4,
}


def make_scenario(
    number: int,
    *,
    scale: float = 1.0,
    seed: Optional[int] = None,
    load: float = 1.0,
    users: int = 1,
) -> Scenario:
    """Build Table II scenario ``number`` (1-4).

    ``load`` multiplies the mixed scenarios' arrival rates (2-4 only;
    scenario 1's persistent-action workload has no arrival rate).
    ``users`` multiplies the user population of any scenario
    (federation fan-out).
    """
    factory = SCENARIO_FACTORIES.get(number)
    if factory is None:
        raise KeyError(f"no scenario {number}; valid: 1-4")
    kwargs = {"scale": scale}
    if seed is not None:
        kwargs["seed"] = seed
    if load != 1.0:
        if number == 1:
            raise ValueError("scenario 1 has no arrival rate; load must be 1.0")
        kwargs["load"] = load
    if users != 1:
        kwargs["users"] = users
    return factory(**kwargs)  # type: ignore[arg-type]


__all__ = [
    "TARGET_FPS",
    "Scenario",
    "scenario_1",
    "scenario_2",
    "scenario_3",
    "scenario_4",
    "custom_scenario",
    "make_scenario",
    "SCENARIO_FACTORIES",
]

"""Evaluation analytics over job records.

Implements the quantities plotted in the paper's evaluation:

* per-action and mean interactive framerates (Definition 4),
* interactive/batch latency statistics (Definition 3),
* batch mean working time (``JExec``, Definition 2),
* per-scheduler summary rows for the Fig. 4-7 style reports.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

from repro.core.cost_model import framerate, mean, percentile
from repro.core.job import JobType
from repro.reporting.collectors import JobRecord


def framerates_by_action(records: Sequence[JobRecord]) -> Dict[int, float]:
    """Definition-4 framerate of each interactive action.

    Jobs are taken in completion order per action; actions with fewer
    than two completed jobs score 0 fps (no frame interval was ever
    delivered to that user).
    """
    finishes: Dict[int, List[float]] = defaultdict(list)
    for r in records:
        if r.job_type is JobType.INTERACTIVE:
            finishes[r.action].append(r.finish)
    return {
        action: framerate(sorted(times)) for action, times in finishes.items()
    }


def mean_interactive_framerate(records: Sequence[JobRecord]) -> float:
    """Mean per-action Definition-4 framerate."""
    rates = framerates_by_action(records)
    return mean(list(rates.values()))


def delivered_framerates_by_action(
    records: Sequence[JobRecord],
    action_issues: Mapping[int, Sequence[float]],
    frame_interval: float,
) -> Dict[int, float]:
    """Frames *delivered* per second of user interaction, per action.

    ``completed_frames / (issue span + one interval)``.  Under steady
    completion this converges to Definition 4; under backlog it reflects
    what the user actually received.  Definition 4's completion-spacing
    form rewards burst delivery (a scheduler that completes five
    adjacent frames milliseconds apart after seconds of silence would
    score hundreds of fps), so comparison reports use this form.

    Args:
        records: Completed-job records.
        action_issues: ``action -> (issued count, first issue, last
            issue)`` from the collector.
        frame_interval: The request interval (1 / target framerate).
    """
    completed: Dict[int, int] = defaultdict(int)
    for r in records:
        if r.job_type is JobType.INTERACTIVE:
            completed[r.action] += 1
    out: Dict[int, float] = {}
    for action, (_issued, first, last) in action_issues.items():
        span = (last - first) + frame_interval
        out[action] = completed.get(action, 0) / span if span > 0 else 0.0
    return out


def mean_delivered_framerate(
    records: Sequence[JobRecord],
    action_issues: Mapping[int, Sequence[float]],
    frame_interval: float,
) -> float:
    """Mean per-action delivered framerate (the Fig. 4-7 bar heights)."""
    rates = delivered_framerates_by_action(records, action_issues, frame_interval)
    return mean(list(rates.values()))


@dataclass(frozen=True)
class LatencyStats:
    """Latency distribution summary of a job class."""

    count: int
    mean: float
    p50: float
    p95: float
    maximum: float
    p99: float = 0.0

    @classmethod
    def of(cls, latencies: Sequence[float]) -> "LatencyStats":
        """Summarize a latency sample (zeros for an empty sample)."""
        if not latencies:
            return cls(count=0, mean=0.0, p50=0.0, p95=0.0, maximum=0.0)
        return cls(
            count=len(latencies),
            mean=mean(latencies),
            p50=percentile(latencies, 50),
            p95=percentile(latencies, 95),
            maximum=max(latencies),
            p99=percentile(latencies, 99),
        )


def latency_stats(
    records: Sequence[JobRecord], job_type: JobType
) -> LatencyStats:
    """Latency summary for one job class."""
    lats = [r.latency for r in records if r.job_type is job_type]
    return LatencyStats.of(lats)


def batch_working_time(records: Sequence[JobRecord]) -> float:
    """Mean ``JExec`` of completed batch jobs (Figs. 5-7 right bars).

    Shorter working time indicates higher batch throughput.
    """
    execs = [r.execution for r in records if r.job_type is JobType.BATCH]
    return mean(execs)


@dataclass(frozen=True)
class SchedulerSummary:
    """One scheduler's row in a Fig. 4-7 style comparison.

    All times in seconds, framerates in fps.
    """

    scheduler: str
    interactive_fps: float
    interactive_latency: float
    batch_latency: float
    batch_working_time: float
    interactive_completed: int
    batch_completed: int
    hit_rate: float
    sched_cost_us: float
    #: p99 interactive latency; defaulted so positional construction
    #: from before the field existed keeps working.
    interactive_p99: float = 0.0

    def row(self) -> str:
        """Fixed-width text row for report tables."""
        return (
            f"{self.scheduler:<7} {self.interactive_fps:>8.2f} "
            f"{self.interactive_latency:>12.3f} {self.interactive_p99:>12.3f} "
            f"{self.batch_latency:>12.3f} "
            f"{self.batch_working_time:>12.3f} {self.hit_rate * 100:>8.2f}% "
            f"{self.sched_cost_us:>10.1f}"
        )


def summarize(
    scheduler: str,
    records: Sequence[JobRecord],
    *,
    hit_rate: float,
    sched_cost_us: float,
    action_issues: Optional[Mapping[int, Sequence[float]]] = None,
    frame_interval: float = 0.03,
) -> SchedulerSummary:
    """Build a :class:`SchedulerSummary` from a run's job records.

    With ``action_issues`` (from the collector) the framerate is the
    delivered form; without it, Definition 4 over completions.
    """
    interactive = [r for r in records if r.job_type is JobType.INTERACTIVE]
    batch = [r for r in records if r.job_type is JobType.BATCH]
    if action_issues is not None:
        fps = mean_delivered_framerate(records, action_issues, frame_interval)
    else:
        fps = mean_interactive_framerate(records)
    interactive_latencies = [r.latency for r in interactive]
    return SchedulerSummary(
        scheduler=scheduler,
        interactive_fps=fps,
        interactive_latency=mean(interactive_latencies),
        batch_latency=mean([r.latency for r in batch]),
        batch_working_time=batch_working_time(records),
        interactive_completed=len(interactive),
        batch_completed=len(batch),
        hit_rate=hit_rate,
        sched_cost_us=sched_cost_us,
        interactive_p99=percentile(interactive_latencies, 99),
    )


__all__ = [
    "framerates_by_action",
    "mean_interactive_framerate",
    "delivered_framerates_by_action",
    "mean_delivered_framerate",
    "LatencyStats",
    "latency_stats",
    "batch_working_time",
    "SchedulerSummary",
    "summarize",
]

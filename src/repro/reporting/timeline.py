"""Time-series sampling of cluster state during a simulation.

The evaluation's aggregate numbers (mean framerate, mean latency) hide
the *dynamics* — warm-up transients, batch-induced stalls, backlog
growth under overload.  A :class:`TimelineSampler` rides the event
queue at a fixed interval and records per-sample snapshots: node
backlog, busy nodes, jobs completed, cache hit counts.  The text
sparkline renderer makes the series readable in a terminal report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.util.validation import check_positive

_SPARK_CHARS = " .:-=+*#%@"


@dataclass(frozen=True)
class TimelineSample:
    """One snapshot of cluster/service state."""

    time: float
    backlog_tasks: int
    busy_nodes: int
    jobs_completed: int
    tasks_hit: int
    tasks_missed: int
    scheduler_pending: int

    @property
    def total_tasks(self) -> int:
        """Tasks started up to this sample."""
        return self.tasks_hit + self.tasks_missed


class TimelineSampler:
    """Samples a running :class:`~repro.sim.service.VisualizationService`.

    The sampler reschedules itself while the service has work (or until
    ``horizon``), so it never keeps an otherwise-finished simulation
    alive.
    """

    def __init__(self, interval: float, *, horizon: Optional[float] = None) -> None:
        check_positive("interval", interval)
        self.interval = interval
        self.horizon = horizon
        self.samples: List[TimelineSample] = []
        self._service = None
        self._start = 0.0
        self._ticks = 0

    def attach(self, service) -> "TimelineSampler":
        """Start sampling ``service`` (call before running events)."""
        self._service = service
        events = service.cluster.events
        self._start = events.now
        self._ticks = 0
        events.schedule(self._start, self._tick)
        return self

    def _tick(self) -> None:
        service = self._service
        cluster = service.cluster
        now = cluster.events.now
        self.samples.append(
            TimelineSample(
                time=now,
                backlog_tasks=cluster.total_backlog(),
                busy_nodes=sum(1 for n in cluster.nodes if n.busy),
                jobs_completed=service.jobs_completed,
                tasks_hit=sum(n.cache_hits for n in cluster.nodes),
                tasks_missed=sum(n.cache_misses for n in cluster.nodes),
                scheduler_pending=service.scheduler.pending_task_count(),
            )
        )
        past_horizon = self.horizon is not None and now >= self.horizon
        # Keep ticking while the service has in-flight work OR future
        # events (e.g. request arrivals) are still queued; stop at the
        # horizon or at full quiescence so the sampler never keeps a
        # finished simulation alive.
        more_coming = service.has_work() or len(cluster.events) > 0
        if more_coming and not past_horizon:
            # Absolute-grid scheduling: tick k fires at exactly
            # ``start + k*interval`` (no accumulated float drift).
            self._ticks += 1
            cluster.events.schedule(
                self._start + self._ticks * self.interval, self._tick
            )

    # -- series accessors -----------------------------------------------------

    def series(self, name: str) -> List[float]:
        """Extract one attribute as a list (e.g. ``"backlog_tasks"``)."""
        return [float(getattr(s, name)) for s in self.samples]

    def completion_rate(self) -> List[float]:
        """Jobs completed per second between consecutive samples."""
        out: List[float] = []
        for a, b in zip(self.samples, self.samples[1:]):
            dt = b.time - a.time
            out.append((b.jobs_completed - a.jobs_completed) / dt if dt > 0 else 0.0)
        return out


def sparkline(values: Sequence[float], *, width: int = 60) -> str:
    """Render a numeric series as a one-line text sparkline.

    Values are bucketed to ``width`` columns (mean per bucket) and
    mapped onto a 10-level character ramp; the line is annotated with
    the series min/max.
    """
    if not values:
        return "(empty)"
    values = list(values)
    n = len(values)
    columns = min(width, n)
    buckets: List[float] = []
    for c in range(columns):
        lo = c * n // columns
        hi = max(lo + 1, (c + 1) * n // columns)
        chunk = values[lo:hi]
        buckets.append(sum(chunk) / len(chunk))
    vmin, vmax = min(buckets), max(buckets)
    span = vmax - vmin
    chars = []
    for v in buckets:
        level = 0 if span == 0 else int((v - vmin) / span * (len(_SPARK_CHARS) - 1))
        chars.append(_SPARK_CHARS[level])
    return f"[{''.join(chars)}] min={vmin:g} max={vmax:g}"


__all__ = ["TimelineSample", "TimelineSampler", "sparkline"]

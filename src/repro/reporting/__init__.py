"""Measurement collection, analysis, and report rendering."""

from repro.reporting.analysis import (
    LatencyStats,
    SchedulerSummary,
    batch_working_time,
    framerates_by_action,
    latency_stats,
    mean_interactive_framerate,
    summarize,
)
from repro.reporting.collectors import (
    JobRecord,
    SchedulingCostStats,
    SimulationCollector,
)
from repro.reporting.timeline import TimelineSample, TimelineSampler, sparkline
from repro.reporting.report import (
    comparison_table,
    hit_rate_table,
    pipeline_breakdown,
    sweep_table,
)

__all__ = [
    "LatencyStats",
    "SchedulerSummary",
    "batch_working_time",
    "framerates_by_action",
    "latency_stats",
    "mean_interactive_framerate",
    "summarize",
    "JobRecord",
    "SchedulingCostStats",
    "SimulationCollector",
    "TimelineSample",
    "TimelineSampler",
    "sparkline",
    "comparison_table",
    "hit_rate_table",
    "pipeline_breakdown",
    "sweep_table",
]

"""Text renderings of the paper's tables and figures.

The benchmark harness prints these reports so each bench regenerates the
same rows/series the paper shows.  Formatting is deliberately plain
fixed-width text (no plotting dependencies) — the *numbers and ordering*
are the reproduction artifact.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.reporting.analysis import SchedulerSummary

_HEADER = (
    f"{'sched':<7} {'fps':>8} {'int-lat(s)':>12} {'p99-lat(s)':>12} "
    f"{'bat-lat(s)':>12} "
    f"{'bat-work(s)':>12} {'hit-rate':>9} {'cost(us)':>10}"
)


def comparison_table(
    summaries: Sequence[SchedulerSummary],
    *,
    title: str = "",
    target_fps: Optional[float] = None,
) -> str:
    """Fig. 4-7 style comparison: one row per scheduling scheme."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if target_fps is not None:
        lines.append(f"target framerate: {target_fps:.2f} fps")
    lines.append(_HEADER)
    lines.append("-" * len(_HEADER))
    for s in summaries:
        lines.append(s.row())
    return "\n".join(lines)


def hit_rate_table(
    rows: Dict[str, Dict[str, SchedulerSummary]],
    schedulers: Sequence[str],
    *,
    title: str = "Table III: data reuse hit rates and average scheduling costs",
) -> str:
    """Table III layout: scenarios x schedulers, hit rate + cost rows.

    Args:
        rows: ``rows[scenario][scheduler]`` → summary.
        schedulers: Column order (the paper uses FS, FCFSU, FCFSL, OURS).
    """
    lines = [title]
    header = f"{'scenario':<12} {'metric':<14}" + "".join(
        f"{s:>10}" for s in schedulers
    )
    lines.append(header)
    lines.append("-" * len(header))
    for scenario, by_sched in rows.items():
        hit = f"{scenario:<12} {'hit rate':<14}"
        cost = f"{'':<12} {'avg cost (us)':<14}"
        for s in schedulers:
            summary = by_sched.get(s)
            if summary is None:
                hit += f"{'-':>10}"
                cost += f"{'-':>10}"
            else:
                hit += f"{summary.hit_rate * 100:>9.2f}%"
                cost += f"{summary.sched_cost_us:>10.1f}"
        lines.append(hit)
        lines.append(cost)
    return "\n".join(lines)


def sweep_table(
    x_label: str,
    xs: Sequence[float],
    series: Dict[str, Sequence[float]],
    *,
    title: str = "",
    fmt: str = "{:>12.2f}",
) -> str:
    """Fig. 8/9 style sweep: one x column, one column per series."""
    names = list(series)
    for name in names:
        if len(series[name]) != len(xs):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{len(xs)} x values"
            )
    lines: List[str] = []
    if title:
        lines.append(title)
    header = f"{x_label:<16}" + "".join(f"{n:>14}" for n in names)
    lines.append(header)
    lines.append("-" * len(header))
    for i, x in enumerate(xs):
        row = f"{x:<16g}" + "".join(
            fmt.format(series[n][i]).rjust(14) for n in names
        )
        lines.append(row)
    return "\n".join(lines)


def pipeline_breakdown(
    io_seconds: float,
    render_seconds: float,
    composite_seconds: float,
    *,
    title: str = "Fig. 2: visualization pipeline stage breakdown",
) -> str:
    """Fig. 2 style stage breakdown for a single task."""
    total = io_seconds + render_seconds + composite_seconds
    lines = [title]
    for name, value in (
        ("data I/O", io_seconds),
        ("rendering", render_seconds),
        ("compositing", composite_seconds),
    ):
        share = (value / total * 100.0) if total else 0.0
        lines.append(f"  {name:<12} {value * 1e3:>12.3f} ms  ({share:5.1f} %)")
    lines.append(f"  {'total':<12} {total * 1e3:>12.3f} ms")
    return "\n".join(lines)


__all__ = [
    "comparison_table",
    "hit_rate_table",
    "sweep_table",
    "pipeline_breakdown",
]

"""Measurement collection during a simulation run.

The collector converts completed :class:`~repro.core.job.RenderJob`
objects into compact :class:`JobRecord` rows (so job/task objects can be
garbage-collected in long runs) and accumulates the counters behind
Table III: data-reuse hit rate and the wall-clock cost of the scheduling
procedure itself.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, NamedTuple

from repro.core.job import JobType, RenderJob


class JobRecord(NamedTuple):
    """Compact record of one completed rendering job.

    Times follow the paper's definitions: ``arrival`` is ``JI``,
    ``start`` is ``JS``, ``finish`` is ``JF`` (compositing included).
    A named tuple: rows are immutable and cheap — one is allocated per
    completed job, simulation-runs deep in the hot path.
    """

    job_id: int
    job_type: JobType
    dataset: str
    user: int
    action: int
    sequence: int
    arrival: float
    start: float
    finish: float
    task_count: int
    cache_hits: int
    io_seconds: float
    group_size: int

    @property
    def latency(self) -> float:
        """Definition 3: ``JF - JI``."""
        return self.finish - self.arrival

    @property
    def execution(self) -> float:
        """Definition 2: ``JExec = JF - JS`` (the "working time")."""
        return self.finish - self.start

    @property
    def cache_misses(self) -> int:
        """Tasks that paid I/O."""
        return self.task_count - self.cache_hits


#: Direct tuple allocation for JobRecord rows: the generated namedtuple
#: ``__new__`` is a Python-level frame per call, and one row is built per
#: completed job.  ``tuple.__new__(JobRecord, ...)`` builds the identical
#: object C-level (fields passed positionally, in declaration order).
_job_record_new = tuple.__new__


@dataclass
class SchedulingCostStats:
    """Wall-clock accounting of the scheduling procedure (Table III)."""

    invocations: int = 0
    total_seconds: float = 0.0
    jobs_scheduled: int = 0
    tasks_assigned: int = 0

    def record(self, seconds: float, jobs: int, tasks: int) -> None:
        """Add one scheduler invocation's measurements."""
        self.invocations += 1
        self.total_seconds += seconds
        self.jobs_scheduled += jobs
        self.tasks_assigned += tasks

    @property
    def mean_cost_per_job(self) -> float:
        """Average scheduling time per job, in seconds."""
        if self.jobs_scheduled == 0:
            return 0.0
        return self.total_seconds / self.jobs_scheduled

    @property
    def mean_cost_per_job_us(self) -> float:
        """Average scheduling time per job, in microseconds (Table III)."""
        return self.mean_cost_per_job * 1e6

    @property
    def mean_cost_per_invocation(self) -> float:
        """Average time of one scheduler invocation, in seconds."""
        if self.invocations == 0:
            return 0.0
        return self.total_seconds / self.invocations


class SimulationCollector:
    """Accumulates job records and run-level counters."""

    def __init__(self) -> None:
        self.records: List[JobRecord] = []
        self.scheduling = SchedulingCostStats()
        self.jobs_submitted = 0
        self.tasks_hit = 0
        self.tasks_missed = 0
        #: Per interactive action: [issued count, first issue, last issue].
        #: Needed for delivered-framerate analysis (frames delivered over
        #: the span the user was actually interacting).
        self.action_issues: Dict[int, List[float]] = {}

    # -- event hooks ---------------------------------------------------------

    def on_submit(self, job: RenderJob) -> None:
        """Record a job entering the head node's queue."""
        self.jobs_submitted += 1
        if job.job_type is JobType.INTERACTIVE:
            entry = self.action_issues.get(job.action)
            if entry is None:
                self.action_issues[job.action] = [
                    1.0,
                    job.arrival_time,
                    job.arrival_time,
                ]
            else:
                entry[0] += 1.0
                if job.arrival_time < entry[1]:
                    entry[1] = job.arrival_time
                if job.arrival_time > entry[2]:
                    entry[2] = job.arrival_time

    def on_job_complete(self, job: RenderJob) -> None:
        """Convert a completed job into a :class:`JobRecord`."""
        hits = 0
        io_total = 0.0
        for t in job.tasks:
            if t.cache_hit:
                hits += 1
            io_total += t.io_time
        self.tasks_hit += hits
        self.tasks_missed += job.task_count - hits
        self.records.append(
            _job_record_new(
                JobRecord,
                (
                    job.job_id,
                    job.job_type,
                    job.dataset.name,
                    job.user,
                    job.action,
                    job.sequence,
                    job.arrival_time,
                    job.start_time(),
                    job.finish_time,
                    job.task_count,
                    hits,
                    io_total,
                    len(job.group_nodes()),
                ),
            )
        )

    # -- derived -------------------------------------------------------------

    @property
    def jobs_completed(self) -> int:
        """Jobs with a recorded completion."""
        return len(self.records)

    @property
    def hit_rate(self) -> float:
        """Data-reuse hit rate over executed tasks (Table III)."""
        total = self.tasks_hit + self.tasks_missed
        return self.tasks_hit / total if total else 0.0

    def interactive_records(self) -> List[JobRecord]:
        """Completed interactive jobs."""
        return [r for r in self.records if r.job_type is JobType.INTERACTIVE]

    def batch_records(self) -> List[JobRecord]:
        """Completed batch jobs."""
        return [r for r in self.records if r.job_type is JobType.BATCH]


__all__ = ["JobRecord", "SchedulingCostStats", "SimulationCollector"]

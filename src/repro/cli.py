"""Command-line interface: ``repro <subcommand>``.

Subcommands:

* ``simulate`` — run a Table II scenario under one or more schedulers
  and print the Fig. 4-7 style comparison row(s).
* ``federate`` — shard one scenario across N independent simulators
  behind a user router (consistent-hash or locality-aware), then print
  the merged per-shard grid, fleet totals, and merged SLO tables.
* ``explain`` — diff two schedulers' decision streams on one scenario:
  first divergent placement, reason-code mix, and the per-phase
  critical-path latency attribution table.
* ``faults`` — run a scenario under an injected fault plan (crashes,
  stragglers, cache wipes, storage degradation), print the detection /
  recovery report, and localize the faults from the audit evidence
  (root-cause analysis scored against the ground-truth plan).
* ``watch`` — tail a live telemetry stream file (written by
  ``--stream``, possibly by a still-running simulation) as a terminal
  status table with progress, anomalies, and stall diagnostics.
* ``render`` — sort-last render a synthetic dataset to a PPM image with
  the real ray caster.
* ``animate`` — render an orbit animation of a dataset (PPM frames).
* ``schedulers`` — list the registered scheduling policies.
* ``scenarios`` — print the Table II scenario descriptions.

Examples::

    repro simulate --scenario 1 --schedulers OURS,FCFS --scale 0.5
    repro simulate --scenario 2 --load 2.5 \
        --admission sessions=8 --queue-limit 64:shed-oldest --degrade
    repro simulate --scenario 1 --stream run.ndjson --stall-timeout 30
    repro watch run.ndjson
    repro federate --scenario 4 --shards 8 --router locality
    repro explain --scenario 2 --schedulers OURS,FCFS --scale 0.1
    repro faults --scenario 1 --scale 0.5 --plan "crash@10:node=3,revive=20"
    repro faults --scenario 1 --scale 0.5 --storm 11 --report rca.json
    repro render --dataset supernova --ranks 6 --out supernova.ppm
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.core.registry import SCHEDULER_NAMES
from repro.reporting.report import comparison_table
from repro.render import (
    DATASET_NAMES,
    cool_warm,
    default_camera_for,
    fire,
    grayscale_ramp,
    make_volume,
    render_sort_last,
    write_ppm,
)
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import SCENARIO_FACTORIES, make_scenario

_TFS = {"fire": fire, "cool_warm": cool_warm, "gray": grayscale_ramp}


def package_version() -> str:
    """The installed distribution's version; source-tree fallback."""
    try:
        from importlib.metadata import version

        return version("repro")
    except Exception:
        from repro import __version__

        return __version__


# ---------------------------------------------------------------------------
# Shared flag groups (argparse parent parsers)
#
# Every simulation-driving verb (simulate / federate / explain / report /
# faults) takes the same core flags; each factory below builds one
# ``add_help=False`` parent so the verbs declare them once and stay in
# lockstep.  Factories take the per-verb defaults as parameters — parents
# are instantiated per verb, never shared, so defaults cannot leak.
# ---------------------------------------------------------------------------


def _scenario_parent(
    *, scenario: int = 1, scale: float = 1.0
) -> argparse.ArgumentParser:
    """--scenario/--scale/--seed/--load: which workload, at what size."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scenario",
        type=int,
        choices=sorted(SCENARIO_FACTORIES),
        default=scenario,
    )
    parent.add_argument("--scale", type=float, default=scale)
    parent.add_argument("--seed", type=int, default=None)
    parent.add_argument(
        "--load",
        type=float,
        default=1.0,
        help=(
            "arrival-rate multiplier for the mixed scenarios (2-4): "
            "2.5 submits 2.5x the Table II demand (overload studies)"
        ),
    )
    return parent


def _schedulers_parent(
    *, default: str, help_text: str
) -> argparse.ArgumentParser:
    """--schedulers/--scheduler (comma list) for the comparison verbs."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--schedulers",
        "--scheduler",
        dest="schedulers",
        default=default,
        help=help_text,
    )
    return parent


def _scheduler_parent(*, default: str = "OURS") -> argparse.ArgumentParser:
    """--scheduler (exactly one registry name)."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--scheduler", default=default, help="one registry name"
    )
    return parent


def _drain_parent() -> argparse.ArgumentParser:
    """--drain: run past the horizon until every job completes."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--drain",
        action="store_true",
        help="simulate past the horizon until every job completes",
    )
    return parent


def _slo_parent(
    *, help_text: str, window: bool = True
) -> argparse.ArgumentParser:
    """--slo (repeatable SPEC) and optionally --slo-window."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--slo",
        metavar="SPEC",
        action="append",
        default=None,
        help=help_text,
    )
    if window:
        parent.add_argument(
            "--slo-window",
            type=float,
            default=1.0,
            help=(
                "SLO sliding-window length in simulated seconds "
                "(default 1.0)"
            ),
        )
    return parent


def _plan_parent(*, help_text: str) -> argparse.ArgumentParser:
    """--plan: a fault-plan SPEC."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--plan", metavar="SPEC", default=None, help=help_text
    )
    return parent


def _overload_parent() -> argparse.ArgumentParser:
    """--admission/--queue-limit/--degrade: the frontend overload knobs."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--admission",
        metavar="SPEC",
        default=None,
        help=(
            "enable admission control; SPEC is key=value pairs joined "
            "by ',' from: sessions=N (global concurrent-session cap), "
            "rate=R (per-user token-bucket requests/s), burst=B "
            "(bucket capacity, default 2*rate).  Example: "
            "--admission sessions=8,rate=50"
        ),
    )
    parent.add_argument(
        "--queue-limit",
        metavar="N[:POLICY]",
        default=None,
        help=(
            "bound the head-node job queue at N outstanding jobs; "
            "POLICY is block (default), shed-oldest, shed-newest, or "
            "degrade.  Example: --queue-limit 64:shed-oldest"
        ),
    )
    parent.add_argument(
        "--degrade",
        action="store_true",
        help=(
            "enable SLO-driven graceful degradation (quality ladder: "
            "frame-rate thinning, then reduced resolution)"
        ),
    )
    return parent


def _metrics_parent() -> argparse.ArgumentParser:
    """--metrics PATH: registry on, JSONL + Prometheus exposition out."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--metrics",
        metavar="PATH",
        default=None,
        help=(
            "enable the metrics registry and write structured JSONL "
            "(one event per window sample / SLO violation) to PATH, "
            "plus a Prometheus text exposition next to it (.prom); "
            "with several runs, the run name is inserted before the "
            "file extension"
        ),
    )
    return parent


def _audit_parent(*, help_text: str) -> argparse.ArgumentParser:
    """--audit PATH: stream the decision audit log as JSONL."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--audit", metavar="PATH", default=None, help=help_text
    )
    return parent


def _stream_parent() -> argparse.ArgumentParser:
    """--stream PATH / --stall-timeout: the live telemetry bus."""
    parent = argparse.ArgumentParser(add_help=False)
    parent.add_argument(
        "--stream",
        metavar="PATH",
        default=None,
        help=(
            "stream live telemetry (schema-versioned NDJSON snapshots "
            "on the sampler grid, wall-clock progress/ETA checkpoints, "
            "online anomaly records) to PATH during the run; tail it "
            "with 'repro watch PATH'.  With several runs, the run name "
            "is inserted before the file extension"
        ),
    )
    parent.add_argument(
        "--stall-timeout",
        metavar="SECONDS",
        type=float,
        default=None,
        help=(
            "wall-clock seconds without a single event draining before "
            "the stream's watchdog thread dumps a stall diagnostic "
            "record (requires --stream; default: watchdog off)"
        ),
    )
    return parent


def _stream_config(args: argparse.Namespace, *, run_name: Optional[str] = None):
    """Build the StreamConfig requested by ``--stream``.

    Returns ``None`` when streaming is off; ``run_name`` is inserted
    before the file extension (the multi-run naming idiom shared with
    ``--audit`` / ``--trace`` / ``--metrics``).
    """
    if not args.stream:
        return None
    from repro.obs import StreamConfig

    path = Path(args.stream)
    if run_name is not None:
        path = path.with_name(
            f"{path.stem}.{run_name}{path.suffix or '.ndjson'}"
        )
    return StreamConfig(path=path, stall_timeout=args.stall_timeout)


def _check_stream_flags(args: argparse.Namespace) -> bool:
    """Validate the stream flag combination; prints and returns False on error."""
    if args.stall_timeout is not None and not args.stream:
        print("--stall-timeout requires --stream", file=sys.stderr)
        return False
    return True


_SLO_SPEC_HELP = (
    "evaluate a service-level objective and print the violation "
    "report; SPEC is fps=TARGET, latency=SECONDS, or "
    "latency:p99=SECONDS (repeatable)"
)


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduction of 'A Job Scheduling Design for Visualization "
            "Services using GPU Clusters' (CLUSTER 2012)"
        ),
    )
    parser.add_argument(
        "--version",
        action="version",
        version=f"%(prog)s {package_version()}",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sim = sub.add_parser(
        "simulate",
        help="run a scenario under schedulers",
        parents=[
            _scenario_parent(scenario=1, scale=1.0),
            _schedulers_parent(
                default="OURS",
                help_text="comma-separated registry names (or 'all')",
            ),
            _drain_parent(),
            _overload_parent(),
            _metrics_parent(),
            _slo_parent(help_text=_SLO_SPEC_HELP),
            _audit_parent(
                help_text=(
                    "enable the decision audit log and stream every "
                    "placement decision (reason code + candidate "
                    "snapshot) to PATH as JSONL; with several "
                    "schedulers, the scheduler name is inserted before "
                    "the file extension"
                )
            ),
            _stream_parent(),
        ],
    )
    sim.add_argument(
        "--per-action",
        action="store_true",
        help="also print per-action delivered framerates",
    )
    sim.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record a Chrome trace-event JSON of the run (open in "
            "Perfetto / chrome://tracing); with several schedulers, the "
            "scheduler name is inserted before the file extension"
        ),
    )
    sim.add_argument(
        "--profile",
        action="store_true",
        help="print the per-node io/render/composite/idle breakdown",
    )

    fed = sub.add_parser(
        "federate",
        help="shard a scenario across N simulators behind a user router",
        parents=[
            _scenario_parent(scenario=4, scale=1.0),
            _scheduler_parent(),
            _drain_parent(),
            _overload_parent(),
            _metrics_parent(),
            _slo_parent(help_text=_SLO_SPEC_HELP),
            _stream_parent(),
        ],
    )
    fed.add_argument(
        "--shards",
        type=int,
        default=2,
        help="independent head-node shards to run (default 2)",
    )
    fed.add_argument(
        "--router",
        choices=["hash", "locality"],
        default="locality",
        help=(
            "user->shard placement: 'hash' (consistent-hash ring) or "
            "'locality' (dataset-residency-aware; default)"
        ),
    )
    fed.add_argument(
        "--replication",
        choices=["auto", "mirror", "partition"],
        default="auto",
        help=(
            "dataset homing across shards: 'mirror' (every shard "
            "warms everything), 'partition' (demand-balanced split), "
            "or 'auto' (partition for the locality router, mirror for "
            "hash; default)"
        ),
    )
    fed.add_argument(
        "--users",
        type=int,
        default=None,
        help=(
            "user-population multiplier applied to the scenario "
            "(default: the shard count, so each shard sees about one "
            "Table II load after routing)"
        ),
    )
    fed.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "process-pool width for running shards concurrently "
            "(default 1 = serial; results are bit-identical either way)"
        ),
    )
    fed.add_argument(
        "--frontend-scope",
        choices=["shard", "global"],
        default="shard",
        help=(
            "how the overload caps apply: per shard as written, or as "
            "fleet totals divided across shards (default shard)"
        ),
    )
    fed.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="also write the self-contained federation HTML report",
    )

    sub.add_parser(
        "explain",
        help="diff two schedulers' decisions and phase attribution",
        parents=[
            _scenario_parent(scenario=2, scale=0.1),
            _schedulers_parent(
                default="OURS,FCFS",
                help_text=(
                    "exactly two comma-separated registry names "
                    "(default OURS,FCFS)"
                ),
            ),
            _drain_parent(),
            _stream_parent(),
        ],
    )

    rep = sub.add_parser(
        "report",
        help="render a self-contained HTML run report (Gantt + heatmaps)",
        parents=[
            _scenario_parent(scenario=2, scale=0.1),
            _schedulers_parent(
                default="OURS,FCFS",
                help_text=(
                    "one registry name for a single-run report, or two "
                    "comma-separated names for the side-by-side A/B "
                    "comparison with first divergence marked "
                    "(default OURS,FCFS)"
                ),
            ),
            _drain_parent(),
            _slo_parent(
                window=False,
                help_text=(
                    "SLO whose violation windows are overlaid "
                    "(fps=TARGET, latency=SECONDS, latency:p99=SECONDS; "
                    "repeatable); default: fps at the scenario's target "
                    "framerate"
                ),
            ),
            _plan_parent(
                help_text=(
                    "optional fault plan to inject (same syntax as "
                    "'repro faults --plan'); onset/detection/recovery "
                    "markers are drawn on the timeline"
                )
            ),
            _stream_parent(),
        ],
    )
    rep.add_argument(
        "--out",
        metavar="PATH",
        default="run.html",
        help="output HTML file (default run.html)",
    )
    rep.add_argument(
        "--svg",
        metavar="PATH",
        default=None,
        help=(
            "also write each run's standalone timeline SVG; with two "
            "schedulers the name is inserted before the extension"
        ),
    )
    rep.add_argument(
        "--bins",
        type=int,
        default=60,
        help="time bins of the cache-residency heatmap (default 60)",
    )

    flt = sub.add_parser(
        "faults",
        help="inject faults, report self-healing + root-cause analysis",
        parents=[
            _scenario_parent(scenario=1, scale=0.5),
            _scheduler_parent(),
            _plan_parent(
                help_text=(
                    "fault plan: semicolon-separated "
                    "kind@time[:key=value,...] events; kinds crash "
                    "(node=, revive=), straggler (node=, render=, io=, "
                    "until=), wipe (node=, dataset=), storage "
                    "(latency=, bw=, until=).  Example: "
                    "'crash@10:node=3,revive=20;"
                    "storage@6:latency=5,until=12'"
                )
            ),
            _slo_parent(
                help_text=(
                    "SLO to evaluate (fps=TARGET, latency=SECONDS, or "
                    "latency:p99=SECONDS; repeatable); default: fps at "
                    "the scenario's target framerate"
                )
            ),
            _audit_parent(
                help_text="also stream the decision audit log (JSONL) to PATH"
            ),
            _stream_parent(),
        ],
    )
    flt.add_argument(
        "--storm",
        metavar="SEED",
        type=int,
        default=None,
        help=(
            "seeded reproducible fault storm (one crash+revival, one "
            "straggler, one cache wipe, one storage window) instead of "
            "--plan; default when neither flag is given: --storm 11"
        ),
    )
    flt.add_argument(
        "--no-heal",
        action="store_true",
        help=(
            "vanilla injection: no detection, no recovery (crashes use "
            "the legacy instantly-aware §VI-D path)"
        ),
    )
    flt.add_argument(
        "--rca-tolerance",
        type=float,
        default=2.0,
        help=(
            "onset-time tolerance in simulated seconds when grading "
            "RCA verdicts against the injected plan (default 2.0)"
        ),
    )
    flt.add_argument(
        "--report",
        metavar="PATH",
        default=None,
        help=(
            "write the full machine-readable report (plan, detections, "
            "recovery actions, SLO compliance, RCA verdicts + score) "
            "as JSON to PATH"
        ),
    )

    wat = sub.add_parser(
        "watch",
        help="tail a live telemetry stream as a terminal status table",
    )
    wat.add_argument(
        "path",
        metavar="STREAM",
        help="NDJSON stream file written by --stream (may still be growing)",
    )
    wat.add_argument(
        "--once",
        action="store_true",
        help="print the records present now and exit instead of tailing",
    )
    wat.add_argument(
        "--poll",
        type=float,
        default=0.25,
        help="seconds between file polls while tailing (default 0.25)",
    )
    wat.add_argument(
        "--idle-timeout",
        type=float,
        default=30.0,
        help=(
            "give up after this many wall seconds without a new record; "
            "the tail always exits as soon as the closing summary "
            "record appears (default 30)"
        ),
    )

    ren = sub.add_parser("render", help="sort-last render a dataset to PPM")
    ren.add_argument("--dataset", choices=DATASET_NAMES, default="supernova")
    ren.add_argument("--size", type=int, default=48)
    ren.add_argument("--image", type=int, default=160)
    ren.add_argument("--ranks", type=int, default=4)
    ren.add_argument(
        "--algorithm",
        choices=["serial-gather", "direct-send", "binary-swap", "2-3-swap"],
        default="2-3-swap",
    )
    ren.add_argument("--tf", choices=sorted(_TFS), default="cool_warm")
    ren.add_argument("--step", type=float, default=0.6)
    ren.add_argument("--shaded", action="store_true", help="Blinn-Phong shading")
    ren.add_argument("--out", default=None, help="output PPM path")

    ani = sub.add_parser("animate", help="render an orbit animation to PPMs")
    ani.add_argument("--dataset", choices=DATASET_NAMES, default="supernova")
    ani.add_argument("--frames", type=int, default=8)
    ani.add_argument("--size", type=int, default=32)
    ani.add_argument("--image", type=int, default=96)
    ani.add_argument("--ranks", type=int, default=4)
    ani.add_argument("--out", default="animation", help="output directory")

    sub.add_parser("schedulers", help="list scheduling policies")
    sub.add_parser("scenarios", help="describe the Table II scenarios")
    return parser


def _parse_frontend(args: argparse.Namespace):
    """Build the FrontendConfig requested by the overload flags.

    Returns ``None`` when none of ``--admission`` / ``--queue-limit`` /
    ``--degrade`` were given (the run is then bit-identical to a
    frontend-free simulation); raises ``ValueError`` on a bad spec.
    """
    if not (args.admission or args.queue_limit or args.degrade):
        return None
    from repro.frontend import (
        AdmissionConfig,
        BackpressureConfig,
        DegradeConfig,
        FrontendConfig,
    )

    admission = None
    if args.admission:
        fields = {}
        for part in args.admission.split(","):
            key, sep, value = part.partition("=")
            if not sep:
                raise ValueError(
                    f"bad --admission part {part!r}; expected key=value"
                )
            fields[key.strip()] = float(value)
        unknown = set(fields) - {"sessions", "rate", "burst"}
        if unknown:
            raise ValueError(
                f"unknown --admission key(s): {', '.join(sorted(unknown))}"
            )
        admission = AdmissionConfig(
            rate=fields.get("rate"),
            burst=fields.get("burst"),
            max_sessions=(
                int(fields["sessions"]) if "sessions" in fields else None
            ),
        )
    backpressure = None
    if args.queue_limit:
        limit_text, _, policy = args.queue_limit.partition(":")
        try:
            limit = int(limit_text)
        except ValueError:
            raise ValueError(
                f"bad --queue-limit {args.queue_limit!r}; expected N[:POLICY]"
            ) from None
        backpressure = BackpressureConfig(
            queue_limit=limit, policy=policy or "block"
        )
    degrade = DegradeConfig() if args.degrade else None
    return FrontendConfig(
        admission=admission, backpressure=backpressure, degrade=degrade
    )


def cmd_simulate(args: argparse.Namespace) -> int:
    """Run a scenario under the requested schedulers; print comparison."""
    names: List[str]
    if args.schedulers.strip().lower() == "all":
        names = list(SCHEDULER_NAMES)
    else:
        names = [n.strip().upper() for n in args.schedulers.split(",") if n.strip()]
    unknown = [n for n in names if n not in SCHEDULER_NAMES]
    if unknown:
        print(
            f"unknown scheduler(s): {', '.join(unknown)}; "
            f"valid: {', '.join(SCHEDULER_NAMES)}",
            file=sys.stderr,
        )
        return 2
    objectives = []
    if args.slo:
        from repro.obs import SLObjective

        try:
            objectives = [
                SLObjective.parse(spec, window=args.slo_window)
                for spec in args.slo
            ]
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    try:
        frontend = _parse_frontend(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not _check_stream_flags(args):
        return 2
    try:
        scenario = make_scenario(
            args.scenario, scale=args.scale, seed=args.seed, load=args.load
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(scenario.summary())
    results = []
    trace_paths = []
    metrics_paths = []
    audit_paths = []
    slo_reports = {name: [] for name in names}
    for name in names:
        tracer = None
        if args.trace:
            from repro.obs import Tracer

            tracer = Tracer()
        audit_cfg = False
        if args.audit:
            from repro.obs import AuditConfig

            audit_path = Path(args.audit)
            if len(names) > 1:
                audit_path = audit_path.with_name(
                    f"{audit_path.stem}.{name}{audit_path.suffix or '.jsonl'}"
                )
            audit_cfg = AuditConfig(jsonl_path=audit_path)
            audit_paths.append(audit_path)
        results.append(
            run_simulation(
                scenario,
                name,
                config=RunConfig(
                    drain=args.drain,
                    tracer=tracer,
                    metrics=bool(args.metrics),
                    frontend=frontend,
                    audit=audit_cfg,
                    stream=_stream_config(
                        args, run_name=name if len(names) > 1 else None
                    ),
                ),
            )
        )
        if objectives:
            from repro.obs import SLOMonitor

            slo_reports[name] = SLOMonitor(objectives).evaluate(results[-1])
        if args.metrics:
            path = Path(args.metrics)
            if len(names) > 1:
                path = path.with_name(f"{path.stem}.{name}{path.suffix or '.jsonl'}")
            run_metrics = results[-1].metrics
            run_metrics.write_jsonl(path, slo_reports=slo_reports[name])
            run_metrics.write_prometheus(path.with_suffix(".prom"))
            metrics_paths.append(path)
        if tracer is not None:
            from repro.obs import write_chrome_trace

            path = Path(args.trace)
            if len(names) > 1:
                path = path.with_name(f"{path.stem}.{name}{path.suffix or '.json'}")
            write_chrome_trace(
                path,
                tracer,
                metadata={
                    "scenario": scenario.name,
                    "scheduler": name,
                    "scale": args.scale,
                },
            )
            trace_paths.append(path)
    print(
        comparison_table(
            [r.summary() for r in results],
            target_fps=scenario.target_framerate,
        )
    )
    for result in results:
        print(
            f"{result.scheduler_name}: completed "
            f"{result.jobs_completed}/{result.jobs_submitted} jobs, "
            f"utilization {result.mean_node_utilization:.1%}"
        )
        print(
            f"    {result.events_processed:,} events in "
            f"{result.wall_seconds:.2f}s wall "
            f"({result.events_per_sec:,.0f} events/s)"
        )
        if result.frontend is not None:
            print(f"    {result.frontend.summary()}")
        if result.audit is not None:
            print(f"    audit: {result.audit.summary()}")
        if result.stream is not None:
            s = result.stream
            print(
                f"    stream: {s.snapshots} snapshots, "
                f"{len(s.anomalies)} anomalies, {s.stalls} stalls "
                f"-> {s.path}"
            )
        if args.per_action:
            for action, fps in sorted(result.delivered_framerates().items()):
                print(f"    action {action:>6}: {fps:7.2f} fps")
        if args.profile:
            print(result.profile_table(title=f"\n[{result.scheduler_name}] per-node time breakdown"))
    if objectives:
        from repro.obs import slo_table

        for index, objective in enumerate(objectives):
            rows = [slo_reports[name][index] for name in names]
            print()
            print(slo_table(rows, title="SLO report"))
    for path in metrics_paths:
        print(f"metrics written to {path} (+ {path.with_suffix('.prom').name})")
    for path in trace_paths:
        print(f"trace written to {path}")
    for path in audit_paths:
        print(f"audit log written to {path}")
    return 0


def cmd_federate(args: argparse.Namespace) -> int:
    """Shard one scenario across N simulators; print the merged report."""
    from repro.federation import FederationConfig, run_federation
    from repro.obs import SLObjective, slo_table

    name = args.scheduler.strip().upper()
    if name not in SCHEDULER_NAMES:
        print(
            f"unknown scheduler: {name}; valid: {', '.join(SCHEDULER_NAMES)}",
            file=sys.stderr,
        )
        return 2
    try:
        frontend = _parse_frontend(args)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not _check_stream_flags(args):
        return 2
    users = args.users if args.users is not None else args.shards
    try:
        config = FederationConfig(
            shards=args.shards,
            router=args.router,
            replication=args.replication,
            run=RunConfig(
                drain=args.drain,
                metrics=bool(args.metrics),
                frontend=frontend,
                stream=_stream_config(args),
            ),
            workers=args.workers,
            frontend_scope=args.frontend_scope,
        )
        scenario = make_scenario(
            args.scenario,
            scale=args.scale,
            seed=args.seed,
            load=args.load,
            users=users,
        )
        objectives = [
            SLObjective.parse(spec, window=args.slo_window)
            for spec in (args.slo or [f"fps={scenario.target_framerate:g}"])
        ]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(scenario.summary())
    print(
        f"federation: {config.shards} shard(s), router={config.router}, "
        f"replication={config.resolved_replication}, users x{users}, "
        f"workers={config.workers}"
    )
    print()
    result = run_federation(scenario, name, config)
    print(result.shard_table())
    merged_frontend = result.frontend
    if merged_frontend is not None:
        print(f"    {merged_frontend.summary()}")
    print()
    print(slo_table(result.evaluate_slos(objectives), title="SLO report (merged)"))
    if args.stream:
        for stream_report in result.stream_reports():
            print(
                f"stream written to {stream_report.path} "
                f"({stream_report.snapshots} snapshots, "
                f"{len(stream_report.anomalies)} anomalies, "
                f"{stream_report.stalls} stalls)"
            )
        merged_anomalies = result.merged_anomalies()
        if merged_anomalies:
            from collections import Counter as _Counter

            kinds = _Counter(a.kind for a in merged_anomalies)
            mix = ", ".join(
                f"{kind}={count}" for kind, count in sorted(kinds.items())
            )
            print(
                f"merged anomalies across shards: "
                f"{len(merged_anomalies)} ({mix})"
            )
    if args.metrics:
        base = Path(args.metrics)
        for index, shard_result in enumerate(result.shard_results):
            path = base.with_name(
                f"{base.stem}.shard{index}{base.suffix or '.jsonl'}"
            )
            run_metrics = shard_result.metrics
            run_metrics.write_jsonl(path)
            run_metrics.write_prometheus(path.with_suffix(".prom"))
            print(
                f"metrics written to {path} "
                f"(+ {path.with_suffix('.prom').name})"
            )
    if args.out:
        from repro.obs import render_federation_html, write_report

        page = render_federation_html(result, version=package_version())
        write_report(args.out, page)
        print(f"wrote {args.out}")
    return 0


def cmd_explain(args: argparse.Namespace) -> int:
    """Diff two schedulers' decisions + phase attribution on one scenario."""
    from repro.obs import AuditConfig, first_divergence, phase_delta_table

    names = [n.strip().upper() for n in args.schedulers.split(",") if n.strip()]
    if len(names) != 2:
        print(
            f"explain needs exactly two schedulers, got {len(names)}",
            file=sys.stderr,
        )
        return 2
    unknown = [n for n in names if n not in SCHEDULER_NAMES]
    if unknown:
        print(
            f"unknown scheduler(s): {', '.join(unknown)}; "
            f"valid: {', '.join(SCHEDULER_NAMES)}",
            file=sys.stderr,
        )
        return 2
    try:
        scenario = make_scenario(
            args.scenario, scale=args.scale, seed=args.seed, load=args.load
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    if not _check_stream_flags(args):
        return 2
    print(scenario.summary())
    # The divergence diff needs the full decision stream, not a ring
    # window — run with unbounded capacity.
    results = [
        run_simulation(
            scenario,
            name,
            config=RunConfig(
                drain=args.drain,
                audit=AuditConfig(capacity=None),
                stream=_stream_config(args, run_name=name),
            ),
        )
        for name in names
    ]
    for result in results:
        audit = result.audit
        reasons = ", ".join(
            f"{k}={v}" for k, v in sorted(audit.reason_counts().items())
        )
        print(
            f"{result.scheduler_name}: {audit.total_recorded} decisions "
            f"({reasons}); mean latency "
            f"{result.critical_paths.mean_latency * 1e3:.2f} ms"
        )
    a, b = results
    divergence = first_divergence(list(a.audit), list(b.audit))
    print()
    if divergence is None:
        print("no divergent decision: both runs placed every task identically")
    else:
        rec_a, rec_b = divergence.a, divergence.b
        print(
            f"first divergent decision (#{divergence.index} in "
            f"{a.scheduler_name}'s stream):"
        )
        print(
            f"  task user={rec_a.user} action={rec_a.action} "
            f"seq={rec_a.sequence} chunk={rec_a.dataset}[{rec_a.chunk_index}]"
        )
        print(
            f"  {a.scheduler_name}: node {rec_a.node} ({rec_a.reason}) "
            f"at t={rec_a.time:.6f}s"
        )
        print(
            f"  {b.scheduler_name}: node {rec_b.node} ({rec_b.reason}) "
            f"at t={rec_b.time:.6f}s"
        )
    print()
    print("critical-path latency attribution:")
    print(
        phase_delta_table(
            a.critical_paths,
            b.critical_paths,
            a.scheduler_name,
            b.scheduler_name,
        )
    )
    shares_a = a.critical_paths.phase_shares()
    shares_b = b.critical_paths.phase_shares()
    if (
        shares_a["io"] < shares_b["io"]
        and shares_a["render"] > shares_b["render"]
    ):
        print(
            f"\n{a.scheduler_name} spends a smaller share of its critical "
            f"paths on I/O and a larger share rendering than "
            f"{b.scheduler_name} — locality converts I/O time into render "
            f"time (the paper's Table III effect)."
        )
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    """Render the self-contained HTML run report (optionally A/B)."""
    from repro.obs import (
        AuditConfig,
        SLObjective,
        SLOMonitor,
        Tracer,
        first_divergence,
        render_report_html,
        render_timeline_svg,
        write_report,
    )

    names = [n.strip().upper() for n in args.schedulers.split(",") if n.strip()]
    if not 1 <= len(names) <= 2:
        print(
            f"report takes one or two schedulers, got {len(names)}",
            file=sys.stderr,
        )
        return 2
    unknown = [n for n in names if n not in SCHEDULER_NAMES]
    if unknown:
        print(
            f"unknown scheduler(s): {', '.join(unknown)}; "
            f"valid: {', '.join(SCHEDULER_NAMES)}",
            file=sys.stderr,
        )
        return 2
    if args.bins < 1:
        print(f"--bins must be >= 1, got {args.bins}", file=sys.stderr)
        return 2
    if not _check_stream_flags(args):
        return 2
    plan = None
    if args.plan is not None:
        from repro.faults import FaultPlan

        try:
            plan = FaultPlan.parse(args.plan, heal=True)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
    models = []
    results = []
    for name in names:
        try:
            scenario = make_scenario(
                args.scenario, scale=args.scale, seed=args.seed, load=args.load
            )
            objectives = [
                SLObjective.parse(spec)
                for spec in (
                    args.slo or [f"fps={scenario.target_framerate:g}"]
                )
            ]
            config = RunConfig(
                drain=args.drain,
                tracer=Tracer(),
                audit=AuditConfig(capacity=None),
                faults=plan,
                stream=_stream_config(
                    args, run_name=name if len(names) > 1 else None
                ),
            )
            result = run_simulation(scenario, name, config=config)
        except ValueError as exc:
            print(str(exc), file=sys.stderr)
            return 2
        slo_reports = SLOMonitor(objectives).evaluate(result)
        results.append(result)
        models.append(result.timeline(slo_reports=slo_reports))
    divergence = None
    if len(results) == 2:
        divergence = first_divergence(
            list(results[0].audit), list(results[1].audit)
        )
    page = render_report_html(
        models,
        divergence=divergence,
        version=package_version(),
        bins=args.bins,
    )
    write_report(args.out, page)
    print(f"wrote {args.out}")
    for result in results:
        if result.stream is not None:
            print(f"stream written to {result.stream.path}")
    if args.svg is not None:
        div_time = divergence.a.time if divergence is not None else None
        for model in models:
            path = Path(args.svg)
            if len(models) > 1:
                path = path.with_name(
                    f"{path.stem}.{model.scheduler}{path.suffix or '.svg'}"
                )
            write_report(
                str(path),
                render_timeline_svg(
                    model, bins=args.bins, divergence_time=div_time
                ),
            )
            print(f"wrote {path}")
    return 0


def cmd_faults(args: argparse.Namespace) -> int:
    """Inject a fault plan, print detection/recovery/RCA reports."""
    import json

    from repro.faults import FaultPlan, analyze, score
    from repro.obs import AuditConfig, SLObjective, SLOMonitor, slo_table

    name = args.scheduler.strip().upper()
    if name not in SCHEDULER_NAMES:
        print(
            f"unknown scheduler: {name}; valid: {', '.join(SCHEDULER_NAMES)}",
            file=sys.stderr,
        )
        return 2
    if args.plan is not None and args.storm is not None:
        print("pass either --plan or --storm, not both", file=sys.stderr)
        return 2
    if not _check_stream_flags(args):
        return 2
    try:
        scenario = make_scenario(
            args.scenario, scale=args.scale, seed=args.seed, load=args.load
        )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    heal = not args.no_heal
    try:
        if args.plan is not None:
            plan = FaultPlan.parse(args.plan, heal=heal)
        else:
            plan = FaultPlan.storm(
                args.storm if args.storm is not None else 11,
                node_count=scenario.system.node_count,
                duration=scenario.trace.duration,
                heal=heal,
            )
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    try:
        objectives = [
            SLObjective.parse(spec, window=args.slo_window)
            for spec in (
                args.slo or [f"fps={scenario.target_framerate:g}"]
            )
        ]
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    print(scenario.summary())
    print(plan.describe())
    print()
    # RCA wants the complete decision stream, not a ring window.
    audit_cfg = AuditConfig(
        capacity=None,
        jsonl_path=Path(args.audit) if args.audit else None,
    )
    config = RunConfig(
        drain=True,
        audit=audit_cfg,
        faults=plan,
        stream=_stream_config(args),
    )
    try:
        result = run_simulation(scenario, name, config=config)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    report = result.fault_report
    print(f"{name}: {report.summary()}")
    print(
        f"    completed {result.jobs_completed}/{result.jobs_submitted} "
        f"jobs, hit rate {result.hit_rate:.1%}, "
        f"fps {result.interactive_fps:.2f}"
    )
    for detection in report.detections:
        latency = (
            f" ({detection.latency * 1e3:.0f} ms after injection)"
            if detection.latency is not None
            else ""
        )
        print(
            f"    detected {detection.kind} on node {detection.node} "
            f"at t={detection.time:.3f}s{latency}"
        )
    for action in report.actions:
        count = f" ({action.count} tasks)" if action.count else ""
        print(
            f"    recovery {action.kind} on node {action.node} "
            f"at t={action.time:.3f}s{count}"
        )
    slo_reports = SLOMonitor(objectives).evaluate(result)
    print()
    print(slo_table(slo_reports, title="SLO report"))
    windows = [w for rep in slo_reports for w in rep.violations]
    rca_report = analyze(
        result.audit,
        result.critical_paths.paths,
        windows,
        node_count=scenario.system.node_count,
    )
    grade = score(rca_report, plan, time_tolerance=args.rca_tolerance)
    print()
    print("root-cause analysis (from audit + critical paths alone):")
    if not rca_report.verdicts:
        print("    no fault localized")
    for verdict in rca_report.verdicts:
        print(f"    {verdict.describe()}")
        for line in verdict.evidence:
            print(f"        - {line}")
    print(
        f"    score vs ground truth: {grade['localized']}/{grade['total']} "
        f"events localized within ±{args.rca_tolerance:g}s "
        f"(recall {grade['recall']:.0%}, "
        f"{grade['false_positives']} false positives)"
    )
    anomaly_grade = None
    if result.stream is not None:
        from repro.obs import score_anomalies

        stream_report = result.stream
        print()
        print(
            f"online anomaly detection "
            f"({stream_report.snapshots} snapshots streamed):"
        )
        if not stream_report.anomalies:
            print("    no anomalies flagged")
        for record in stream_report.anomalies:
            print(f"    {record.describe()}")
        anomaly_grade = score_anomalies(stream_report.anomalies, plan)
        print(
            f"    score vs ground truth: "
            f"{anomaly_grade['localized']}/{anomaly_grade['total']} "
            f"events localized online "
            f"(recall {anomaly_grade['recall']:.0%}, "
            f"{anomaly_grade['false_positives']} false positives)"
        )
        print(f"stream written to {stream_report.path}")
    if args.audit:
        print(f"audit log written to {args.audit}")
    if args.report:
        payload = {
            "scenario": scenario.name,
            "scheduler": name,
            "plan": plan.describe(),
            "self_healing": plan.self_healing,
            "fault_report": report.to_dict(),
            "slo": [
                {
                    "objective": rep.objective.describe(),
                    "compliant_fraction": rep.compliant_fraction,
                    "violations": len(rep.violations),
                }
                for rep in slo_reports
            ],
            "rca": rca_report.to_dict(),
            "score": grade,
        }
        if result.stream is not None:
            payload["anomalies"] = [
                record.to_dict() for record in result.stream.anomalies
            ]
            payload["anomaly_score"] = anomaly_grade
        path = Path(args.report)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"report written to {path}")
    return 0


_WATCH_HEADER = (
    f"{'t':>9} {'prog':>5} {'queue':>5} {'outst':>5} {'infl':>5} "
    f"{'done':>7} {'fps':>7} {'p95 ms':>7} {'hit%':>5} {'burn':>6}"
)


def _watch_row(snapshot: dict, horizon: Optional[float]) -> str:
    """One status-table row for a ``snapshot`` stream record."""
    progress = ""
    if horizon:
        progress = f"{min(snapshot['t'] / horizon, 1.0):4.0%}"
    return (
        f"{snapshot['t']:9.2f} {progress:>5} {snapshot['queue']:5d} "
        f"{snapshot['outstanding']:5d} {snapshot['inflight']:5d} "
        f"{snapshot['completed']:7d} {snapshot['fps']:7.1f} "
        f"{snapshot['latency_p95'] * 1e3:7.1f} "
        f"{snapshot['hit_rate'] * 100:5.1f} {snapshot['burn']:6.2f}"
    )


def cmd_watch(args: argparse.Namespace) -> int:
    """Tail a telemetry stream file into a live terminal status table."""
    from repro.obs import follow_stream, iter_jsonl

    if args.poll <= 0:
        print(f"--poll must be > 0, got {args.poll:g}", file=sys.stderr)
        return 2
    if args.idle_timeout <= 0:
        print(
            f"--idle-timeout must be > 0, got {args.idle_timeout:g}",
            file=sys.stderr,
        )
        return 2
    path = Path(args.path)
    if args.once:
        if not path.exists():
            print(f"no stream file at {path}", file=sys.stderr)
            return 2
        records = iter_jsonl(path)
    else:
        records = follow_stream(
            path, poll=args.poll, idle_timeout=args.idle_timeout
        )
    horizon: Optional[float] = None
    rows = 0
    finished = False
    for record in records:
        kind = record.get("type")
        if kind == "run":
            horizon = record.get("horizon")
            horizon_text = (
                "drain" if horizon is None else f"{horizon:g}s"
            )
            print(
                f"stream: scenario {record.get('scenario')} / "
                f"{record.get('scheduler')} — horizon {horizon_text}, "
                f"grid {record.get('interval'):g}s "
                f"(schema {record.get('schema')}, "
                f"shard ns {record.get('shard')})"
            )
        elif kind == "fault":
            until = record.get("until")
            window = f" until t={until:g}s" if until is not None else ""
            print(
                f"fault planned: {record['kind']} on node "
                f"{record['node']} at t={record['time']:g}s{window}"
            )
        elif kind == "snapshot":
            if rows % 20 == 0:
                print(_WATCH_HEADER)
            rows += 1
            print(_watch_row(record, horizon))
        elif kind == "wall":
            eta = record.get("eta_s")
            eta_text = f", ETA {eta:.0f}s" if eta is not None else ""
            print(
                f"wall {record['wall_s']:.1f}s: "
                f"{record['events']:,} events "
                f"({record['events_per_sec']:,.0f}/s){eta_text}"
            )
        elif kind == "anomaly":
            print(
                f"!! {record['kind']} at t={record['time']:.3f}s "
                f"({record['detector']}, score {record['score']:.1f}, "
                f"value {record['value']:.4g} "
                f"vs baseline {record['baseline']:.4g})"
            )
        elif kind == "stall":
            print(
                f"** stall: no events for "
                f"{record['stalled_wall_s']:.1f}s wall at sim "
                f"t={record['sim_time']:.2f}s — queue_len="
                f"{record['queue_len']}, next_event="
                f"{record['next_event_time']}, outstanding="
                f"{record['outstanding']}, inflight={record['inflight']}"
            )
        elif kind == "summary":
            finished = True
            print(
                f"run complete: {record['snapshots']} snapshots, "
                f"{record['anomalies']} anomalies, "
                f"{record['stalls']} stalls, "
                f"{record['events']:,} events in "
                f"{record['wall_s']:.2f}s wall "
                f"(sim t={record['sim_time']:.2f}s)"
            )
    if finished or args.once:
        return 0
    print(
        f"stream at {path} went quiet without a summary record "
        f"(idle for {args.idle_timeout:g}s)",
        file=sys.stderr,
    )
    return 1


def cmd_render(args: argparse.Namespace) -> int:
    """Sort-last render a synthetic dataset to a PPM image."""
    volume = make_volume(args.dataset, (args.size, args.size, args.size))
    camera = default_camera_for(
        volume.shape, width=args.image, height=args.image
    )
    tf = _TFS[args.tf]()
    lighting = None
    if args.shaded:
        from repro.render.shading import Lighting

        lighting = Lighting()
    result = render_sort_last(
        volume,
        camera,
        tf,
        ranks=args.ranks,
        algorithm=args.algorithm,
        step=args.step,
        lighting=lighting,
    )
    out = args.out or f"{args.dataset}.ppm"
    path = write_ppm(out, result.image, background=0.08)
    comp = result.compositing
    print(
        f"wrote {path} ({args.image}x{args.image}) — {result.ranks} ranks, "
        f"{comp.algorithm}: {comp.messages} messages, "
        f"{comp.bytes_sent / 2**20:.2f} MiB, {comp.stages} stages"
    )
    return 0


def cmd_animate(args: argparse.Namespace) -> int:
    """Render an orbit animation of a synthetic dataset to PPM frames."""
    from repro.render.animation import OrbitPath, render_animation
    from repro.render.shading import Lighting

    volume = make_volume(args.dataset, (args.size, args.size, args.size))
    result = render_animation(
        volume,
        OrbitPath(frames=args.frames, elevation_swing=8.0),
        _TFS["cool_warm"]() if args.dataset == "supernova" else _TFS["fire"](),
        ranks=args.ranks,
        width=args.image,
        height=args.image,
        lighting=Lighting(),
        output_dir=args.out,
    )
    print(
        f"wrote {result.frames} frames to {args.out}/ "
        f"({result.total_samples:,} samples, "
        f"{result.total_bytes / 2**20:.1f} MiB composited)"
    )
    return 0


def cmd_schedulers(_args: argparse.Namespace) -> int:
    """List the registered scheduling policies."""
    from repro.core.registry import make_scheduler

    for name in SCHEDULER_NAMES:
        sched = make_scheduler(name)
        print(f"{name:<8} trigger={sched.trigger.value:<10} {type(sched).__doc__.strip().splitlines()[0]}")
    return 0


def cmd_scenarios(_args: argparse.Namespace) -> int:
    """Describe the Table II scenarios."""
    for number in sorted(SCENARIO_FACTORIES):
        scenario = make_scenario(number, scale=0.01)
        print(f"[{number}] {scenario.system.name} x{scenario.system.node_count}: "
              f"{scenario.description}")
    return 0


_COMMANDS = {
    "simulate": cmd_simulate,
    "federate": cmd_federate,
    "explain": cmd_explain,
    "report": cmd_report,
    "faults": cmd_faults,
    "watch": cmd_watch,
    "render": cmd_render,
    "animate": cmd_animate,
    "schedulers": cmd_schedulers,
    "scenarios": cmd_scenarios,
}


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())

"""Experiment harness: parameter sweeps and seed replication.

The Fig. 8/9-style studies are parameter sweeps (vary one knob, run the
simulation, tabulate metrics), and rigorous comparisons need
replication over workload seeds.  This module packages both patterns so
benches, examples, and downstream studies don't re-implement the loop.

Both :func:`sweep` and :func:`replicate` accept an opt-in ``workers=N``
to fan the independent runs out over a process pool.  Results are
keyed deterministically — ``(value, scheduler)`` for sweeps, seed order
for replication — so the parallel path returns exactly what the serial
path would (the simulator itself is deterministic).  Parallel execution
requires the scenario factory, schedulers, and the
:class:`~repro.sim.run_config.RunConfig` to be picklable (module-level
functions, registry names, and a frontend-bearing ``RunConfig`` are;
lambdas and closures are not).
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro._compat import warn_deprecated
from repro.core.scheduler_base import Scheduler
from repro.reporting.report import sweep_table
from repro.sim.run_config import RunConfig
from repro.sim.simulator import SimulationResult, _run
from repro.workload.scenarios import Scenario

ScenarioFactory = Callable[..., Scenario]
SchedulerLike = Union[str, Callable[[], Scheduler]]


def _instantiate(scheduler: SchedulerLike) -> Union[str, Scheduler]:
    return scheduler() if callable(scheduler) else scheduler


def _resolve_config(
    config: Optional[RunConfig], run_kwargs: dict, caller: str
) -> RunConfig:
    """Merge the deprecated ``**run_kwargs`` spelling into a RunConfig."""
    if run_kwargs:
        if config is not None:
            raise TypeError(
                f"pass either config=RunConfig(...) or legacy keyword "
                f"arguments to {caller}(), not both"
            )
        warn_deprecated(
            f"passing run options as keyword arguments to {caller}() is "
            f"deprecated; pass config=RunConfig(...) instead",
            stacklevel=3,
        )
        return RunConfig(**run_kwargs)
    return config if config is not None else RunConfig()


def _run_point(
    scenario_factory: Callable,
    point,
    scheduler: SchedulerLike,
    config: RunConfig,
) -> SimulationResult:
    """Worker body for one (sweep point | seed) × scheduler run.

    Module-level so it is picklable for :class:`ProcessPoolExecutor`;
    detaches the timeline sampler's service reference (a cycle through
    the whole cluster) before the result crosses the process boundary.
    """
    result = _run(scenario_factory(point), _instantiate(scheduler), config)
    if result.timeline_samples is not None:
        result.timeline_samples._service = None
    return result


def _run_grid(
    scenario_factory: Callable,
    points: Sequence,
    schedulers: Sequence[SchedulerLike],
    workers: Optional[int],
    config: RunConfig,
) -> List[SimulationResult]:
    """Run every (point, scheduler) pair, serially or on a process pool.

    Results come back in grid order (points outer, schedulers inner)
    either way, so callers key them identically on both paths.
    """
    pairs = [(point, sched) for point in points for sched in schedulers]
    if workers is not None and workers > 1:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = [
                pool.submit(_run_point, scenario_factory, point, sched, config)
                for point, sched in pairs
            ]
            return [f.result() for f in futures]
    return [
        _run_point(scenario_factory, point, sched, config)
        for point, sched in pairs
    ]


@dataclass
class SweepResult:
    """Results of a one-dimensional parameter sweep."""

    parameter: str
    values: List[float]
    schedulers: List[str]
    results: Dict[tuple, SimulationResult] = field(default_factory=dict)

    def result(self, value: float, scheduler: str) -> SimulationResult:
        """The run at one sweep point."""
        return self.results[(value, scheduler)]

    def series(
        self, metric: Callable[[SimulationResult], float]
    ) -> Dict[str, List[float]]:
        """Extract ``metric`` per scheduler across the sweep."""
        return {
            s: [metric(self.results[(v, s)]) for v in self.values]
            for s in self.schedulers
        }

    def table(
        self,
        metric: Callable[[SimulationResult], float],
        *,
        title: str = "",
        fmt: str = "{:>12.2f}",
    ) -> str:
        """Render one metric as a Fig. 8/9-style text table."""
        return sweep_table(
            self.parameter, self.values, self.series(metric), title=title, fmt=fmt
        )


def sweep(
    parameter: str,
    values: Sequence[float],
    scenario_factory: Callable[[float], Scenario],
    schedulers: Sequence[SchedulerLike],
    *,
    workers: Optional[int] = None,
    config: Optional[RunConfig] = None,
    **run_kwargs,
) -> SweepResult:
    """Run ``scenario_factory(value)`` under each scheduler per value.

    Args:
        parameter: Display name of the swept knob.
        values: Sweep points (passed to the factory).
        scenario_factory: Builds the scenario for one sweep point.
        schedulers: Registry names or zero-arg factories.
        workers: Fan the independent runs out over a process pool of
            this size (``None``/``1`` = serial).  Requires picklable
            factory/schedulers/config; results are identical to the
            serial path.
        config: :class:`~repro.sim.run_config.RunConfig` applied to
            every run of the sweep (``None`` = all defaults).
        **run_kwargs: Deprecated — ``RunConfig`` fields as direct
            keyword arguments; emits a :class:`DeprecationWarning`.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    if not schedulers:
        raise ValueError("sweep needs at least one scheduler")
    run_config = _resolve_config(config, run_kwargs, "sweep")
    out = SweepResult(parameter=parameter, values=list(values), schedulers=[])
    names: List[str] = []
    grid = _run_grid(scenario_factory, values, schedulers, workers, run_config)
    index = 0
    for value in values:
        for _scheduler in schedulers:
            result = grid[index]
            index += 1
            out.results[(value, result.scheduler_name)] = result
            if result.scheduler_name not in names:
                names.append(result.scheduler_name)
    out.schedulers = names
    return out


@dataclass(frozen=True)
class MetricStats:
    """Mean and sample standard deviation of one metric across seeds."""

    mean: float
    std: float
    values: tuple

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricStats":
        n = len(values)
        if n == 0:
            return cls(mean=0.0, std=0.0, values=())
        mean = sum(values) / n
        if n == 1:
            return cls(mean=mean, std=0.0, values=tuple(values))
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        return cls(mean=mean, std=math.sqrt(var), values=tuple(values))

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={len(self.values)})"


@dataclass
class ReplicationResult:
    """Seed-replicated metrics for one scheduler."""

    scheduler: str
    seeds: List[int]
    results: List[SimulationResult]

    def stat(self, metric: Callable[[SimulationResult], float]) -> MetricStats:
        """Aggregate ``metric`` across the replicas."""
        return MetricStats.of([metric(r) for r in self.results])

    @property
    def fps(self) -> MetricStats:
        """Delivered interactive framerate across seeds."""
        return self.stat(lambda r: r.interactive_fps)

    @property
    def interactive_latency(self) -> MetricStats:
        """Mean interactive latency across seeds."""
        return self.stat(lambda r: r.interactive_latency.mean)

    @property
    def hit_rate(self) -> MetricStats:
        """Executed-task hit rate across seeds."""
        return self.stat(lambda r: r.hit_rate)


def replicate(
    scenario_factory: Callable[[int], Scenario],
    scheduler: SchedulerLike,
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    config: Optional[RunConfig] = None,
    **run_kwargs,
) -> ReplicationResult:
    """Run ``scenario_factory(seed)`` once per seed under one scheduler.

    Quantifies the workload-seed sensitivity that single-trace
    comparisons (the paper's, and this repo's scenario benches) cannot.
    ``workers=N`` runs the seeds on a process pool (results keyed by
    seed order, identical to the serial path).  ``config`` applies one
    :class:`~repro.sim.run_config.RunConfig` to every replica; passing
    ``RunConfig`` fields directly as keyword arguments is deprecated.
    """
    if not seeds:
        raise ValueError("replicate needs at least one seed")
    run_config = _resolve_config(config, run_kwargs, "replicate")
    results = _run_grid(scenario_factory, seeds, [scheduler], workers, run_config)
    name: Optional[str] = results[-1].scheduler_name if results else None
    return ReplicationResult(
        scheduler=name or "?", seeds=list(seeds), results=results
    )


__all__ = [
    "SweepResult",
    "sweep",
    "MetricStats",
    "ReplicationResult",
    "replicate",
]

"""Experiment harness: parameter sweeps and seed replication.

The Fig. 8/9-style studies are parameter sweeps (vary one knob, run the
simulation, tabulate metrics), and rigorous comparisons need
replication over workload seeds.  This module packages both patterns so
benches, examples, and downstream studies don't re-implement the loop.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Union

from repro.core.scheduler_base import Scheduler
from repro.metrics.report import sweep_table
from repro.sim.simulator import SimulationResult, run_simulation
from repro.workload.scenarios import Scenario

ScenarioFactory = Callable[..., Scenario]
SchedulerLike = Union[str, Callable[[], Scheduler]]


def _instantiate(scheduler: SchedulerLike) -> Union[str, Scheduler]:
    return scheduler() if callable(scheduler) else scheduler


@dataclass
class SweepResult:
    """Results of a one-dimensional parameter sweep."""

    parameter: str
    values: List[float]
    schedulers: List[str]
    results: Dict[tuple, SimulationResult] = field(default_factory=dict)

    def result(self, value: float, scheduler: str) -> SimulationResult:
        """The run at one sweep point."""
        return self.results[(value, scheduler)]

    def series(
        self, metric: Callable[[SimulationResult], float]
    ) -> Dict[str, List[float]]:
        """Extract ``metric`` per scheduler across the sweep."""
        return {
            s: [metric(self.results[(v, s)]) for v in self.values]
            for s in self.schedulers
        }

    def table(
        self,
        metric: Callable[[SimulationResult], float],
        *,
        title: str = "",
        fmt: str = "{:>12.2f}",
    ) -> str:
        """Render one metric as a Fig. 8/9-style text table."""
        return sweep_table(
            self.parameter, self.values, self.series(metric), title=title, fmt=fmt
        )


def sweep(
    parameter: str,
    values: Sequence[float],
    scenario_factory: Callable[[float], Scenario],
    schedulers: Sequence[SchedulerLike],
    **run_kwargs,
) -> SweepResult:
    """Run ``scenario_factory(value)`` under each scheduler per value.

    Args:
        parameter: Display name of the swept knob.
        values: Sweep points (passed to the factory).
        scenario_factory: Builds the scenario for one sweep point.
        schedulers: Registry names or zero-arg factories.
        **run_kwargs: Forwarded to :func:`run_simulation`.
    """
    if not values:
        raise ValueError("sweep needs at least one value")
    if not schedulers:
        raise ValueError("sweep needs at least one scheduler")
    out = SweepResult(parameter=parameter, values=list(values), schedulers=[])
    names: List[str] = []
    for value in values:
        scenario = scenario_factory(value)
        for scheduler in schedulers:
            instance = _instantiate(scheduler)
            result = run_simulation(scenario, instance, **run_kwargs)
            out.results[(value, result.scheduler_name)] = result
            if result.scheduler_name not in names:
                names.append(result.scheduler_name)
    out.schedulers = names
    return out


@dataclass(frozen=True)
class MetricStats:
    """Mean and sample standard deviation of one metric across seeds."""

    mean: float
    std: float
    values: tuple

    @classmethod
    def of(cls, values: Sequence[float]) -> "MetricStats":
        n = len(values)
        if n == 0:
            return cls(mean=0.0, std=0.0, values=())
        mean = sum(values) / n
        if n == 1:
            return cls(mean=mean, std=0.0, values=tuple(values))
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
        return cls(mean=mean, std=math.sqrt(var), values=tuple(values))

    def __str__(self) -> str:
        return f"{self.mean:.3f} ± {self.std:.3f} (n={len(self.values)})"


@dataclass
class ReplicationResult:
    """Seed-replicated metrics for one scheduler."""

    scheduler: str
    seeds: List[int]
    results: List[SimulationResult]

    def stat(self, metric: Callable[[SimulationResult], float]) -> MetricStats:
        """Aggregate ``metric`` across the replicas."""
        return MetricStats.of([metric(r) for r in self.results])

    @property
    def fps(self) -> MetricStats:
        """Delivered interactive framerate across seeds."""
        return self.stat(lambda r: r.interactive_fps)

    @property
    def interactive_latency(self) -> MetricStats:
        """Mean interactive latency across seeds."""
        return self.stat(lambda r: r.interactive_latency.mean)

    @property
    def hit_rate(self) -> MetricStats:
        """Executed-task hit rate across seeds."""
        return self.stat(lambda r: r.hit_rate)


def replicate(
    scenario_factory: Callable[[int], Scenario],
    scheduler: SchedulerLike,
    seeds: Sequence[int],
    **run_kwargs,
) -> ReplicationResult:
    """Run ``scenario_factory(seed)`` once per seed under one scheduler.

    Quantifies the workload-seed sensitivity that single-trace
    comparisons (the paper's, and this repo's scenario benches) cannot.
    """
    if not seeds:
        raise ValueError("replicate needs at least one seed")
    results: List[SimulationResult] = []
    name: Optional[str] = None
    for seed in seeds:
        instance = _instantiate(scheduler)
        result = run_simulation(scenario_factory(seed), instance, **run_kwargs)
        results.append(result)
        name = result.scheduler_name
    return ReplicationResult(
        scheduler=name or "?", seeds=list(seeds), results=results
    )


__all__ = [
    "SweepResult",
    "sweep",
    "MetricStats",
    "ReplicationResult",
    "replicate",
]

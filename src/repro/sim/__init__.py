"""Simulation glue: system configs, the head-node service, the runner."""

from repro.sim.config import SystemConfig, system_anl, system_linux8
from repro.sim.run_config import RunConfig
from repro.sim.service import VisualizationService
from repro.sim.simulator import SimulationResult, compare_schedulers, run_simulation
from repro.sim.sweep import (
    MetricStats,
    ReplicationResult,
    SweepResult,
    replicate,
    sweep,
)

__all__ = [
    "SystemConfig",
    "system_anl",
    "system_linux8",
    "VisualizationService",
    "RunConfig",
    "SimulationResult",
    "compare_schedulers",
    "run_simulation",
    "MetricStats",
    "ReplicationResult",
    "SweepResult",
    "replicate",
    "sweep",
]

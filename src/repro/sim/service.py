"""The visualization service: head-node logic (paper §III-A, Fig. 1).

The head node communicates with users and manages the rendering nodes.
Its *listening thread* converts incoming requests to rendering jobs and
pushes them to a job queue; its *dispatching thread* pops jobs, applies
the data-decomposition policy and the scheduling scheme, and distributes
tasks to rendering nodes; completed jobs are composited and returned.

In the simulation, :class:`VisualizationService` owns:

* the scheduler and its head-node tables (with completion corrections),
* the trigger machinery (immediate / ω-cycle / batch-window),
* job lifecycle tracking (tasks outstanding → job finish + compositing),
* measurement of the scheduling procedure's wall-clock cost (Table III).

Scheduling-cycle events self-terminate when no work remains and are
re-armed by the next submission, so a simulation can be run to event-
queue exhaustion (drain) or stopped at a horizon.
"""

from __future__ import annotations

import time as _time
from typing import Dict, List, Optional

from repro.cluster.cluster import Cluster
from repro.cluster.event_queue import PRIORITY_CYCLE
from repro.cluster.node import RenderNode
from repro.core.job import JobIdAllocator, JobType, RenderJob, RenderTask
from repro.core.scheduler_base import Scheduler, SchedulerContext, Trigger
from repro.core.tables import SchedulerTables
from repro.reporting.collectors import SimulationCollector
from repro.obs.tracer import PID_HEAD, active_tracer, pid_for_node
from repro.workload.trace import Request


class VisualizationService:
    """Head-node job queue, dispatcher, and bookkeeping.

    Args:
        cluster: The cluster to dispatch onto.
        scheduler: The scheduling policy.
        chunk_max: ``Chkmax`` for the scheduler's decomposition policy.
        collector: Optional measurement sink (one is created if absent).
        tracer: Optional :class:`~repro.obs.tracer.Tracer`.  When given
            (and enabled), the service emits head-node instants (job
            submit/complete), one span per scheduler invocation, and one
            compositing span per job; it is also shared with policies
            via ``ctx.tracer``.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`.
            When given, the service publishes job submission/completion
            counters, job-latency histograms, and scheduler-cost
            histograms into it; it is also shared with policies via
            ``ctx.metrics``.  ``None`` (default) costs nothing.
        audit: Optional :class:`~repro.obs.audit.AuditLog`.  When
            given, every placement routed through ``ctx.assign``
            records a decision entry, and (if a tracer is also active)
            the service emits Chrome flow events linking each job's
            causal chain.  ``None`` (default) costs nothing.
        job_ids: Optional :class:`~repro.core.job.JobIdAllocator` this
            service draws job ids from.  Each service gets a fresh
            namespace-0 allocator by default, so every run's ids start
            at 0 regardless of process history; a federation passes
            shard-namespaced allocators so merged ids never collide.
        tables_backend: Storage layout of the scheduling tables
            (``"python"`` or ``"numpy"``, bit-identical); see
            :class:`~repro.core.tables.SchedulerTables`.
    """

    def __init__(
        self,
        cluster: Cluster,
        scheduler: Scheduler,
        chunk_max: int,
        *,
        collector: Optional[SimulationCollector] = None,
        tracer=None,
        metrics=None,
        audit=None,
        job_ids: Optional[JobIdAllocator] = None,
        tables_backend: str = "python",
    ) -> None:
        self.cluster = cluster
        self.scheduler = scheduler
        self.job_ids = job_ids if job_ids is not None else JobIdAllocator()
        self.decomposition = scheduler.make_decomposition(
            cluster.node_count, chunk_max
        )
        quota = cluster.nodes[0].cache.capacity
        self.tables = SchedulerTables(
            cluster.node_count,
            quota,
            cluster.cost,
            cluster.storage,
            executors_per_node=cluster.nodes[0].executors,
            backend=tables_backend,
        )
        self.tracer = active_tracer(tracer)
        self.metrics = metrics
        self.audit = audit
        # Flow events tie the causal chain together on the Chrome
        # timeline; they need both the timeline (tracer) and the causal
        # bookkeeping (audit) to mean anything.
        self._flows = self.tracer is not None and audit is not None
        self._bind_metrics()
        self.ctx = SchedulerContext(
            cluster,
            self.tables,
            self.decomposition,
            tracer=self.tracer,
            metrics=self.metrics,
            audit=self.audit,
        )
        self.collector = collector if collector is not None else SimulationCollector()
        cluster.add_task_finish_listener(self._on_task_finish)
        # Completion-path bindings (one lookup per task otherwise).
        self._correct_completion = self.tables.correct_completion
        self._composite_memo_get = cluster.cost._composite_memo.get
        self._nodes = cluster.nodes

        self._datasets: Dict[str, object] = {}
        self._pending: List[RenderJob] = []
        #: Tasks dispatched to nodes and not yet finished.  Per-job
        #: completion is tracked on ``RenderJob.tasks_left`` (set at
        #: decomposition); this aggregate only answers ``has_work``.
        self._tasks_inflight = 0
        self._events = cluster.events
        #: Optional fault-injection hook: ``guard(assignment) -> bool``.
        #: Returning True absorbs the placement (the head node believes
        #: it was dispatched; the fault runtime stashes the task).  None
        #: → one identity check per dispatch batch, faults-off runs stay
        #: bit-identical.
        self._dispatch_guard = None
        self._cycle_armed = False
        self._window_generation = 0
        self._completion_listeners: List = []
        self.jobs_submitted = 0
        self.jobs_completed = 0

    def _bind_metrics(self) -> None:
        """Resolve registry metrics once so hot paths touch bound objects."""
        registry = self.metrics
        if registry is None:
            self._m_submitted = self._m_completed = self._m_latency = None
            self._m_sched_cost = self._m_assignments = None
            return
        self._m_submitted = {
            t: registry.counter(
                "repro_jobs_submitted",
                "rendering jobs accepted by the head node",
                labels={"type": t.value},
            )
            for t in JobType
        }
        self._m_completed = {
            t: registry.counter(
                "repro_jobs_completed",
                "rendering jobs completed (compositing included)",
                labels={"type": t.value},
            )
            for t in JobType
        }
        self._m_latency = {
            t: registry.histogram(
                "repro_job_latency_seconds",
                "Definition-3 job latency (JF - JI)",
                labels={"type": t.value},
            )
            for t in JobType
        }
        self._m_sched_cost = registry.histogram(
            "repro_sched_cost_seconds",
            "wall-clock cost of one scheduler invocation (Table III)",
            labels={"scheduler": self.scheduler.name},
        )
        self._m_assignments = registry.counter(
            "repro_sched_assignments",
            "task placements produced by the scheduler",
            labels={"scheduler": self.scheduler.name},
        )

    def add_completion_listener(self, callback) -> None:
        """Register ``callback(job)`` to fire on every job completion.

        Used by closed-loop workload drivers (users who pace their
        requests by delivered frames) and custom instrumentation.
        """
        self._completion_listeners.append(callback)

    # -- prewarm ("test run") --------------------------------------------------

    def prewarm(self, datasets: "List[object]") -> int:
        """Pre-load chunk caches before measurement (the paper's test run).

        The Estimate table is initialized via a test run (§V-B); that
        same run leaves the dataset chunks resident in node memory —
        Scenarios 1 and 3 explicitly rely on data being "completely
        cached".  Chunks are placed round-robin (or by their pinned node
        under the uniform decomposition) while they fit without
        eviction; node caches and the head-node mirrors are updated in
        lockstep so the Cache table stays exact.

        Returns:
            The number of chunks made resident.
        """
        from repro.core.chunks import UniformDecomposition

        uniform = isinstance(self.decomposition, UniformDecomposition)
        p = self.cluster.node_count
        loaded = 0
        cursor = 0
        for ds in datasets:
            for chunk in self.decomposition.decompose(ds):  # type: ignore[arg-type]
                if uniform:
                    candidates = [chunk.index]
                else:
                    candidates = [(cursor + off) % p for off in range(p)]
                for k in candidates:
                    node = self.cluster.nodes[k]
                    if chunk.size <= node.cache.free_bytes:
                        node.cache.insert(chunk)
                        self.tables.warm(chunk, k)
                        if self.tracer is not None:
                            self._trace_prewarm(chunk, k)
                        loaded += 1
                        cursor = (k + 1) % p
                        break
        return loaded

    def _trace_prewarm(self, chunk, k: int) -> None:
        """Trace one prewarm load as an io span at t=0 on node ``k``.

        The prewarm models the paper's pre-measurement test run, which
        really does stream every chunk off storage; the spans overlap at
        the origin because the warm-up happens before simulated time
        starts.
        """
        from repro.obs.tracer import CAT_IO

        self.tracer.complete(
            pid_for_node(k),
            "io",
            f"prewarm {chunk.dataset}[{chunk.index}]",
            0.0,
            self.cluster.storage.estimate_load_time(chunk.size),
            category=CAT_IO,
            args={"bytes": chunk.size, "prewarm": True},
        )

    # -- submission ----------------------------------------------------------

    def build_job(
        self, request: Request, dataset: object, arrival_time: float
    ) -> RenderJob:
        """Convert a request to a job with an id from this service.

        Every trace-driven submission path (direct or through the
        frontend) builds jobs here, so all of a run's ids come from one
        allocator — which is what keeps them collision-free across
        federated shards.
        """
        return RenderJob(
            request.job_type,
            dataset,  # type: ignore[arg-type]
            arrival_time,
            user=request.user,
            action=request.action,
            sequence=request.sequence,
            job_id=self.job_ids.allocate(),
        )

    def submit_request(self, request: Request, dataset: object) -> None:
        """Listener-thread path: convert a request to a job and queue it."""
        self.submit(self.build_job(request, dataset, self._events._now))

    def submit(self, job: RenderJob) -> None:
        """Queue a rendering job according to the scheduler's trigger."""
        self.jobs_submitted += 1
        self.collector.on_submit(job)
        if self._m_submitted is not None:
            self._m_submitted[job.job_type].inc()
        if self.tracer is not None:
            self.tracer.instant(
                PID_HEAD,
                "jobs",
                f"submit {job.job_type.value}",
                self.cluster.now,
                category="service",
                args={"job": job.job_id, "user": job.user, "action": job.action},
            )
            if self._flows:
                self.tracer.flow_start(
                    PID_HEAD, "jobs", f"job {job.job_id}",
                    self.cluster.now, job.job_id,
                )
        trigger = self.scheduler.trigger
        if trigger is Trigger.IMMEDIATE:
            self._run_scheduler([job])
        elif trigger is Trigger.CYCLE:
            self._pending.append(job)
            self._arm_cycle()
        else:  # Trigger.WINDOW
            self._pending.append(job)
            if len(self._pending) >= self.scheduler.window_size:
                self._flush_window()
            elif len(self._pending) == 1:
                generation = self._window_generation
                self.cluster.events.schedule_after(
                    self.scheduler.window_timeout,
                    self._on_window_timeout,
                    generation,
                    priority=PRIORITY_CYCLE,
                )

    # -- triggers ------------------------------------------------------------

    def _arm_cycle(self) -> None:
        """Ensure a scheduling-cycle event is pending."""
        if not self._cycle_armed:
            self._cycle_armed = True
            self.cluster.events.schedule_after(
                self.scheduler.cycle, self._on_cycle, priority=PRIORITY_CYCLE
            )

    def start(self) -> None:
        """Arm the first scheduling cycle for cycle-triggered schedulers.

        Harmless for other triggers; idempotent.
        """
        if self.scheduler.trigger is Trigger.CYCLE:
            self._arm_cycle()

    def _on_cycle(self) -> None:
        jobs = self._pending
        self._pending = []
        self._run_scheduler(jobs)
        # Re-arm while the scheduler still holds deferred work or new
        # jobs arrived during this cycle's scheduling; otherwise go
        # quiescent until the next submission re-arms us.
        self._cycle_armed = False
        if self._pending or self.scheduler.pending_task_count() > 0:
            self._arm_cycle()

    def _on_window_timeout(self, generation: int) -> None:
        if generation == self._window_generation and self._pending:
            self._flush_window()

    def _flush_window(self) -> None:
        jobs = self._pending
        self._pending = []
        self._window_generation += 1
        self._run_scheduler(jobs)

    # -- scheduling ------------------------------------------------------------

    def _run_scheduler(self, jobs: List[RenderJob]) -> None:
        """Invoke the policy, measure its cost, dispatch its assignments."""
        if self.audit is not None:
            self.audit.begin_invocation(self._events._now, len(jobs))
        t0 = _time.perf_counter()
        self.scheduler.schedule(jobs, self.ctx)
        elapsed = _time.perf_counter() - t0
        assignments = self.ctx.take_assignments()
        self.collector.scheduling.record(elapsed, len(jobs), len(assignments))
        if self._m_sched_cost is not None and (jobs or assignments):
            self._m_sched_cost.observe(elapsed)
            self._m_assignments.inc(len(assignments))
        if self.tracer is not None and (jobs or assignments):
            # One span per scheduler invocation.  The span starts at the
            # invocation's virtual instant; its duration is the measured
            # wall-clock scheduling cost (the Table III quantity), which
            # makes expensive invocations visibly wider on the timeline.
            self.tracer.complete(
                PID_HEAD,
                "scheduler",
                f"schedule[{self.scheduler.name}]",
                self.cluster.now,
                elapsed,
                category="sched",
                args={"jobs": len(jobs), "assignments": len(assignments)},
            )
        self._dispatch(assignments)

    def _dispatch(self, assignments) -> None:
        self._tasks_inflight += len(assignments)
        dispatch = self.cluster.dispatch
        guard = self._dispatch_guard
        if guard is None:
            for assignment in assignments:
                dispatch(assignment.task, assignment.node)
        else:
            for assignment in assignments:
                # An absorbed task stays counted in flight — the head
                # node believes the (silently dead) node is executing
                # it, and the count is reconciled at crash detection.
                if not guard(assignment):
                    dispatch(assignment.task, assignment.node)

    def requeue_tasks(self, tasks: List[RenderTask], *, reason: str) -> None:
        """Re-place recovered tasks through the scheduler's policy.

        The fault-recovery path: callers (the recovery engine) have
        already reconciled the tables and in-flight counts; this routes
        the tasks back through ``reschedule`` so every re-placement is
        audited with the given recovery reason and dispatches the
        resulting assignments.
        """
        if tasks:
            self.scheduler.reschedule(tasks, self.ctx, reason=reason)
            self._dispatch(self.ctx.take_assignments())

    # -- fault tolerance (paper §VI-D) -------------------------------------

    def fail_node(self, node_id: int) -> int:
        """Crash rendering node ``node_id`` and recover its workload.

        The node's in-flight and queued tasks are re-dispatched to the
        surviving nodes via the scheduler's ``reschedule`` policy
        (locality-aware by default: chunks with live replicas stay
        cached, the rest reload from the file system).  Returns the
        number of tasks recovered.
        """
        node = self.cluster.nodes[node_id]
        orphans = node.fail()
        self.tables.mark_node_failed(node_id)
        # The orphans never finished; re-dispatching counts them again.
        self._tasks_inflight -= len(orphans)
        for task in orphans:
            # Their old predictions are void; fresh ones are recorded at
            # re-assignment.
            self.tables._pending_est.pop(task, None)
        if orphans:
            self.scheduler.reschedule(orphans, self.ctx)
            self._dispatch(self.ctx.take_assignments())
        return len(orphans)

    # -- completion ------------------------------------------------------------

    def _on_task_finish(self, node: RenderNode, task: RenderTask) -> None:
        now = self._events._now
        self._correct_completion(task, node.node_id, now)
        self._tasks_inflight -= 1
        job = task.job
        left = job.tasks_left - 1
        job.tasks_left = left
        if left:
            return
        # The compositing thread assembles the final image after the last
        # render; it extends job latency but frees the render thread.
        group_nodes = job.group_nodes()
        group = len(group_nodes)
        composite = self._composite_memo_get(group)
        if composite is None:
            composite = self.cluster.cost.composite_time(group)
        job.finish_time = now + composite
        nodes = self._nodes
        for k in group_nodes:
            # Each participant's compositing thread works for the
            # exchange's duration (sort-last compositing is collective).
            nodes[k].composite_seconds += composite
        self.jobs_completed += 1
        self.collector.on_job_complete(job)
        if self._m_completed is not None:
            self._m_completed[job.job_type].inc()
            self._m_latency[job.job_type].observe(job.finish_time - job.arrival_time)
        if self.tracer is not None:
            self._trace_completion(job, now, composite, group_nodes)
        for listener in self._completion_listeners:
            listener(job)

    def _trace_completion(
        self, job: RenderJob, now: float, composite: float, group_nodes: List[int]
    ) -> None:
        """Emit the job's compositing span and completion instant.

        The span lives on the *root* participant's ``composite`` lane
        (the lowest node id of the render group — the rank that holds
        the assembled image in sort-last compositing).
        """
        root = min(group_nodes) if group_nodes else 0
        self.tracer.complete(
            pid_for_node(root),
            "composite",
            f"composite job {job.job_id}",
            now,
            composite,
            category="composite",
            args={"job": job.job_id, "group": len(group_nodes)},
        )
        if self._flows:
            self.tracer.flow_step(
                pid_for_node(root), "composite", f"job {job.job_id}",
                now, job.job_id,
            )
        self.tracer.instant(
            PID_HEAD,
            "jobs",
            f"complete {job.job_type.value}",
            now,
            category="service",
            args={"job": job.job_id, "latency": job.finish_time - job.arrival_time},
        )
        if self._flows:
            self.tracer.flow_end(
                PID_HEAD, "jobs", f"job {job.job_id}", now, job.job_id
            )

    # -- state ---------------------------------------------------------------

    @property
    def outstanding_jobs(self) -> int:
        """Jobs submitted but not yet completed (queued, deferred, running)."""
        return self.jobs_submitted - self.jobs_completed

    @property
    def queue_depth(self) -> int:
        """Jobs waiting in the head-node queue (not yet scheduled)."""
        return len(self._pending)

    @property
    def tasks_inflight(self) -> int:
        """Tasks dispatched to rendering nodes and not yet finished."""
        return self._tasks_inflight

    def has_work(self) -> bool:
        """True while any job is queued, deferred, or in flight."""
        return (
            bool(self._pending)
            or self._tasks_inflight > 0
            or self.scheduler.pending_task_count() > 0
        )


__all__ = ["VisualizationService"]

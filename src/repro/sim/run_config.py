"""The consolidated run configuration for the simulation entry points.

:class:`RunConfig` replaces the keyword-argument pile that
:func:`~repro.sim.simulator.run_simulation` had grown (drain control,
storage seed, observability toggles, failure schedule, ...) with one
frozen, picklable object.  That one object is what
:func:`~repro.sim.sweep.sweep` and :func:`~repro.sim.sweep.replicate`
ship across process-pool boundaries, what benches persist next to their
numbers, and where new run-scoped features (like the overload-management
``frontend``) land without widening every call site.

The legacy keyword signature still works but emits a
:class:`DeprecationWarning`; it builds the equivalent ``RunConfig``
internally, so the two spellings are bit-identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Sequence, Tuple, Union

from repro._compat import warn_deprecated

if TYPE_CHECKING:
    from repro.faults.plan import FaultPlan
    from repro.frontend.config import FrontendConfig
    from repro.obs.audit import AuditConfig
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.stream import StreamConfig
    from repro.obs.tracer import Tracer


@dataclass(frozen=True)
class RunConfig:
    """Everything about *how* to run a scenario (not *what* to run).

    Attributes:
        drain: Keep simulating past the trace horizon until all
            submitted jobs complete.  The paper's measurements are
            horizon-bounded (``False``).
        max_drain_time: Bound on the drain phase, in simulated seconds
            past the horizon (``None`` = unbounded).
        storage_seed: Seed for I/O jitter (when the storage spec
            enables it).
        timeline_interval: Sample cluster dynamics every this many
            simulated seconds (``result.timeline_samples``); ``None``
            disables.
        node_failures: Deprecated crash schedule — ``(time, node_id)``
            pairs, recovered per the paper's §VI-D design.  Converted
            internally to an equivalent vanilla
            :class:`~repro.faults.plan.FaultPlan` (bit-identical) with
            a :class:`DeprecationWarning`; use ``faults`` instead.
        faults: Optional :class:`~repro.faults.plan.FaultPlan` — the
            fault-injection subsystem (crashes, stragglers, cache
            wipes, storage degradation, plus detection/recovery when
            the plan carries them).  ``None`` (default) is
            bit-identical to a run without the subsystem.
        tracer: Optional :class:`~repro.obs.tracer.Tracer` recording
            spans and counter tracks.
        counter_interval: Sampling period of the tracer's counter
            tracks (defaults to ~256 samples over the horizon).
        metrics: ``True`` or an explicit
            :class:`~repro.obs.metrics.MetricsRegistry` enables the
            metrics layer (``result.metrics``).
        metrics_interval: Length of one metrics aggregation window in
            simulated seconds (defaults to ~64 windows).
        frontend: Optional
            :class:`~repro.frontend.config.FrontendConfig` placing the
            overload-management frontend (admission control,
            backpressure, graceful degradation) between the trace and
            the service.  ``None`` (default) is bit-identical to a run
            without the frontend subsystem.
        record_assignments: Record the full per-task assignment trace
            (who ran what, where, when) on
            ``result.assignment_trace``.  The trace is a list of plain
            tuples (picklable, so it survives ``workers=N`` sweeps) and
            backs the golden-trace determinism tests via
            ``result.assignment_trace_hash()``.
        audit: ``True`` or an explicit
            :class:`~repro.obs.audit.AuditConfig` enables the
            decision-audit layer: every assignment records its
            candidate-node snapshot and reason code
            (``result.audit``), and the causal collector attributes
            each completed job's latency to phases
            (``result.critical_paths``).  ``False`` (default) is
            bit-identical to a run without the audit subsystem.
        stream: Optional :class:`~repro.obs.stream.StreamConfig` — the
            live-telemetry bus.  When set, the run emits schema-versioned
            NDJSON snapshot/anomaly records to ``stream.path`` *while it
            executes* (tail with ``repro watch``), runs the online
            anomaly detectors, and attaches a
            :class:`~repro.obs.stream.StreamReport` as
            ``result.stream``.  ``None`` (default) is bit-identical to a
            run without the subsystem.
        job_namespace: Namespace for this run's
            :class:`~repro.core.job.JobIdAllocator` — job ids start at
            ``job_namespace * NAMESPACE_STRIDE``.  A federation gives
            shard ``k`` namespace ``k`` so merged per-shard ids never
            collide; the default ``0`` yields the plain ``0, 1, 2, ...``
            sequence (byte-identical to the historical global counter).
        tables_backend: Storage layout of the head node's scheduling
            tables: ``"python"`` (dict/list, the reference path) or
            ``"numpy"`` (struct-of-arrays with vectorized placement
            queries).  The two are bit-identical — every golden trace
            hash is unchanged across backends (pinned by the backend
            differential tests); pick by profile, not by semantics.
    """

    drain: bool = False
    max_drain_time: Optional[float] = None
    storage_seed: int = 0
    timeline_interval: Optional[float] = None
    node_failures: Optional[Sequence[Tuple[float, int]]] = None
    tracer: Optional["Tracer"] = None
    counter_interval: Optional[float] = None
    metrics: Union[bool, "MetricsRegistry"] = False
    metrics_interval: Optional[float] = None
    frontend: Optional["FrontendConfig"] = None
    record_assignments: bool = False
    audit: Union[bool, "AuditConfig"] = False
    faults: Optional["FaultPlan"] = None
    stream: Optional["StreamConfig"] = None
    job_namespace: int = 0
    tables_backend: str = "python"

    def __post_init__(self) -> None:
        if self.tables_backend not in ("python", "numpy"):
            raise ValueError(
                f"unknown tables_backend {self.tables_backend!r}: "
                "use 'python' or 'numpy'"
            )
        if self.node_failures:
            # Deprecation shim: fold the legacy pairs into an equivalent
            # vanilla FaultPlan.  The injector schedules those crashes
            # through the exact same (time, callback, priority) slots
            # the old hook used, so the two spellings stay bit-identical.
            from repro.faults.plan import FaultPlan

            if self.faults is not None:
                raise ValueError(
                    "pass either faults=FaultPlan(...) or the deprecated "
                    "node_failures=..., not both"
                )
            warn_deprecated(
                "RunConfig(node_failures=...) is deprecated; use "
                "faults=FaultPlan.from_node_failures(...) (or a full "
                "FaultPlan) instead",
                stacklevel=3,
            )
            object.__setattr__(
                self, "faults", FaultPlan.from_node_failures(self.node_failures)
            )
            object.__setattr__(self, "node_failures", None)

    def replace(self, **changes) -> "RunConfig":
        """A copy with the given fields changed."""
        return dataclasses.replace(self, **changes)


#: The field names the legacy keyword signature accepted, in order.
LEGACY_KWARGS: Tuple[str, ...] = tuple(
    f.name for f in dataclasses.fields(RunConfig)
)


__all__ = ["RunConfig", "LEGACY_KWARGS"]

"""Top-level simulation runner: scenario x scheduler → results.

:func:`run_simulation` wires a scenario's cluster, a scheduler, and the
workload trace into one discrete-event run and returns a
:class:`SimulationResult` with everything the evaluation section reports
(framerates, latencies, hit rates, scheduling costs, utilization).

Run options travel in one :class:`~repro.sim.run_config.RunConfig`::

    result = run_simulation(scenario, "OURS", config=RunConfig(drain=True))

The pre-1.1 keyword spelling (``run_simulation(scenario, "OURS",
drain=True)``) still works, builds the identical ``RunConfig``
internally, and emits a :class:`DeprecationWarning`.

:func:`compare_schedulers` runs the same scenario under several policies
— the shape of Figs. 4-7.
"""

from __future__ import annotations

import gc
import hashlib
import time as _time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultReport
    from repro.obs.stream import StreamReport

from repro._compat import warn_deprecated
from repro.cluster.cluster import Cluster
from repro.cluster.event_queue import PRIORITY_ARRIVAL, EventQueue
from repro.core.cost_model import mean
from repro.core.job import JobIdAllocator, JobType
from repro.core.registry import make_scheduler
from repro.core.scheduler_base import Scheduler
from repro.reporting.analysis import (
    LatencyStats,
    SchedulerSummary,
    batch_working_time,
    delivered_framerates_by_action,
    framerates_by_action,
    latency_stats,
    mean_interactive_framerate,
    summarize,
)
from repro.reporting.collectors import JobRecord, SimulationCollector
from repro.reporting.timeline import TimelineSampler
from repro.obs.audit import AuditConfig, AuditLog
from repro.obs.causal import CausalCollector, CriticalPathAnalysis
from repro.obs.counters import CounterSampler, default_counter_interval
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSampler,
    RunMetrics,
    default_window_interval,
)
from repro.obs.profile import ClusterProfile
from repro.obs.tracer import PID_HEAD, Tracer, active_tracer, pid_for_node
from repro.frontend.frontend import FrontendStats, ServiceFrontend
from repro.sim.run_config import LEGACY_KWARGS, RunConfig
from repro.sim.service import VisualizationService
from repro.workload.scenarios import Scenario


#: One completed task assignment: ``(user, action, sequence, task_index,
#: dataset, chunk_index, node_id, start_time, finish_time, io_time,
#: cache_hit)``.  Job ids are deliberately absent — they depend on the
#: run's id-allocator namespace, so shard-namespaced federated runs
#: would hash differently from otherwise-identical plain runs;
#: ``(user, action, sequence)`` identifies the job instead.
AssignmentRecord = Tuple[
    int, int, int, int, str, int, int, float, float, float, bool
]


def hash_assignment_trace(trace: Sequence[AssignmentRecord]) -> str:
    """A bit-exact digest of an assignment trace.

    Floats are hashed via :meth:`float.hex`, so two traces hash equal
    only when every timestamp matches to the last bit — the invariant
    the golden-trace tests pin across optimizations and across
    serial/parallel sweep execution.
    """
    digest = hashlib.sha256()
    for rec in trace:
        digest.update(
            "|".join(
                v.hex() if isinstance(v, float) else repr(v) for v in rec
            ).encode()
        )
        digest.update(b"\n")
    return digest.hexdigest()


@dataclass
class SimulationResult:
    """Everything measured in one scenario x scheduler run."""

    scenario_name: str
    scheduler_name: str
    horizon: float
    target_framerate: float
    collector: SimulationCollector
    jobs_submitted: int
    jobs_completed: int
    simulated_time: float
    events_processed: int
    mean_node_utilization: float
    drained: bool
    tasks_executed: int = 0
    tasks_hit: int = 0
    tasks_missed: int = 0
    timeline_samples: Optional["TimelineSampler"] = None
    profile: Optional["ClusterProfile"] = None
    tracer: Optional["Tracer"] = None
    metrics: Optional["RunMetrics"] = None
    frontend: Optional["FrontendStats"] = None
    assignment_trace: Optional[List[AssignmentRecord]] = None
    audit: Optional["AuditLog"] = None
    critical_paths: Optional["CriticalPathAnalysis"] = None
    fault_report: Optional["FaultReport"] = None
    #: Wall-clock seconds spent inside the event loop (including drain).
    wall_seconds: float = 0.0
    stream: Optional["StreamReport"] = None

    @property
    def events_per_sec(self) -> float:
        """Event-loop throughput: events processed per wall second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_processed / self.wall_seconds

    def assignment_trace_hash(self) -> str:
        """Digest of the recorded assignment trace.

        Requires the run to have used
        ``RunConfig(record_assignments=True)``.
        """
        if self.assignment_trace is None:
            raise ValueError(
                "no assignment trace recorded; run with "
                "RunConfig(record_assignments=True)"
            )
        return hash_assignment_trace(self.assignment_trace)

    # -- job records -----------------------------------------------------------

    @property
    def records(self) -> List[JobRecord]:
        """All completed-job records."""
        return self.collector.records

    @property
    def unfinished_jobs(self) -> int:
        """Jobs submitted but not completed within the run."""
        return self.jobs_submitted - self.jobs_completed

    # -- headline metrics --------------------------------------------------------

    @property
    def frame_interval(self) -> float:
        """Request spacing of one action: 1 / target framerate."""
        return 1.0 / self.target_framerate

    def interactive_framerates(self) -> Dict[int, float]:
        """Definition-4 framerate per interactive action."""
        return framerates_by_action(self.records)

    def delivered_framerates(self) -> Dict[int, float]:
        """Delivered framerate per interactive action."""
        return delivered_framerates_by_action(
            self.records, self.collector.action_issues, self.frame_interval
        )

    @property
    def interactive_fps(self) -> float:
        """Mean per-action *delivered* framerate (Fig. 4-7 bars)."""
        return mean(list(self.delivered_framerates().values()))

    @property
    def interactive_fps_definition4(self) -> float:
        """Mean per-action Definition-4 framerate (completion spacing)."""
        return mean_interactive_framerate(self.records)

    @property
    def interactive_latency(self) -> LatencyStats:
        """Interactive-job latency summary (Fig. 4-7 marked lines)."""
        return latency_stats(self.records, JobType.INTERACTIVE)

    @property
    def batch_latency(self) -> LatencyStats:
        """Batch-job latency summary (Fig. 5-7 left bars)."""
        return latency_stats(self.records, JobType.BATCH)

    @property
    def batch_working_time(self) -> float:
        """Mean batch ``JExec`` (Fig. 5-7 right bars)."""
        return batch_working_time(self.records)

    @property
    def hit_rate(self) -> float:
        """Data-reuse hit rate over *executed* tasks (Table III).

        Counts every task the rendering nodes ran (hits and misses are
        tallied when a task begins executing), including tasks of jobs
        that had not fully completed by the horizon; the collector's
        per-completed-job hit counts remain available via
        ``collector.hit_rate``.
        """
        total = self.tasks_hit + self.tasks_missed
        if total == 0:
            return 0.0
        return self.tasks_hit / total

    @property
    def sched_cost_us(self) -> float:
        """Average scheduling cost per job in µs (Table III)."""
        return self.collector.scheduling.mean_cost_per_job_us

    # -- observability -----------------------------------------------------

    def timeline(self, *, slo_reports=(), top_paths: int = 3):
        """Join this run's recorders into one drawable timeline model.

        Requires the run to have carried a tracer
        (``RunConfig(tracer=Tracer())``); audit, critical-path, and
        fault data are folded in when present.  See
        :func:`repro.obs.timeline.extract_timeline`.

        Raises:
            repro.obs.timeline.TimelineError: If no trace was recorded.
        """
        from repro.obs.timeline import extract_timeline

        return extract_timeline(
            self, slo_reports=slo_reports, top_paths=top_paths
        )

    def node_utilization_fractions(self) -> Dict[int, Dict[str, float]]:
        """Per-node ``{io, render, composite, idle}`` fractions.

        Each node's four fractions sum to 1.0; see
        :class:`~repro.obs.profile.NodeProfile`.
        """
        if self.profile is None:
            return {}
        return {p.node_id: p.fractions() for p in self.profile.nodes}

    def profile_table(self, *, title: str = "") -> str:
        """The per-node time-breakdown text table."""
        if self.profile is None:
            return "(no profile recorded)"
        return self.profile.table(title=title)

    def summary(self) -> SchedulerSummary:
        """One comparison row for this run."""
        return summarize(
            self.scheduler_name,
            self.records,
            hit_rate=self.hit_rate,
            sched_cost_us=self.sched_cost_us,
            action_issues=self.collector.action_issues,
            frame_interval=self.frame_interval,
        )


def run_simulation(
    scenario: Scenario,
    scheduler: Union[str, Scheduler],
    config: Optional[RunConfig] = None,
    **legacy_kwargs,
) -> SimulationResult:
    """Run one scenario under one scheduler.

    Args:
        scenario: System configuration + workload trace.
        scheduler: A registry name (e.g. ``"OURS"``) or an instance.
        config: A :class:`~repro.sim.run_config.RunConfig` describing
            how to run — drain control, storage seed, observability
            (tracer / metrics / timeline), the node-failure schedule,
            and the overload-management ``frontend``.  ``None`` means
            all defaults (horizon-bounded, uninstrumented, no
            frontend).
        **legacy_kwargs: Deprecated pre-1.1 spelling — any
            ``RunConfig`` field passed directly as a keyword argument
            (``drain=True``, ``metrics=True``, ...).  Builds the
            identical ``RunConfig`` and emits a
            :class:`DeprecationWarning`; cannot be combined with
            ``config``.

    Returns:
        A :class:`SimulationResult` (``result.profile`` carries the
        per-node io/render/composite/idle breakdown; ``result.frontend``
        the overload accounting when a frontend was configured).
    """
    if legacy_kwargs:
        unknown = set(legacy_kwargs) - set(LEGACY_KWARGS)
        if unknown:
            raise TypeError(
                "run_simulation() got unexpected keyword arguments: "
                + ", ".join(sorted(unknown))
            )
        if config is not None:
            raise TypeError(
                "pass either config=RunConfig(...) or legacy keyword "
                "arguments, not both"
            )
        warn_deprecated(
            "passing run options as keyword arguments to run_simulation() "
            "is deprecated; pass config=RunConfig(...) instead",
            stacklevel=2,
        )
        config = RunConfig(**legacy_kwargs)
    elif config is None:
        config = RunConfig()
    return _run(scenario, scheduler, config)


def _run(
    scenario: Scenario,
    scheduler: Union[str, Scheduler],
    config: RunConfig,
) -> SimulationResult:
    """The actual run loop; ``config`` is fully resolved here."""
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler)
    scheduler.reset()

    drain = config.drain
    events = EventQueue()
    cluster = scenario.system.build_cluster(
        events=events, storage_seed=config.storage_seed
    )
    live_tracer = active_tracer(config.tracer)
    registry: Optional[MetricsRegistry] = None
    if config.metrics:
        registry = (
            config.metrics
            if isinstance(config.metrics, MetricsRegistry)
            else MetricsRegistry()
        )
    audit_log: Optional[AuditLog] = None
    causal: Optional[CausalCollector] = None
    if config.audit:
        audit_cfg = (
            config.audit
            if isinstance(config.audit, AuditConfig)
            else AuditConfig()
        )
        audit_log = AuditLog(
            audit_cfg, scheduler=scheduler.name, scenario=scenario.name
        )
        causal = CausalCollector()
    service = VisualizationService(
        cluster,
        scheduler,
        scenario.system.chunk_max,
        tracer=live_tracer,
        metrics=registry,
        audit=audit_log,
        job_ids=JobIdAllocator(config.job_namespace),
        tables_backend=config.tables_backend,
    )
    if causal is not None:
        # A per-job completion listener, not a per-task cluster listener:
        # the cluster keeps its single-listener task-finish fast path and
        # the collector fires once per job, after finish_time is set.
        service.add_completion_listener(causal.on_job_complete)
    frontend: Optional[ServiceFrontend] = None
    if config.frontend is not None:
        frontend = ServiceFrontend(
            config.frontend,
            service,
            target_framerate=scenario.target_framerate,
            horizon=None if drain else scenario.trace.duration,
            metrics=registry,
            audit=audit_log,
        )
    metrics_sampler: Optional[MetricsSampler] = None
    if registry is not None:
        for node in cluster.nodes:
            node.set_metrics(registry)
        cluster.storage.set_metrics(registry)
        horizon_hint = scenario.trace.duration
        window = (
            config.metrics_interval
            if config.metrics_interval is not None
            else default_window_interval(horizon_hint)
        )
        metrics_sampler = MetricsSampler(
            registry, window, horizon=None if drain else horizon_hint
        )
        metrics_sampler.attach(service)
    counter_sampler: Optional[CounterSampler] = None
    if live_tracer is not None:
        live_tracer.name_process(PID_HEAD, "head node")
        for node in cluster.nodes:
            live_tracer.name_process(
                pid_for_node(node.node_id), f"render node {node.node_id}"
            )
            node.set_tracer(live_tracer)
            if audit_log is not None:
                node.set_flow_events(True)
        horizon_hint = scenario.trace.duration
        interval = (
            config.counter_interval
            if config.counter_interval is not None
            else default_counter_interval(horizon_hint)
        )
        counter_sampler = CounterSampler(
            live_tracer,
            interval,
            horizon=None if drain else horizon_hint,
            per_node_cache=cluster.node_count <= 16,
        )
        counter_sampler.attach(service)
    assignment_trace: Optional[List[AssignmentRecord]] = None
    if config.record_assignments:
        assignment_trace = []
        record = assignment_trace.append

        def _record_assignment(node, task) -> None:
            job = task.job
            record(
                (
                    job.user,
                    job.action,
                    job.sequence,
                    task.index,
                    task.chunk.dataset,
                    task.chunk.index,
                    node.node_id,
                    task.start_time,
                    task.finish_time,
                    task.io_time,
                    bool(task.cache_hit),
                )
            )

        cluster.add_task_finish_listener(_record_assignment)
    if scenario.prewarm:
        service.prewarm(scenario.trace.datasets)
    sampler: Optional[TimelineSampler] = None
    if config.timeline_interval is not None:
        horizon_hint = None if drain else scenario.trace.duration
        sampler = TimelineSampler(config.timeline_interval, horizon=horizon_hint)
        sampler.attach(service)

    fault_runtime = None
    if config.faults is not None:
        # Lazy import: fault-free runs never touch the subsystem.  The
        # runtime schedules every planned event here — the exact event-
        # queue position the legacy node_failures hook used, so vanilla
        # crash plans stay bit-identical to the deprecated spelling.
        from repro.faults.injector import FaultRuntime

        fault_runtime = FaultRuntime(
            config.faults,
            events,
            cluster,
            service,
            tracer=live_tracer,
            audit=audit_log,
        )
        fault_runtime.arm()

    stream = None
    if config.stream is not None:
        # Lazy import like the fault subsystem: stream-off runs never
        # touch the module.  The stream's grid ticks are pure observers
        # on the event queue, so streamed runs stay bit-identical to
        # unstreamed ones (pinned by the golden-trace tests).
        import dataclasses as _dc

        from repro.obs.stream import TelemetryStream, default_stream_interval

        stream_cfg = config.stream
        if stream_cfg.interval is None:
            stream_cfg = _dc.replace(
                stream_cfg,
                interval=default_stream_interval(scenario.trace.duration),
            )
        stream = TelemetryStream(
            stream_cfg,
            scenario=scenario.name,
            scheduler=scheduler.name,
            horizon=None if drain else scenario.trace.duration,
            target_framerate=scenario.target_framerate,
            job_namespace=config.job_namespace,
        )
        if fault_runtime is not None:
            stream.note_injections(fault_runtime.report.injections)
        stream.attach(service)

    submit = (
        frontend.submit_request if frontend is not None else service.submit_request
    )
    datasets = {d.name: d for d in scenario.trace.datasets}
    # Bulk-load the whole trace: one heapify beats one heappush per
    # arrival (Scenario 2 at full scale preloads ~20k requests).
    events.schedule_many(
        (
            (request.time, submit, (request, datasets[request.dataset]))
            for request in scenario.trace.requests
        ),
        priority=PRIORITY_ARRIVAL,
    )
    service.start()
    if frontend is not None:
        frontend.start()

    def has_pending() -> bool:
        if service.has_work():
            return True
        return frontend is not None and frontend.waiting_count > 0

    horizon = scenario.trace.duration
    # The event loop allocates heavily (events, tasks, assignments) but
    # creates no cycles it needs collected mid-run; generational GC
    # sweeps over the live simulation graph are pure overhead, so the
    # collector is paused for the loop (restored even on error).
    gc_was_enabled = gc.isenabled()
    gc.disable()
    wall_t0 = _time.perf_counter()
    try:
        # Streamed runs count ``processed`` live so grid ticks and the
        # stall watchdog read exact event counts mid-run; unstreamed
        # runs keep the batched fast path.
        events.run(until=horizon, live_count=stream is not None)
        drained = not has_pending()
        if drain and not drained:
            limit = (
                None
                if config.max_drain_time is None
                else horizon + config.max_drain_time
            )
            while has_pending():
                next_time = events.peek_time()
                if next_time is None:
                    break
                if limit is not None and next_time > limit:
                    break
                events.step()
            drained = not has_pending()
    finally:
        wall_seconds = _time.perf_counter() - wall_t0
        if gc_was_enabled:
            gc.enable()

    stream_report = None
    if stream is not None:
        # Stop the watchdog, write the summary record, and drop the file
        # handle so the result stays picklable across sweep workers.
        stream_report = stream.close()
    if audit_log is not None:
        # Flush and drop the JSONL stream handle so the log (and the
        # result carrying it) stays picklable across sweep workers.
        audit_log.close()
    return SimulationResult(
        scenario_name=scenario.name,
        scheduler_name=scheduler.name,
        horizon=horizon,
        target_framerate=scenario.target_framerate,
        collector=service.collector,
        jobs_submitted=service.jobs_submitted,
        jobs_completed=service.jobs_completed,
        simulated_time=events.now,
        events_processed=events.processed,
        mean_node_utilization=cluster.mean_utilization(max(events.now, 1e-9)),
        drained=drained,
        tasks_executed=sum(n.tasks_executed for n in cluster.nodes),
        tasks_hit=sum(n.cache_hits for n in cluster.nodes),
        tasks_missed=sum(n.cache_misses for n in cluster.nodes),
        timeline_samples=sampler,
        profile=ClusterProfile.from_cluster(cluster, max(events.now, 1e-9)),
        tracer=live_tracer,
        metrics=(
            RunMetrics(
                registry=registry,
                windows=metrics_sampler.windows if metrics_sampler else [],
                scenario=scenario.name,
                scheduler=scheduler.name,
            )
            if registry is not None
            else None
        ),
        frontend=frontend.stats() if frontend is not None else None,
        assignment_trace=assignment_trace,
        audit=audit_log,
        critical_paths=causal.analysis() if causal is not None else None,
        fault_report=(
            fault_runtime.finalize() if fault_runtime is not None else None
        ),
        wall_seconds=wall_seconds,
        stream=stream_report,
    )


def compare_schedulers(
    scenario: Scenario,
    schedulers: Sequence[Union[str, Scheduler]],
    *,
    config: Optional[RunConfig] = None,
    drain: bool = False,
    max_drain_time: Optional[float] = None,
) -> List[SimulationResult]:
    """Run the same scenario under each scheduler (Figs. 4-7 harness).

    Every run replays the identical trace on a fresh cluster.  Pass a
    :class:`~repro.sim.run_config.RunConfig` to control the runs; the
    ``drain`` / ``max_drain_time`` shortcuts remain for the common case.
    """
    if config is None:
        config = RunConfig(drain=drain, max_drain_time=max_drain_time)
    return [_run(scenario, sched, config) for sched in schedulers]


__all__ = [
    "RunConfig",
    "SimulationResult",
    "run_simulation",
    "compare_schedulers",
    "hash_assignment_trace",
]

"""Top-level simulation runner: scenario x scheduler → results.

:func:`run_simulation` wires a scenario's cluster, a scheduler, and the
workload trace into one discrete-event run and returns a
:class:`SimulationResult` with everything the evaluation section reports
(framerates, latencies, hit rates, scheduling costs, utilization).

:func:`compare_schedulers` runs the same scenario under several policies
— the shape of Figs. 4-7.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.cluster.cluster import Cluster
from repro.cluster.event_queue import PRIORITY_ARRIVAL, EventQueue
from repro.core.cost_model import mean
from repro.core.job import JobType
from repro.core.registry import make_scheduler
from repro.core.scheduler_base import Scheduler
from repro.metrics.analysis import (
    LatencyStats,
    SchedulerSummary,
    batch_working_time,
    delivered_framerates_by_action,
    framerates_by_action,
    latency_stats,
    mean_interactive_framerate,
    summarize,
)
from repro.metrics.collectors import JobRecord, SimulationCollector
from repro.metrics.timeline import TimelineSampler
from repro.obs.counters import CounterSampler, default_counter_interval
from repro.obs.metrics import (
    MetricsRegistry,
    MetricsSampler,
    RunMetrics,
    default_window_interval,
)
from repro.obs.profile import ClusterProfile
from repro.obs.tracer import PID_HEAD, Tracer, active_tracer, pid_for_node
from repro.sim.service import VisualizationService
from repro.workload.scenarios import Scenario


@dataclass
class SimulationResult:
    """Everything measured in one scenario x scheduler run."""

    scenario_name: str
    scheduler_name: str
    horizon: float
    target_framerate: float
    collector: SimulationCollector
    jobs_submitted: int
    jobs_completed: int
    simulated_time: float
    events_processed: int
    mean_node_utilization: float
    drained: bool
    tasks_executed: int = 0
    tasks_hit: int = 0
    tasks_missed: int = 0
    timeline: Optional["TimelineSampler"] = None
    profile: Optional["ClusterProfile"] = None
    tracer: Optional["Tracer"] = None
    metrics: Optional["RunMetrics"] = None

    # -- job records -----------------------------------------------------------

    @property
    def records(self) -> List[JobRecord]:
        """All completed-job records."""
        return self.collector.records

    @property
    def unfinished_jobs(self) -> int:
        """Jobs submitted but not completed within the run."""
        return self.jobs_submitted - self.jobs_completed

    # -- headline metrics --------------------------------------------------------

    @property
    def frame_interval(self) -> float:
        """Request spacing of one action: 1 / target framerate."""
        return 1.0 / self.target_framerate

    def interactive_framerates(self) -> Dict[int, float]:
        """Definition-4 framerate per interactive action."""
        return framerates_by_action(self.records)

    def delivered_framerates(self) -> Dict[int, float]:
        """Delivered framerate per interactive action."""
        return delivered_framerates_by_action(
            self.records, self.collector.action_issues, self.frame_interval
        )

    @property
    def interactive_fps(self) -> float:
        """Mean per-action *delivered* framerate (Fig. 4-7 bars)."""
        return mean(list(self.delivered_framerates().values()))

    @property
    def interactive_fps_definition4(self) -> float:
        """Mean per-action Definition-4 framerate (completion spacing)."""
        return mean_interactive_framerate(self.records)

    @property
    def interactive_latency(self) -> LatencyStats:
        """Interactive-job latency summary (Fig. 4-7 marked lines)."""
        return latency_stats(self.records, JobType.INTERACTIVE)

    @property
    def batch_latency(self) -> LatencyStats:
        """Batch-job latency summary (Fig. 5-7 left bars)."""
        return latency_stats(self.records, JobType.BATCH)

    @property
    def batch_working_time(self) -> float:
        """Mean batch ``JExec`` (Fig. 5-7 right bars)."""
        return batch_working_time(self.records)

    @property
    def hit_rate(self) -> float:
        """Data-reuse hit rate over *executed* tasks (Table III).

        Counts every task the rendering nodes ran (hits and misses are
        tallied when a task begins executing), including tasks of jobs
        that had not fully completed by the horizon; the collector's
        per-completed-job hit counts remain available via
        ``collector.hit_rate``.
        """
        total = self.tasks_hit + self.tasks_missed
        if total == 0:
            return 0.0
        return self.tasks_hit / total

    @property
    def sched_cost_us(self) -> float:
        """Average scheduling cost per job in µs (Table III)."""
        return self.collector.scheduling.mean_cost_per_job_us

    # -- observability -----------------------------------------------------

    def node_utilization_fractions(self) -> Dict[int, Dict[str, float]]:
        """Per-node ``{io, render, composite, idle}`` fractions.

        Each node's four fractions sum to 1.0; see
        :class:`~repro.obs.profile.NodeProfile`.
        """
        if self.profile is None:
            return {}
        return {p.node_id: p.fractions() for p in self.profile.nodes}

    def profile_table(self, *, title: str = "") -> str:
        """The per-node time-breakdown text table."""
        if self.profile is None:
            return "(no profile recorded)"
        return self.profile.table(title=title)

    def summary(self) -> SchedulerSummary:
        """One comparison row for this run."""
        return summarize(
            self.scheduler_name,
            self.records,
            hit_rate=self.hit_rate,
            sched_cost_us=self.sched_cost_us,
            action_issues=self.collector.action_issues,
            frame_interval=self.frame_interval,
        )


def run_simulation(
    scenario: Scenario,
    scheduler: Union[str, Scheduler],
    *,
    drain: bool = False,
    max_drain_time: Optional[float] = None,
    storage_seed: int = 0,
    timeline_interval: Optional[float] = None,
    node_failures: Optional[Sequence[Tuple[float, int]]] = None,
    tracer: Optional["Tracer"] = None,
    counter_interval: Optional[float] = None,
    metrics: Union[bool, MetricsRegistry] = False,
    metrics_interval: Optional[float] = None,
) -> SimulationResult:
    """Run one scenario under one scheduler.

    Args:
        scenario: System configuration + workload trace.
        scheduler: A registry name (e.g. ``"OURS"``) or an instance.
        drain: If True, keep simulating past the trace horizon until all
            submitted jobs complete (bounded by ``max_drain_time``
            simulated seconds past the horizon, when given).  The
            paper's measurements are horizon-bounded (``drain=False``):
            metrics cover jobs completed within the run window.
        storage_seed: Seed for I/O jitter (when the storage spec enables
            it).
        timeline_interval: If given, sample cluster dynamics (backlog,
            busy nodes, completions, hits) every this many simulated
            seconds; the series is returned as ``result.timeline``.
        node_failures: Optional crash schedule — ``(time, node_id)``
            pairs; each node fails at its time and its workload is
            recovered per the paper's §VI-D fault-tolerance design.
        tracer: Optional :class:`~repro.obs.tracer.Tracer`.  When given
            (and enabled), the run records spans (I/O loads, renders,
            compositing, scheduler invocations), cache instants, and
            the built-in counter tracks; export with
            :func:`repro.obs.write_chrome_trace`.  ``None`` (default)
            or a :class:`~repro.obs.tracer.NullTracer` costs nothing.
        counter_interval: Sampling period of the built-in counter
            tracks, in simulated seconds (defaults to ~256 samples over
            the horizon).  Only used when tracing.
        metrics: ``True`` (or an explicit
            :class:`~repro.obs.metrics.MetricsRegistry`) enables the
            metrics layer: the service, nodes, storage, and scheduler
            publish counters/histograms, a windowed sampler aggregates
            per-interval fps / latency quantiles / hit rate / I/O
            bytes, and the bundle is returned as ``result.metrics``
            (a :class:`~repro.obs.metrics.RunMetrics`).  ``False``
            (default) costs nothing and leaves every reported number
            bit-identical to an uninstrumented run.
        metrics_interval: Length of one aggregation window in simulated
            seconds (defaults to ~64 windows over the horizon).  Only
            used when ``metrics`` is enabled.

    Returns:
        A :class:`SimulationResult` (``result.profile`` carries the
        per-node io/render/composite/idle breakdown).
    """
    if isinstance(scheduler, str):
        scheduler = make_scheduler(scheduler)
    scheduler.reset()

    events = EventQueue()
    cluster = scenario.system.build_cluster(events=events, storage_seed=storage_seed)
    live_tracer = active_tracer(tracer)
    registry: Optional[MetricsRegistry] = None
    if metrics:
        registry = (
            metrics if isinstance(metrics, MetricsRegistry) else MetricsRegistry()
        )
    service = VisualizationService(
        cluster,
        scheduler,
        scenario.system.chunk_max,
        tracer=live_tracer,
        metrics=registry,
    )
    metrics_sampler: Optional[MetricsSampler] = None
    if registry is not None:
        for node in cluster.nodes:
            node.set_metrics(registry)
        cluster.storage.set_metrics(registry)
        horizon_hint = scenario.trace.duration
        window = (
            metrics_interval
            if metrics_interval is not None
            else default_window_interval(horizon_hint)
        )
        metrics_sampler = MetricsSampler(
            registry, window, horizon=None if drain else horizon_hint
        )
        metrics_sampler.attach(service)
    counter_sampler: Optional[CounterSampler] = None
    if live_tracer is not None:
        live_tracer.name_process(PID_HEAD, "head node")
        for node in cluster.nodes:
            live_tracer.name_process(
                pid_for_node(node.node_id), f"render node {node.node_id}"
            )
            node.set_tracer(live_tracer)
        horizon_hint = scenario.trace.duration
        interval = (
            counter_interval
            if counter_interval is not None
            else default_counter_interval(horizon_hint)
        )
        counter_sampler = CounterSampler(
            live_tracer,
            interval,
            horizon=None if drain else horizon_hint,
            per_node_cache=cluster.node_count <= 16,
        )
        counter_sampler.attach(service)
    if scenario.prewarm:
        service.prewarm(scenario.trace.datasets)
    sampler: Optional[TimelineSampler] = None
    if timeline_interval is not None:
        horizon_hint = None if drain else scenario.trace.duration
        sampler = TimelineSampler(timeline_interval, horizon=horizon_hint)
        sampler.attach(service)

    if node_failures:
        for fail_time, node_id in node_failures:
            if not 0 <= node_id < cluster.node_count:
                raise ValueError(f"node_failures references node {node_id}")
            events.schedule(
                fail_time, service.fail_node, node_id, priority=PRIORITY_ARRIVAL
            )

    datasets = {d.name: d for d in scenario.trace.datasets}
    for request in scenario.trace.requests:
        events.schedule(
            request.time,
            service.submit_request,
            request,
            datasets[request.dataset],
            priority=PRIORITY_ARRIVAL,
        )
    service.start()

    horizon = scenario.trace.duration
    events.run(until=horizon)
    drained = not service.has_work()
    if drain and not drained:
        limit = None if max_drain_time is None else horizon + max_drain_time
        while service.has_work():
            next_time = events.peek_time()
            if next_time is None:
                break
            if limit is not None and next_time > limit:
                break
            events.step()
        drained = not service.has_work()

    return SimulationResult(
        scenario_name=scenario.name,
        scheduler_name=scheduler.name,
        horizon=horizon,
        target_framerate=scenario.target_framerate,
        collector=service.collector,
        jobs_submitted=service.jobs_submitted,
        jobs_completed=service.jobs_completed,
        simulated_time=events.now,
        events_processed=events.processed,
        mean_node_utilization=cluster.mean_utilization(max(events.now, 1e-9)),
        drained=drained,
        tasks_executed=sum(n.tasks_executed for n in cluster.nodes),
        tasks_hit=sum(n.cache_hits for n in cluster.nodes),
        tasks_missed=sum(n.cache_misses for n in cluster.nodes),
        timeline=sampler,
        profile=ClusterProfile.from_cluster(cluster, max(events.now, 1e-9)),
        tracer=live_tracer,
        metrics=(
            RunMetrics(
                registry=registry,
                windows=metrics_sampler.windows if metrics_sampler else [],
                scenario=scenario.name,
                scheduler=scheduler.name,
            )
            if registry is not None
            else None
        ),
    )


def compare_schedulers(
    scenario: Scenario,
    schedulers: Sequence[Union[str, Scheduler]],
    *,
    drain: bool = False,
    max_drain_time: Optional[float] = None,
) -> List[SimulationResult]:
    """Run the same scenario under each scheduler (Figs. 4-7 harness).

    Every run replays the identical trace on a fresh cluster.
    """
    return [
        run_simulation(
            scenario, sched, drain=drain, max_drain_time=max_drain_time
        )
        for sched in schedulers
    ]


__all__ = ["SimulationResult", "run_simulation", "compare_schedulers"]

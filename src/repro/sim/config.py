"""System configurations: the two test systems of the paper (§VI-A).

* :func:`system_linux8` — the 8-node Linux cluster: quad-core 3.0 GHz
  Core 2, 4 GB RAM (memory quota constrained to 2 GB in the
  experiments), one GeForce GTX 285 (1 GiB VRAM) per node.
* :func:`system_anl` — the 100-node GPU cluster at Argonne (Eureka):
  two quad-core 2.0 GHz Xeons, 32 GB RAM (quota constrained to 8 GB),
  two Quadro FX5600 (1.5 GiB VRAM) per node; the experiments use 64 (or
  fewer) nodes.

A :class:`SystemConfig` bundles everything needed to build a
:class:`~repro.cluster.cluster.Cluster` plus the maximal chunk size
``Chkmax`` used by the paper's decomposition (512 MiB in all published
scenarios — "a moderate chunk size slightly less than the graphics
memory").
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters, cost_preset_anl, cost_preset_linux8
from repro.cluster.event_queue import EventQueue
from repro.cluster.gpu import GpuSpec
from repro.cluster.interconnect import LinkSpec
from repro.cluster.storage import StorageSpec
from repro.util.units import GiB, MiB
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SystemConfig:
    """A complete cluster + decomposition configuration.

    Attributes:
        name: Human-readable system name.
        node_count: Number of rendering nodes ``p``.
        memory_quota: Per-node main-memory byte budget for chunk caches.
        chunk_max: ``Chkmax`` — maximal chunk size for the paper's
            decomposition; must not exceed GPU memory.
        cost: Render/composite cost constants.
        storage: I/O model parameters.
        link: Interconnect parameters.
        gpu: Per-node GPU description.
        model_vram: Enable the explicit VRAM model (ablation; default
            off, matching the paper's cost model).
        gpus_per_node: Concurrent rendering pipelines per node.  Both
            calibrated presets use 1 (the paper accounts per node, and
            the cost constants are fit to per-node throughput); the
            multi-GPU ablation raises it.
    """

    name: str
    node_count: int
    memory_quota: int
    chunk_max: int = 512 * MiB
    cost: CostParameters = field(default_factory=CostParameters)
    storage: StorageSpec = field(default_factory=StorageSpec)
    link: LinkSpec = field(default_factory=LinkSpec)
    gpu: GpuSpec = field(default_factory=GpuSpec)
    model_vram: bool = False
    gpus_per_node: int = 1

    def __post_init__(self) -> None:
        check_positive("node_count", self.node_count)
        check_positive("memory_quota", self.memory_quota)
        check_positive("chunk_max", self.chunk_max)
        if self.chunk_max > self.gpu.video_memory:
            raise ValueError(
                f"Chkmax ({self.chunk_max}) exceeds GPU video memory "
                f"({self.gpu.video_memory}); the paper requires "
                "Chkmax <= graphics memory (§III-C)"
            )
        if self.gpus_per_node < 1:
            raise ValueError(
                f"gpus_per_node must be >= 1, got {self.gpus_per_node}"
            )
        if self.chunk_max > self.memory_quota:
            raise ValueError(
                f"Chkmax ({self.chunk_max}) exceeds the per-node memory "
                f"quota ({self.memory_quota})"
            )

    def build_cluster(
        self,
        *,
        events: Optional[EventQueue] = None,
        storage_seed: int = 0,
    ) -> Cluster:
        """Instantiate the cluster this configuration describes."""
        return Cluster(
            node_count=self.node_count,
            memory_quota=self.memory_quota,
            cost=self.cost,
            storage_spec=self.storage,
            link_spec=self.link,
            gpu=self.gpu,
            model_vram=self.model_vram,
            events=events,
            storage_seed=storage_seed,
            executors_per_node=self.gpus_per_node,
        )

    def with_overrides(self, **kwargs: object) -> "SystemConfig":
        """Return a copy with fields replaced (ablation helper)."""
        return replace(self, **kwargs)  # type: ignore[arg-type]

    @property
    def total_memory(self) -> int:
        """Aggregate chunk-cache capacity across the cluster."""
        return self.node_count * self.memory_quota


def system_linux8(
    *,
    node_count: int = 8,
    memory_quota: int = 2 * GiB,
    model_vram: bool = False,
) -> SystemConfig:
    """The paper's 8-node Linux cluster (Scenarios 1-2)."""
    return SystemConfig(
        name="linux8",
        node_count=node_count,
        memory_quota=memory_quota,
        chunk_max=512 * MiB,
        cost=cost_preset_linux8(),
        storage=StorageSpec(bandwidth=100 * MiB, latency=0.010),
        link=LinkSpec(latency=50e-6, bandwidth=1.25 * GiB),
        gpu=GpuSpec(video_memory=1 * GiB, upload_bandwidth=4 * GiB),
        model_vram=model_vram,
    )


def system_anl(
    *,
    node_count: int = 64,
    memory_quota: int = 8 * GiB,
    model_vram: bool = False,
) -> SystemConfig:
    """The ANL Eureka GPU cluster, as used in Scenarios 3-4.

    The experiments constrain the per-node memory quota to 8 GB and use
    64 of the 100 nodes (Figs. 8 and 9 use 32 and 16 nodes).
    """
    return SystemConfig(
        name="anl",
        node_count=node_count,
        memory_quota=memory_quota,
        chunk_max=512 * MiB,
        cost=cost_preset_anl(),
        storage=StorageSpec(bandwidth=200 * MiB, latency=0.010),
        link=LinkSpec(latency=30e-6, bandwidth=1.25 * GiB),
        gpu=GpuSpec(video_memory=int(1.5 * GiB), upload_bandwidth=4 * GiB),
        model_vram=model_vram,
    )


__all__ = ["SystemConfig", "system_linux8", "system_anl"]

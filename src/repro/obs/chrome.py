"""Chrome trace-event JSON export (loadable in Perfetto / chrome://tracing).

Maps the tracer's virtual-time events onto the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_:

* each **track** (head node, rendering node) becomes a *process*
  (``pid``), named via ``process_name`` metadata;
* each **lane** (render pipeline, I/O, compositing, scheduler, counter
  tracks) becomes a *thread* (``tid``), named via ``thread_name``
  metadata;
* spans export as ``X``/``B``/``E`` phases, instants as ``i``, counter
  samples as ``C``, flow events (causal arrows between spans) as
  ``s``/``t``/``f`` with their chain id in ``id``;
* virtual seconds convert to the format's microseconds;
* span/instant names are forced to ASCII (Perfetto's legacy JSON
  importer mangles non-ASCII names) via backslash escapes.

``write_chrome_trace(path, tracer)`` produces a file you can drag into
`ui.perfetto.dev <https://ui.perfetto.dev>`_ and see, per rendering
node, exactly where the paper's schedulers spend their time — I/O storms
under FCFS, cache-resident rendering under OURS.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

from repro.obs.tracer import Tracer

_US = 1e6  # seconds → trace-format microseconds


def _ascii(name: str) -> str:
    """Force ``name`` to ASCII with backslash escapes (lossless)."""
    if name.isascii():
        return name
    return name.encode("ascii", "backslashreplace").decode("ascii")


def _metadata_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """``process_name`` / ``thread_name`` metadata rows for the tracer.

    Every track (``pid``) that appears in the recorded events gets a
    ``process_name`` row — tracks never explicitly named fall back to
    ``"track <pid>"`` so Perfetto still labels the row.
    """
    seen_pids = {e.pid for e in tracer.events}
    seen_pids.update(tracer.process_names)
    out: List[Dict[str, Any]] = []
    for pid in sorted(seen_pids):
        out.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {
                    "name": _ascii(
                        tracer.process_names.get(pid, f"track {pid}")
                    )
                },
            }
        )
        out.append(
            {
                "ph": "M",
                "name": "process_sort_index",
                "pid": pid,
                "tid": 0,
                "args": {"sort_index": pid},
            }
        )
    for (pid, tid), lane in sorted(tracer._lane_names.items()):
        out.append(
            {
                "ph": "M",
                "name": "thread_name",
                "pid": pid,
                "tid": tid,
                "args": {"name": _ascii(lane)},
            }
        )
        out.append(
            {
                "ph": "M",
                "name": "thread_sort_index",
                "pid": pid,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    return out


def chrome_trace_events(tracer: Tracer) -> List[Dict[str, Any]]:
    """Convert a tracer's recorded events to trace-format dictionaries.

    Metadata (process/thread names) comes first, then events in record
    order — which is non-decreasing in ``ts`` per ``(pid, tid)`` lane by
    the tracer's construction.
    """
    out = _metadata_events(tracer)
    for e in tracer.events:
        row: Dict[str, Any] = {
            "ph": e.phase,
            "name": _ascii(e.name),
            "ts": round(e.ts * _US, 3),
            "pid": e.pid,
            "tid": e.tid,
        }
        if e.category is not None:
            row["cat"] = e.category
        if e.phase == "X":
            row["dur"] = round((e.dur or 0.0) * _US, 3)
        if e.phase == "i":
            row["s"] = "t"  # instant scope: thread
        elif e.phase in ("s", "t", "f"):
            row["id"] = e.flow_id
            if e.phase == "f":
                row["bp"] = "e"  # bind the arrow to the enclosing slice
        if e.args is not None:
            row["args"] = dict(e.args)
        out.append(row)
    return out


def to_chrome_trace(
    tracer: Tracer,
    *,
    metadata: Optional[Mapping[str, Any]] = None,
) -> Dict[str, Any]:
    """Build the top-level JSON-object form of the trace.

    Args:
        tracer: The recorded tracer.
        metadata: Optional run description merged into ``otherData``
            (scenario name, scheduler, scale — anything JSON-serializable).
    """
    doc: Dict[str, Any] = {
        "traceEvents": chrome_trace_events(tracer),
        "displayTimeUnit": "ms",
    }
    if metadata:
        doc["otherData"] = dict(metadata)
    return doc


def write_chrome_trace(
    path: Union[str, Path],
    tracer: Tracer,
    *,
    metadata: Optional[Mapping[str, Any]] = None,
    indent: Optional[int] = None,
) -> Path:
    """Serialize the trace to ``path``; returns the written path.

    Parent directories are created as needed, so ``--trace out/run.json``
    works without a separate mkdir.
    """
    path = Path(path)
    if path.parent != Path("."):
        path.parent.mkdir(parents=True, exist_ok=True)
    doc = to_chrome_trace(tracer, metadata=metadata)
    path.write_text(json.dumps(doc, indent=indent, default=str) + "\n")
    return path


__all__ = ["chrome_trace_events", "to_chrome_trace", "write_chrome_trace"]

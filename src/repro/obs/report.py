"""Self-contained SVG/HTML run reports from the timeline model.

Zero-dependency renderer for :class:`~repro.obs.timeline.TimelineModel`:
pure stdlib, emitting a **standalone SVG** (the schedule drawing alone)
or a **single-file HTML report** — run-summary tiles, per-node Gantt
lanes, utilization and queue-pressure tracks, the dataset→node
cache-residency heatmap, SLO/fault overlays, decision-reason mix,
per-phase latency shares, and the worst-p99 jobs with their critical
paths drawn onto the timeline.  Given two models (an A/B run over the
identical workload) it renders them side by side with the first
diverging scheduling decision marked on both.

Everything is deterministic: floats are formatted with fixed precision,
mappings are emitted in sorted order, and the model itself carries no
wall-clock quantities — the same seeded run always produces the
byte-identical file.  No external assets, no JavaScript; hover detail
rides on native SVG ``<title>`` tooltips and every chart has a table
twin, so the report degrades to plain text gracefully.

Colors follow the repo-wide chart palette (validated for CVD safety in
light and dark mode); dark mode is driven by ``prefers-color-scheme``
via CSS custom properties, with light values as fallbacks so the
standalone SVG renders correctly in bare viewers.
"""

from __future__ import annotations

import html
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.causal import PHASES, Divergence
from repro.obs.timeline import LANE_KINDS, Segment, TimelineModel

# -- palette (see docs: validated categorical order, fixed, never cycled) --

#: Gantt / phase colors, light and dark steps of the same hues.
#: Stack adjacency (scheduling→queueing→io→render→composite) passes the
#: CVD and normal-vision floors in both modes.
_PALETTE = {
    "io": ("#eb6834", "#d95926"),
    "render": ("#2a78d6", "#3987e5"),
    "composite": ("#1baf7a", "#199e70"),
    "scheduling": ("#e87ba4", "#d55181"),
    "queueing": ("#4a3aa7", "#9085e9"),
    "path": ("#e34948", "#e66767"),
}

#: Status colors (fixed, never themed) for fault/SLO overlays.
_STATUS = {
    "good": "#0ca30c",
    "warning": "#fab219",
    "serious": "#ec835a",
    "critical": "#d03b3b",
}

#: Sequential blue ramp (13 steps, light→dark) for the residency heatmap.
_HEAT_RAMP = (
    "#cde2fb", "#b7d3f6", "#9ec5f4", "#86b6ef", "#6da7ec", "#5598e7",
    "#3987e5", "#2a78d6", "#256abf", "#1c5cab", "#184f95", "#104281",
    "#0d366b",
)

_MARKER_STATUS = {"onset": "serious", "detection": "warning", "recovery": "good"}

# -- geometry ----------------------------------------------------------------

_WIDTH = 960
_M_LEFT = 150
_M_RIGHT = 20
_PLOT_W = _WIDTH - _M_LEFT - _M_RIGHT
_LANE_H = 10
_LANE_GAP = 2
_ROW_PAD = 6
_TRACK_H = 36
_HEAT_CELL_H = 10
_FONT = 'font-family="system-ui,-apple-system,\'Segoe UI\',sans-serif"'


def _esc(value) -> str:
    """HTML/XML-escape any value (names may be non-ASCII or hostile)."""
    return html.escape(str(value), quote=True)


def _n(value: float) -> str:
    """Deterministic coordinate format: fixed 2 decimals, trimmed."""
    text = f"{value:.2f}"
    return text.rstrip("0").rstrip(".") if "." in text else text


def _secs(t: float) -> str:
    """Deterministic time label in seconds."""
    return f"{t:.3f}s"


def _ms(t: float) -> str:
    return f"{t * 1e3:.2f} ms"


def _pct(v: float) -> str:
    return f"{v * 100.0:.1f}%"


def _tick_step(span: float) -> float:
    """A clean tick interval giving ~6-10 ticks over ``span``."""
    if span <= 0:
        return 1.0
    raw = span / 8.0
    magnitude = 10.0 ** math.floor(math.log10(raw))
    for mult in (1.0, 2.0, 5.0, 10.0):
        if raw <= mult * magnitude:
            return mult * magnitude
    return 10.0 * magnitude


class _Svg:
    """Tiny deterministic SVG assembler."""

    def __init__(self) -> None:
        self.parts: List[str] = []

    def add(self, text: str) -> None:
        self.parts.append(text)

    def rect(
        self,
        x: float,
        y: float,
        w: float,
        h: float,
        cls: str,
        title: Optional[str] = None,
        rx: float = 0.0,
        style: str = "",
    ) -> None:
        attrs = (
            f'x="{_n(x)}" y="{_n(y)}" width="{_n(max(w, 0.0))}" '
            f'height="{_n(max(h, 0.0))}" class="{cls}"'
        )
        if rx:
            attrs += f' rx="{_n(rx)}"'
        if style:
            attrs += f' style="{style}"'
        if title:
            self.add(f"<rect {attrs}><title>{_esc(title)}</title></rect>")
        else:
            self.add(f"<rect {attrs}/>")

    def line(
        self, x1: float, y1: float, x2: float, y2: float, cls: str
    ) -> None:
        self.add(
            f'<line x1="{_n(x1)}" y1="{_n(y1)}" x2="{_n(x2)}" '
            f'y2="{_n(y2)}" class="{cls}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        cls: str,
        anchor: str = "start",
        size: int = 11,
    ) -> None:
        self.add(
            f'<text x="{_n(x)}" y="{_n(y)}" class="{cls}" '
            f'text-anchor="{anchor}" font-size="{size}" {_FONT}>'
            f"{_esc(content)}</text>"
        )

    def polyline(
        self, points: Sequence[Tuple[float, float]], cls: str,
        title: Optional[str] = None,
    ) -> None:
        pts = " ".join(f"{_n(x)},{_n(y)}" for x, y in points)
        if title:
            self.add(
                f'<polyline points="{pts}" class="{cls}">'
                f"<title>{_esc(title)}</title></polyline>"
            )
        else:
            self.add(f'<polyline points="{pts}" class="{cls}"/>')

    def circle(
        self, cx: float, cy: float, r: float, cls: str,
        title: Optional[str] = None,
    ) -> None:
        body = f'<circle cx="{_n(cx)}" cy="{_n(cy)}" r="{_n(r)}" class="{cls}"'
        if title:
            self.add(body + f"><title>{_esc(title)}</title></circle>")
        else:
            self.add(body + "/>")


def _coalesce(segments: Sequence[Segment], min_span: float) -> List[Tuple[float, float, int, str, bool]]:
    """Merge a lane's segments so no drawn bar is thinner than ``min_span``.

    Dense smoke-scale runs produce tens of thousands of sub-pixel spans;
    drawing each would bloat the file without adding legibility.  The
    walk keeps segments chronological and merges a segment into the
    previous drawn bar while the bar is still thinner than ``min_span``
    and the gap to it is smaller than ``min_span`` — so idle gaps wide
    enough to *see* always survive.  Returns ``(start, end, count,
    label, truncated)`` bars.
    """
    bars: List[Tuple[float, float, int, str, bool]] = []
    for seg in segments:
        if bars:
            start, end, count, label, truncated = bars[-1]
            if seg.start - end < min_span and (end - start) < min_span:
                bars[-1] = (
                    start,
                    max(end, seg.end),
                    count + 1,
                    label,
                    truncated or seg.truncated,
                )
                continue
        bars.append((seg.start, seg.end, 1, seg.label, seg.truncated))
    return bars


def _svg_class_css(scope: str) -> str:
    """The class rules the SVG body uses, scoped under ``scope``.

    Every color is a ``var()`` with the light value as fallback, so a
    bare SVG viewer that ignores the variables still renders correctly.
    """
    v = {name: pair[0] for name, pair in _PALETTE.items()}
    s = _STATUS
    return f"""{scope} .rr-io {{ fill: var(--rr-io, {v['io']}); }}
{scope} .rr-render {{ fill: var(--rr-render, {v['render']}); }}
{scope} .rr-composite {{ fill: var(--rr-composite, {v['composite']}); }}
{scope} .rr-trunc {{ fill: var(--rr-critical, {s['critical']}); }}
{scope} .rr-t1 {{ fill: var(--rr-ink, #0b0b0b); }}
{scope} .rr-t2 {{ fill: var(--rr-ink2, #52514e); }}
{scope} .rr-tm {{ fill: var(--rr-muted, #898781); }}
{scope} .rr-grid {{ stroke: var(--rr-grid, #e1e0d9); stroke-width: 1; }}
{scope} .rr-base {{ stroke: var(--rr-baseline, #c3c2b7); stroke-width: 1; }}
{scope} .rr-busy-line {{ stroke: var(--rr-render, {v['render']}); stroke-width: 2; fill: none; stroke-linejoin: round; stroke-linecap: round; }}
{scope} .rr-busy-fill {{ fill: var(--rr-render, {v['render']}); opacity: 0.1; }}
{scope} .rr-q1 {{ stroke: var(--rr-render, {v['render']}); stroke-width: 2; fill: none; stroke-linejoin: round; stroke-linecap: round; }}
{scope} .rr-q2 {{ stroke: var(--rr-io, {v['io']}); stroke-width: 2; fill: none; stroke-linejoin: round; stroke-linecap: round; }}
{scope} .rr-win-slo {{ fill: {s['critical']}; opacity: 0.12; }}
{scope} .rr-win-storage {{ fill: {s['serious']}; opacity: 0.12; }}
{scope} .rr-mark-onset {{ stroke: {s['serious']}; stroke-width: 1.5; }}
{scope} .rr-mark-detection {{ stroke: {s['warning']}; stroke-width: 1.5; }}
{scope} .rr-mark-recovery {{ stroke: {s['good']}; stroke-width: 1.5; }}
{scope} .rr-mark-divergence {{ stroke: var(--rr-ink, #0b0b0b); stroke-width: 1.5; }}
{scope} .rr-glyph-onset {{ fill: {s['serious']}; }}
{scope} .rr-glyph-detection {{ fill: {s['warning']}; }}
{scope} .rr-glyph-recovery {{ fill: {s['good']}; }}
{scope} .rr-path {{ stroke: var(--rr-path, {v['path']}); stroke-width: 2; fill: none; stroke-linejoin: round; stroke-linecap: round; }}
{scope} .rr-path-dot {{ fill: var(--rr-path, {v['path']}); stroke: var(--rr-surface, #fcfcfb); stroke-width: 2; }}
"""


def render_timeline_svg(
    model: TimelineModel,
    *,
    bins: int = 60,
    divergence_time: Optional[float] = None,
    standalone: bool = True,
) -> str:
    """Render one run's schedule drawing as a self-contained SVG.

    Args:
        model: The extracted timeline.
        bins: Residency-heatmap time bins.
        divergence_time: When set (A/B reports), a labelled vertical
            marker is drawn at this instant.
        standalone: Embed the style block (with light-mode fallbacks and
            a dark-mode media query) so the file works outside the HTML
            report.  The report embeds SVGs with ``standalone=False``
            and supplies the CSS once.
    """
    span = max(model.end, 1e-9)

    def x_of(t: float) -> float:
        return _M_LEFT + _PLOT_W * min(max(t, 0.0), span) / span

    svg = _Svg()
    min_span = span * 1.5 / _PLOT_W  # ~1.5px
    y = 18.0

    # Legend row (identity never rides on color alone: swatch + label).
    lx = _M_LEFT
    for kind in LANE_KINDS:
        svg.rect(lx, y - 9, 14, 9, f"rr-{kind}", rx=2)
        svg.text(lx + 18, y, kind, "rr-t2", size=10)
        lx += 18 + 9 * len(kind) + 16
    svg.rect(lx, y - 9, 14, 9, "rr-trunc", rx=2)
    svg.text(lx + 18, y, "cut by crash", "rr-t2", size=10)
    lx += 18 + 9 * len("cut by crash") + 16
    if model.paths:
        svg.line(lx, y - 4, lx + 14, y - 4, "rr-path")
        svg.text(lx + 18, y, "p99 critical path", "rr-t2", size=10)
    y += 14.0

    # Time axis.
    axis_y = y
    step = _tick_step(span)
    ticks: List[float] = []
    t = 0.0
    while t <= span + step * 1e-6:
        ticks.append(min(t, span))
        t += step
    for tick in ticks:
        svg.text(x_of(tick), axis_y + 10, _secs(tick), "rr-tm", "middle", 9)
    y = axis_y + 16

    # Gantt rows.
    gantt_top = y
    node_rows: List[Tuple[int, float, float]] = []  # (node, top, height)
    for node in range(model.node_count):
        lanes = model.lanes_for(node)
        height = max(1, len(lanes)) * (_LANE_H + _LANE_GAP) + _ROW_PAD
        node_rows.append((node, y, height))
        svg.text(
            _M_LEFT - 10, y + height / 2 + 3, f"node {node}", "rr-t1", "end", 11
        )
        lane_y = y + _ROW_PAD / 2
        by_lane: Dict[Tuple[str, str], List[Segment]] = {}
        for seg in model.segments:
            if seg.node == node:
                by_lane.setdefault((seg.kind, seg.lane), []).append(seg)
        for kind, lane in lanes:
            svg.line(
                _M_LEFT, lane_y + _LANE_H / 2, _WIDTH - _M_RIGHT,
                lane_y + _LANE_H / 2, "rr-grid",
            )
            for start, end, count, label, truncated in _coalesce(
                by_lane.get((kind, lane), []), min_span
            ):
                x0, x1 = x_of(start), x_of(end)
                title = (
                    f"node {node} · {lane}: "
                    + (label if count == 1 else f"{count} tasks")
                    + f" · {_secs(start)}–{_secs(end)}"
                    + (" · cut short by crash" if truncated else "")
                )
                svg.rect(
                    x0, lane_y, max(x1 - x0, 0.75), _LANE_H,
                    f"rr-{kind}" + (" rr-has-trunc" if truncated else ""),
                    title=title, rx=1,
                )
                if truncated:
                    svg.rect(
                        max(x1 - 1.5, x0), lane_y, 1.5, _LANE_H, "rr-trunc",
                    )
            lane_y += _LANE_H + _LANE_GAP
        y += height
    gantt_bottom = y
    if model.node_count == 0:
        svg.text(_M_LEFT, y + 12, "(no nodes)", "rr-tm", size=10)
        y += 20
        gantt_bottom = y

    # Vertical gridlines across the gantt.
    for tick in ticks:
        svg.line(x_of(tick), gantt_top, x_of(tick), gantt_bottom, "rr-grid")

    # Overlay windows (washes) spanning the gantt region.
    for win in model.windows:
        cls = "rr-win-slo" if win.kind == "slo-violation" else "rr-win-storage"
        x0, x1 = x_of(win.start), x_of(win.end)
        svg.rect(
            x0, gantt_top, max(x1 - x0, 1.0), gantt_bottom - gantt_top, cls,
            title=f"{win.label} · {_secs(win.start)}–{_secs(win.end)}",
        )

    # Fault markers: vertical hairline + glyph (never color alone: the
    # glyph shape differs per kind and every marker carries a tooltip).
    for marker in model.markers:
        mx = x_of(marker.time)
        svg.line(mx, gantt_top, mx, gantt_bottom, f"rr-mark-{marker.kind}")
        title = f"{marker.label} @ {_secs(marker.time)}"
        gy = gantt_top + 4
        if marker.kind == "onset":  # triangle
            svg.add(
                f'<path d="M {_n(mx)} {_n(gy - 4)} L {_n(mx - 4)} {_n(gy + 4)} '
                f'L {_n(mx + 4)} {_n(gy + 4)} Z" class="rr-glyph-onset">'
                f"<title>{_esc(title)}</title></path>"
            )
        elif marker.kind == "detection":  # diamond
            svg.add(
                f'<path d="M {_n(mx)} {_n(gy - 4)} L {_n(mx + 4)} {_n(gy)} '
                f'L {_n(mx)} {_n(gy + 4)} L {_n(mx - 4)} {_n(gy)} Z" '
                f'class="rr-glyph-detection"><title>{_esc(title)}</title></path>'
            )
        else:  # circle
            svg.circle(mx, gy, 4, "rr-glyph-recovery", title=title)

    # First-divergence marker (A/B reports).
    if divergence_time is not None:
        dx = x_of(divergence_time)
        svg.line(dx, gantt_top - 12, dx, gantt_bottom, "rr-mark-divergence")
        anchor = "start" if dx < _WIDTH - 140 else "end"
        svg.text(
            dx + (4 if anchor == "start" else -4), gantt_top - 4,
            f"first divergence @ {_secs(divergence_time)}", "rr-t1", anchor, 10,
        )

    # Worst critical paths drawn onto their bounding node's row.
    row_center = {node: top + h / 2 for node, top, h in node_rows}
    for path in model.paths:
        py = row_center.get(path.node)
        if py is None:
            continue
        points = [
            (x_of(path.arrival), py),
            (x_of(path.assign), py),
            (x_of(path.start), py),
            (x_of(path.io_done), py),
            (x_of(path.render_done), py),
            (x_of(path.finish), py),
        ]
        phases = path.phase_values()
        title = (
            f"p99 path · user {path.user} action {path.action} "
            f"seq {path.sequence} ({path.job_type}) · node {path.node} · "
            f"latency {_ms(path.latency)} · "
            + " · ".join(f"{k} {_ms(vv)}" for k, vv in phases.items())
            + (" · cache hit" if path.cache_hit else " · cache miss")
        )
        svg.polyline(points, "rr-path", title=title)
        for px, _ in points[1:-1]:
            svg.circle(px, py, 2.5, "rr-path-dot")
        svg.circle(x_of(path.finish), py, 4, "rr-path-dot", title=title)

    y = gantt_bottom + 12

    # Busy-nodes track (single series: title names it, no legend box).
    busy = model.busy_fraction()
    svg.text(_M_LEFT - 10, y + _TRACK_H / 2 + 3, "busy fraction", "rr-t2", "end", 10)
    svg.line(_M_LEFT, y + _TRACK_H, _WIDTH - _M_RIGHT, y + _TRACK_H, "rr-base")
    if busy.times:
        pts = [(x_of(t), y + _TRACK_H * (1.0 - v)) for t, v in zip(busy.times, busy.values)]
        fill_pts = [(pts[0][0], y + _TRACK_H)] + pts + [(pts[-1][0], y + _TRACK_H)]
        svg.add(
            '<polygon points="'
            + " ".join(f"{_n(px)},{_n(py)}" for px, py in fill_pts)
            + '" class="rr-busy-fill"/>'
        )
        svg.polyline(pts, "rr-busy-line", title="busy nodes / node count")
    y += _TRACK_H + 14

    # Queue-pressure track (two series -> legend).
    queued = model.counters.get("queued jobs")
    backlog = model.counters.get("node backlog")
    peak = max(
        [1.0]
        + list(queued.values if queued else ())
        + list(backlog.values if backlog else ())
    )
    svg.text(_M_LEFT - 10, y + _TRACK_H / 2 + 3, "queue depth", "rr-t2", "end", 10)
    svg.line(_M_LEFT, y + _TRACK_H, _WIDTH - _M_RIGHT, y + _TRACK_H, "rr-base")
    for series, cls in ((queued, "rr-q1"), (backlog, "rr-q2")):
        if series and series.times:
            pts = [
                (x_of(t), y + _TRACK_H * (1.0 - v / peak))
                for t, v in zip(series.times, series.values)
            ]
            svg.polyline(pts, cls, title=f"{series.name} (peak {peak:g})")
    lx = _M_LEFT
    ly = y + _TRACK_H + 11
    svg.line(lx, ly - 3, lx + 14, ly - 3, "rr-q1")
    svg.text(lx + 18, ly, "queued jobs", "rr-t2", size=10)
    lx += 18 + 9 * len("queued jobs") + 10
    svg.line(lx, ly - 3, lx + 14, ly - 3, "rr-q2")
    svg.text(lx + 18, ly, "node backlog", "rr-t2", size=10)
    svg.text(
        _WIDTH - _M_RIGHT, ly, f"peak {peak:g}", "rr-tm", "end", 10
    )
    y += _TRACK_H + 22

    # Cache-residency heatmap: one block per dataset, one row per node.
    heat = model.heatmap(bins)
    if heat:
        bin_w = _PLOT_W / bins
        for dataset in model.datasets:
            rows = heat.get(dataset)
            if rows is None:
                continue
            svg.text(_M_LEFT, y + 10, f"cache residency · {dataset}", "rr-t2", size=10)
            y += 16
            for node in sorted(rows):
                svg.text(
                    _M_LEFT - 10, y + _HEAT_CELL_H - 2, f"node {node}",
                    "rr-tm", "end", 9,
                )
                row = rows[node]
                for b, value in enumerate(row):
                    if value <= 0.0:
                        continue
                    ramp_i = min(
                        len(_HEAT_RAMP) - 1, int(value * len(_HEAT_RAMP))
                    )
                    t0 = span * b / bins
                    t1 = span * (b + 1) / bins
                    svg.rect(
                        _M_LEFT + b * bin_w, y, bin_w - 0.5,
                        _HEAT_CELL_H, "rr-heat",
                        title=(
                            f"{dataset} on node {node} · "
                            f"{_secs(t0)}–{_secs(t1)} · {_pct(value)} resident"
                        ),
                        style=f"fill:{_HEAT_RAMP[ramp_i]}",
                    )
                y += _HEAT_CELL_H + 2
            y += 8
        svg.text(_M_LEFT, y + 10, "share of dataset resident:", "rr-tm", size=9)
        lx = _M_LEFT + 150
        for i, color in enumerate(_HEAT_RAMP):
            svg.rect(lx + i * 16, y + 2, 15.5, 10, "rr-heat", style=f"fill:{color}")
        svg.text(lx - 4, y + 11, "0%", "rr-tm", "end", 9)
        svg.text(lx + len(_HEAT_RAMP) * 16 + 4, y + 11, "100%", "rr-tm", size=9)
        y += 24

    height = y + 8
    style = ""
    if standalone:
        style = (
            "<style>svg.rr-svg { background: var(--rr-surface, #fcfcfb); }\n"
            + _svg_class_css("svg.rr-svg")
            + "@media (prefers-color-scheme: dark) { svg.rr-svg {"
            + " --rr-surface: #1a1a19; --rr-ink: #ffffff; --rr-ink2: #c3c2b7;"
            + " --rr-grid: #2c2c2a; --rr-baseline: #383835;"
            + "".join(
                f" --rr-{name}: {pair[1]};"
                for name, pair in sorted(_PALETTE.items())
            )
            + " } }</style>"
        )
    header = (
        f'<svg xmlns="http://www.w3.org/2000/svg" class="rr-svg" '
        f'viewBox="0 0 {_WIDTH} {_n(height)}" width="{_WIDTH}" '
        f'height="{_n(height)}" role="img" '
        f'aria-label="schedule timeline for {_esc(model.scheduler)}">'
    )
    return header + style + "".join(svg.parts) + "</svg>"


# -- HTML report -------------------------------------------------------------


def _css() -> str:
    light_vars = "".join(
        f"  --rr-{name}: {pair[0]};\n" for name, pair in sorted(_PALETTE.items())
    )
    dark_vars = "".join(
        f"  --rr-{name}: {pair[1]};\n" for name, pair in sorted(_PALETTE.items())
    )
    return f""":root {{
  color-scheme: light;
  --rr-surface: #fcfcfb;
  --rr-page: #f9f9f7;
  --rr-ink: #0b0b0b;
  --rr-ink2: #52514e;
  --rr-muted: #898781;
  --rr-grid: #e1e0d9;
  --rr-baseline: #c3c2b7;
  --rr-critical: {_STATUS['critical']};
{light_vars}}}
@media (prefers-color-scheme: dark) {{
  :root {{
    color-scheme: dark;
    --rr-surface: #1a1a19;
    --rr-page: #0d0d0d;
    --rr-ink: #ffffff;
    --rr-ink2: #c3c2b7;
    --rr-grid: #2c2c2a;
    --rr-baseline: #383835;
{dark_vars}  }}
}}
* {{ box-sizing: border-box; }}
body {{
  margin: 0; padding: 24px;
  background: var(--rr-page); color: var(--rr-ink);
  font-family: system-ui, -apple-system, "Segoe UI", sans-serif;
  font-size: 14px; line-height: 1.45;
}}
h1 {{ font-size: 22px; margin: 0 0 2px; }}
h2 {{ font-size: 15px; margin: 28px 0 8px; }}
h3 {{ font-size: 13px; margin: 18px 0 6px; color: var(--rr-ink2); }}
.rr-sub {{ color: var(--rr-ink2); margin: 0 0 18px; }}
.rr-card {{
  background: var(--rr-surface); border-radius: 8px; padding: 16px;
  margin-bottom: 16px; border: 1px solid rgba(11,11,11,0.10);
}}
@media (prefers-color-scheme: dark) {{
  .rr-card {{ border-color: rgba(255,255,255,0.10); }}
}}
.rr-tiles {{ display: flex; flex-wrap: wrap; gap: 12px; }}
.rr-tile {{
  background: var(--rr-surface); border-radius: 8px; padding: 10px 14px;
  min-width: 108px; border: 1px solid rgba(11,11,11,0.10);
}}
@media (prefers-color-scheme: dark) {{
  .rr-tile {{ border-color: rgba(255,255,255,0.10); }}
}}
.rr-tile .label {{ color: var(--rr-ink2); font-size: 11px; }}
.rr-tile .value {{ font-weight: 600; font-size: 20px; }}
.rr-tile .who {{ color: var(--rr-muted); font-size: 10px; }}
.rr-cols {{ display: grid; grid-template-columns: 1fr 1fr; gap: 16px; }}
@media (max-width: 1100px) {{ .rr-cols {{ grid-template-columns: 1fr; }} }}
svg.rr-svg {{ width: 100%; height: auto; background: var(--rr-surface); border-radius: 6px; }}
{_svg_class_css("svg.rr-svg")}
table {{ border-collapse: collapse; width: 100%; font-size: 12px; }}
th, td {{
  text-align: right; padding: 4px 8px;
  border-bottom: 1px solid var(--rr-grid);
  font-variant-numeric: tabular-nums;
}}
th {{ color: var(--rr-ink2); font-weight: 600; }}
th:first-child, td:first-child {{ text-align: left; }}
.rr-bar-row {{ display: flex; align-items: center; gap: 8px; margin: 2px 0; }}
.rr-bar-label {{ width: 130px; font-size: 12px; color: var(--rr-ink2); text-align: right; flex: none; }}
.rr-bar-track {{ flex: 1; display: flex; }}
.rr-bar {{ height: 14px; border-radius: 0 4px 4px 0; }}
.rr-bar-value {{ font-size: 11px; color: var(--rr-ink2); margin-left: 6px; font-variant-numeric: tabular-nums; }}
.rr-stack {{ display: flex; height: 18px; gap: 2px; border-radius: 4px; overflow: hidden; }}
.rr-stack div {{ height: 100%; }}
.rr-key {{ display: inline-flex; align-items: center; gap: 6px; margin-right: 14px; font-size: 12px; color: var(--rr-ink2); }}
.rr-key i {{ width: 12px; height: 12px; border-radius: 3px; display: inline-block; }}
.rr-diverge {{
  border-left: 3px solid var(--rr-ink); padding: 8px 12px; margin: 8px 0;
  background: var(--rr-surface); font-size: 13px;
}}
.rr-footer {{ color: var(--rr-muted); font-size: 11px; margin-top: 24px; }}
"""


def _tile(label: str, value: str, who: str = "") -> str:
    sub = f'<div class="who">{_esc(who)}</div>' if who else ""
    return (
        f'<div class="rr-tile"><div class="label">{_esc(label)}</div>'
        f'<div class="value">{_esc(value)}</div>{sub}</div>'
    )


def _summary_tiles(model: TimelineModel) -> str:
    s = model.summary
    who = model.scheduler
    tiles = [
        _tile("delivered fps", f"{s.get('interactive_fps', 0.0):.2f}", who),
        _tile(
            "jobs completed",
            f"{s.get('jobs_completed', 0)}/{s.get('jobs_submitted', 0)}",
            who,
        ),
        _tile("cache hit rate", _pct(s.get("hit_rate", 0.0)), who),
        _tile("mean latency", _ms(s.get("mean_latency", 0.0)), who),
        _tile("p99 latency", _ms(s.get("p99_latency", 0.0)), who),
        _tile("node utilization", _pct(s.get("mean_node_utilization", 0.0)), who),
    ]
    return "".join(tiles)


def _series_color(index: int) -> str:
    # Categorical slots in fixed order (render-blue, io-orange): the A/B
    # report never has more than two series.
    return "var(--rr-render)" if index == 0 else "var(--rr-io)"


def _reason_mix(models: Sequence[TimelineModel]) -> str:
    """Grouped horizontal bars: decision-reason counts per scheduler."""
    reasons = sorted(
        {r for m in models for r in m.reason_counts},
        key=lambda r: (-max(m.reason_counts.get(r, 0) for m in models), r),
    )
    if not reasons:
        return "<p class='rr-sub'>(no audit log recorded)</p>"
    peak = max(
        max(m.reason_counts.get(r, 0) for m in models) for r in reasons
    )
    peak = max(peak, 1)
    rows = []
    for reason in reasons:
        for i, model in enumerate(models):
            count = model.reason_counts.get(reason, 0)
            width = 100.0 * count / peak
            label = reason if i == 0 else ""
            rows.append(
                f'<div class="rr-bar-row">'
                f'<div class="rr-bar-label">{_esc(label)}</div>'
                f'<div class="rr-bar-track"><div class="rr-bar" '
                f'style="width:{width:.2f}%;background:{_series_color(i)}">'
                f'</div><span class="rr-bar-value">{count}</span></div></div>'
            )
    legend = ""
    if len(models) > 1:
        legend = "<p>" + "".join(
            f'<span class="rr-key"><i style="background:{_series_color(i)}">'
            f"</i>{_esc(m.scheduler)}</span>"
            for i, m in enumerate(models)
        ) + "</p>"
    return legend + "".join(rows)


def _phase_key() -> str:
    return "<p>" + "".join(
        f'<span class="rr-key"><i style="background:var(--rr-{name})"></i>'
        f"{_esc(name)}</span>"
        for name in PHASES
    ) + "</p>"


def _phase_stacks(models: Sequence[TimelineModel]) -> str:
    """One stacked share bar per scheduler + the numbers as a table."""
    out = [_phase_key()]
    for model in models:
        shares = model.phase_shares()
        cells = "".join(
            f'<div style="width:{shares[name] * 100.0:.2f}%;'
            f'background:var(--rr-{name})"></div>'
            for name in PHASES
            if shares[name] > 0
        )
        out.append(
            f'<div class="rr-bar-row"><div class="rr-bar-label">'
            f'{_esc(model.scheduler)}</div>'
            f'<div class="rr-bar-track"><div class="rr-stack" '
            f'style="flex:1">{cells}</div></div></div>'
        )
    header = "".join(
        f"<th>{_esc(name)}</th>" for name in PHASES
    )
    rows = []
    for model in models:
        shares = model.phase_shares()
        cells = "".join(f"<td>{_pct(shares[name])}</td>" for name in PHASES)
        rows.append(f"<tr><td>{_esc(model.scheduler)}</td>{cells}</tr>")
    out.append(
        f"<table><thead><tr><th>scheduler</th>{header}</tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )
    return "".join(out)


def _worst_jobs_table(model: TimelineModel) -> str:
    if not model.paths:
        return "<p class='rr-sub'>(no critical paths recorded)</p>"
    rows = []
    for p in model.paths:
        phases = p.phase_values()
        rows.append(
            "<tr>"
            f"<td>user {p.user} · action {p.action} · seq {p.sequence}</td>"
            f"<td>{_esc(p.job_type)}</td><td>{p.node}</td>"
            f"<td>{_ms(p.latency)}</td>"
            + "".join(f"<td>{_ms(phases[name])}</td>" for name in PHASES)
            + f"<td>{'hit' if p.cache_hit else 'miss'}</td></tr>"
        )
    header = "".join(f"<th>{_esc(name)} </th>" for name in PHASES)
    return (
        "<table><thead><tr><th>job</th><th>type</th><th>node</th>"
        f"<th>latency</th>{header}<th>cache</th></tr></thead>"
        f"<tbody>{''.join(rows)}</tbody></table>"
    )


def _divergence_block(divergence: Optional[Divergence]) -> str:
    if divergence is None:
        return (
            '<div class="rr-diverge">Every matched scheduling decision '
            "agrees — the two runs placed identical tasks identically.</div>"
        )
    a, b = divergence.a, divergence.b
    return (
        '<div class="rr-diverge">'
        f"<strong>First divergence</strong> at decision #{divergence.index} "
        f"(t={_secs(a.time)}): task {a.task_index} of user {a.user} "
        f"action {a.action} seq {a.sequence} on dataset "
        f"<code>{_esc(a.dataset)}</code> — "
        f"placed on node {a.node} ({_esc(a.reason)}) vs "
        f"node {b.node} ({_esc(b.reason)})."
        "</div>"
    )


def render_report_html(
    models: Sequence[TimelineModel],
    *,
    divergence: Optional[Divergence] = None,
    version: str = "",
    bins: int = 60,
    title: str = "",
) -> str:
    """Render the single-file HTML run report.

    One model renders a single-run report; two render the A/B comparison
    side by side with the first diverging decision marked on both
    timelines.  The output is fully self-contained (inline CSS, inline
    SVG, no scripts, no external assets).
    """
    if not models:
        raise ValueError("render_report_html needs at least one timeline model")
    models = list(models)
    first = models[0]
    names = " vs ".join(m.scheduler for m in models)
    page_title = title or f"repro run report · {first.scenario} · {names}"
    div_time = divergence.a.time if divergence is not None else None

    svgs = [
        render_timeline_svg(
            m, bins=bins, divergence_time=div_time, standalone=False
        )
        for m in models
    ]
    if len(svgs) > 1:
        timeline_block = '<div class="rr-cols">' + "".join(
            f"<div><h3>{_esc(m.scheduler)}</h3>{svg}</div>"
            for m, svg in zip(models, svgs)
        ) + "</div>"
    else:
        timeline_block = svgs[0]

    sections = [
        f"<h1>{_esc(page_title)}</h1>",
        (
            '<p class="rr-sub">scenario '
            f"<strong>{_esc(first.scenario)}</strong> · horizon "
            f"{_secs(first.horizon)} · {first.node_count} nodes · target "
            f"{first.target_framerate:.2f} fps</p>"
        ),
        '<div class="rr-tiles">'
        + "".join(_summary_tiles(m) for m in models)
        + "</div>",
    ]
    if len(models) > 1:
        sections.append("<h2>First divergence</h2>")
        sections.append(_divergence_block(divergence))
    sections.append("<h2>Schedule timeline</h2>")
    sections.append(f'<div class="rr-card">{timeline_block}</div>')
    sections.append("<h2>Scheduler decision-reason mix</h2>")
    sections.append(f'<div class="rr-card">{_reason_mix(models)}</div>')
    sections.append("<h2>Critical-path phase shares</h2>")
    sections.append(f'<div class="rr-card">{_phase_stacks(models)}</div>')
    for model in models:
        sections.append(
            f"<h2>Worst p99 jobs · {_esc(model.scheduler)}</h2>"
        )
        sections.append(f'<div class="rr-card">{_worst_jobs_table(model)}</div>')
    footer_version = f"repro {version} · " if version else ""
    sections.append(
        f'<p class="rr-footer">{_esc(footer_version)}deterministic report: '
        "virtual-time data only, byte-identical for a fixed scenario seed. "
        "Hover any mark for detail; every chart has a table twin.</p>"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{_esc(page_title)}</title>\n"
        f"<style>\n{_css()}</style>\n</head>\n<body>\n"
        + "\n".join(sections)
        + "\n</body>\n</html>\n"
    )


def render_federation_html(result, *, version: str = "", title: str = "") -> str:
    """Render a federated run's per-shard summary grid as HTML.

    ``result`` is a :class:`~repro.federation.FederatedResult`.  Same
    contract as :func:`render_report_html`: fully self-contained
    (inline CSS, no scripts), byte-identical for a fixed scenario seed.
    """
    summary = result.summary()
    config = result.config
    page_title = title or (
        f"repro federation report · {result.scenario_name} · "
        f"{result.scheduler_name} · {config.shards} shards"
    )
    tiles = [
        _tile("shards", f"{config.shards}", f"{config.router} router"),
        _tile("users", f"{len(result.routing.assignments)}", "routed"),
        _tile("delivered fps", f"{summary.interactive_fps:.2f}", "merged"),
        _tile(
            "jobs completed",
            f"{result.jobs_completed}/{result.jobs_submitted}",
            "merged",
        ),
        _tile("cache hit rate", _pct(result.hit_rate), "merged"),
        _tile("mean latency", _ms(summary.interactive_latency), "merged"),
    ]
    headers = [
        "shard",
        "users",
        "home datasets",
        "submitted",
        "completed",
        "fps",
        "latency (ms)",
        "hit %",
    ]
    head = "".join(f"<th>{_esc(h)}</th>" for h in headers)
    body = "".join(
        "<tr>" + "".join(f"<td>{_esc(cell)}</td>" for cell in row) + "</tr>"
        for row in result.shard_rows()
    )
    grid = (
        f"<table><thead><tr>{head}</tr></thead>"
        f"<tbody>{body}</tbody></table>"
    )
    sections = [
        f"<h1>{_esc(page_title)}</h1>",
        (
            '<p class="rr-sub">scenario '
            f"<strong>{_esc(result.scenario_name)}</strong> · "
            f"{config.shards} shards · router "
            f"<strong>{_esc(result.routing.policy)}</strong> · replication "
            f"<strong>{_esc(result.plan.policy)}</strong> · horizon "
            f"{_secs(result.horizon)} · target "
            f"{result.target_framerate:.2f} fps</p>"
        ),
        '<div class="rr-tiles">' + "".join(tiles) + "</div>",
        "<h2>Per-shard summary</h2>",
        f'<div class="rr-card">{grid}</div>',
    ]
    frontend = result.frontend
    if frontend is not None:
        sections.append("<h2>Fleet overload accounting</h2>")
        sections.append(
            f'<div class="rr-card"><p>{_esc(frontend.summary())}</p></div>'
        )
    footer_version = f"repro {version} · " if version else ""
    sections.append(
        f'<p class="rr-footer">{_esc(footer_version)}deterministic '
        "federated report: shard-ordered merge of independent simulator "
        "runs, byte-identical for a fixed scenario seed.</p>"
    )
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en">\n<head>\n<meta charset="utf-8"/>\n'
        '<meta name="viewport" content="width=device-width, initial-scale=1"/>\n'
        f"<title>{_esc(page_title)}</title>\n"
        f"<style>\n{_css()}</style>\n</head>\n<body>\n"
        + "\n".join(sections)
        + "\n</body>\n</html>\n"
    )


def write_report(path: str, content: str) -> None:
    """Write a rendered report (UTF-8, newline-normalized)."""
    with open(path, "w", encoding="utf-8", newline="\n") as fh:
        fh.write(content)


__all__ = [
    "render_timeline_svg",
    "render_report_html",
    "render_federation_html",
    "write_report",
]

"""Aggregated per-node time breakdown: I/O / render / composite / idle.

The trace answers "what happened at t=4.2 s"; the profile answers "where
did node 3's time go overall".  Each rendering node's virtual seconds
split into four buckets:

* **io** — time the render pipeline stalled loading chunks from storage
  (the ``t_io`` term of Definition 1; zero on cache hits),
* **render** — actual rendering (plus host→VRAM upload when the explicit
  VRAM model is on),
* **composite** — time the node's compositing thread spent assembling
  final images for jobs it participated in,
* **idle** — the remainder of the node's pipeline-seconds.

Fractions are normalized so they sum to exactly 1.0 per node (when a
node's compositing thread overlaps its render pipeline the busy buckets
are scaled down proportionally rather than pushing idle negative).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cluster.cluster import Cluster


@dataclass(frozen=True)
class NodeProfile:
    """Time breakdown of one rendering node over a simulation run."""

    node_id: int
    elapsed: float
    executors: int
    io_seconds: float
    render_seconds: float
    composite_seconds: float
    tasks_executed: int
    cache_hits: int
    cache_misses: int

    @property
    def pipeline_seconds(self) -> float:
        """Total capacity: elapsed wall time × rendering pipelines."""
        return self.elapsed * self.executors

    @property
    def busy_seconds(self) -> float:
        """Accounted non-idle seconds (io + render + composite)."""
        return self.io_seconds + self.render_seconds + self.composite_seconds

    @property
    def idle_seconds(self) -> float:
        """Unaccounted pipeline-seconds (never negative)."""
        return max(0.0, self.pipeline_seconds - self.busy_seconds)

    def fractions(self) -> Dict[str, float]:
        """``{"io", "render", "composite", "idle"}`` fractions summing to 1.

        The denominator is the node's pipeline-seconds, or the busy
        total when oversubscribed (compositing overlapping rendering),
        so the four buckets always form a exact partition of 1.0.
        """
        denom = max(self.pipeline_seconds, self.busy_seconds)
        if denom <= 0.0:
            return {"io": 0.0, "render": 0.0, "composite": 0.0, "idle": 1.0}
        return {
            "io": self.io_seconds / denom,
            "render": self.render_seconds / denom,
            "composite": self.composite_seconds / denom,
            "idle": self.idle_seconds / denom,
        }

    @property
    def utilization(self) -> float:
        """Non-idle fraction of the node's pipeline-seconds."""
        return 1.0 - self.fractions()["idle"]


@dataclass(frozen=True)
class ClusterProfile:
    """Per-node profiles for one run, with a text-table renderer."""

    elapsed: float
    nodes: List[NodeProfile]

    @classmethod
    def from_cluster(cls, cluster: "Cluster", elapsed: float) -> "ClusterProfile":
        """Build the profile from a cluster's accumulated node statistics."""
        elapsed = max(elapsed, 1e-12)
        profiles = [
            NodeProfile(
                node_id=n.node_id,
                elapsed=elapsed,
                executors=n.executors,
                io_seconds=n.io_seconds,
                render_seconds=max(0.0, n.busy_time - n.io_seconds),
                composite_seconds=n.composite_seconds,
                tasks_executed=n.tasks_executed,
                cache_hits=n.cache_hits,
                cache_misses=n.cache_misses,
            )
            for n in cluster.nodes
        ]
        return cls(elapsed=elapsed, nodes=profiles)

    def node(self, node_id: int) -> NodeProfile:
        """The profile of one node."""
        return self.nodes[node_id]

    def mean_fractions(self) -> Dict[str, float]:
        """Cluster-mean of each per-node fraction."""
        if not self.nodes:
            return {"io": 0.0, "render": 0.0, "composite": 0.0, "idle": 1.0}
        acc = {"io": 0.0, "render": 0.0, "composite": 0.0, "idle": 0.0}
        for p in self.nodes:
            for key, value in p.fractions().items():
                acc[key] += value
        return {key: value / len(self.nodes) for key, value in acc.items()}

    def table(self, *, title: str = "") -> str:
        """Render the per-node breakdown as an aligned text table."""
        lines: List[str] = []
        if title:
            lines.append(title)
        header = (
            f"{'node':>4}  {'io':>7}  {'render':>7}  {'comp':>7}  "
            f"{'idle':>7}  {'tasks':>7}  {'hit%':>6}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for p in self.nodes:
            f = p.fractions()
            total = p.cache_hits + p.cache_misses
            hit = 100.0 * p.cache_hits / total if total else 0.0
            lines.append(
                f"{p.node_id:>4}  {f['io']:>6.1%}  {f['render']:>6.1%}  "
                f"{f['composite']:>6.1%}  {f['idle']:>6.1%}  "
                f"{p.tasks_executed:>7}  {hit:>5.1f}%"
            )
        mean = self.mean_fractions()
        lines.append("-" * len(header))
        lines.append(
            f"{'mean':>4}  {mean['io']:>6.1%}  {mean['render']:>6.1%}  "
            f"{mean['composite']:>6.1%}  {mean['idle']:>6.1%}"
        )
        return "\n".join(lines)


__all__ = ["NodeProfile", "ClusterProfile"]

"""Service-level objectives over the paper's per-job quality metrics.

The paper's evaluation argues in aggregates (mean framerate per action,
mean latency), but a *service* commits to objectives: "every user sees
>= 33 fps" (Definition 4) or "p95 interaction latency <= 250 ms"
(Definition 3).  This module evaluates such objectives over sliding
windows of a finished run and reports where, for how long, and how
badly they were missed:

* :class:`SLObjective` — a framerate or latency target plus a window;
* :class:`SLOMonitor` — slides the window over every interactive
  action's active span and classifies each position;
* :class:`ViolationWindow` — one merged run of violating window
  positions for one action;
* :class:`SLOReport` — per-run totals: violation time, compliant
  fraction, worst burn rate.

**Semantics.**  An action is *active* from its first request issue to
``last issue + frame interval`` (clipped to the horizon) — windows are
only judged while the user was actually interacting.  A window
violates a framerate objective when the frames completed inside it,
divided by the window length, fall below the target; its *burn rate*
is the relative shortfall ``(target - fps) / target`` in [0, 1].  A
window violates a latency objective when the fraction of jobs over the
latency bound exceeds the error budget ``1 - q/100`` (e.g. 5% for a
p95 objective); its burn rate is ``fraction_over / budget`` (>= 1 when
violating), the standard SRE burn-rate form.  Windows with no
completions at all violate both kinds maximally.  Overlapping and
adjacent violating windows merge into one :class:`ViolationWindow`.

Reports from different schedulers on the same scenario are directly
comparable — the Fig. 5 story in SLO form is "OURS accumulates strictly
less framerate-SLO violation time than FCFS".
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.job import JobType
from repro.util.validation import check_positive


@dataclass(frozen=True)
class SLObjective:
    """One service-level objective.

    Attributes:
        kind: ``"fps"`` (Definition-4 framerate floor) or ``"latency"``
            (Definition-3 latency ceiling).
        target: Frames per second (fps) or seconds (latency).
        window: Sliding-window length in simulated seconds.
        step: Window stride; defaults to ``window / 4``.
        quantile: For latency objectives, the percentile the bound
            applies to (``95`` → "p95 latency <= target").
    """

    kind: str
    target: float
    window: float = 1.0
    step: Optional[float] = None
    quantile: float = 95.0

    def __post_init__(self) -> None:
        if self.kind not in ("fps", "latency"):
            raise ValueError(f"kind must be 'fps' or 'latency', got {self.kind!r}")
        check_positive("target", self.target)
        check_positive("window", self.window)
        if self.step is not None:
            check_positive("step", self.step)
        if not 0.0 < self.quantile < 100.0:
            raise ValueError(f"quantile must be in (0, 100), got {self.quantile}")

    @property
    def stride(self) -> float:
        """Effective window stride."""
        return self.step if self.step is not None else self.window / 4.0

    @property
    def error_budget(self) -> float:
        """Allowed bad fraction for latency objectives (``1 - q/100``)."""
        return 1.0 - self.quantile / 100.0

    def describe(self) -> str:
        """Human-readable objective, e.g. ``fps >= 33.33 over 1.0s``."""
        if self.kind == "fps":
            return f"fps >= {self.target:g} over {self.window:g}s windows"
        return (
            f"p{self.quantile:g} latency <= {self.target:g}s "
            f"over {self.window:g}s windows"
        )

    @classmethod
    def parse(cls, spec: str, *, window: float = 1.0) -> "SLObjective":
        """Parse a CLI-style objective spec.

        Accepted forms: ``fps=33.3``, ``latency=0.25`` (p95 by
        default), ``latency:p99=0.5``.
        """
        name, sep, value = spec.partition("=")
        if not sep:
            raise ValueError(f"SLO spec {spec!r} must look like fps=TARGET")
        name = name.strip().lower()
        quantile = 95.0
        if ":" in name:
            name, _, qpart = name.partition(":")
            if not qpart.startswith("p"):
                raise ValueError(f"bad quantile in SLO spec {spec!r}")
            quantile = float(qpart[1:])
        try:
            target = float(value)
        except ValueError:
            raise ValueError(f"bad target in SLO spec {spec!r}") from None
        if name not in ("fps", "latency"):
            raise ValueError(f"unknown SLO kind {name!r} in {spec!r}")
        return cls(kind=name, target=target, window=window, quantile=quantile)


def fps_burn_rate(objective: SLObjective, fps: float) -> float:
    """Burn rate of a framerate objective at delivered ``fps``.

    The relative shortfall ``(target - fps) / target`` clamped to
    ``[0, 1]`` — 0 when on target, 1 when nothing is delivered.  Shared
    by the offline :class:`SLOMonitor` and the online degradation
    controller (:mod:`repro.frontend.degradation`) so both judge with
    identical semantics.
    """
    if objective.kind != "fps":
        raise ValueError(f"objective is {objective.kind!r}, not 'fps'")
    return max(0.0, (objective.target - fps) / objective.target)


@dataclass(frozen=True)
class ViolationWindow:
    """A merged run of violating window positions for one action."""

    user: int
    action: int
    start: float
    end: float
    worst_burn_rate: float

    @property
    def duration(self) -> float:
        """Violation length in simulated seconds."""
        return self.end - self.start

    def to_event(self, objective: SLObjective) -> Dict[str, Any]:
        """JSONL event payload for this violation."""
        return {
            "type": "slo_violation",
            "objective": objective.describe(),
            "kind": objective.kind,
            "target": objective.target,
            "user": self.user,
            "action": self.action,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "worst_burn_rate": self.worst_burn_rate,
        }


@dataclass
class SLOReport:
    """One objective evaluated over one finished run."""

    objective: SLObjective
    scheduler: str
    scenario: str
    violations: List[ViolationWindow] = field(default_factory=list)
    evaluated_time: float = 0.0
    actions_evaluated: int = 0

    @property
    def total_violation_time(self) -> float:
        """Simulated seconds (summed across actions) in violation."""
        return sum(v.duration for v in self.violations)

    @property
    def worst_burn_rate(self) -> float:
        """The single worst burn rate seen in any window (0.0 if clean)."""
        return max((v.worst_burn_rate for v in self.violations), default=0.0)

    @property
    def compliant_fraction(self) -> float:
        """Fraction of evaluated action-time meeting the objective."""
        if self.evaluated_time <= 0:
            return 1.0
        return max(0.0, 1.0 - self.total_violation_time / self.evaluated_time)

    @property
    def actions_violating(self) -> int:
        """Number of distinct actions with at least one violation."""
        return len({(v.user, v.action) for v in self.violations})

    def jsonl_events(self) -> List[Dict[str, Any]]:
        """One JSONL event per violation plus one report summary."""
        events = [v.to_event(self.objective) for v in self.violations]
        events.append(
            {
                "type": "slo_report",
                "objective": self.objective.describe(),
                "scheduler": self.scheduler,
                "scenario": self.scenario,
                "violations": len(self.violations),
                "actions_evaluated": self.actions_evaluated,
                "actions_violating": self.actions_violating,
                "evaluated_time": self.evaluated_time,
                "total_violation_time": self.total_violation_time,
                "compliant_fraction": self.compliant_fraction,
                "worst_burn_rate": self.worst_burn_rate,
            }
        )
        return events

    def row(self) -> str:
        """Fixed-width text row for the SLO comparison table."""
        return (
            f"{self.scheduler:<7} {self.actions_violating:>4}/"
            f"{self.actions_evaluated:<4} {self.total_violation_time:>11.3f} "
            f"{self.compliant_fraction * 100:>9.2f}% "
            f"{self.worst_burn_rate:>10.2f}"
        )


_SLO_HEADER = (
    f"{'sched':<7} {'bad/all':>9} {'viol(s)':>11} {'compliant':>10} "
    f"{'burn':>10}"
)


def slo_table(reports: Sequence[SLOReport], *, title: str = "") -> str:
    """Render one objective's reports (one row per scheduler)."""
    lines: List[str] = []
    if title:
        lines.append(title)
    if reports:
        lines.append(reports[0].objective.describe())
    lines.append(_SLO_HEADER)
    lines.append("-" * len(_SLO_HEADER))
    for report in reports:
        lines.append(report.row())
    return "\n".join(lines)


class SLOMonitor:
    """Evaluates objectives against a finished simulation run.

    Works from the run's completed-job records and request-issue spans,
    so it applies to any :class:`~repro.sim.simulator.SimulationResult`
    whether or not the metrics registry was enabled.
    """

    def __init__(self, objectives: Sequence[SLObjective]) -> None:
        if not objectives:
            raise ValueError("SLOMonitor needs at least one objective")
        self.objectives = list(objectives)

    # -- internals ---------------------------------------------------------

    @staticmethod
    def _action_series(result) -> Dict[int, Tuple[int, List[Tuple[float, float]]]]:
        """Per action: owning user + sorted (finish, latency) pairs."""
        users: Dict[int, int] = {}
        series: Dict[int, List[Tuple[float, float]]] = defaultdict(list)
        for r in result.collector.records:
            if r.job_type is not JobType.INTERACTIVE:
                continue
            users[r.action] = r.user
            series[r.action].append((r.finish, r.latency))
        out: Dict[int, Tuple[int, List[Tuple[float, float]]]] = {}
        for action, (_count, _first, _last) in result.collector.action_issues.items():
            completions = sorted(series.get(action, []))
            out[action] = (users.get(action, -1), completions)
        return out

    def _windows_for(
        self, objective: SLObjective, span_start: float, span_end: float
    ) -> List[Tuple[float, float]]:
        """Window positions covering ``[span_start, span_end]``."""
        length = min(objective.window, max(span_end - span_start, 1e-9))
        positions: List[Tuple[float, float]] = []
        t = span_start
        while True:
            end = t + length
            if end >= span_end:
                positions.append((max(span_start, span_end - length), span_end))
                break
            positions.append((t, end))
            t += objective.stride
        return positions

    @staticmethod
    def _burn_fps(objective: SLObjective, fps: float) -> float:
        return fps_burn_rate(objective, fps)

    def _judge(
        self,
        objective: SLObjective,
        completions: List[Tuple[float, float]],
        start: float,
        end: float,
    ) -> Tuple[bool, float]:
        """Classify one window position → (violating, burn rate)."""
        inside = [c for c in completions if start <= c[0] < end]
        if objective.kind == "fps":
            duration = max(end - start, 1e-9)
            fps = len(inside) / duration
            # A perfectly on-target stream places floor(W * target) or
            # ceil(W * target) completions in any finite window, so the
            # pass mark allows that one-frame quantization; real
            # framerate collapses (the Fig. 5 FCFS story) miss it by
            # many frames.
            required = math.floor(duration * objective.target * (1.0 - 1e-9))
            burn = self._burn_fps(objective, fps)
            return len(inside) < required, burn
        if not inside:
            # The user was waiting the whole window: latency unbounded.
            return True, 1.0 / max(objective.error_budget, 1e-9)
        over = sum(1 for _, lat in inside if lat > objective.target)
        fraction = over / len(inside)
        budget = max(objective.error_budget, 1e-9)
        return fraction > budget, fraction / budget

    # -- evaluation --------------------------------------------------------

    def evaluate_objective(self, objective: SLObjective, result) -> SLOReport:
        """Evaluate one objective over every interactive action."""
        report = SLOReport(
            objective=objective,
            scheduler=result.scheduler_name,
            scenario=result.scenario_name,
        )
        tail = result.frame_interval
        series = self._action_series(result)
        for action, (count, first, last) in sorted(
            result.collector.action_issues.items()
        ):
            user, completions = series[action]
            span_start = first
            span_end = min(result.horizon, last + tail)
            if span_end <= span_start:
                continue
            report.actions_evaluated += 1
            report.evaluated_time += span_end - span_start
            open_start: Optional[float] = None
            open_end = 0.0
            worst = 0.0
            for w_start, w_end in self._windows_for(objective, span_start, span_end):
                violating, burn = self._judge(
                    objective, completions, w_start, w_end
                )
                if violating:
                    if open_start is None:
                        open_start, open_end, worst = w_start, w_end, burn
                    elif w_start <= open_end:
                        open_end = max(open_end, w_end)
                        worst = max(worst, burn)
                    else:
                        report.violations.append(
                            ViolationWindow(user, action, open_start, open_end, worst)
                        )
                        open_start, open_end, worst = w_start, w_end, burn
            if open_start is not None:
                report.violations.append(
                    ViolationWindow(user, action, open_start, open_end, worst)
                )
        return report

    def evaluate(self, result) -> List[SLOReport]:
        """Evaluate every objective; one report per objective."""
        return [self.evaluate_objective(o, result) for o in self.objectives]


__all__ = [
    "SLObjective",
    "fps_burn_rate",
    "ViolationWindow",
    "SLOReport",
    "SLOMonitor",
    "slo_table",
]

"""Virtual-time metrics registry: counters, gauges, histograms, windows.

The tracer (:mod:`repro.obs.tracer`) answers *where did virtual time
go*; this module answers *is the service meeting its targets* — the
continuously-measured quantities behind the paper's evaluation
(Definitions 1-4) in a form that exports to monitoring tooling:

* :class:`Counter` — a monotonically increasing total (jobs completed,
  cache hits, bytes read);
* :class:`Gauge` — a point-in-time level (queue depth, busy nodes,
  resident cache bytes);
* :class:`Histogram` — a log-bucketed distribution with p50/p95/p99
  extraction (job latency, scheduler invocation cost);
* :class:`MetricsRegistry` — the namespace all of the above live in,
  with Prometheus-style text exposition and structured JSONL export;
* :class:`MetricsSampler` — rides the event queue at a fixed interval
  (exactly like :class:`~repro.obs.counters.CounterSampler`) and turns
  counter deltas into per-window :class:`MetricWindow` rows: delivered
  fps, latency quantiles, cache hit rate, I/O bytes per interval;
* :class:`RunMetrics` — the bundle attached to
  :class:`~repro.sim.simulator.SimulationResult` as ``.metrics``.

Disabled runs pay nothing: instrumentation sites hold ``None`` and
guard with one identity check, the same discipline the tracer uses.
When enabled, publishing is bound-attribute counter increments — the
enabled-registry overhead is bounded by the tracer-overhead bench
(``benchmarks/bench_tracer_overhead.py``) at <= 10% versus a
:class:`~repro.obs.tracer.NullTracer` run.

Typical use::

    from repro import RunConfig, run_simulation, scenario_2

    result = run_simulation(
        scenario_2(scale=0.2), "OURS", config=RunConfig(metrics=True)
    )
    print(result.metrics.registry.to_prometheus())
    result.metrics.write_jsonl("metrics.jsonl")
"""

from __future__ import annotations

import json
import math
from bisect import bisect_left
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.core.cost_model import percentile
from repro.core.job import JobType
from repro.util.validation import check_positive

#: Label sets are stored canonically as sorted ``(key, value)`` tuples.
LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Optional[Mapping[str, str]]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format.

    Backslash, double quote, and newline are the three characters the
    format requires escaping inside quoted label values.
    """
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _label_suffix(labels: LabelKey) -> str:
    """Prometheus-style ``{k="v",...}`` rendering (empty for no labels)."""
    if not labels:
        return ""
    inner = ",".join(f'{k}="{_escape_label_value(v)}"' for k, v in labels)
    return "{" + inner + "}"


class Counter:
    """A monotonic total.  Negative increments are a protocol error."""

    kind = "counter"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (>= 0) to the total."""
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


class Gauge:
    """A level that can move in both directions."""

    kind = "gauge"
    __slots__ = ("name", "labels", "value")

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Set the current level."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Move the level up by ``amount``."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Move the level down by ``amount``."""
        self.value -= amount


def log_buckets(
    lowest: float = 1e-4, highest: float = 1e3, per_decade: int = 4
) -> List[float]:
    """Geometric bucket upper bounds spanning ``[lowest, highest]``.

    ``per_decade`` bounds per factor of ten; the implicit final bucket
    is ``+inf``.  The defaults cover 100 µs .. ~17 min in 29 buckets —
    wide enough for every latency/cost quantity the simulator records.
    """
    check_positive("lowest", lowest)
    if highest <= lowest:
        raise ValueError(f"highest ({highest}) must exceed lowest ({lowest})")
    if per_decade < 1:
        raise ValueError(f"per_decade must be >= 1, got {per_decade}")
    ratio = 10.0 ** (1.0 / per_decade)
    bounds = [lowest]
    while bounds[-1] < highest * (1 - 1e-12):
        bounds.append(bounds[-1] * ratio)
    return bounds


class Histogram:
    """A log-bucketed distribution with quantile extraction.

    Observations land in geometric buckets (``le`` upper bounds plus an
    implicit ``+inf`` overflow bucket).  Quantiles are estimated by
    linear interpolation inside the covering bucket, clamped to the
    observed min/max so single-value and extreme quantiles stay exact.
    """

    kind = "histogram"
    __slots__ = (
        "name",
        "labels",
        "bounds",
        "bucket_counts",
        "count",
        "sum",
        "minimum",
        "maximum",
    )

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        *,
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: List[float] = list(bounds) if bounds is not None else log_buckets()
        if any(b <= a for a, b in zip(self.bounds, self.bounds[1:])):
            raise ValueError(f"histogram {name!r} bounds must be increasing")
        self.bucket_counts = [0] * (len(self.bounds) + 1)  # + overflow
        self.count = 0
        self.sum = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimated percentile ``q`` in [0, 100] (0.0 when empty)."""
        if not 0.0 <= q <= 100.0:
            raise ValueError(f"q must be in [0, 100], got {q}")
        if self.count == 0:
            return 0.0
        rank = q / 100.0 * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = 0.0 if i == 0 else self.bounds[i - 1]
                hi = self.bounds[i] if i < len(self.bounds) else self.maximum
                frac = (rank - cumulative) / n
                value = lo + (hi - lo) * max(0.0, min(1.0, frac))
                return max(self.minimum, min(self.maximum, value))
            cumulative += n
        return self.maximum

    @property
    def p50(self) -> float:
        """Estimated median."""
        return self.percentile(50)

    @property
    def p95(self) -> float:
        """Estimated 95th percentile."""
        return self.percentile(95)

    @property
    def p99(self) -> float:
        """Estimated 99th percentile."""
        return self.percentile(99)


Metric = Union[Counter, Gauge, Histogram]


class MetricsRegistry:
    """Namespace of metrics, keyed by ``(name, labels)``.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call defines the metric (and, for histograms, its buckets), later
    calls return the same object — so publishers can bind metric
    references once and increment bound attributes on the hot path.
    Registering the same name as two different kinds is an error.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelKey], Metric] = {}
        self._kinds: Dict[str, str] = {}
        self._help: Dict[str, str] = {}

    # -- registration ------------------------------------------------------

    def _get(self, cls, name: str, help: str, labels, **kwargs) -> Metric:
        key = (name, _label_key(labels))
        metric = self._metrics.get(key)
        if metric is not None:
            if metric.kind != cls.kind:
                raise ValueError(
                    f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
                )
            return metric
        known = self._kinds.get(name)
        if known is not None and known != cls.kind:
            raise ValueError(f"metric {name!r} is a {known}, not a {cls.kind}")
        metric = cls(name, key[1], **kwargs)
        self._metrics[key] = metric
        self._kinds[name] = cls.kind
        if help and name not in self._help:
            self._help[name] = help
        return metric

    def counter(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Counter:
        """Get or create a :class:`Counter`."""
        return self._get(Counter, name, help, labels)  # type: ignore[return-value]

    def gauge(
        self, name: str, help: str = "", labels: Optional[Mapping[str, str]] = None
    ) -> Gauge:
        """Get or create a :class:`Gauge`."""
        return self._get(Gauge, name, help, labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Optional[Mapping[str, str]] = None,
        *,
        bounds: Optional[Sequence[float]] = None,
    ) -> Histogram:
        """Get or create a :class:`Histogram`."""
        return self._get(  # type: ignore[return-value]
            Histogram, name, help, labels, bounds=bounds
        )

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterable[Metric]:
        return iter(self._metrics.values())

    def get(
        self, name: str, labels: Optional[Mapping[str, str]] = None
    ) -> Optional[Metric]:
        """Look up a metric without creating it."""
        return self._metrics.get((name, _label_key(labels)))

    def value(self, name: str, labels: Optional[Mapping[str, str]] = None) -> float:
        """Current value of a counter/gauge (0.0 when absent)."""
        metric = self.get(name, labels)
        if metric is None:
            return 0.0
        if isinstance(metric, Histogram):
            raise TypeError(f"metric {name!r} is a histogram; use .get()")
        return metric.value

    # -- export ------------------------------------------------------------

    def to_prometheus(self) -> str:
        """Prometheus text exposition (OpenMetrics-compatible subset).

        Counters get a ``_total`` suffix; histograms expose cumulative
        ``_bucket{le=...}`` series plus ``_sum`` and ``_count``.
        """
        by_name: Dict[str, List[Metric]] = {}
        for metric in self._metrics.values():
            by_name.setdefault(metric.name, []).append(metric)
        lines: List[str] = []
        for name, metrics in by_name.items():
            kind = metrics[0].kind
            exposed = f"{name}_total" if kind == "counter" else name
            help_text = self._help.get(name)
            if help_text:
                # HELP text escapes backslash and newline (not quotes).
                escaped = help_text.replace("\\", "\\\\").replace("\n", "\\n")
                lines.append(f"# HELP {exposed} {escaped}")
            lines.append(f"# TYPE {exposed} {kind}")
            for m in metrics:
                suffix = _label_suffix(m.labels)
                if isinstance(m, Histogram):
                    cumulative = 0
                    for bound, n in zip(m.bounds, m.bucket_counts):
                        cumulative += n
                        le = _label_suffix(m.labels + (("le", f"{bound:g}"),))
                        lines.append(f"{name}_bucket{le} {cumulative}")
                    le = _label_suffix(m.labels + (("le", "+Inf"),))
                    lines.append(f"{name}_bucket{le} {m.count}")
                    lines.append(f"{name}_sum{suffix} {m.sum:g}")
                    lines.append(f"{name}_count{suffix} {m.count}")
                else:
                    lines.append(f"{exposed}{suffix} {m.value:g}")
        return "\n".join(lines) + "\n"

    def write_prometheus(self, path) -> Path:
        """Write :meth:`to_prometheus` to ``path``."""
        path = Path(path)
        path.write_text(self.to_prometheus())
        return path

    def snapshot(self) -> List[Dict[str, Any]]:
        """One JSON-ready dict per metric (histograms include quantiles)."""
        out: List[Dict[str, Any]] = []
        for m in self._metrics.values():
            row: Dict[str, Any] = {
                "name": m.name,
                "kind": m.kind,
                "labels": dict(m.labels),
            }
            if isinstance(m, Histogram):
                row.update(
                    count=m.count,
                    sum=m.sum,
                    mean=m.mean,
                    p50=m.p50,
                    p95=m.p95,
                    p99=m.p99,
                )
            else:
                row["value"] = m.value
            out.append(row)
        return out


# ---------------------------------------------------------------------------
# Windowed time-series aggregation
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class MetricWindow:
    """Aggregates over one sampling interval of simulated time."""

    start: float
    end: float
    jobs_completed: int
    interactive_completed: int
    batch_completed: int
    fps: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    cache_hits: int
    cache_misses: int
    hit_rate: float
    io_bytes: int

    @property
    def duration(self) -> float:
        """Window length in simulated seconds."""
        return self.end - self.start

    def to_event(self) -> Dict[str, Any]:
        """JSONL event payload for this window."""
        return {
            "type": "window",
            "start": self.start,
            "end": self.end,
            "jobs_completed": self.jobs_completed,
            "interactive_completed": self.interactive_completed,
            "batch_completed": self.batch_completed,
            "fps": self.fps,
            "latency_p50": self.latency_p50,
            "latency_p95": self.latency_p95,
            "latency_p99": self.latency_p99,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "hit_rate": self.hit_rate,
            "io_bytes": self.io_bytes,
        }


def default_window_interval(horizon: float, *, windows: int = 64) -> float:
    """A window length giving ~``windows`` intervals over ``horizon``."""
    return max(horizon / max(windows, 1), 1e-3)


class MetricsSampler:
    """Turns cumulative service/cluster state into per-window rows.

    Rides the event queue at a fixed interval; each tick closes one
    :class:`MetricWindow` from the deltas since the previous tick
    (completions, latencies, cache hits, I/O bytes) and refreshes the
    registry's pressure gauges.  Latency quantiles are computed exactly
    from the jobs completed inside the window (the registry's latency
    histogram keeps the whole-run distribution).
    """

    def __init__(
        self,
        registry: MetricsRegistry,
        interval: float,
        *,
        horizon: Optional[float] = None,
    ) -> None:
        check_positive("interval", interval)
        self.registry = registry
        self.interval = interval
        self.horizon = horizon
        self.windows: List[MetricWindow] = []
        self._service = None
        self._start = 0.0
        self._ticks = 0
        self._last_time = 0.0
        self._last_records = 0
        self._last_hits = 0
        self._last_misses = 0
        self._last_io_bytes = 0
        self._g_queue = registry.gauge(
            "repro_queue_depth", "jobs queued at the head node"
        )
        self._g_busy = registry.gauge(
            "repro_busy_nodes", "rendering nodes with a busy pipeline"
        )
        self._g_cache = registry.gauge(
            "repro_cache_used_bytes", "bytes resident across node chunk caches"
        )

    def attach(self, service) -> "MetricsSampler":
        """Start sampling ``service`` (call before running events)."""
        self._service = service
        events = service.cluster.events
        self._start = events.now
        self._ticks = 0
        events.schedule(self._start, self._tick)
        return self

    def _tick(self) -> None:
        service = self._service
        cluster = service.cluster
        now = cluster.events.now
        records = service.collector.records
        hits = sum(n.cache_hits for n in cluster.nodes)
        misses = sum(n.cache_misses for n in cluster.nodes)
        io_bytes = cluster.storage.total_bytes

        if now > self._last_time:
            fresh = records[self._last_records :]
            latencies = sorted(r.latency for r in fresh)
            interactive = sum(
                1 for r in fresh if r.job_type is JobType.INTERACTIVE
            )
            d_hits = hits - self._last_hits
            d_misses = misses - self._last_misses
            d_tasks = d_hits + d_misses
            duration = now - self._last_time
            self.windows.append(
                MetricWindow(
                    start=self._last_time,
                    end=now,
                    jobs_completed=len(fresh),
                    interactive_completed=interactive,
                    batch_completed=len(fresh) - interactive,
                    fps=interactive / duration,
                    latency_p50=percentile(latencies, 50),
                    latency_p95=percentile(latencies, 95),
                    latency_p99=percentile(latencies, 99),
                    cache_hits=d_hits,
                    cache_misses=d_misses,
                    hit_rate=d_hits / d_tasks if d_tasks else 0.0,
                    io_bytes=io_bytes - self._last_io_bytes,
                )
            )
        self._last_time = now
        self._last_records = len(records)
        self._last_hits = hits
        self._last_misses = misses
        self._last_io_bytes = io_bytes

        self._g_queue.set(float(len(service._pending)))
        self._g_busy.set(float(sum(1 for n in cluster.nodes if n.busy)))
        self._g_cache.set(float(sum(n.cache.used_bytes for n in cluster.nodes)))

        past_horizon = self.horizon is not None and now >= self.horizon
        more_coming = service.has_work() or len(cluster.events) > 0
        if more_coming and not past_horizon:
            # Tick k lands at the absolute ``start + k*interval`` grid
            # point; rescheduling via ``schedule_after`` would compound
            # float error across thousands of ticks and drift off-grid.
            self._ticks += 1
            cluster.events.schedule(
                self._start + self._ticks * self.interval, self._tick
            )


# ---------------------------------------------------------------------------
# Per-run bundle
# ---------------------------------------------------------------------------


@dataclass
class RunMetrics:
    """Registry + windowed series of one simulation run.

    Attached to :class:`~repro.sim.simulator.SimulationResult` as
    ``.metrics`` when the run was started with ``metrics=True`` (or an
    explicit registry).
    """

    registry: MetricsRegistry
    windows: List[MetricWindow] = field(default_factory=list)
    scenario: str = ""
    scheduler: str = ""

    def window_series(self, name: str) -> List[float]:
        """Extract one :class:`MetricWindow` field across the run."""
        return [float(getattr(w, name)) for w in self.windows]

    def to_prometheus(self) -> str:
        """Prometheus text exposition of the final registry state."""
        return self.registry.to_prometheus()

    def write_prometheus(self, path) -> Path:
        """Write the Prometheus exposition to ``path``."""
        return self.registry.write_prometheus(path)

    def jsonl_events(
        self, slo_reports: Optional[Sequence] = None
    ) -> List[Dict[str, Any]]:
        """All JSONL events: run header, windows, violations, summary."""
        events: List[Dict[str, Any]] = [
            {
                "type": "run",
                "scenario": self.scenario,
                "scheduler": self.scheduler,
                "windows": len(self.windows),
            }
        ]
        events.extend(w.to_event() for w in self.windows)
        if slo_reports:
            for report in slo_reports:
                events.extend(report.jsonl_events())
        events.append({"type": "summary", "metrics": self.registry.snapshot()})
        return events

    def write_jsonl(self, path, *, slo_reports: Optional[Sequence] = None) -> Path:
        """Write one JSON object per line: samples, violations, summary."""
        path = Path(path)
        with path.open("w") as fh:
            for event in self.jsonl_events(slo_reports):
                fh.write(json.dumps(event) + "\n")
        return path


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "MetricsRegistry",
    "MetricWindow",
    "MetricsSampler",
    "default_window_interval",
    "RunMetrics",
]

"""Scheduler decision audit log — the *why* behind every placement.

The tracer (:mod:`repro.obs.tracer`) records *what* happened and the
metrics registry (:mod:`repro.obs.metrics`) records *how much*; neither
records why the scheduler put a task where it did.  This module adds
that third lens: every placement routed through
:meth:`~repro.core.scheduler_base.SchedulerContext.assign` appends one
:class:`DecisionRecord` capturing the decision time, the scheduling
cycle, the candidate nodes the policy could have chosen (with their
``Available``/``Cache``/``Estimate`` state *at decision time*, before
the assignment mutates the tables), the chosen node, and a
machine-readable reason code.

Reason codes (the closed vocabulary, one per decision):

* ``cache-hit`` — a locality-aware policy chose a node because it
  caches the task's chunk (OURS phases 2-3, FCFSL, FCFSU on warm data).
* ``min-estimate`` — a locality-aware policy scored
  ``Available[k] + exec_estimate(c, k)`` and a *non-cached* node won
  (the chunk is cold everywhere, or every replica's backlog exceeds the
  I/O cost).
* ``only-available`` — a locality-blind policy took the min-available
  node without consulting the Cache table (FCFS, SF, FS).
* ``fallback`` — the placement came from outside the policy's scoring
  loop: FCFSU's static chunk→node pinning on cold data, round-robin
  dealing, failure rescheduling, and other defensive paths.
* ``shed`` — the request never reached a node: the overload frontend
  refused it (admission reject, frame thinning).  Shed records carry
  ``node = -1`` and ``task_index = -1``.
* ``requeue-crash`` — the fault-recovery engine re-placed a task
  stranded on a node whose crash the heartbeat detector confirmed.
* ``quarantine`` — a straggling node was removed from scheduling
  (non-placement record: ``task_index = -1``, ``node`` = the node).
* ``speculative`` — a quarantined node's unstarted backlog was
  re-issued onto healthy nodes.
* ``rewarm`` — the head node's cache mirror was resynced after a
  detected wipe and lost replicas re-loaded (non-placement record).

Records live in a bounded ring buffer (:class:`AuditLog`) so an
always-on flight recorder has a fixed memory ceiling; an optional
streaming-JSONL export writes every record as it happens for offline
analysis.  The log is opt-in via ``RunConfig(audit=AuditConfig(...))``
— the default off path holds ``None`` in the scheduler context and pays
one identity check per assignment, keeping disabled runs bit-identical
(the golden assignment-trace hashes pin this).
"""

from __future__ import annotations

import json
from collections import deque
from dataclasses import dataclass
from pathlib import Path
from typing import (
    IO,
    TYPE_CHECKING,
    Any,
    Deque,
    Dict,
    Iterator,
    List,
    NamedTuple,
    Optional,
    Tuple,
    Union,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import RenderTask
    from repro.core.tables import SchedulerTables

#: A locality-aware policy placed the task on a node caching its chunk.
REASON_CACHE_HIT = "cache-hit"
#: Locality-aware scoring picked a non-cached node (cold chunk, or the
#: replicas' backlogs exceeded the I/O cost).
REASON_MIN_ESTIMATE = "min-estimate"
#: A locality-blind policy took the min-available node.
REASON_ONLY_AVAILABLE = "only-available"
#: Placement outside the policy's scoring loop (static pinning,
#: round-robin dealing, failure rescheduling, defensive paths).
REASON_FALLBACK = "fallback"
#: The overload frontend refused the request before scheduling.
REASON_SHED = "shed"
#: Recovery re-placed a task stranded by a detected node crash.
REASON_REQUEUE_CRASH = "requeue-crash"
#: Recovery removed a straggling node from scheduling.
REASON_QUARANTINE = "quarantine"
#: Recovery re-issued a quarantined node's unstarted backlog.
REASON_SPECULATIVE = "speculative"
#: Recovery resynced a wiped node's cache mirror and reloaded replicas.
REASON_REWARM = "rewarm"

#: The closed reason-code vocabulary, in rough goodness order.
REASON_CODES: Tuple[str, ...] = (
    REASON_CACHE_HIT,
    REASON_MIN_ESTIMATE,
    REASON_ONLY_AVAILABLE,
    REASON_FALLBACK,
    REASON_SHED,
    REASON_REQUEUE_CRASH,
    REASON_QUARANTINE,
    REASON_SPECULATIVE,
    REASON_REWARM,
)


@dataclass(frozen=True)
class AuditConfig:
    """How the decision audit log behaves for one run.

    Attributes:
        capacity: Ring-buffer size in decision records.  Old records are
            dropped (and counted) once the buffer fills; ``None`` keeps
            every record (the ``repro explain`` diff needs the full
            stream).
        jsonl_path: When set, every record is also appended to this file
            as one JSON object per line *as it is recorded* — the
            flight-recorder export, unaffected by ring eviction.
        candidates: Record the per-decision candidate-node snapshots
            (chosen node, min-available node, cached replicas with
            their table state).  Disable for the leanest possible
            audit-on hot path.
        max_candidates: Upper bound on snapshot size per decision
            (cached replica sets are usually 0-2 nodes; this caps
            pathological fan-out).
    """

    capacity: Optional[int] = 4096
    jsonl_path: Optional[Union[str, Path]] = None
    candidates: bool = True
    max_candidates: int = 8

    def __post_init__(self) -> None:
        if self.capacity is not None and self.capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {self.capacity}")
        if self.max_candidates < 1:
            raise ValueError(
                f"max_candidates must be >= 1, got {self.max_candidates}"
            )


class CandidateState(NamedTuple):
    """One candidate node's table state at decision time."""

    node: int
    #: ``Available[node]`` (raw predicted available time, not floored).
    available: float
    #: Whether the task's chunk was predicted resident on the node.
    cached: bool
    #: ``exec_estimate(chunk, node, group)`` — render only when cached,
    #: I/O + render otherwise.
    estimate: float


class DecisionRecord(NamedTuple):
    """One audited scheduling decision.

    Job identity is ``(user, action, sequence)`` — deliberately not the
    process-global ``job_id``, so records from two separate runs of the
    same trace are directly comparable (the ``repro explain`` diff
    depends on this).
    """

    time: float
    #: Ordinal of the scheduler invocation that produced the decision
    #: (the scheduling cycle for cycle-triggered policies).
    cycle: int
    user: int
    action: int
    sequence: int
    job_type: str
    task_index: int
    dataset: str
    chunk_index: int
    #: Chosen node (``-1`` for shed records).
    node: int
    reason: str
    candidates: Tuple[CandidateState, ...]

    def key(self) -> Tuple[int, int, int, int]:
        """Cross-run task identity: ``(user, action, sequence, task)``."""
        return (self.user, self.action, self.sequence, self.task_index)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-serializable form (one flight-recorder line)."""
        d = self._asdict()
        d["candidates"] = [c._asdict() for c in self.candidates]
        return d


def snapshot_candidates(
    tables: "SchedulerTables",
    task: "RenderTask",
    chosen: int,
    max_candidates: int,
) -> Tuple[CandidateState, ...]:
    """Capture the candidate set a placement decision saw.

    The interesting candidates are always: the chosen node, the
    globally min-available node (what a locality-blind policy would
    take), and the cached replicas of the task's chunk (what a
    locality-aware policy scores).  Among the remaining nodes the I/O
    penalty is uniform, so this bounded set is exactly the set any of
    the implemented policies could have preferred.

    Must be called *before* the assignment mutates the tables.

    This runs once per audited placement, so the per-node estimate is
    split into its node-independent halves up front
    (:meth:`~repro.core.tables.SchedulerTables.estimate_components`)
    instead of calling ``exec_estimate`` per candidate — same values,
    one render/I-O pricing per decision.
    """
    chunk = task.chunk
    available = tables.available
    replicas = tables.cached_nodes(chunk)
    hit_est, cold_est = tables.estimate_components(
        chunk, task.job.composite_group_size
    )
    cached = chosen in replicas
    out = [
        CandidateState(
            chosen, available[chosen], cached, hit_est if cached else cold_est
        )
    ]
    min_node = tables.min_available_node()
    if min_node != chosen:
        cached = min_node in replicas
        out.append(
            CandidateState(
                min_node,
                available[min_node],
                cached,
                hit_est if cached else cold_est,
            )
        )
    if replicas:
        for k in sorted(replicas):
            if len(out) >= max_candidates:
                break
            if k != chosen and k != min_node:
                out.append(CandidateState(k, available[k], True, hit_est))
    return tuple(out)


class AuditLog:
    """Bounded ring buffer of :class:`DecisionRecord` + flight recorder.

    One instance exists per audited run; the scheduler context holds it
    (or ``None`` when auditing is off) and records one decision per
    assignment.  The ring keeps the most recent ``capacity`` records;
    ``total_recorded`` / ``dropped`` and the per-reason totals cover the
    whole run regardless of eviction, so they are deterministic inputs
    for the benchmark regression gate.

    The hot path is deliberately lazy: :meth:`record_assignment` only
    captures the time-varying table state (availability and residency
    as C-level tuple copies, plus one probe of the I/O-estimate memo)
    in a flat entry and defers building the :class:`DecisionRecord`
    until the log is first read — everything else a record needs (job
    identity, chunk, the min-available node, the pure render/storage
    estimates) is recomputable from the capture later.  The streaming
    flight recorder materializes immediately (the write dominates
    anyway), and records evicted from the ring before anyone read them
    are never built at all.

    Attributes:
        invocations: Scheduler invocations seen (``begin_invocation``).
        total_recorded: Decisions recorded over the whole run.
        reason_totals: Per-reason decision counts over the whole run.
    """

    def __init__(
        self,
        config: Optional[AuditConfig] = None,
        *,
        scheduler: str = "",
        scenario: str = "",
    ) -> None:
        self.config = config if config is not None else AuditConfig()
        self.scheduler = scheduler
        self.scenario = scenario
        self._ring: Deque = deque(maxlen=self.config.capacity)
        self._ring_append = self._ring.append
        self._snapshot = self.config.candidates
        self._pending = False
        self._tables = None
        self._replicas_get = None
        self._estimate_components = None
        self._available = None
        self._io_get = None
        # Materialization context: pure derivations (render memo, the
        # contention-free storage estimate) deferred off the hot path.
        self._m_render_get = None
        self._m_render_time = None
        self._m_storage_est = None
        self.invocations = 0
        self.shed_count = 0
        self.reason_totals: Dict[str, int] = {}
        self._stream: Optional[IO[str]] = None
        self.jsonl_path: Optional[Path] = None
        if self.config.jsonl_path is not None:
            self.jsonl_path = Path(self.config.jsonl_path)
            if self.jsonl_path.parent != Path("."):
                self.jsonl_path.parent.mkdir(parents=True, exist_ok=True)
            self._stream = self.jsonl_path.open("w")

    # -- recording ---------------------------------------------------------

    def begin_invocation(self, now: float, jobs: int) -> None:
        """Mark one scheduler invocation (cycle ordinal for records)."""
        self.invocations += 1

    def record_assignment(
        self,
        task: "RenderTask",
        node: int,
        tables: "SchedulerTables",
        now: float,
        reason: Optional[str],
    ) -> None:
        """Audit one placement (called by ``SchedulerContext.assign``).

        Runs *before* the tables absorb the assignment, so the candidate
        snapshot reflects the state the policy actually scored.  When
        the policy did not state a reason (custom schedulers), one is
        derived from the tables: cached chunk → ``cache-hit``, chosen
        node == min-available → ``only-available``, else
        ``min-estimate``.
        """
        if tables is not self._tables:
            self._bind_tables(tables)
        chunk = task.chunk
        replicas = self._replicas_get(chunk)
        if reason is None:
            if replicas and node in replicas:
                reason = REASON_CACHE_HIT
            else:
                # min_available_node() inlined: one C-level scan over
                # the shared availability list.
                available = self._available
                reason = (
                    REASON_ONLY_AVAILABLE
                    if node == available.index(min(available))
                    else REASON_MIN_ESTIMATE
                )
        totals = self.reason_totals
        try:
            totals[reason] += 1
        except KeyError:
            totals[reason] = 1
        task.assign_time = now
        if self._snapshot:
            # C-level copies of the mutable state, plus one probe of the
            # time-varying I/O memo.  Everything else a record needs
            # (min-available node, render estimate, membership, the
            # candidate cap) is a pure function of this capture and is
            # deferred to materialization.
            io_get = self._io_get
            entry = (
                now,
                self.invocations,
                task,
                node,
                reason,
                tuple(replicas) if replicas else (),
                tuple(self._available),
                io_get(chunk)
                if io_get is not None
                else self._estimate_components(
                    chunk, task.job.composite_group_size
                ),
            )
        else:
            entry = (now, self.invocations, task, node, reason, None, None, None)
        if self._stream is None:
            self._ring_append(entry)
            self._pending = True
        else:
            record = self._record_from_entry(entry)
            self._ring_append(record)
            self._stream.write(json.dumps(record.to_dict()) + "\n")
            # Flush per record: a mid-run crash loses at most the line
            # being written, and a tailing reader always sees complete
            # records (plus at most one torn trailing line).
            self._stream.flush()

    def _bind_tables(self, tables) -> None:
        """Resolve per-decision table accessors once per tables object.

        The audit hook fires per placement, so the replica map and the
        availability view are bound directly (one dict/list probe per
        decision instead of a method-call chain).  Table doubles that
        lack the :class:`~repro.core.tables.SchedulerTables` internals
        fall back to the public interface.
        """
        self._tables = tables
        replicas = getattr(tables, "_replicas", None)
        if replicas is not None:
            self._replicas_get = replicas.get
        else:
            cached_nodes = tables.cached_nodes
            self._replicas_get = lambda chunk: cached_nodes(chunk) or None
        self._estimate_components = tables.estimate_components
        self._available = tables.available
        # Deferred-estimate context.  The render cost and the
        # contention-free storage estimate are pure functions of the
        # chunk, so materialization can recompute them later; only the
        # I/O memo is time-varying, and the hot path captures that one
        # probe.  Doubles lacking the real internals fall back to an
        # eager estimate_components call per decision.
        self._m_render_get = getattr(tables, "_render_memo_get", None)
        cost = getattr(tables, "cost", None)
        storage = getattr(tables, "_storage", None)
        io_memo = getattr(tables, "_io_estimate", None)
        if (
            io_memo is not None
            and self._m_render_get is not None
            and cost is not None
            and storage is not None
        ):
            self._io_get = io_memo.get
            self._m_render_time = cost.render_time
            self._m_storage_est = storage.estimate_load_time
        else:
            self._io_get = None
            self._m_render_time = None
            self._m_storage_est = None

    def _record_from_entry(self, entry) -> DecisionRecord:
        """Build the full record from a deferred hot-path entry.

        Everything beyond the captured tuples is a pure function of the
        capture: the min-available node is an index into the frozen
        availability copy, the render estimate comes from the cost
        model's grow-only memo (with the pure ``render_time`` fallback),
        and a missing I/O probe means the decision-time value was the
        contention-free storage estimate — recomputable exactly.
        """
        now, cycle, task, node, reason, replicas, available, est = entry
        job = task.job
        chunk = task.chunk
        candidates: Tuple[CandidateState, ...] = ()
        if replicas is not None:
            if est.__class__ is tuple:
                hit_est, cold_est = est
            else:
                group = job.composite_group_size
                hit_est = self._m_render_get((chunk.size, group))
                if hit_est is None:
                    hit_est = self._m_render_time(chunk.size, group)
                io_est = (
                    est if est is not None else self._m_storage_est(chunk.size)
                )
                cold_est = io_est + hit_est
            min_node = available.index(min(available))
            chosen_cached = node in replicas
            out = [
                CandidateState(
                    node,
                    available[node],
                    chosen_cached,
                    hit_est if chosen_cached else cold_est,
                )
            ]
            if min_node != node:
                min_cached = min_node in replicas
                out.append(
                    CandidateState(
                        min_node,
                        available[min_node],
                        min_cached,
                        hit_est if min_cached else cold_est,
                    )
                )
            max_candidates = self.config.max_candidates
            for k in sorted(replicas):
                if len(out) >= max_candidates:
                    break
                if k != node and k != min_node:
                    out.append(CandidateState(k, available[k], True, hit_est))
            candidates = tuple(out)
        return DecisionRecord(
            now,
            cycle,
            job.user,
            job.action,
            job.sequence,
            job.job_type.value,
            task.index,
            chunk.dataset,
            chunk.index,
            node,
            reason,
            candidates,
        )

    def _materialize(self) -> None:
        """Convert every deferred ring entry into a DecisionRecord."""
        if self._pending:
            self._ring = deque(
                (
                    e
                    if type(e) is DecisionRecord
                    else self._record_from_entry(e)
                    for e in self._ring
                ),
                maxlen=self._ring.maxlen,
            )
            self._ring_append = self._ring.append
            self._pending = False

    @property
    def records(self) -> Deque[DecisionRecord]:
        """The ring buffer (oldest first), materialized on access."""
        self._materialize()
        return self._ring

    def record_shed(self, now: float, request) -> None:
        """Audit a request the overload frontend refused.

        ``request`` is a :class:`~repro.workload.trace.Request`; the
        record carries ``node = -1`` / ``task_index = -1`` since no task
        ever existed.
        """
        self.shed_count += 1
        self._append(
            DecisionRecord(
                now,
                self.invocations,
                request.user,
                request.action,
                request.sequence,
                request.job_type.value,
                -1,
                request.dataset,
                -1,
                -1,
                REASON_SHED,
                (),
            )
        )

    def record_recovery(self, now: float, reason: str, node: int) -> None:
        """Audit a non-placement recovery action (quarantine, rewarm).

        Placement-shaped recovery (``requeue-crash``, ``speculative``)
        flows through ``SchedulerContext.assign`` like any other
        decision; this records the actions that change node state
        without placing a task, with ``task_index = -1``.
        """
        self._append(
            DecisionRecord(
                now,
                self.invocations,
                -1,
                -1,
                -1,
                "recovery",
                -1,
                "",
                -1,
                node,
                reason,
                (),
            )
        )

    def _append(self, record: DecisionRecord) -> None:
        self._ring_append(record)
        totals = self.reason_totals
        totals[record.reason] = totals.get(record.reason, 0) + 1
        if self._stream is not None:
            self._stream.write(json.dumps(record.to_dict()) + "\n")
            self._stream.flush()  # crash-safe: complete records only

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ring)

    def __iter__(self) -> Iterator[DecisionRecord]:
        return iter(self.records)

    @property
    def total_recorded(self) -> int:
        """Decisions recorded over the whole run (shed included),
        regardless of ring eviction — the per-reason totals summed."""
        return sum(self.reason_totals.values())

    @property
    def dropped(self) -> int:
        """Records evicted from the ring (recorded but no longer held)."""
        return self.total_recorded - len(self._ring)

    def reason_counts(self) -> Dict[str, int]:
        """Whole-run per-reason totals (deterministic; gate-friendly)."""
        return dict(self.reason_totals)

    def decisions_for(self, user: int, action: int, sequence: int):
        """Ring records for one job, in decision order."""
        return [
            r
            for r in self.records
            if r.user == user and r.action == action and r.sequence == sequence
        ]

    def summary(self) -> str:
        """One-line human summary."""
        reasons = ", ".join(
            f"{k}={v}" for k, v in sorted(self.reason_totals.items())
        )
        return (
            f"{self.total_recorded} decisions over {self.invocations} "
            f"invocations ({self.dropped} dropped from ring; {reasons})"
        )

    # -- export ------------------------------------------------------------

    def write_jsonl(self, path: Union[str, Path]) -> Path:
        """Dump the ring's current records as JSONL; returns the path.

        Unlike the streaming ``jsonl_path`` flight recorder this only
        sees what the ring still holds.
        """
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w") as fh:
            for record in self.records:
                fh.write(json.dumps(record.to_dict()) + "\n")
        return path

    def close(self) -> None:
        """Finalize the log at the end of a run (idempotent).

        Drops the per-run table bindings and closes the streaming JSONL
        handle.  Deferred records stay deferred — they materialize on
        first read, or in :meth:`__getstate__` when the log is pickled
        onto a ``workers=N`` sweep pool — so an audited run that nobody
        inspects never pays for building them.
        """
        self._tables = None
        self._replicas_get = None
        self._estimate_components = None
        self._available = None
        self._io_get = None
        if self._stream is not None:
            self._stream.close()
            self._stream = None

    def __getstate__(self) -> Dict[str, Any]:
        """Pickle support: materialize the ring, strip live handles.

        Deferred entries hold task references (and through them the
        whole job graph); building the flat :class:`DecisionRecord`\\ s
        first keeps the pickled payload small and the log usable on the
        other side of a sweep pool.
        """
        self._materialize()
        state = self.__dict__.copy()
        for key in (
            "_stream",
            "_tables",
            "_replicas_get",
            "_estimate_components",
            "_available",
            "_io_get",
            "_m_render_get",
            "_m_render_time",
            "_m_storage_est",
            "_ring_append",
        ):
            state[key] = None
        return state

    def __setstate__(self, state: Dict[str, Any]) -> None:
        self.__dict__.update(state)
        self._ring_append = self._ring.append


def read_audit_jsonl(path) -> List[Dict[str, Any]]:
    """Parsed records of an ``--audit-jsonl`` file, tolerating a torn tail.

    The writer flushes per record, so a mid-run crash (or a reader
    racing a live run) leaves at most one partial trailing line — this
    reader skips it instead of raising, via the same
    :func:`repro.obs.stream.iter_jsonl` discipline the telemetry stream
    uses.
    """
    from repro.obs.stream import iter_jsonl

    return list(iter_jsonl(path))


__all__ = [
    "REASON_CACHE_HIT",
    "REASON_MIN_ESTIMATE",
    "REASON_ONLY_AVAILABLE",
    "REASON_FALLBACK",
    "REASON_SHED",
    "REASON_REQUEUE_CRASH",
    "REASON_QUARANTINE",
    "REASON_SPECULATIVE",
    "REASON_REWARM",
    "REASON_CODES",
    "AuditConfig",
    "CandidateState",
    "DecisionRecord",
    "AuditLog",
    "read_audit_jsonl",
    "snapshot_candidates",
]

"""Online anomaly detection over the live telemetry stream.

Consumes the ``snapshot`` records :class:`~repro.obs.stream.TelemetryStream`
emits and raises ``anomaly`` records *while the run executes* — the
streaming counterpart of the post-hoc fault RCA
(:mod:`repro.faults.rca`).  Where RCA reads the audit log after the run
to name the node and mechanism, these detectors watch windowed series
online and flag *that something is wrong* within a few grid windows of
onset, from a closed vocabulary:

* ``queue-growth`` — outstanding jobs accumulate a sustained upward
  drift (CUSUM on the window-to-window change);
* ``hit-rate-collapse`` — windowed cache hit rate drops far below its
  EWMA baseline (z-score);
* ``latency-spike`` — windowed p95 latency jumps far above its EWMA
  baseline (z-score);
* ``throughput-stall`` — a window completes nothing while work is
  outstanding (rule), or completions fall far below baseline (z-score);
* ``burn-acceleration`` — the fps burn rate (target / delivered)
  accumulates a sustained upward drift (CUSUM).

Two detector families, matched to the failure shapes:

* :class:`EwmaDetector` — EWMA mean + EWMA variance; flags a sample
  whose z-score against the *pre-update* baseline exceeds a threshold.
  Catches step changes (spikes, collapses).
* :class:`CusumDetector` — one-sided CUSUM over the rate of change;
  accumulates drift beyond a slack ``k`` and alarms when the sum
  crosses ``h``.  Catches slow ramps a z-score never sees.

Detectors consume only virtual-time snapshot fields (never ``wall_s``
or events/s), so the anomaly records for a given run are bit-identical
across machines — which is what lets
:func:`score_anomalies` grade them against a
:class:`~repro.faults.plan.FaultPlan` as a deterministic benchmark leaf
(precision / recall / onset latency, mirroring
:func:`repro.faults.rca.score`).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.util.validation import check_positive

#: The closed anomaly vocabulary, in canonical (merge) order.
ANOMALY_KINDS: Tuple[str, ...] = (
    "queue-growth",
    "hit-rate-collapse",
    "latency-spike",
    "throughput-stall",
    "burn-acceleration",
)

#: Which anomaly kinds each ground-truth fault kind is expected to
#: surface as.  A crashed node stalls throughput and backs the queue up;
#: a straggler inflates latency until the backlog shows; a cache wipe
#: collapses the windowed hit rate; degraded storage inflates latency
#: and burns the fps budget.
FAULT_SIGNATURES: Dict[str, Tuple[str, ...]] = {
    "crash": (
        "throughput-stall",
        "queue-growth",
        "latency-spike",
        "burn-acceleration",
    ),
    "straggler": (
        "latency-spike",
        "queue-growth",
        "throughput-stall",
        "burn-acceleration",
    ),
    "wipe": ("hit-rate-collapse", "latency-spike"),
    "storage": ("latency-spike", "burn-acceleration", "queue-growth"),
}


@dataclass(frozen=True)
class AnomalyConfig:
    """Detector thresholds (the defaults are deliberately conservative:
    a fault-free run must stay silent — that is a benchmark gate).

    Attributes:
        warmup: Snapshots observed before any detector may alarm (the
            EWMA baselines are meaningless until then).
        ewma_alpha: EWMA smoothing factor for mean/variance baselines.
        z_threshold: |z| a sample must exceed against its pre-update
            baseline to alarm.
        cusum_k: Slack per window absorbed before drift accumulates,
            as a fraction of the tracked level.
        cusum_h: Accumulated (slack-adjusted) drift, as a fraction of
            the tracked level, at which a CUSUM alarms.
        cooldown: Snapshots a kind stays suppressed after alarming, so
            one sustained fault yields one record per flare-up rather
            than one per window.
    """

    warmup: int = 6
    ewma_alpha: float = 0.25
    z_threshold: float = 4.0
    cusum_k: float = 0.15
    cusum_h: float = 1.0
    cooldown: int = 8

    def __post_init__(self) -> None:
        if self.warmup < 1:
            raise ValueError(f"warmup must be >= 1, got {self.warmup}")
        if not 0.0 < self.ewma_alpha <= 1.0:
            raise ValueError(
                f"ewma_alpha must be in (0, 1], got {self.ewma_alpha}"
            )
        check_positive("z_threshold", self.z_threshold)
        if self.cusum_k < 0:
            raise ValueError(f"cusum_k must be >= 0, got {self.cusum_k}")
        check_positive("cusum_h", self.cusum_h)
        if self.cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {self.cooldown}")


@dataclass(frozen=True)
class AnomalyRecord:
    """One online detector alarm."""

    kind: str  # one of ANOMALY_KINDS
    #: Virtual end time of the window that tripped the detector.
    time: float
    #: Virtual start of that window.
    window_start: float
    detector: str  # "ewma" | "cusum" | "rule"
    #: Exceedance score (z-score, CUSUM sum / h, or 1.0 for rules).
    score: float
    #: The sample value that alarmed.
    value: float
    #: The detector's baseline at alarm time.
    baseline: float

    def describe(self) -> str:
        """One human-readable line for this alarm."""
        return (
            f"{self.kind} @ t={self.time:.3f}s "
            f"({self.detector}, score {self.score:.1f}, "
            f"value {self.value:.4g} vs baseline {self.baseline:.4g})"
        )

    def to_dict(self) -> Dict[str, Any]:
        """NDJSON record form (``type: anomaly``)."""
        return {
            "type": "anomaly",
            "kind": self.kind,
            "time": self.time,
            "window_start": self.window_start,
            "detector": self.detector,
            "score": self.score,
            "value": self.value,
            "baseline": self.baseline,
        }

    @classmethod
    def from_dict(cls, record: Mapping[str, Any]) -> "AnomalyRecord":
        """Rebuild from an NDJSON record (``repro watch``, merges)."""
        return cls(
            kind=record["kind"],
            time=record["time"],
            window_start=record["window_start"],
            detector=record["detector"],
            score=record["score"],
            value=record["value"],
            baseline=record["baseline"],
        )


class EwmaDetector:
    """EWMA mean/variance baseline with z-score alarming.

    The z-score is computed against the baseline *before* the sample
    updates it, so a genuine step change cannot mask itself.  A std
    floor (``rel_floor`` of the baseline mean, at least ``abs_floor``)
    keeps near-constant healthy series from alarming on numeric noise.
    """

    __slots__ = ("alpha", "rel_floor", "abs_floor", "mean", "var", "samples")

    def __init__(
        self, alpha: float, *, rel_floor: float = 0.1, abs_floor: float = 1e-6
    ) -> None:
        self.alpha = alpha
        self.rel_floor = rel_floor
        self.abs_floor = abs_floor
        self.mean = 0.0
        self.var = 0.0
        self.samples = 0

    def update(self, x: float) -> float:
        """Feed one sample; return its z-score against the old baseline."""
        if self.samples == 0:
            self.mean = x
            self.var = 0.0
            self.samples = 1
            return 0.0
        floor = max(abs(self.mean) * self.rel_floor, self.abs_floor)
        std = max(math.sqrt(self.var), floor)
        z = (x - self.mean) / std
        alpha = self.alpha
        delta = x - self.mean
        self.mean += alpha * delta
        # EWMA variance of the residuals (Roberts-style recursion).
        self.var = (1.0 - alpha) * (self.var + alpha * delta * delta)
        self.samples += 1
        return z


class CusumDetector:
    """One-sided positive CUSUM over a series' rate of change.

    Accumulates per-window increases beyond a slack of ``k`` times the
    reference level and alarms when the sum exceeds ``h`` times that
    level — i.e. the series has drifted up by a whole ``h`` fraction of
    itself faster than the slack allows.  The reference level is an
    EWMA of the series (floored at ``min_level``), so thresholds scale
    with the workload instead of hard-coding job counts.
    """

    __slots__ = ("k", "h", "alpha", "min_level", "level", "sum", "last", "samples")

    def __init__(
        self, k: float, h: float, alpha: float, *, min_level: float = 1.0
    ) -> None:
        self.k = k
        self.h = h
        self.alpha = alpha
        self.min_level = min_level
        self.level = 0.0
        self.sum = 0.0
        self.last = 0.0
        self.samples = 0

    def update(self, x: float) -> float:
        """Feed one sample; return the alarm score (sum / threshold)."""
        if self.samples == 0:
            self.level = x
            self.last = x
            self.samples = 1
            return 0.0
        reference = max(self.level, self.min_level)
        delta = x - self.last
        self.sum = max(0.0, self.sum + delta - self.k * reference)
        self.last = x
        self.level += self.alpha * (x - self.level)
        self.samples += 1
        return self.sum / (self.h * reference)

    def reset(self) -> None:
        """Drop accumulated drift (called after an alarm is emitted)."""
        self.sum = 0.0


class OnlineAnomalyDetector:
    """Runs the full detector bank over a snapshot stream.

    Feed each ``snapshot`` record (dict form, as written by the stream)
    to :meth:`observe`; it returns the :class:`AnomalyRecord` alarms
    that window raised (usually none).  Only virtual-time fields are
    read, so the output is deterministic for a given run.
    """

    def __init__(
        self, config: Optional[AnomalyConfig] = None, *, target_framerate: float = 0.0
    ) -> None:
        self.config = config if config is not None else AnomalyConfig()
        self.target_framerate = target_framerate
        cfg = self.config
        self._latency = EwmaDetector(cfg.ewma_alpha, rel_floor=0.25)
        self._hit_rate = EwmaDetector(
            cfg.ewma_alpha, rel_floor=0.0, abs_floor=0.08
        )
        self._throughput = EwmaDetector(cfg.ewma_alpha, rel_floor=0.35)
        self._queue = CusumDetector(
            cfg.cusum_k, cfg.cusum_h, cfg.ewma_alpha, min_level=4.0
        )
        self._burn = CusumDetector(
            cfg.cusum_k, cfg.cusum_h, cfg.ewma_alpha, min_level=1.0
        )
        self._snapshots = 0
        self._cooldowns: Dict[str, int] = {}

    # -- plumbing ----------------------------------------------------------

    def _armed(self, kind: str) -> bool:
        return (
            self._snapshots > self.config.warmup
            and self._cooldowns.get(kind, 0) <= 0
        )

    def _emit(
        self,
        out: List[AnomalyRecord],
        kind: str,
        snapshot: Mapping[str, Any],
        detector: str,
        score: float,
        value: float,
        baseline: float,
    ) -> None:
        out.append(
            AnomalyRecord(
                kind=kind,
                time=snapshot["t"],
                window_start=snapshot["start"],
                detector=detector,
                score=score,
                value=value,
                baseline=baseline,
            )
        )
        self._cooldowns[kind] = self.config.cooldown

    # -- the detector bank -------------------------------------------------

    def observe(self, snapshot: Mapping[str, Any]) -> List[AnomalyRecord]:
        """Feed one snapshot window; return the alarms it raised."""
        out: List[AnomalyRecord] = []
        cfg = self.config
        self._snapshots += 1
        for kind in list(self._cooldowns):
            self._cooldowns[kind] -= 1

        completed = snapshot["jobs_completed"]
        outstanding = snapshot["outstanding"]

        # latency-spike: windowed p95 against its EWMA baseline.  Empty
        # windows carry no latency signal and are skipped entirely.
        if completed > 0:
            baseline = self._latency.mean
            z = self._latency.update(snapshot["latency_p95"])
            if z > cfg.z_threshold and self._armed("latency-spike"):
                self._emit(
                    out, "latency-spike", snapshot, "ewma", z,
                    snapshot["latency_p95"], baseline,
                )

        # hit-rate-collapse: windowed hit rate far below baseline.  Only
        # windows that actually touched the cache carry signal.
        if snapshot["cache_hits"] + snapshot["cache_misses"] > 0:
            baseline = self._hit_rate.mean
            z = self._hit_rate.update(snapshot["hit_rate"])
            if z < -cfg.z_threshold and self._armed("hit-rate-collapse"):
                self._emit(
                    out, "hit-rate-collapse", snapshot, "ewma", -z,
                    snapshot["hit_rate"], baseline,
                )

        # throughput-stall: the hard rule (nothing completed while work
        # is outstanding) catches a dead cluster a z-score would need
        # several windows to see; the z-score catches partial stalls.
        if completed == 0 and outstanding > 0:
            if self._armed("throughput-stall"):
                self._emit(
                    out, "throughput-stall", snapshot, "rule", 1.0,
                    0.0, self._throughput.mean,
                )
        else:
            baseline = self._throughput.mean
            z = self._throughput.update(float(completed))
            if (
                z < -cfg.z_threshold
                and outstanding > 0
                and self._armed("throughput-stall")
            ):
                self._emit(
                    out, "throughput-stall", snapshot, "ewma", -z,
                    float(completed), baseline,
                )

        # queue-growth: sustained upward drift of outstanding jobs.
        baseline = self._queue.level
        score = self._queue.update(float(outstanding))
        if score > 1.0 and self._armed("queue-growth"):
            self._emit(
                out, "queue-growth", snapshot, "cusum", score,
                float(outstanding), baseline,
            )
            self._queue.reset()

        # burn-acceleration: sustained upward drift of the fps burn
        # rate; only meaningful when the run has an fps target.
        if self.target_framerate > 0.0:
            baseline = self._burn.level
            score = self._burn.update(snapshot["burn"])
            if score > 1.0 and self._armed("burn-acceleration"):
                self._emit(
                    out, "burn-acceleration", snapshot, "cusum", score,
                    snapshot["burn"], baseline,
                )
                self._burn.reset()

        return out


def detect_from_snapshots(
    snapshots: Iterable[Mapping[str, Any]],
    config: Optional[AnomalyConfig] = None,
    *,
    target_framerate: float = 0.0,
) -> List[AnomalyRecord]:
    """Run the detector bank over an already-recorded snapshot series.

    The offline twin of the online path: feeding the same snapshots
    yields byte-identical records, which the grid-equality tests lean
    on.
    """
    detector = OnlineAnomalyDetector(config, target_framerate=target_framerate)
    out: List[AnomalyRecord] = []
    for snapshot in snapshots:
        out.extend(detector.observe(snapshot))
    return out


def merge_anomalies(
    per_shard: Sequence[Sequence[AnomalyRecord]],
) -> List[AnomalyRecord]:
    """Deterministic merge of per-shard anomaly lists.

    Sorted by (time, shard order, vocabulary order) — a pure function
    of the shard results, so serial and process-pool federated runs
    merge identically.
    """
    keyed = []
    for shard, records in enumerate(per_shard):
        for record in records:
            keyed.append(
                ((record.time, shard, ANOMALY_KINDS.index(record.kind)), record)
            )
    keyed.sort(key=lambda pair: pair[0])
    return [record for _, record in keyed]


def score_anomalies(
    anomalies: Sequence[AnomalyRecord],
    plan,
    *,
    onset_tolerance: float = 2.0,
) -> Dict[str, Any]:
    """Grade online alarms against the ground-truth fault plan.

    Mirrors :func:`repro.faults.rca.score`: a planned event is
    *localized* when some alarm of an expected kind
    (:data:`FAULT_SIGNATURES`) fires inside the event's active window
    (onset → ``until``/``revive_at``/end-of-impact) plus
    ``onset_tolerance`` seconds of detection slack.  Alarms explaining
    no event are false positives.

    Returns the per-event outcomes, recall, precision, false-positive
    count, and the mean onset latency (first matching alarm time minus
    true onset) over the localized events.
    """
    if onset_tolerance < 0:
        raise ValueError(
            f"onset_tolerance must be >= 0, got {onset_tolerance}"
        )
    explained: set = set()
    events_out: List[dict] = []
    localized = 0
    onset_latencies: List[float] = []
    for event in plan.events:
        expected = FAULT_SIGNATURES.get(event.kind, ())
        window_end = getattr(event, "until", None)
        if window_end is None:
            window_end = getattr(event, "revive_at", None)
        first_hit: Optional[float] = None
        hits: List[int] = []
        for i, record in enumerate(anomalies):
            if record.kind not in expected:
                continue
            if record.time < event.time:
                continue
            if (
                window_end is not None
                and record.time > window_end + onset_tolerance
            ):
                continue
            hits.append(i)
            if first_hit is None or record.time < first_hit:
                first_hit = record.time
        explained.update(hits)
        hit = bool(hits)
        if hit:
            localized += 1
            onset_latencies.append(first_hit - event.time)
        node = getattr(event, "node", None)
        events_out.append(
            {
                "kind": event.kind,
                "node": -1 if node is None else node,
                "time": event.time,
                "localized": hit,
                "onset_latency": (
                    first_hit - event.time if first_hit is not None else None
                ),
                "matched": sorted({anomalies[i].kind for i in hits}),
            }
        )
    total = len(plan.events)
    false_positives = len(anomalies) - len(explained)
    return {
        "events": events_out,
        "localized": localized,
        "total": total,
        "recall": localized / total if total else 1.0,
        "anomalies": len(anomalies),
        "false_positives": false_positives,
        "precision": (
            (len(anomalies) - false_positives) / len(anomalies)
            if anomalies
            else 1.0
        ),
        "mean_onset_latency": (
            sum(onset_latencies) / len(onset_latencies)
            if onset_latencies
            else None
        ),
    }


__all__ = [
    "ANOMALY_KINDS",
    "FAULT_SIGNATURES",
    "AnomalyConfig",
    "AnomalyRecord",
    "EwmaDetector",
    "CusumDetector",
    "OnlineAnomalyDetector",
    "detect_from_snapshots",
    "merge_anomalies",
    "score_anomalies",
]

"""Built-in counter tracks sampled from a running simulation.

Spans show individual work items; counters show *pressure*: how deep
the head node's queue is, how many nodes are busy, how full each node's
chunk cache sits, how many bytes of I/O are in flight.  These are the
curves behind the paper's narrative — FCFS drowning the file server,
OURS keeping caches warm and queues short.

:class:`CounterSampler` rides the event queue at a fixed interval
(exactly like :class:`~repro.reporting.timeline.TimelineSampler`) and
emits one counter sample per track per tick into a
:class:`~repro.obs.tracer.Tracer`.  Standard track names are module
constants so tests and consumers don't hard-code strings.
"""

from __future__ import annotations

from typing import Optional

from repro.obs.tracer import PID_HEAD, Tracer, pid_for_node
from repro.util.validation import check_positive

#: Head-node track: jobs waiting for a scheduling trigger plus tasks the
#: scheduler has deferred internally.
TRACK_QUEUE = "queue depth"
#: Head-node track: rendering nodes with at least one busy pipeline.
TRACK_BUSY_NODES = "busy nodes"
#: Head-node track: storage-subsystem loads/bytes currently in flight.
TRACK_IO_INFLIGHT = "io in-flight"
#: Per-node track: bytes resident in the node's chunk cache.
TRACK_CACHE = "cache bytes"

#: The standard *head-node* counter tracks.  These live on ``PID_HEAD``
#: because they describe cluster-wide pressure the head node observes
#: (its queue, the busy-node count, the storage subsystem); per-node
#: tracks are listed separately in :data:`PER_NODE_TRACKS`.
STANDARD_TRACKS = (TRACK_QUEUE, TRACK_BUSY_NODES, TRACK_IO_INFLIGHT)

#: Counter tracks emitted once per rendering node (on the node's own
#: ``pid``, see :func:`~repro.obs.tracer.pid_for_node`).  Consumers
#: iterating a trace's cache occupancy should use this constant rather
#: than hard-coding the track string.
PER_NODE_TRACKS = (TRACK_CACHE,)


class CounterSampler:
    """Samples service/cluster pressure counters into a tracer.

    Args:
        tracer: Destination for counter events.
        interval: Simulated seconds between samples.
        horizon: Optional stop time; the sampler also stops at full
            quiescence so it never keeps a finished simulation alive.
        per_node_cache: Emit one ``cache bytes`` track per rendering
            node (on the node's own pid).  Disable for very large
            clusters where p tracks per tick would dominate the trace.
    """

    def __init__(
        self,
        tracer: Tracer,
        interval: float,
        *,
        horizon: Optional[float] = None,
        per_node_cache: bool = True,
    ) -> None:
        check_positive("interval", interval)
        self.tracer = tracer
        self.interval = interval
        self.horizon = horizon
        self.per_node_cache = per_node_cache
        self.samples_taken = 0
        self._service = None
        self._start = 0.0

    def attach(self, service) -> "CounterSampler":
        """Start sampling ``service`` (call before running events)."""
        self._service = service
        events = service.cluster.events
        self._start = events.now
        self.samples_taken = 0
        events.schedule(self._start, self._tick)
        return self

    def _tick(self) -> None:
        service = self._service
        cluster = service.cluster
        tracer = self.tracer
        now = cluster.events.now
        tracer.counter(
            PID_HEAD,
            TRACK_QUEUE,
            now,
            {
                "queued jobs": float(len(service._pending)),
                "deferred tasks": float(service.scheduler.pending_task_count()),
                "node backlog": float(cluster.total_backlog()),
            },
        )
        tracer.counter(
            PID_HEAD,
            TRACK_BUSY_NODES,
            now,
            {"busy": float(sum(1 for n in cluster.nodes if n.busy))},
        )
        storage = cluster.storage
        tracer.counter(
            PID_HEAD,
            TRACK_IO_INFLIGHT,
            now,
            {
                "loads": float(storage.active_loads),
                "MiB": storage.active_bytes / 2**20,
            },
        )
        if self.per_node_cache:
            for node in cluster.nodes:
                tracer.counter(
                    pid_for_node(node.node_id),
                    TRACK_CACHE,
                    now,
                    {"used": float(node.cache.used_bytes)},
                )
        self.samples_taken += 1
        past_horizon = self.horizon is not None and now >= self.horizon
        more_coming = service.has_work() or len(cluster.events) > 0
        if more_coming and not past_horizon:
            # Absolute-grid scheduling: sample k fires at exactly
            # ``start + k*interval`` (no accumulated float drift).
            cluster.events.schedule(
                self._start + self.samples_taken * self.interval, self._tick
            )


def default_counter_interval(horizon: float, *, samples: int = 256) -> float:
    """A sampling interval giving ~``samples`` ticks over ``horizon``.

    Clamped below so degenerate horizons can't produce a zero interval.
    """
    return max(horizon / max(samples, 1), 1e-4)


__all__ = [
    "TRACK_QUEUE",
    "TRACK_BUSY_NODES",
    "TRACK_IO_INFLIGHT",
    "TRACK_CACHE",
    "STANDARD_TRACKS",
    "PER_NODE_TRACKS",
    "CounterSampler",
    "default_counter_interval",
]

"""Causal task graph: per-job critical paths and phase attribution.

Every rendering job flows through the same causal chain::

    submit → (scheduling) → assign → (queueing) → start
           → (fetch/io) → (render) → task finish → (composite) → deliver

The tasks of one job form a fork-join DAG: the job's end-to-end latency
is bounded by exactly one task — the *bounding task*, the one whose
finish time is maximal — plus the compositing barrier.  This module
links the per-task events the simulator already produces (assignment
times from the audit log, start/finish/io times from the task records)
into that DAG, extracts the critical path of every completed job, and
attributes its latency to five phases:

* ``scheduling`` — submit → assignment of the bounding task (head-node
  queueing plus cycle/window wait; batch deferral lands here),
* ``queueing`` — assignment → execution start (node FIFO wait),
* ``io`` — the chunk fetch actually paid (0 on a cache hit; includes
  retry backoff),
* ``render`` — GPU execution (plus host→VRAM upload when modeled),
* ``composite`` — last task finish → job delivery (sort-last exchange).

The five phases sum exactly to the job's Definition-3 latency, so
comparing two schedulers' phase profiles *is* the paper's analysis: a
locality-aware policy converts ``io`` time into ``render`` time.  The
``repro explain`` CLI verb surfaces that diff, together with the first
decision where two runs placed the same task differently
(:func:`first_divergence`).

Enabled with the audit log (``RunConfig(audit=...)``); results surface
as ``SimulationResult.critical_paths``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, NamedTuple, Optional, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.job import RenderJob, RenderTask
    from repro.obs.audit import DecisionRecord

#: Attribution phases, in causal order.  Their per-path values sum to
#: the job's end-to-end latency.
PHASES = ("scheduling", "queueing", "io", "render", "composite")


class CriticalPath(NamedTuple):
    """The latency-bounding chain of one completed job."""

    user: int
    action: int
    sequence: int
    job_type: str
    arrival: float
    finish: float
    #: Index (within the job) and node of the bounding task.
    bounding_task: int
    bounding_node: int
    #: Whether the bounding task's chunk was memory-resident.
    cache_hit: bool
    task_count: int
    scheduling: float
    queueing: float
    io: float
    render: float
    composite: float

    @property
    def latency(self) -> float:
        """End-to-end job latency (Definition 3)."""
        return self.finish - self.arrival

    def phase_values(self) -> Dict[str, float]:
        """The five phase durations as a mapping."""
        return {
            "scheduling": self.scheduling,
            "queueing": self.queueing,
            "io": self.io,
            "render": self.render,
            "composite": self.composite,
        }


def job_critical_path(job: "RenderJob") -> CriticalPath:
    """Extract one completed job's critical path (pure).

    The bounding task is the one with the maximal finish time; its
    assignment time rides on ``RenderTask.assign_time`` (stamped at
    placement on audited runs; a task re-dispatched after a node failure
    overwrites the slot, so attribution always uses the assignment that
    actually executed).  A missing stamp falls back to the job's arrival
    (scheduling phase reads as zero).
    """
    tasks = job.tasks
    bounding = tasks[0]
    bound_finish = bounding.finish_time
    for t in tasks:
        if t.finish_time > bound_finish:  # type: ignore[operator]
            bounding = t
            bound_finish = t.finish_time
    arrival = job.arrival_time
    assign = bounding.assign_time
    if assign is None:
        assign = arrival
    start = bounding.start_time
    io = bounding.io_time
    return CriticalPath(
        job.user,
        job.action,
        job.sequence,
        job.job_type.value,
        arrival,
        job.finish_time,  # type: ignore[arg-type]
        bounding.index,
        bounding.node,  # type: ignore[arg-type]
        bool(bounding.cache_hit),
        len(tasks),
        assign - arrival,
        start - assign,  # type: ignore[operator]
        io,
        (bound_finish - start) - io,  # type: ignore[operator]
        job.finish_time - bound_finish,  # type: ignore[operator]
    )


class CausalCollector:
    """Builds critical paths from job completions during a run.

    Registered as a service *completion* listener
    (:meth:`~repro.sim.service.VisualizationService.add_completion_listener`),
    which fires once per job after the service has set
    ``job.finish_time`` — so the collector runs off the per-task hot
    path entirely (the cluster keeps its single-listener task-finish
    fast path) and touches each job exactly once.

    The in-run cost is a single C-level list append: the listener just
    collects the completed job objects, and path extraction
    (:func:`job_critical_path` — a pure function of the job's final
    task records) is deferred until the analysis is first read.
    """

    def __init__(self) -> None:
        self._jobs: List["RenderJob"] = []
        #: The completion listener itself — a bound ``list.append`` so
        #: the service fires straight into C.
        self.on_job_complete = self._jobs.append

    def note_assign(self, task: "RenderTask", now: float) -> None:
        """Record the (latest) assignment time of ``task``."""
        task.assign_time = now

    @property
    def paths(self) -> List[CriticalPath]:
        """Critical paths of the jobs completed so far (built on read)."""
        return [job_critical_path(job) for job in self._jobs]

    def analysis(self) -> "CriticalPathAnalysis":
        """Freeze the collected jobs into a (lazy) analysis object."""
        return CriticalPathAnalysis(jobs=self._jobs)


class CriticalPathAnalysis:
    """Aggregated phase attribution over a run's critical paths.

    Built either from :class:`CriticalPath` tuples directly or lazily
    from completed job objects (``jobs=...``): the audited hot path then
    ends with path extraction still pending, and the first read — or
    pickling — materializes it.
    """

    def __init__(
        self,
        paths: Iterable[CriticalPath] = (),
        *,
        jobs: Optional[List["RenderJob"]] = None,
    ) -> None:
        self._jobs = jobs
        self._paths: Optional[List[CriticalPath]] = (
            None if jobs is not None else list(paths)
        )

    @property
    def paths(self) -> List[CriticalPath]:
        """The critical paths, materialized on first access."""
        if self._paths is None:
            self._paths = [job_critical_path(job) for job in self._jobs]
            self._jobs = None
        return self._paths

    def __getstate__(self) -> dict:
        """Pickle support: materialize, drop the job-graph references."""
        return {"_paths": self.paths, "_jobs": None}

    def __len__(self) -> int:
        return len(self.paths)

    def filter(self, job_type: Optional[str] = None) -> "CriticalPathAnalysis":
        """A sub-analysis restricted to one job type (``None`` = all)."""
        if job_type is None:
            return CriticalPathAnalysis(self.paths)
        return CriticalPathAnalysis(
            [p for p in self.paths if p.job_type == job_type]
        )

    def phase_totals(self) -> Dict[str, float]:
        """Summed seconds per phase across all paths."""
        totals = {name: 0.0 for name in PHASES}
        for p in self.paths:
            totals["scheduling"] += p.scheduling
            totals["queueing"] += p.queueing
            totals["io"] += p.io
            totals["render"] += p.render
            totals["composite"] += p.composite
        return totals

    def phase_shares(self) -> Dict[str, float]:
        """Fraction of total critical-path time spent in each phase."""
        totals = self.phase_totals()
        denom = sum(totals.values())
        if denom <= 0:
            return {name: 0.0 for name in PHASES}
        return {name: totals[name] / denom for name in PHASES}

    @property
    def mean_latency(self) -> float:
        """Mean end-to-end latency over the analyzed paths."""
        if not self.paths:
            return 0.0
        return sum(p.latency for p in self.paths) / len(self.paths)

    @property
    def cache_hit_fraction(self) -> float:
        """Fraction of paths whose bounding task hit the cache."""
        if not self.paths:
            return 0.0
        return sum(1 for p in self.paths if p.cache_hit) / len(self.paths)

    def table(self, *, title: str = "") -> str:
        """Text table: mean seconds and share per phase."""
        lines: List[str] = []
        if title:
            lines.append(title)
        n = len(self.paths)
        lines.append(
            f"{n} critical paths, mean latency {self.mean_latency * 1e3:.2f} ms, "
            f"bounding-task hit rate {self.cache_hit_fraction:.1%}"
        )
        lines.append(f"{'phase':>12} {'mean (ms)':>10} {'share':>7}")
        totals = self.phase_totals()
        shares = self.phase_shares()
        for name in PHASES:
            mean_ms = (totals[name] / n * 1e3) if n else 0.0
            lines.append(f"{name:>12} {mean_ms:>10.3f} {shares[name]:>6.1%}")
        return "\n".join(lines)


class Divergence(NamedTuple):
    """First decision two runs made differently for the same task."""

    #: Index of the divergent decision in run A's record stream.
    index: int
    a: "DecisionRecord"
    b: "DecisionRecord"


def first_divergence(
    records_a: Sequence["DecisionRecord"],
    records_b: Sequence["DecisionRecord"],
) -> Optional[Divergence]:
    """The earliest decision (in run A's order) placed differently in B.

    Decisions are matched by cross-run task identity ``(user, action,
    sequence, task_index)`` plus occurrence number (a task re-dispatched
    after a node failure is decided twice).  Shed records and tasks the
    other run never decided are skipped.  Returns ``None`` when every
    matched decision agrees.
    """
    b_by_key: Dict[tuple, "DecisionRecord"] = {}
    occurrence: Dict[tuple, int] = {}
    for rec in records_b:
        if rec.task_index < 0:
            continue
        key = rec.key()
        n = occurrence.get(key, 0)
        occurrence[key] = n + 1
        b_by_key[(key, n)] = rec
    occurrence_a: Dict[tuple, int] = {}
    for index, rec in enumerate(records_a):
        if rec.task_index < 0:
            continue
        key = rec.key()
        n = occurrence_a.get(key, 0)
        occurrence_a[key] = n + 1
        other = b_by_key.get((key, n))
        if other is not None and other.node != rec.node:
            return Divergence(index, rec, other)
    return None


def phase_delta_table(
    a: CriticalPathAnalysis,
    b: CriticalPathAnalysis,
    name_a: str,
    name_b: str,
) -> str:
    """Side-by-side per-phase latency attribution for two runs.

    One row per phase: mean seconds and share under each run, plus the
    share delta in percentage points (A − B).  This is the "locality
    converts I/O time into render time" table.
    """
    na, nb = len(a.paths), len(b.paths)
    ta, tb = a.phase_totals(), b.phase_totals()
    sa, sb = a.phase_shares(), b.phase_shares()
    lines = [
        f"{'phase':>12} | {name_a:>16} | {name_b:>16} | {'Δ share':>8}",
        f"{'':>12} | {'ms':>8} {'share':>7} | {'ms':>8} {'share':>7} |",
    ]
    for name in PHASES:
        mean_a = (ta[name] / na * 1e3) if na else 0.0
        mean_b = (tb[name] / nb * 1e3) if nb else 0.0
        delta_pp = (sa[name] - sb[name]) * 100.0
        lines.append(
            f"{name:>12} | {mean_a:>8.3f} {sa[name]:>6.1%} | "
            f"{mean_b:>8.3f} {sb[name]:>6.1%} | {delta_pp:>+7.1f}pp"
        )
    lines.append(
        f"{'latency':>12} | {a.mean_latency * 1e3:>8.3f} {'':>6} | "
        f"{b.mean_latency * 1e3:>8.3f} {'':>6} |"
    )
    return "\n".join(lines)


__all__ = [
    "PHASES",
    "CriticalPath",
    "job_critical_path",
    "CausalCollector",
    "CriticalPathAnalysis",
    "Divergence",
    "first_divergence",
    "phase_delta_table",
]

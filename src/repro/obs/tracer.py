"""Virtual-time structured tracer: spans, instants, counter samples.

The simulator's aggregate metrics (framerate, hit rate, latency) say
*what* happened; the tracer records *where virtual time went* — one
span per I/O load, render execution, compositing pass, and scheduler
invocation, plus instant events (cache hits/misses/evictions) and
counter samples (queue depth, busy nodes, cache occupancy, in-flight
I/O).  The recorded timeline exports to Chrome trace-event JSON via
:mod:`repro.obs.chrome` and aggregates into per-node profiles via
:mod:`repro.obs.profile`.

Addressing follows the Chrome trace model: every event belongs to a
*track* (``pid`` — the head node or one rendering node) and a *lane*
within it (``tid`` — named lanes such as ``"render"``, ``"io"``,
``"composite"``).  Lane names are interned to small integer ``tid``
values at first use; the export emits the name as thread metadata.

Per-lane timestamps are enforced to be non-decreasing at record time
(virtual time only moves forward on one lane), so exported traces are
monotonic per lane by construction.

Disabled runs pay nothing: instrumentation sites hold ``None`` instead
of a tracer and guard with one identity check; :class:`NullTracer`
additionally provides the full API as no-ops for call sites that prefer
an always-valid object.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Tuple

#: Track (``pid``) of the head node — the service, scheduler, and
#: cluster-wide counters live here.  Rendering node ``k`` is track
#: ``PID_HEAD + 1 + k`` (see :func:`pid_for_node`).
PID_HEAD = 0

#: Standard event categories (Chrome trace ``cat`` field).
CAT_IO = "io"
CAT_RENDER = "render"
CAT_COMPOSITE = "composite"
CAT_SCHED = "sched"
CAT_CACHE = "cache"
CAT_SERVICE = "service"
CAT_COMM = "comm"


def pid_for_node(node_id: int) -> int:
    """Track id (``pid``) of rendering node ``node_id``."""
    return PID_HEAD + 1 + node_id


class TraceError(RuntimeError):
    """Tracer protocol misuse: bad nesting or time running backwards."""


class TraceEvent:
    """One recorded trace event.

    Attributes mirror the Chrome trace-event fields: ``phase`` is the
    event type (``"X"`` complete span, ``"B"``/``"E"`` nested span
    begin/end, ``"i"`` instant, ``"C"`` counter, ``"s"``/``"t"``/``"f"``
    flow start/step/end), ``ts`` is the virtual start time in seconds,
    ``dur`` the duration in seconds (complete spans only), ``pid``/
    ``tid`` the track and lane, ``args`` an arbitrary payload mapping,
    ``flow_id`` the causal-chain id (flow phases only).
    """

    __slots__ = (
        "phase", "name", "category", "ts", "dur", "pid", "tid", "args",
        "flow_id",
    )

    def __init__(
        self,
        phase: str,
        name: str,
        category: Optional[str],
        ts: float,
        dur: Optional[float],
        pid: int,
        tid: int,
        args: Optional[Mapping[str, Any]],
        flow_id: Optional[int] = None,
    ) -> None:
        self.phase = phase
        self.name = name
        self.category = category
        self.ts = ts
        self.dur = dur
        self.pid = pid
        self.tid = tid
        self.args = args
        self.flow_id = flow_id

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"TraceEvent({self.phase!r}, {self.name!r}, ts={self.ts:.6f}, "
            f"pid={self.pid}, tid={self.tid})"
        )


class Tracer:
    """Records spans, instant events, and counter samples in virtual time.

    All methods take an explicit timestamp ``ts`` (virtual seconds) —
    discrete-event simulations begin and end work at event times, not on
    the Python call stack, so the familiar context-manager tracing style
    does not apply.  Three span styles are supported:

    * :meth:`complete` — a span whose duration is already known when it
      is recorded (the simulator schedules completions ahead of time, so
      this is the common case; it is also the cheapest: one event).
    * :meth:`begin` / :meth:`end` — properly nested open/close pairs on
      one lane, checked for LIFO nesting and forward time.
    * :meth:`instant` — a zero-duration marker.

    Counter samples (:meth:`counter`) carry a mapping of series name to
    value and render as stacked counter tracks in Perfetto.
    """

    enabled = True

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self.process_names: Dict[int, str] = {}
        self._lanes: Dict[Tuple[int, str], int] = {}
        self._lane_names: Dict[Tuple[int, int], str] = {}
        self._next_tid: Dict[int, int] = {}
        self._last_ts: Dict[Tuple[int, int], float] = {}
        self._open: Dict[Tuple[int, int], List[Tuple[str, float]]] = {}

    # -- naming ------------------------------------------------------------

    def name_process(self, pid: int, name: str) -> None:
        """Give track ``pid`` a display name (e.g. ``"node 3"``)."""
        self.process_names[pid] = name

    def lane(self, pid: int, lane: str) -> int:
        """Intern lane name ``lane`` on track ``pid``; returns its ``tid``."""
        key = (pid, lane)
        tid = self._lanes.get(key)
        if tid is None:
            tid = self._next_tid.get(pid, 0)
            self._next_tid[pid] = tid + 1
            self._lanes[key] = tid
            self._lane_names[(pid, tid)] = lane
        return tid

    def lane_name(self, pid: int, tid: int) -> str:
        """Display name of lane ``tid`` on track ``pid``."""
        return self._lane_names.get((pid, tid), f"lane {tid}")

    # -- recording ---------------------------------------------------------

    def _check_forward(self, pid: int, tid: int, ts: float) -> None:
        key = (pid, tid)
        last = self._last_ts.get(key)
        if last is not None and ts < last:
            raise TraceError(
                f"event at ts={ts:.9f} before ts={last:.9f} on "
                f"pid={pid} lane={self.lane_name(pid, tid)!r}"
            )
        self._last_ts[key] = ts

    def complete(
        self,
        pid: int,
        lane: str,
        name: str,
        ts: float,
        dur: float,
        *,
        category: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a span of known duration ``dur`` starting at ``ts``."""
        if dur < 0:
            raise TraceError(f"negative span duration {dur!r} for {name!r}")
        tid = self.lane(pid, lane)
        self._check_forward(pid, tid, ts)
        self.events.append(
            TraceEvent("X", name, category, ts, dur, pid, tid, args)
        )

    def begin(
        self,
        pid: int,
        lane: str,
        name: str,
        ts: float,
        *,
        category: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Open a nested span on ``(pid, lane)``; close with :meth:`end`."""
        tid = self.lane(pid, lane)
        self._check_forward(pid, tid, ts)
        self._open.setdefault((pid, tid), []).append((name, ts))
        self.events.append(
            TraceEvent("B", name, category, ts, None, pid, tid, args)
        )

    def end(
        self,
        pid: int,
        lane: str,
        ts: float,
        *,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Close the innermost open span on ``(pid, lane)``."""
        tid = self.lane(pid, lane)
        stack = self._open.get((pid, tid))
        if not stack:
            raise TraceError(
                f"end without begin on pid={pid} lane={lane!r} at ts={ts:.9f}"
            )
        name, _begin_ts = stack.pop()
        self._check_forward(pid, tid, ts)
        self.events.append(TraceEvent("E", name, None, ts, None, pid, tid, args))

    def instant(
        self,
        pid: int,
        lane: str,
        name: str,
        ts: float,
        *,
        category: Optional[str] = None,
        args: Optional[Mapping[str, Any]] = None,
    ) -> None:
        """Record a zero-duration marker event."""
        tid = self.lane(pid, lane)
        self._check_forward(pid, tid, ts)
        self.events.append(
            TraceEvent("i", name, category, ts, None, pid, tid, args)
        )

    def counter(
        self,
        pid: int,
        track: str,
        ts: float,
        values: Mapping[str, float],
    ) -> None:
        """Record a counter sample: series name → value on track ``track``."""
        tid = self.lane(pid, track)
        self._check_forward(pid, tid, ts)
        self.events.append(
            TraceEvent("C", track, None, ts, None, pid, tid, dict(values))
        )

    # -- flow events (causal edges) ----------------------------------------

    def _flow(
        self,
        phase: str,
        pid: int,
        lane: str,
        name: str,
        ts: float,
        flow_id: int,
        category: Optional[str],
    ) -> None:
        tid = self.lane(pid, lane)
        self._check_forward(pid, tid, ts)
        self.events.append(
            TraceEvent(phase, name, category, ts, None, pid, tid, None, flow_id)
        )

    def flow_start(
        self,
        pid: int,
        lane: str,
        name: str,
        ts: float,
        flow_id: int,
        *,
        category: Optional[str] = "flow",
    ) -> None:
        """Open causal chain ``flow_id`` at ``(pid, lane, ts)``.

        Chrome flow events (``s``/``t``/``f``) draw arrows between the
        spans they land on, connecting one job's submit → render →
        composite → deliver chain across tracks.  Events sharing a
        ``(name, flow_id)`` pair form one chain.
        """
        self._flow("s", pid, lane, name, ts, flow_id, category)

    def flow_step(
        self,
        pid: int,
        lane: str,
        name: str,
        ts: float,
        flow_id: int,
        *,
        category: Optional[str] = "flow",
    ) -> None:
        """Add an intermediate hop to causal chain ``flow_id``."""
        self._flow("t", pid, lane, name, ts, flow_id, category)

    def flow_end(
        self,
        pid: int,
        lane: str,
        name: str,
        ts: float,
        flow_id: int,
        *,
        category: Optional[str] = "flow",
    ) -> None:
        """Terminate causal chain ``flow_id``."""
        self._flow("f", pid, lane, name, ts, flow_id, category)

    # -- inspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    @property
    def span_count(self) -> int:
        """Number of recorded spans (complete + begin/end pairs opened)."""
        return sum(1 for e in self.events if e.phase in ("X", "B"))

    def counter_tracks(self) -> List[Tuple[int, str]]:
        """Distinct counter tracks recorded, as ``(pid, track-name)``."""
        seen: List[Tuple[int, str]] = []
        for e in self.events:
            if e.phase == "C":
                key = (e.pid, e.name)
                if key not in seen:
                    seen.append(key)
        return seen

    def open_spans(self) -> List[Tuple[int, int, str, float]]:
        """Begun-but-unclosed spans as ``(pid, tid, name, begin_ts)``."""
        out: List[Tuple[int, int, str, float]] = []
        for (pid, tid), stack in self._open.items():
            for name, ts in stack:
                out.append((pid, tid, name, ts))
        return out

    def events_for(self, pid: int, lane: Optional[str] = None) -> List[TraceEvent]:
        """Events on track ``pid`` (optionally restricted to one lane)."""
        if lane is None:
            return [e for e in self.events if e.pid == pid]
        tid = self._lanes.get((pid, lane))
        if tid is None:
            return []
        return [e for e in self.events if e.pid == pid and e.tid == tid]


class NullTracer:
    """A tracer that records nothing — the disabled-observability object.

    Exposes the same API as :class:`Tracer` so call sites holding a
    tracer unconditionally still work; the simulator's hot paths instead
    hold ``None`` and skip the call entirely, which is cheaper still.
    """

    enabled = False
    events: List[TraceEvent] = []
    process_names: Dict[int, str] = {}

    def name_process(self, pid: int, name: str) -> None:
        """Does nothing (tracing disabled)."""

    def lane(self, pid: int, lane: str) -> int:
        """Does nothing; returns a dummy ``tid``."""
        return 0

    def lane_name(self, pid: int, tid: int) -> str:
        """Does nothing; returns a placeholder name."""
        return "null"

    def complete(self, pid, lane, name, ts, dur, *, category=None, args=None) -> None:
        """Does nothing (tracing disabled)."""

    def begin(self, pid, lane, name, ts, *, category=None, args=None) -> None:
        """Does nothing (tracing disabled)."""

    def end(self, pid, lane, ts, *, args=None) -> None:
        """Does nothing (tracing disabled)."""

    def instant(self, pid, lane, name, ts, *, category=None, args=None) -> None:
        """Does nothing (tracing disabled)."""

    def counter(self, pid, track, ts, values) -> None:
        """Does nothing (tracing disabled)."""

    def flow_start(self, pid, lane, name, ts, flow_id, *, category="flow") -> None:
        """Does nothing (tracing disabled)."""

    def flow_step(self, pid, lane, name, ts, flow_id, *, category="flow") -> None:
        """Does nothing (tracing disabled)."""

    def flow_end(self, pid, lane, name, ts, flow_id, *, category="flow") -> None:
        """Does nothing (tracing disabled)."""

    def __len__(self) -> int:
        return 0

    @property
    def span_count(self) -> int:
        """Always 0."""
        return 0

    def counter_tracks(self) -> List[Tuple[int, str]]:
        """Always empty."""
        return []

    def open_spans(self) -> List[Tuple[int, int, str, float]]:
        """Always empty."""
        return []

    def events_for(self, pid: int, lane: Optional[str] = None) -> List[TraceEvent]:
        """Always empty."""
        return []


def active_tracer(tracer: Optional[object]) -> Optional[Tracer]:
    """Normalize a tracer argument for hot-path use.

    Returns the tracer itself when it is enabled, else ``None`` — so
    instrumentation sites can guard with a single ``is not None`` check
    whether the caller passed ``None``, a :class:`NullTracer`, or a real
    :class:`Tracer`.
    """
    if tracer is None or not getattr(tracer, "enabled", False):
        return None
    return tracer  # type: ignore[return-value]


__all__ = [
    "PID_HEAD",
    "CAT_IO",
    "CAT_RENDER",
    "CAT_COMPOSITE",
    "CAT_SCHED",
    "CAT_CACHE",
    "CAT_SERVICE",
    "CAT_COMM",
    "pid_for_node",
    "TraceError",
    "TraceEvent",
    "Tracer",
    "NullTracer",
    "active_tracer",
]

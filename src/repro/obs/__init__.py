"""repro.obs — structured tracing, metrics, SLOs & decision audit.

The subsystem has ten pieces:

* :mod:`repro.obs.tracer` — a lightweight virtual-time tracer (nested
  spans, instant events, counter samples) plus a zero-cost
  :class:`NullTracer` for disabled runs;
* :mod:`repro.obs.chrome` — export to Chrome trace-event JSON, viewable
  in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.counters` — built-in pressure counters (queue depth,
  busy nodes, cache occupancy, in-flight I/O) sampled on the event
  queue;
* :mod:`repro.obs.profile` — aggregated per-node time breakdown
  (io / render / composite / idle fractions);
* :mod:`repro.obs.metrics` — a virtual-time metrics registry (counters,
  gauges, log-bucketed histograms), windowed time-series aggregation,
  Prometheus text exposition and JSONL export;
* :mod:`repro.obs.slo` — service-level-objective monitors evaluating
  framerate/latency targets (Definitions 3-4) over sliding windows;
* :mod:`repro.obs.audit` — the decision audit log: per-placement reason
  codes and candidate-node snapshots in a bounded ring buffer with an
  optional streaming-JSONL flight recorder;
* :mod:`repro.obs.causal` — the causal task graph: per-job critical
  paths with latency attributed to scheduling / queueing / io / render /
  composite phases, plus the two-run divergence diff behind the
  ``repro explain`` CLI verb;
* :mod:`repro.obs.stream` — the live telemetry bus: schema-versioned
  NDJSON snapshots on the absolute sampler grid *while the run
  executes*, wall-clock progress/ETA checkpoints, and a stall watchdog
  (the ``--stream`` flag and the ``repro watch`` verb);
* :mod:`repro.obs.anomaly` — online anomaly detection over the
  streamed snapshots (EWMA z-scores, CUSUM rate-of-change) with a
  closed alarm vocabulary, scored against injected fault ground truth.

Typical use::

    from repro import RunConfig, run_simulation, scenario_1
    from repro.obs import SLObjective, SLOMonitor, Tracer, write_chrome_trace

    tracer = Tracer()
    result = run_simulation(
        scenario_1(scale=0.2),
        "OURS",
        config=RunConfig(tracer=tracer, metrics=True),
    )
    write_chrome_trace("out.json", tracer)
    print(result.profile.table())
    print(result.metrics.to_prometheus())
    report = SLOMonitor([SLObjective("fps", 33.3)]).evaluate(result)[0]
    print(f"violation time: {report.total_violation_time:.2f}s")
"""

from repro.obs.anomaly import (
    ANOMALY_KINDS,
    FAULT_SIGNATURES,
    AnomalyConfig,
    AnomalyRecord,
    CusumDetector,
    EwmaDetector,
    OnlineAnomalyDetector,
    detect_from_snapshots,
    merge_anomalies,
    score_anomalies,
)
from repro.obs.audit import (
    REASON_CACHE_HIT,
    REASON_CODES,
    REASON_FALLBACK,
    REASON_MIN_ESTIMATE,
    REASON_ONLY_AVAILABLE,
    REASON_SHED,
    AuditConfig,
    AuditLog,
    CandidateState,
    DecisionRecord,
    read_audit_jsonl,
    snapshot_candidates,
)
from repro.obs.causal import (
    PHASES,
    CausalCollector,
    CriticalPath,
    CriticalPathAnalysis,
    Divergence,
    first_divergence,
    phase_delta_table,
)
from repro.obs.chrome import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.counters import (
    PER_NODE_TRACKS,
    STANDARD_TRACKS,
    TRACK_BUSY_NODES,
    TRACK_CACHE,
    TRACK_IO_INFLIGHT,
    TRACK_QUEUE,
    CounterSampler,
    default_counter_interval,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricsSampler,
    MetricWindow,
    RunMetrics,
    default_window_interval,
    log_buckets,
)
from repro.obs.profile import ClusterProfile, NodeProfile
from repro.obs.report import (
    render_federation_html,
    render_report_html,
    render_timeline_svg,
    write_report,
)
from repro.obs.slo import (
    SLObjective,
    SLOMonitor,
    SLOReport,
    ViolationWindow,
    slo_table,
)
from repro.obs.stream import (
    STREAM_SCHEMA,
    StallWatchdog,
    StreamConfig,
    StreamReport,
    TelemetryStream,
    default_stream_interval,
    follow_stream,
    iter_jsonl,
    read_stream,
)
from repro.obs.tracer import (
    CAT_CACHE,
    CAT_COMM,
    CAT_COMPOSITE,
    CAT_IO,
    CAT_RENDER,
    CAT_SCHED,
    CAT_SERVICE,
    PID_HEAD,
    NullTracer,
    TraceError,
    TraceEvent,
    Tracer,
    active_tracer,
    pid_for_node,
)
from repro.obs.timeline import (
    Marker,
    PathOverlay,
    ResidencySpan,
    Segment,
    Series,
    TimelineError,
    TimelineModel,
    Window,
    extract_timeline,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "TraceEvent",
    "TraceError",
    "active_tracer",
    "pid_for_node",
    "PID_HEAD",
    "CAT_IO",
    "CAT_RENDER",
    "CAT_COMPOSITE",
    "CAT_SCHED",
    "CAT_CACHE",
    "CAT_SERVICE",
    "CAT_COMM",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "CounterSampler",
    "default_counter_interval",
    "STANDARD_TRACKS",
    "PER_NODE_TRACKS",
    "TRACK_QUEUE",
    "TRACK_BUSY_NODES",
    "TRACK_IO_INFLIGHT",
    "TRACK_CACHE",
    "ClusterProfile",
    "NodeProfile",
    "Counter",
    "Gauge",
    "Histogram",
    "log_buckets",
    "MetricsRegistry",
    "MetricsSampler",
    "MetricWindow",
    "RunMetrics",
    "default_window_interval",
    "SLObjective",
    "SLOMonitor",
    "SLOReport",
    "ViolationWindow",
    "slo_table",
    "AuditConfig",
    "AuditLog",
    "CandidateState",
    "DecisionRecord",
    "read_audit_jsonl",
    "snapshot_candidates",
    "REASON_CACHE_HIT",
    "REASON_MIN_ESTIMATE",
    "REASON_ONLY_AVAILABLE",
    "REASON_FALLBACK",
    "REASON_SHED",
    "REASON_CODES",
    "PHASES",
    "CausalCollector",
    "CriticalPath",
    "CriticalPathAnalysis",
    "Divergence",
    "first_divergence",
    "phase_delta_table",
    "TimelineError",
    "TimelineModel",
    "Segment",
    "Series",
    "ResidencySpan",
    "Marker",
    "Window",
    "PathOverlay",
    "extract_timeline",
    "STREAM_SCHEMA",
    "StreamConfig",
    "StreamReport",
    "TelemetryStream",
    "StallWatchdog",
    "default_stream_interval",
    "follow_stream",
    "iter_jsonl",
    "read_stream",
    "ANOMALY_KINDS",
    "FAULT_SIGNATURES",
    "AnomalyConfig",
    "AnomalyRecord",
    "EwmaDetector",
    "CusumDetector",
    "OnlineAnomalyDetector",
    "detect_from_snapshots",
    "merge_anomalies",
    "score_anomalies",
    "render_timeline_svg",
    "render_report_html",
    "render_federation_html",
    "write_report",
]

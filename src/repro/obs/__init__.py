"""repro.obs — structured tracing & observability for the simulator.

The subsystem has four pieces:

* :mod:`repro.obs.tracer` — a lightweight virtual-time tracer (nested
  spans, instant events, counter samples) plus a zero-cost
  :class:`NullTracer` for disabled runs;
* :mod:`repro.obs.chrome` — export to Chrome trace-event JSON, viewable
  in Perfetto / ``chrome://tracing``;
* :mod:`repro.obs.counters` — built-in pressure counters (queue depth,
  busy nodes, cache occupancy, in-flight I/O) sampled on the event
  queue;
* :mod:`repro.obs.profile` — aggregated per-node time breakdown
  (io / render / composite / idle fractions).

Typical use::

    from repro import run_simulation, scenario_1
    from repro.obs import Tracer, write_chrome_trace

    tracer = Tracer()
    result = run_simulation(scenario_1(scale=0.2), "OURS", tracer=tracer)
    write_chrome_trace("out.json", tracer)
    print(result.profile.table())
"""

from repro.obs.chrome import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.counters import (
    STANDARD_TRACKS,
    TRACK_BUSY_NODES,
    TRACK_CACHE,
    TRACK_IO_INFLIGHT,
    TRACK_QUEUE,
    CounterSampler,
    default_counter_interval,
)
from repro.obs.profile import ClusterProfile, NodeProfile
from repro.obs.tracer import (
    CAT_CACHE,
    CAT_COMM,
    CAT_COMPOSITE,
    CAT_IO,
    CAT_RENDER,
    CAT_SCHED,
    CAT_SERVICE,
    PID_HEAD,
    NullTracer,
    TraceError,
    TraceEvent,
    Tracer,
    active_tracer,
    pid_for_node,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "TraceEvent",
    "TraceError",
    "active_tracer",
    "pid_for_node",
    "PID_HEAD",
    "CAT_IO",
    "CAT_RENDER",
    "CAT_COMPOSITE",
    "CAT_SCHED",
    "CAT_CACHE",
    "CAT_SERVICE",
    "CAT_COMM",
    "chrome_trace_events",
    "to_chrome_trace",
    "write_chrome_trace",
    "CounterSampler",
    "default_counter_interval",
    "STANDARD_TRACKS",
    "TRACK_QUEUE",
    "TRACK_BUSY_NODES",
    "TRACK_IO_INFLIGHT",
    "TRACK_CACHE",
    "ClusterProfile",
    "NodeProfile",
]

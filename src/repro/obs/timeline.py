"""Unified run timeline: one model extracted from every recorder.

The repo records a run through four independent lenses — tracer spans
(:mod:`repro.obs.tracer`), decision audits (:mod:`repro.obs.audit`),
causal critical paths (:mod:`repro.obs.causal`), and fault reports
(:mod:`repro.faults`).  Each is precise and none is *readable*: a human
reconstructing "what did node 3 do between t=4 and t=6" has to join
four JSONL streams by hand.  This module performs that join once,
producing a :class:`TimelineModel` — the single comprehension layer the
HTML/SVG report renderer (:mod:`repro.obs.report`) draws:

* per-node **Gantt lanes** of io / render / composite segments (idle is
  the gap between them), with crash-orphaned segments clipped at the
  moment their node died;
* **pressure tracks** — queue depth, busy-node count, in-flight I/O —
  lifted from the counter samples;
* a **cache-residency map**: for every ``(dataset, node)`` pair, the
  intervals during which each chunk was memory-resident, reconstructed
  from the insert/evict instants (prewarm included) and collapsible
  into a time-binned heatmap;
* **markers and windows** — fault injections, detections, recovery
  actions, SLO-violation windows, storage-degradation windows;
* the run's **worst critical paths** (p99-latency jobs), each with the
  phase boundaries needed to draw the path onto the Gantt;
* the deterministic **summary scalars** (jobs, fps, hit rate, reason
  mix, phase totals) the report's tiles and tables show.

Everything in the model is *virtual-time derived* and therefore
bit-deterministic for a fixed scenario seed — wall-clock quantities
(scheduling cost, events/s) are deliberately excluded so two extractions
of the same run are equal and the rendered report is byte-identical
across reruns.

Build it with :meth:`SimulationResult.timeline()
<repro.sim.simulator.SimulationResult.timeline>` (requires the run to
have carried a tracer) or :func:`extract_timeline` directly.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (
    Any,
    Dict,
    List,
    Mapping,
    NamedTuple,
    Optional,
    Sequence,
    Tuple,
)

from repro.obs.counters import (
    TRACK_BUSY_NODES,
    TRACK_IO_INFLIGHT,
    TRACK_QUEUE,
)
from repro.obs.causal import PHASES, CriticalPath
from repro.obs.tracer import PID_HEAD

#: Gantt lane kinds, in drawing order within one node row.
LANE_KINDS = ("io", "render", "composite")

#: Marker kinds the model emits (fault lifecycle + A/B divergence).
MARKER_KINDS = ("onset", "detection", "recovery", "divergence")


class TimelineError(RuntimeError):
    """Timeline extraction was asked for data the run never recorded."""


class Segment(NamedTuple):
    """One Gantt bar: a span of work on one node's lane."""

    node: int
    #: ``"io"``, ``"render"``, or ``"composite"`` (multi-executor slot
    #: lanes fold into their base kind; the ``lane`` field keeps the
    #: original lane name for stacking).
    kind: str
    #: Full lane name as traced (``"render"``, ``"render 1"``, ...).
    lane: str
    start: float
    end: float
    label: str
    #: True when the segment was cut short by the run ending or the
    #: node crashing with the task still in flight (orphaned span).
    truncated: bool


class Series(NamedTuple):
    """One sampled counter series (times and values, same length)."""

    name: str
    times: Tuple[float, ...]
    values: Tuple[float, ...]


class ResidencySpan(NamedTuple):
    """One chunk's stay in one node's memory cache."""

    dataset: str
    chunk_index: int
    node: int
    start: float
    end: float
    size: int


class Marker(NamedTuple):
    """A point event drawn as a vertical marker on the timeline."""

    time: float
    #: One of :data:`MARKER_KINDS`.
    kind: str
    #: Node the marker concerns (``-1`` for cluster-wide events).
    node: int
    label: str


class Window(NamedTuple):
    """An interval overlay (SLO violation, storage degradation)."""

    start: float
    end: float
    #: ``"slo-violation"`` or ``"storage-degrade"``.
    kind: str
    label: str


class PathOverlay(NamedTuple):
    """One critical path with the boundary times needed to draw it."""

    user: int
    action: int
    sequence: int
    job_type: str
    node: int
    latency: float
    #: Phase boundaries: arrival -> assign -> start -> io_done ->
    #: render_done (bounding-task finish) -> finish (composite done).
    arrival: float
    assign: float
    start: float
    io_done: float
    render_done: float
    finish: float
    cache_hit: bool

    def phase_values(self) -> Dict[str, float]:
        """The five phase durations, in :data:`~repro.obs.causal.PHASES` order."""
        return {
            "scheduling": self.assign - self.arrival,
            "queueing": self.start - self.assign,
            "io": self.io_done - self.start,
            "render": self.render_done - self.io_done,
            "composite": self.finish - self.render_done,
        }


def _overlay_from_path(path: CriticalPath) -> PathOverlay:
    """Convert a :class:`CriticalPath` into drawable boundary times."""
    assign = path.arrival + path.scheduling
    start = assign + path.queueing
    io_done = start + path.io
    render_done = io_done + path.render
    return PathOverlay(
        path.user,
        path.action,
        path.sequence,
        path.job_type,
        path.bounding_node,
        path.latency,
        path.arrival,
        assign,
        start,
        io_done,
        render_done,
        path.finish,
        path.cache_hit,
    )


@dataclass
class TimelineModel:
    """Everything the run report draws, joined and virtual-time only."""

    scenario: str
    scheduler: str
    horizon: float
    #: Last meaningful instant (>= horizon on drained runs); all
    #: segments and spans are clipped to it.
    end: float
    node_count: int
    target_framerate: float
    segments: List[Segment] = field(default_factory=list)
    counters: Dict[str, Series] = field(default_factory=dict)
    residency: List[ResidencySpan] = field(default_factory=list)
    #: Dataset name -> total observed bytes (heatmap denominator).
    dataset_bytes: Dict[str, int] = field(default_factory=dict)
    markers: List[Marker] = field(default_factory=list)
    windows: List[Window] = field(default_factory=list)
    paths: List[PathOverlay] = field(default_factory=list)
    reason_counts: Dict[str, int] = field(default_factory=dict)
    phase_totals: Dict[str, float] = field(default_factory=dict)
    summary: Dict[str, Any] = field(default_factory=dict)

    # -- derived views ------------------------------------------------------

    @property
    def datasets(self) -> Tuple[str, ...]:
        """Dataset names with any observed residency, sorted."""
        return tuple(sorted(self.dataset_bytes))

    def lanes_for(self, node: int) -> List[Tuple[str, str]]:
        """Distinct ``(kind, lane)`` pairs of one node, in drawing order."""
        seen: Dict[Tuple[str, str], None] = {}
        for seg in self.segments:
            if seg.node == node:
                seen.setdefault((seg.kind, seg.lane))
        return sorted(seen, key=lambda kl: (LANE_KINDS.index(kl[0]), kl[1]))

    def phase_shares(self) -> Dict[str, float]:
        """Critical-path phase shares (empty phases -> all zeros)."""
        denom = sum(self.phase_totals.values())
        if denom <= 0:
            return {name: 0.0 for name in PHASES}
        return {
            name: self.phase_totals.get(name, 0.0) / denom for name in PHASES
        }

    def busy_fraction(self) -> Series:
        """Busy-node counter normalized to a 0..1 utilization series."""
        busy = self.counters.get("busy")
        if busy is None or self.node_count == 0:
            return Series("utilization", (), ())
        scale = 1.0 / self.node_count
        return Series(
            "utilization", busy.times, tuple(v * scale for v in busy.values)
        )

    def heatmap(self, bins: int = 60) -> Dict[str, Dict[int, List[float]]]:
        """Time-binned residency fractions: dataset -> node -> bin values.

        Each value is the fraction of the dataset's observed bytes
        resident on that node, integrated over the bin — 1.0 means the
        whole dataset sat in the node's cache for the whole bin.
        """
        if bins < 1:
            raise ValueError(f"bins must be >= 1, got {bins}")
        span = max(self.end, 1e-9)
        width = span / bins
        out: Dict[str, Dict[int, List[float]]] = {}
        for res in self.residency:
            total = self.dataset_bytes.get(res.dataset, 0)
            if total <= 0:
                continue
            rows = out.setdefault(res.dataset, {})
            row = rows.get(res.node)
            if row is None:
                row = rows[res.node] = [0.0] * bins
            first = min(bins - 1, max(0, int(res.start / width)))
            last = min(bins - 1, max(0, int(math.ceil(res.end / width)) - 1))
            weight = res.size / total
            for b in range(first, last + 1):
                lo = b * width
                hi = lo + width
                overlap = min(res.end, hi) - max(res.start, lo)
                if overlap > 0:
                    row[b] += weight * overlap / width
        for rows in out.values():
            for row in rows.values():
                for b, v in enumerate(row):
                    if v > 1.0:
                        row[b] = 1.0
        return out


def _marker_label(kind: str, what: str, node: int) -> str:
    where = "cluster" if node < 0 else f"node {node}"
    return f"{what} ({where})"


def _extract_segments(tracer, node_count: int, end: float) -> List[Segment]:
    """Gantt segments per node, crash-orphans clipped at the crash.

    Spans are recorded with their full duration when the task starts
    (the discrete-event model schedules completion up front), so a span
    in flight when its node crashes extends past the node's death in
    the raw trace.  Such an orphan is clipped at the first crash instant
    falling inside it and marked ``truncated`` — the work after the cut
    never happened.  Spans emitted after a revival start after the
    crash, so the rule never clips live work.
    """
    crashes: Dict[int, List[float]] = {}
    for e in tracer.events:
        if e.phase == "i" and e.name == "node failed":
            node = e.pid - PID_HEAD - 1
            if 0 <= node < node_count:
                crashes.setdefault(node, []).append(e.ts)
    segments: List[Segment] = []
    for e in tracer.events:
        if e.phase != "X" or e.category not in LANE_KINDS:
            continue
        node = e.pid - PID_HEAD - 1
        if not 0 <= node < node_count:
            continue
        start = e.ts
        stop = start + (e.dur or 0.0)
        cut = end
        for crash_ts in crashes.get(node, ()):
            if start <= crash_ts < cut:
                cut = crash_ts
        truncated = stop > cut
        if truncated:
            stop = cut
        if stop <= start and truncated:
            continue
        lane = tracer.lane_name(e.pid, e.tid)
        segments.append(
            Segment(node, e.category, lane, start, max(stop, start), e.name, truncated)
        )
    segments.sort(key=lambda s: (s.node, LANE_KINDS.index(s.kind), s.lane, s.start))
    return segments


def _extract_counters(tracer) -> Dict[str, Series]:
    """Head-node pressure series keyed by short series name."""
    wanted = {
        (TRACK_QUEUE, "queued jobs"): "queued jobs",
        (TRACK_QUEUE, "deferred tasks"): "deferred tasks",
        (TRACK_QUEUE, "node backlog"): "node backlog",
        (TRACK_BUSY_NODES, "busy"): "busy",
        (TRACK_IO_INFLIGHT, "MiB"): "io MiB",
    }
    acc: Dict[str, Tuple[List[float], List[float]]] = {}
    for e in tracer.events:
        if e.phase != "C" or e.pid != PID_HEAD or not e.args:
            continue
        for series, value in e.args.items():
            name = wanted.get((e.name, series))
            if name is None:
                continue
            times, values = acc.setdefault(name, ([], []))
            times.append(e.ts)
            values.append(float(value))
    return {
        name: Series(name, tuple(times), tuple(values))
        for name, (times, values) in acc.items()
    }


def _extract_residency(
    tracer, node_count: int, end: float
) -> Tuple[List[ResidencySpan], Dict[str, int]]:
    """Chunk residency intervals from the insert/evict instant stream."""
    open_spans: Dict[Tuple[int, str, int], Tuple[float, int]] = {}
    spans: List[ResidencySpan] = []
    chunk_bytes: Dict[Tuple[str, int], int] = {}
    for e in tracer.events:
        if e.phase != "i" or e.category != "cache" or not e.args:
            continue
        args = e.args
        dataset = args.get("dataset")
        if dataset is None:
            continue
        node = e.pid - PID_HEAD - 1
        if not 0 <= node < node_count:
            continue
        index = args.get("index", -1)
        size = int(args.get("bytes", 0))
        key = (node, dataset, index)
        if e.name.startswith("insert"):
            open_spans.setdefault(key, (e.ts, size))
            chunk_bytes[(dataset, index)] = size
        elif e.name.startswith("evict"):
            opened = open_spans.pop(key, None)
            if opened is not None and e.ts > opened[0]:
                spans.append(
                    ResidencySpan(dataset, index, node, opened[0], e.ts, opened[1])
                )
    for (node, dataset, index), (start, size) in open_spans.items():
        if end > start:
            spans.append(ResidencySpan(dataset, index, node, start, end, size))
    spans.sort()
    dataset_bytes: Dict[str, int] = {}
    for (dataset, _index), size in sorted(chunk_bytes.items()):
        dataset_bytes[dataset] = dataset_bytes.get(dataset, 0) + size
    return spans, dataset_bytes


def _extract_fault_overlays(
    fault_report,
) -> Tuple[List[Marker], List[Window]]:
    """Markers + windows from the fault report's exported events."""
    markers: List[Marker] = []
    windows: List[Window] = []
    if fault_report is None:
        return markers, windows
    for inj in getattr(fault_report, "injections", ()):  # PR 7 export
        if inj.kind == "storage" and inj.until is not None:
            windows.append(
                Window(
                    inj.time,
                    inj.until,
                    "storage-degrade",
                    "storage degraded",
                )
            )
        else:
            markers.append(
                Marker(
                    inj.time,
                    "onset",
                    inj.node,
                    _marker_label("onset", f"{inj.kind} injected", inj.node),
                )
            )
    for det in fault_report.detections:
        markers.append(
            Marker(
                det.time,
                "detection",
                det.node,
                _marker_label("detection", f"{det.kind} detected", det.node),
            )
        )
    for action in fault_report.actions:
        markers.append(
            Marker(
                action.time,
                "recovery",
                action.node,
                _marker_label("recovery", action.kind, action.node),
            )
        )
    markers.sort()
    return markers, windows


def _worst_paths(analysis, top: int) -> List[PathOverlay]:
    """The p99-latency critical paths (at least one, at most ``top``)."""
    paths = analysis.paths if analysis is not None else []
    if not paths:
        return []
    latencies = sorted(p.latency for p in paths)
    p99 = latencies[min(len(latencies) - 1, int(0.99 * (len(latencies) - 1)))]
    worst = sorted(
        (p for p in paths if p.latency >= p99),
        key=lambda p: (-p.latency, p.user, p.action, p.sequence),
    )
    if not worst:
        worst = [max(paths, key=lambda p: p.latency)]
    return [_overlay_from_path(p) for p in worst[:top]]


def extract_timeline(
    result,
    *,
    slo_reports: Sequence = (),
    top_paths: int = 3,
) -> TimelineModel:
    """Join a run's recorders into one :class:`TimelineModel`.

    Args:
        result: A :class:`~repro.sim.simulator.SimulationResult` whose
            run carried a tracer (``RunConfig(tracer=Tracer())``).  The
            audit log, critical paths, and fault report are folded in
            when present and simply absent from the model otherwise.
        slo_reports: :class:`~repro.obs.slo.SLOReport` objects to
            overlay as violation windows.
        top_paths: How many worst-latency critical paths to keep.

    Raises:
        TimelineError: When the run recorded no trace — the timeline is
            built *from* the trace, so there is nothing to extract.
    """
    tracer = result.tracer
    if tracer is None or not getattr(tracer, "enabled", False):
        raise TimelineError(
            "run recorded no trace; re-run with "
            "RunConfig(tracer=Tracer()) (CLI: repro report, or "
            "repro simulate --trace) to build a timeline"
        )
    node_count = len(result.profile.nodes) if result.profile is not None else 0
    end = max(result.simulated_time, result.horizon, 1e-9)
    segments = _extract_segments(tracer, node_count, end)
    residency, dataset_bytes = _extract_residency(tracer, node_count, end)
    markers, windows = _extract_fault_overlays(result.fault_report)
    for report in slo_reports:
        for violation in report.violations:
            windows.append(
                Window(
                    violation.start,
                    min(violation.end, end),
                    "slo-violation",
                    (
                        f"{report.objective.describe()}: user "
                        f"{violation.user} action {violation.action}"
                    ),
                )
            )
    windows.sort()
    audit = result.audit
    analysis = result.critical_paths
    interactive = result.interactive_latency
    summary: Dict[str, Any] = {
        "jobs_submitted": result.jobs_submitted,
        "jobs_completed": result.jobs_completed,
        "tasks_executed": result.tasks_executed,
        "hit_rate": result.hit_rate,
        "interactive_fps": result.interactive_fps,
        "mean_latency": interactive.mean,
        "p99_latency": interactive.p99,
        "mean_node_utilization": result.mean_node_utilization,
        "drained": result.drained,
    }
    return TimelineModel(
        scenario=result.scenario_name,
        scheduler=result.scheduler_name,
        horizon=result.horizon,
        end=end,
        node_count=node_count,
        target_framerate=result.target_framerate,
        segments=segments,
        counters=_extract_counters(tracer),
        residency=residency,
        dataset_bytes=dataset_bytes,
        markers=markers,
        windows=windows,
        paths=_worst_paths(analysis, top_paths),
        reason_counts=dict(audit.reason_counts()) if audit is not None else {},
        phase_totals=(
            dict(analysis.phase_totals()) if analysis is not None else {}
        ),
        summary=summary,
    )


__all__ = [
    "LANE_KINDS",
    "MARKER_KINDS",
    "TimelineError",
    "Segment",
    "Series",
    "ResidencySpan",
    "Marker",
    "Window",
    "PathOverlay",
    "TimelineModel",
    "extract_timeline",
]

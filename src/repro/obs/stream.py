"""Live telemetry streaming — the *while it runs* observability lens.

Every other layer of :mod:`repro.obs` is post-hoc: nothing is visible
until :class:`~repro.sim.simulator.SimulationResult` materializes.  This
module adds a bounded-overhead telemetry bus that emits schema-versioned
NDJSON records *during* the run, so an operator (or ``repro watch``) can
see progress, stalls, and emerging anomalies while a fleet-scale
simulation is still executing:

* :class:`StreamConfig` — where to stream and at what cadence;
* :class:`TelemetryStream` — rides the event queue on the absolute
  ``start + k * interval`` sampler grid (the PR-4 drift-free
  discipline), closing one ``snapshot`` record per tick from the deltas
  since the previous tick — the exact window arithmetic
  :class:`~repro.obs.metrics.MetricsSampler` uses, so streamed counters
  equal the post-hoc series at identical grid points — plus wall-clock
  ``wall`` checkpoint records (events/s, ETA extrapolation);
* :class:`StallWatchdog` — a daemon thread that notices when *wall*
  time passes without any event draining and dumps queue-head/in-flight
  diagnostics (a ``stall`` record) so a hung run explains itself;
* :class:`StreamReport` — the picklable bundle attached to
  ``SimulationResult.stream``;
* :func:`iter_jsonl` — the partial-line-tolerant NDJSON reader every
  consumer (``repro watch``, tests, offline analysis) uses: a crash or
  an in-progress write leaves at most one torn trailing line, which the
  reader skips instead of raising.

Record vocabulary (``type`` field), all carrying ``"schema": 1``
in the run header:

* ``run`` — stream header: schema version, scenario, scheduler,
  horizon, grid interval, target fps, shard namespace;
* ``fault`` — one planned injection (known at arm time; markers for
  ``repro watch``, never consumed by the anomaly detectors);
* ``snapshot`` — one grid window of simulated time.  Deterministic
  fields (everything the anomaly detectors consume) are pure virtual-
  time quantities; ``wall_s`` is the only machine-dependent field;
* ``wall`` — a wall-clock checkpoint: events/s and the ETA
  extrapolation ``wall_so_far * remaining_sim / elapsed_sim``;
* ``anomaly`` — an online detector verdict
  (:mod:`repro.obs.anomaly`);
* ``stall`` — the watchdog's diagnostic dump;
* ``summary`` — the closing record (its presence marks a finished
  stream; ``repro watch`` exits when it appears).

Writes are flushed per record, so a reader tailing the file (or the
post-crash forensics) always sees every completed record.  The off
path costs nothing: ``RunConfig(stream=None)`` constructs nothing, and
a streamed run is bit-identical to an unstreamed one — snapshot ticks
are pure observers on the event queue, pinned by the golden-trace
hashes.
"""

from __future__ import annotations

import json
import math
import threading
import time as _time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.core.cost_model import percentile
from repro.core.job import JobType
from repro.util.validation import check_positive

#: NDJSON schema version stamped in every stream's ``run`` header.
STREAM_SCHEMA = 1


def default_stream_interval(horizon: float, *, samples: int = 64) -> float:
    """A grid interval giving ~``samples`` snapshots over ``horizon``.

    Matches :func:`repro.obs.metrics.default_window_interval` so a
    default-cadence stream and a default-cadence metrics sampler land
    on the same absolute grid.
    """
    return max(horizon / max(samples, 1), 1e-3)


@dataclass(frozen=True)
class StreamConfig:
    """How one run streams live telemetry.

    Attributes:
        path: NDJSON output file (created/truncated at run start; parent
            directories are created).
        interval: Snapshot grid interval in simulated seconds; ``None``
            derives ~64 snapshots from the horizon (the metrics-sampler
            default, so the two grids coincide).
        wall_interval: Wall-clock seconds between ``wall`` checkpoint
            records (progress/ETA for a human tailing the file).
            Checkpoints piggyback on grid ticks — they never add events.
        stall_timeout: Wall-clock seconds without a single event
            draining before the watchdog dumps a ``stall`` diagnostic
            record; ``None`` disables the watchdog thread entirely.
        anomalies: Run the online anomaly detectors
            (:mod:`repro.obs.anomaly`) over the snapshot series and
            emit ``anomaly`` records.
        anomaly_config: Optional
            :class:`~repro.obs.anomaly.AnomalyConfig` overriding the
            detector thresholds.
    """

    path: Union[str, Path]
    interval: Optional[float] = None
    wall_interval: float = 1.0
    stall_timeout: Optional[float] = None
    anomalies: bool = True
    anomaly_config: Optional[object] = None

    def __post_init__(self) -> None:
        if self.interval is not None:
            check_positive("interval", self.interval)
        check_positive("wall_interval", self.wall_interval)
        if self.stall_timeout is not None:
            check_positive("stall_timeout", self.stall_timeout)

    def for_shard(self, shard: int) -> "StreamConfig":
        """A copy streaming to a shard-suffixed sibling file.

        ``telemetry.ndjson`` → ``telemetry.shard3.ndjson``; federated
        runs give every shard its own stream file so worker processes
        never share a write handle.
        """
        path = Path(self.path)
        suffix = path.suffix or ".ndjson"
        return StreamConfig(
            path=path.with_name(f"{path.stem}.shard{shard}{suffix}"),
            interval=self.interval,
            wall_interval=self.wall_interval,
            stall_timeout=self.stall_timeout,
            anomalies=self.anomalies,
            anomaly_config=self.anomaly_config,
        )


def iter_jsonl(path: Union[str, Path]) -> Iterator[Dict[str, Any]]:
    """Yield parsed records from an NDJSON file, tolerating a torn tail.

    A crash (or a reader racing the writer) leaves at most one partial
    trailing line; every complete line before it parses cleanly.  A
    torn *final* line is silently skipped — a corrupt line followed by
    further complete records still raises, because that is corruption,
    not an in-progress write.
    """
    with Path(path).open("r") as fh:
        pending_error: Optional[json.JSONDecodeError] = None
        for line in fh:
            if pending_error is not None:
                raise pending_error
            stripped = line.strip()
            if not stripped:
                continue
            try:
                record = json.loads(stripped)
            except json.JSONDecodeError as exc:
                # Maybe the torn tail; only an error on a *later* line
                # (or a complete line that still fails) proves rot.
                if line.endswith("\n"):
                    pending_error = json.JSONDecodeError(
                        f"corrupt NDJSON line in {path}: {exc.msg}",
                        exc.doc,
                        exc.pos,
                    )
                continue
            yield record


def read_stream(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """All complete records of a stream file (see :func:`iter_jsonl`)."""
    return list(iter_jsonl(path))


def follow_stream(
    path: Union[str, Path],
    *,
    poll: float = 0.25,
    idle_timeout: Optional[float] = 30.0,
) -> Iterator[Dict[str, Any]]:
    """Tail a (possibly still-growing) stream file, yielding records.

    The live counterpart of :func:`iter_jsonl`, built for ``repro
    watch``: records are yielded as their lines complete, a partial
    trailing line is buffered until the writer finishes it, and the
    generator returns as soon as the ``summary`` record appears (the
    stream's end-of-run marker).  If the file does not exist yet the
    tail waits for it.  ``idle_timeout`` bounds how long to wait, in
    wall seconds, without a single new complete record (``None`` waits
    forever — only sensible when a summary is guaranteed).
    """
    check_positive("poll", poll)
    if idle_timeout is not None:
        check_positive("idle_timeout", idle_timeout)
    target = Path(path)
    deadline = (
        None if idle_timeout is None else _time.monotonic() + idle_timeout
    )
    while not target.exists():
        if deadline is not None and _time.monotonic() > deadline:
            return
        _time.sleep(poll)
    with target.open("r") as fh:
        buffer = ""
        while True:
            chunk = fh.read()
            if not chunk:
                if deadline is not None and _time.monotonic() > deadline:
                    return
                _time.sleep(poll)
                continue
            buffer += chunk
            lines = buffer.split("\n")
            buffer = lines.pop()  # torn tail (or "" after a full line)
            progressed = False
            for line in lines:
                stripped = line.strip()
                if not stripped:
                    continue
                try:
                    record = json.loads(stripped)
                except json.JSONDecodeError:
                    # A complete-but-corrupt line; skip it and keep
                    # tailing (the batch reader raises here instead).
                    continue
                progressed = True
                yield record
                if record.get("type") == "summary":
                    return
            if progressed and idle_timeout is not None:
                deadline = _time.monotonic() + idle_timeout


class _StreamWriter:
    """Locked, per-record-flushed NDJSON writer.

    The lock exists for the watchdog thread: grid ticks write from the
    simulation thread, stall diagnostics from the watchdog, and a torn
    interleaving would corrupt the file for every reader.
    """

    def __init__(self, path: Path) -> None:
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = path.open("w")
        self._lock = threading.Lock()
        self.records_written = 0

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record) + "\n"
        with self._lock:
            self._fh.write(line)
            # Flush per record: a mid-run crash loses at most the line
            # being written, never a buffered batch.
            self._fh.flush()
            self.records_written += 1

    def close(self) -> None:
        with self._lock:
            self._fh.close()


class StallWatchdog:
    """Wall-clock stall detector for a running simulation.

    A daemon thread samples the event queue's ``processed`` counter;
    when it stops advancing for ``timeout`` wall seconds while events
    remain pending, the watchdog writes one ``stall`` record with the
    queue-head/in-flight diagnostics an operator needs to localize the
    hang (and keeps re-arming, so a 3-minute stall logs more than
    once).  Purely an observer: it touches nothing the simulation
    reads, so streamed runs stay bit-identical.
    """

    def __init__(
        self,
        events,
        service,
        writer: _StreamWriter,
        timeout: float,
        *,
        poll: Optional[float] = None,
    ) -> None:
        check_positive("timeout", timeout)
        self.events = events
        self.service = service
        self.writer = writer
        self.timeout = timeout
        self.poll = poll if poll is not None else max(timeout / 4.0, 0.01)
        self.stalls_reported = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None

    def start(self) -> None:
        """Arm the watchdog on a daemon thread (idempotent per run)."""
        self._thread = threading.Thread(
            target=self._loop, name="repro-stall-watchdog", daemon=True
        )
        self._thread.start()

    def stop(self) -> None:
        """Disarm the watchdog and join its thread."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=self.timeout + 1.0)
            self._thread = None

    def _loop(self) -> None:
        last_processed = self.events.processed
        last_progress = _time.monotonic()
        while not self._stop.wait(self.poll):
            processed = self.events.processed
            now = _time.monotonic()
            if processed != last_processed:
                last_processed = processed
                last_progress = now
                continue
            if now - last_progress >= self.timeout:
                self._dump(processed, now - last_progress)
                last_progress = now  # re-arm; repeat dumps for long stalls

    def _dump(self, processed: int, stalled_for: float) -> None:
        events = self.events
        service = self.service
        record = {
            "type": "stall",
            "stalled_wall_s": stalled_for,
            "sim_time": events.now,
            "events": processed,
            "queue_len": len(events),
            "next_event_time": events.peek_time(),
            "outstanding": service.outstanding_jobs,
            "inflight": service.tasks_inflight,
            "queue_depth": service.queue_depth,
        }
        self.writer.write(record)
        self.stalls_reported += 1


@dataclass
class StreamReport:
    """Picklable summary of one run's telemetry stream.

    Attached to :class:`~repro.sim.simulator.SimulationResult` as
    ``.stream`` after the writer closes, so results survive process-pool
    boundaries (federated shards) with their stream accounting intact.
    """

    path: Path
    snapshots: int = 0
    records_written: int = 0
    stalls: int = 0
    #: Online anomaly verdicts, in emission (grid) order — a
    #: deterministic function of the virtual-time snapshot series.
    anomalies: List = field(default_factory=list)

    def anomaly_kinds(self) -> Dict[str, int]:
        """Anomaly counts per closed-vocabulary kind."""
        counts: Dict[str, int] = {}
        for record in self.anomalies:
            counts[record.kind] = counts.get(record.kind, 0) + 1
        return counts


class TelemetryStream:
    """Streams one run's telemetry as NDJSON while the run executes.

    Rides the event queue at a fixed interval on the absolute
    ``start + k * interval`` grid (no accumulated float drift) — the
    same discipline as :class:`~repro.obs.metrics.MetricsSampler`, with
    identical window arithmetic, so the streamed counter snapshots are
    exactly the post-hoc window series when the two grids coincide.
    Each tick additionally checks the wall clock and, when
    ``wall_interval`` has passed, appends a ``wall`` checkpoint with
    events/s and the ETA extrapolation.

    Deterministic snapshot fields (everything under simulated time) are
    separated from wall-clock fields by construction: the anomaly
    detectors consume only the former, so anomaly records are
    bit-reproducible across machines.
    """

    def __init__(
        self,
        config: StreamConfig,
        *,
        scenario: str = "",
        scheduler: str = "",
        horizon: Optional[float] = None,
        target_framerate: float = 0.0,
        job_namespace: int = 0,
    ) -> None:
        self.config = config
        self.path = Path(config.path)
        self.horizon = horizon
        self.target_framerate = target_framerate
        interval = config.interval
        if interval is None:
            interval = default_stream_interval(
                horizon if horizon is not None else 60.0
            )
        self.interval = interval
        self._writer = _StreamWriter(self.path)
        self._writer.write(
            {
                "type": "run",
                "schema": STREAM_SCHEMA,
                "scenario": scenario,
                "scheduler": scheduler,
                "horizon": horizon,
                "interval": interval,
                "target_fps": target_framerate,
                "shard": job_namespace,
            }
        )
        self.detector = None
        if config.anomalies:
            from repro.obs.anomaly import AnomalyConfig, OnlineAnomalyDetector

            cfg = config.anomaly_config
            self.detector = OnlineAnomalyDetector(
                cfg if cfg is not None else AnomalyConfig(),
                target_framerate=target_framerate,
            )
        self.watchdog: Optional[StallWatchdog] = None
        self.snapshots = 0
        self.anomalies: List = []
        self._service = None
        self._start = 0.0
        self._ticks = 0
        self._last_time = 0.0
        self._last_events = 0
        self._last_records = 0
        self._last_hits = 0
        self._last_misses = 0
        self._last_io_bytes = 0
        self._wall_start = 0.0
        self._next_wall = 0.0
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def note_injections(self, injections) -> None:
        """Record the fault plan's ground-truth markers (arm time).

        Written up front so ``repro watch`` can show planned faults
        before they strike; the anomaly detectors never read them.
        """
        for injection in injections:
            self._writer.write(
                {
                    "type": "fault",
                    "kind": injection.kind,
                    "node": injection.node,
                    "time": injection.time,
                    "until": injection.until,
                }
            )

    def attach(self, service) -> "TelemetryStream":
        """Start streaming ``service`` (call before running events)."""
        self._service = service
        events = service.cluster.events
        self._start = events.now
        self._last_time = events.now
        self._ticks = 0
        self._wall_start = _time.perf_counter()
        self._next_wall = self.config.wall_interval
        events.schedule(self._start, self._tick)
        if self.config.stall_timeout is not None:
            self.watchdog = StallWatchdog(
                events, service, self._writer, self.config.stall_timeout
            )
            self.watchdog.start()
        return self

    def close(self) -> "StreamReport":
        """Stop the watchdog, write the summary record, close the file."""
        if self._closed:
            return self.report()
        self._closed = True
        if self.watchdog is not None:
            self.watchdog.stop()
        service = self._service
        wall = _time.perf_counter() - self._wall_start
        events = service.cluster.events if service is not None else None
        self._writer.write(
            {
                "type": "summary",
                "snapshots": self.snapshots,
                "anomalies": len(self.anomalies),
                "stalls": (
                    self.watchdog.stalls_reported
                    if self.watchdog is not None
                    else 0
                ),
                "sim_time": events.now if events is not None else 0.0,
                "events": events.processed if events is not None else 0,
                "wall_s": wall,
            }
        )
        self._writer.close()
        # Break the reference cycle through the service/cluster so the
        # result stays picklable across sweep/federation workers.
        self._service = None
        return self.report()

    def report(self) -> StreamReport:
        """The picklable per-run stream summary."""
        return StreamReport(
            path=self.path,
            snapshots=self.snapshots,
            records_written=self._writer.records_written,
            stalls=(
                self.watchdog.stalls_reported
                if self.watchdog is not None
                else 0
            ),
            anomalies=list(self.anomalies),
        )

    # -- sampling ----------------------------------------------------------

    def _tick(self) -> None:
        service = self._service
        cluster = service.cluster
        events = cluster.events
        now = events.now
        records = service.collector.records
        hits = sum(n.cache_hits for n in cluster.nodes)
        misses = sum(n.cache_misses for n in cluster.nodes)
        io_bytes = cluster.storage.total_bytes
        processed = events.processed

        if now > self._last_time:
            fresh = records[self._last_records:]
            latencies = sorted(r.latency for r in fresh)
            interactive = sum(
                1 for r in fresh if r.job_type is JobType.INTERACTIVE
            )
            d_hits = hits - self._last_hits
            d_misses = misses - self._last_misses
            d_tasks = d_hits + d_misses
            duration = now - self._last_time
            fps = interactive / duration
            snapshot = {
                "type": "snapshot",
                "t": now,
                "start": self._last_time,
                "events": processed,
                "d_events": processed - self._last_events,
                "queue": service.queue_depth,
                "outstanding": service.outstanding_jobs,
                "inflight": service.tasks_inflight,
                "submitted": service.jobs_submitted,
                "completed": service.jobs_completed,
                "jobs_completed": len(fresh),
                "interactive_completed": interactive,
                "fps": fps,
                "latency_p50": percentile(latencies, 50),
                "latency_p95": percentile(latencies, 95),
                "latency_p99": percentile(latencies, 99),
                "cache_hits": d_hits,
                "cache_misses": d_misses,
                "hit_rate": d_hits / d_tasks if d_tasks else 0.0,
                "io_bytes": io_bytes - self._last_io_bytes,
                "burn": self._burn(fps),
                "wall_s": _time.perf_counter() - self._wall_start,
            }
            self._writer.write(snapshot)
            self.snapshots += 1
            if self.detector is not None:
                for anomaly in self.detector.observe(snapshot):
                    self.anomalies.append(anomaly)
                    self._writer.write(anomaly.to_dict())
        self._last_time = now
        self._last_events = processed
        self._last_records = len(records)
        self._last_hits = hits
        self._last_misses = misses
        self._last_io_bytes = io_bytes

        wall = _time.perf_counter() - self._wall_start
        if wall >= self._next_wall:
            self._wall_checkpoint(now, processed, wall)
            # Skip any checkpoints the run blew past (a slow stretch
            # should not trigger a burst of catch-up records).
            self._next_wall = (
                math.floor(wall / self.config.wall_interval) + 1
            ) * self.config.wall_interval

        past_horizon = self.horizon is not None and now >= self.horizon
        more_coming = service.has_work() or len(events) > 0
        if more_coming and not past_horizon:
            # Absolute grid: tick k lands at start + k*interval exactly
            # (the PR-4 no-drift discipline).
            self._ticks += 1
            events.schedule(self._start + self._ticks * self.interval, self._tick)

    def _burn(self, fps: float) -> float:
        """Windowed fps burn rate: target / delivered (0 = no target)."""
        target = self.target_framerate
        if target <= 0.0:
            return 0.0
        if fps <= 0.0:
            return float(target)  # fully burning: nothing delivered
        return target / fps

    def _wall_checkpoint(self, now: float, processed: int, wall: float) -> None:
        elapsed_sim = now - self._start
        eta = None
        if (
            self.horizon is not None
            and elapsed_sim > 0.0
            and now < self.horizon
        ):
            eta = wall * (self.horizon - now) / elapsed_sim
        self._writer.write(
            {
                "type": "wall",
                "wall_s": wall,
                "sim_time": now,
                "events": processed,
                "events_per_sec": processed / wall if wall > 0 else 0.0,
                "eta_s": eta,
            }
        )


__all__ = [
    "STREAM_SCHEMA",
    "StreamConfig",
    "StreamReport",
    "TelemetryStream",
    "StallWatchdog",
    "default_stream_interval",
    "follow_stream",
    "iter_jsonl",
    "read_stream",
]

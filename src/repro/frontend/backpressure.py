"""Backpressure: the bounded head-node job queue.

The paper's dispatching thread pops an unbounded queue; under sustained
overload that queue *is* the latency.  :class:`BoundedQueue` caps how
many jobs may be inside the service at once (head-node queue, scheduler
backlog, and in-flight tasks all count — ``outstanding_jobs`` is the
Little's-law quantity that actually bounds waiting time) and applies a
configurable overflow policy to the excess.  Queue depth, deferral, and
shed counts are published to the metrics registry so the overload is
visible, not silent.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, List, Optional, Tuple

from repro.frontend.config import BackpressureConfig, QueuePolicy

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids workload cycle)
    from repro.workload.trace import Request


class BoundedQueue:
    """Wait queue in front of the service, bounded per the policy.

    ``offer`` decides the fate of one admitted request; ``drain`` is
    called on every job completion to feed waiting requests back in as
    capacity frees up.  The queue never reorders requests (FIFO), so a
    blocked request cannot be overtaken by a later one.
    """

    def __init__(
        self,
        config: BackpressureConfig,
        service,
        forward: Callable[[Request, object], None],
        *,
        metrics=None,
        on_overflow: Optional[Callable[[], None]] = None,
    ) -> None:
        self.config = config
        self.service = service
        self._forward = forward
        self._on_overflow = on_overflow
        self._waiting: Deque[Tuple[Request, object]] = deque()
        self.deferred = 0
        self.shed_oldest = 0
        self.shed_newest = 0
        self.max_wait_depth = 0
        self._m_wait = self._m_shed = self._m_deferred = None
        if metrics is not None:
            self._m_wait = metrics.gauge(
                "repro_frontend_wait_depth",
                "requests parked in the frontend wait queue",
            )
            self._m_deferred = metrics.counter(
                "repro_frontend_deferred",
                "requests deferred by backpressure",
            )
            self._m_shed = {
                kind: metrics.counter(
                    "repro_frontend_shed",
                    "requests shed by the bounded queue",
                    labels={"which": kind},
                )
                for kind in ("oldest", "newest")
            }

    # -- inspection --------------------------------------------------------

    @property
    def waiting_count(self) -> int:
        """Requests currently parked in the wait queue."""
        return len(self._waiting)

    @property
    def shed(self) -> int:
        """Total requests shed (either end)."""
        return self.shed_oldest + self.shed_newest

    def _saturated(self) -> bool:
        return self.service.outstanding_jobs >= self.config.queue_limit

    # -- admission-side ----------------------------------------------------

    def offer(self, request: Request, dataset: object) -> None:
        """Forward, park, or shed one admitted request."""
        if not self._waiting and not self._saturated():
            self._forward(request, dataset)
            return
        policy = self.config.policy
        limit = self.config.queue_limit
        if policy is QueuePolicy.SHED_NEWEST and len(self._waiting) >= limit:
            self.shed_newest += 1
            if self._m_shed is not None:
                self._m_shed["newest"].inc()
            return
        self._waiting.append((request, dataset))
        self.deferred += 1
        if self._m_deferred is not None:
            self._m_deferred.inc()
        if policy is QueuePolicy.SHED_OLDEST:
            while len(self._waiting) > limit:
                self._waiting.popleft()
                self.shed_oldest += 1
                if self._m_shed is not None:
                    self._m_shed["oldest"].inc()
        elif policy is QueuePolicy.DEGRADE and self._on_overflow is not None:
            self._on_overflow()
        if len(self._waiting) > self.max_wait_depth:
            self.max_wait_depth = len(self._waiting)
        if self._m_wait is not None:
            self._m_wait.set(float(len(self._waiting)))

    # -- completion-side ---------------------------------------------------

    def drain(self) -> int:
        """Feed waiting requests into freed capacity; returns how many."""
        released = 0
        while self._waiting and not self._saturated():
            request, dataset = self._waiting.popleft()
            released += 1
            self._forward(request, dataset)
        if released and self._m_wait is not None:
            self._m_wait.set(float(len(self._waiting)))
        return released

    def flush(self) -> List[Tuple[Request, object]]:
        """Remove and return everything still waiting (end of run)."""
        out = list(self._waiting)
        self._waiting.clear()
        return out


__all__ = ["BoundedQueue"]

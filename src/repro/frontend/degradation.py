"""SLO-driven graceful degradation: the quality-ladder controller.

The controller rides the event queue (exactly like
:class:`~repro.obs.metrics.MetricsSampler`) and, each tick, converts the
delivered per-session framerate of the last interval into the SLO burn
rate of :mod:`repro.obs.slo` (``(target - fps) / target``).  Sustained
burn above ``step_down_burn`` walks every interactive session one rung
down the quality ladder — first cutting the forwarded frame rate, then
the rendered resolution (fewer chunks per job, per cost-model
Definitions 1-4).  Recovery is hysteretic: the controller only steps
back up after ``patience`` consecutive samples that would satisfy the
*restored* rung's target with margin, so quality does not flap at the
boundary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro.core.job import JobType
from repro.frontend.config import DegradeConfig, QualityLevel
from repro.obs.slo import SLObjective, fps_burn_rate


@dataclass(frozen=True)
class QualityChange:
    """One ladder move, for the audit trail."""

    time: float
    level: int
    name: str
    reason: str
    burn: float


class DegradationController:
    """Walks the quality ladder from sampled SLO burn.

    The burn signal is *global* (mean delivered fps per active session
    vs the current rung's effective target): the head node degrades and
    restores all interactive sessions together, which keeps the policy
    fair and the controller O(1) per tick.
    """

    def __init__(
        self,
        config: DegradeConfig,
        target_fps: float,
        *,
        metrics=None,
    ) -> None:
        self.config = config
        self.target_fps = (
            config.target_fps if config.target_fps is not None else target_fps
        )
        self.level_index = 0
        self.changes: List[QualityChange] = []
        self.frames_dropped = 0
        self._service = None
        self._horizon: Optional[float] = None
        self._interval = 0.0
        self._last_time = 0.0
        self._last_records = 0
        self._hot = 0
        self._cool = 0
        # Per-rung fps objectives so burn comes from repro.obs.slo with
        # the exact semantics SLO reports use.
        self._objectives: Tuple[SLObjective, ...] = tuple(
            SLObjective(
                "fps",
                max(self.target_fps * lv.fps_factor, 1e-9),
                window=max(config.sample_interval or 0.5, 1e-3),
            )
            for lv in config.ladder
        )
        self._m_level = self._m_dropped = None
        if metrics is not None:
            self._m_level = metrics.gauge(
                "repro_frontend_quality_level",
                "current quality-ladder rung (0 = full quality)",
            )
            self._m_dropped = metrics.counter(
                "repro_frontend_frames_dropped",
                "interactive frames withheld by degradation",
            )

    # -- state -------------------------------------------------------------

    @property
    def level(self) -> QualityLevel:
        """The active quality rung."""
        return self.config.ladder[self.level_index]

    @property
    def degraded(self) -> bool:
        """True while below full quality."""
        return self.level_index > 0

    def keep_frame(self, sequence: int) -> bool:
        """Whether frame ``sequence`` of a session passes the fps gate.

        Deterministic stride thinning: with factor ``f`` the kept frames
        are those where ``floor((seq+1)*f) > floor(seq*f)`` — evenly
        spaced, no RNG, identical across schedulers.
        """
        f = self.level.fps_factor
        if f >= 1.0:
            return True
        keep = int((sequence + 1) * f) > int(sequence * f)
        if not keep:
            self.frames_dropped += 1
            if self._m_dropped is not None:
                self._m_dropped.inc()
        return keep

    # -- sampling ----------------------------------------------------------

    def attach(self, service, *, horizon: Optional[float] = None) -> None:
        """Start the controller's sampling loop on the event queue."""
        self._service = service
        self._horizon = horizon
        interval = self.config.sample_interval
        if interval is None:
            interval = 0.5 if horizon is None else max(horizon / 64.0, 1e-3)
        self._interval = interval
        service.cluster.events.schedule(0.0, self._tick)

    def _delivered_burns(self, now: float) -> Optional[Tuple[float, float]]:
        """Burn vs the current rung and vs the rung above, or ``None``.

        ``None`` means the interval had no active interactive session,
        so there is nothing to judge (an idle service is not degraded
        further, nor credited with recovery).
        """
        service = self._service
        duration = now - self._last_time
        if duration <= 0.0:
            return None
        records = service.collector.records
        completed = sum(
            1
            for r in records[self._last_records :]
            if r.job_type is JobType.INTERACTIVE
        )
        active = sum(
            1
            for _count, _first, last in service.collector.action_issues.values()
            if last >= self._last_time
        )
        if active == 0:
            return None
        fps = completed / duration / active
        current = fps_burn_rate(self._objectives[self.level_index], fps)
        above = fps_burn_rate(
            self._objectives[max(self.level_index - 1, 0)], fps
        )
        return current, above

    def _tick(self) -> None:
        service = self._service
        now = service.cluster.now
        burns = self._delivered_burns(now)
        self._last_time = now
        self._last_records = len(service.collector.records)
        if burns is not None:
            burn, burn_above = burns
            cfg = self.config
            if burn > cfg.step_down_burn:
                self._hot += 1
                self._cool = 0
                if self._hot >= cfg.patience:
                    self._move(+1, now, "burn", burn)
                    self._hot = 0
            elif burn_above < cfg.step_up_burn:
                self._cool += 1
                self._hot = 0
                if self._cool >= cfg.patience:
                    self._move(-1, now, "recovered", burn_above)
                    self._cool = 0
            else:
                self._hot = 0
                self._cool = 0
        past_horizon = self._horizon is not None and now >= self._horizon
        more_coming = service.has_work() or len(service.cluster.events) > 0
        if more_coming and not past_horizon:
            service.cluster.events.schedule_after(self._interval, self._tick)

    # -- ladder moves ------------------------------------------------------

    def overflow_nudge(self) -> None:
        """Queue-overflow signal (``QueuePolicy.DEGRADE``): count as hot."""
        self._cool = 0
        self._hot += 1
        if self._hot >= self.config.patience:
            service = self._service
            now = service.cluster.now if service is not None else 0.0
            self._move(+1, now, "overflow", 1.0)
            self._hot = 0

    def _move(self, step: int, now: float, reason: str, burn: float) -> None:
        target = self.level_index + step
        if not 0 <= target < len(self.config.ladder):
            return
        self.level_index = target
        level = self.config.ladder[target]
        self.changes.append(
            QualityChange(now, target, level.name, reason, burn)
        )
        if self._m_level is not None:
            self._m_level.set(float(target))


__all__ = ["QualityChange", "DegradationController"]

"""The overload-management frontend: listener-side policy enforcement.

:class:`ServiceFrontend` sits between the workload trace and the
:class:`~repro.sim.service.VisualizationService` — the paper's listening
thread, grown a spine.  Every incoming request passes three gates:

1. **Admission** (:mod:`repro.frontend.admission`) — per-user token
   buckets and the global session cap decide whether the request may
   enter at all; rejections are recorded, never silently dropped.
2. **Degradation** (:mod:`repro.frontend.degradation`) — the quality
   ladder may thin the session's frame rate (the request is withheld
   and counted) or reduce the job's rendered resolution (fewer chunks).
3. **Backpressure** (:mod:`repro.frontend.backpressure`) — the bounded
   queue forwards, parks, or sheds the request depending on how much
   work is already in the service.

Jobs forwarded after waiting keep their *original* arrival time, so
Definition-3 latency honestly includes frontend queueing delay.

A run with ``frontend=None`` never constructs any of this and is
bit-identical to the pre-frontend simulator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, List, Optional, Set

from repro.core.job import JobType
from repro.frontend.admission import AdmissionController
from repro.frontend.backpressure import BoundedQueue
from repro.frontend.config import FrontendConfig
from repro.frontend.degradation import DegradationController, QualityChange

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids workload cycle)
    from repro.workload.trace import Request


@dataclass
class FrontendStats:
    """Per-run overload-management accounting.

    Attached to :class:`~repro.sim.simulator.SimulationResult` as
    ``.frontend`` when the run had a :class:`FrontendConfig`.
    """

    config: FrontendConfig
    requests_seen: int = 0
    forwarded: int = 0
    rejected_rate: int = 0
    rejected_sessions: int = 0
    deferred: int = 0
    shed_oldest: int = 0
    shed_newest: int = 0
    frames_dropped: int = 0
    degraded_jobs: int = 0
    max_wait_depth: int = 0
    unserved_at_end: int = 0
    final_quality_level: int = 0
    quality_changes: List[QualityChange] = field(default_factory=list)
    rejected_actions: Set[int] = field(default_factory=set)

    @property
    def rejected(self) -> int:
        """Requests refused by admission control."""
        return self.rejected_rate + self.rejected_sessions

    @property
    def shed(self) -> int:
        """Requests dropped by the bounded queue."""
        return self.shed_oldest + self.shed_newest

    def summary(self) -> str:
        """One-line overload report."""
        return (
            f"frontend: {self.forwarded}/{self.requests_seen} forwarded, "
            f"{self.rejected} rejected "
            f"(rate {self.rejected_rate} / sessions {self.rejected_sessions}), "
            f"{self.shed} shed, {self.frames_dropped} frames thinned, "
            f"{len(self.quality_changes)} quality moves "
            f"(final level {self.final_quality_level})"
        )


class ServiceFrontend:
    """Admission + degradation + backpressure in front of the service.

    Args:
        config: The overload-management policy.
        service: The head-node service to protect.
        target_framerate: The scenario's interactive fps target (the
            degradation controller's default objective).
        horizon: Trace duration; bounds the controller's sampling loop
            in non-drain runs.
        metrics: Optional :class:`~repro.obs.metrics.MetricsRegistry`;
            when given, every gate publishes its counters/gauges.
        audit: Optional :class:`~repro.obs.audit.AuditLog`; when given,
            entry-gate refusals (admission rejects, thinned frames) are
            recorded as ``shed`` decisions.
    """

    def __init__(
        self,
        config: FrontendConfig,
        service,
        *,
        target_framerate: float,
        horizon: Optional[float] = None,
        metrics=None,
        audit=None,
    ) -> None:
        self.config = config
        self.service = service
        self.audit = audit
        self._horizon = horizon
        self.requests_seen = 0
        self.forwarded = 0
        self.degraded_jobs = 0
        self.admission: Optional[AdmissionController] = (
            AdmissionController(config.admission, metrics=metrics)
            if config.admission is not None
            else None
        )
        self.degradation: Optional[DegradationController] = (
            DegradationController(
                config.degrade, target_framerate, metrics=metrics
            )
            if config.degrade is not None
            else None
        )
        self.queue: Optional[BoundedQueue] = (
            BoundedQueue(
                config.backpressure,
                service,
                self._forward,
                metrics=metrics,
                on_overflow=(
                    self.degradation.overflow_nudge
                    if self.degradation is not None
                    else None
                ),
            )
            if config.backpressure is not None
            else None
        )
        if self.queue is not None:
            service.add_completion_listener(self._on_completion)

    # -- lifecycle ---------------------------------------------------------

    def start(self) -> None:
        """Arm the degradation controller's sampling loop."""
        if self.degradation is not None:
            self.degradation.attach(self.service, horizon=self._horizon)

    @property
    def waiting_count(self) -> int:
        """Requests parked behind backpressure."""
        return self.queue.waiting_count if self.queue is not None else 0

    # -- request path ------------------------------------------------------

    def submit_request(self, request: Request, dataset: object) -> None:
        """The listener-thread entry point (replaces the service's)."""
        self.requests_seen += 1
        now = self.service.cluster.now
        if self.admission is not None:
            if not self.admission.decide(request, now).admitted:
                if self.audit is not None:
                    self.audit.record_shed(now, request)
                return
        if (
            self.degradation is not None
            and request.job_type is JobType.INTERACTIVE
            and not self.degradation.keep_frame(request.sequence)
        ):
            if self.audit is not None:
                self.audit.record_shed(now, request)
            return
        if self.queue is not None:
            self.queue.offer(request, dataset)
        else:
            self._forward(request, dataset)

    def _forward(self, request: Request, dataset: object) -> None:
        """Build the job (at the request's true arrival time) and submit."""
        # The service allocates the id: frontend-mediated and direct
        # submissions draw from the same per-run allocator.
        job = self.service.build_job(request, dataset, request.time)
        if (
            self.degradation is not None
            and request.job_type is JobType.INTERACTIVE
        ):
            factor = self.degradation.level.resolution_factor
            if factor < 1.0:
                job.chunk_fraction = factor
                self.degraded_jobs += 1
        self.forwarded += 1
        self.service.submit(job)

    def _on_completion(self, _job) -> None:
        self.queue.drain()

    # -- results -----------------------------------------------------------

    def stats(self) -> FrontendStats:
        """Freeze the run's overload accounting."""
        out = FrontendStats(
            config=self.config,
            requests_seen=self.requests_seen,
            forwarded=self.forwarded,
            degraded_jobs=self.degraded_jobs,
        )
        if self.admission is not None:
            out.rejected_rate = self.admission.rejected_rate
            out.rejected_sessions = self.admission.rejected_sessions
            out.rejected_actions = self.admission.rejected_action_ids
        if self.queue is not None:
            out.deferred = self.queue.deferred
            out.shed_oldest = self.queue.shed_oldest
            out.shed_newest = self.queue.shed_newest
            out.max_wait_depth = self.queue.max_wait_depth
            out.unserved_at_end = self.queue.waiting_count
        if self.degradation is not None:
            out.frames_dropped = self.degradation.frames_dropped
            out.final_quality_level = self.degradation.level_index
            out.quality_changes = list(self.degradation.changes)
        return out


__all__ = ["FrontendStats", "ServiceFrontend"]

"""Overload management for the visualization service.

The frontend sits between the workload trace and the head-node service
and provides the three protections a production deployment of the
paper's design needs once demand exceeds capacity:

- **Admission control** — per-user token buckets plus a global cap on
  concurrent interactive sessions (:mod:`repro.frontend.admission`).
- **Backpressure** — a bounded job queue with ``block`` /
  ``shed-oldest`` / ``shed-newest`` / ``degrade`` overflow policies
  (:mod:`repro.frontend.backpressure`).
- **Graceful degradation** — an SLO-burn-driven quality ladder that
  steps interactive sessions down in frame rate and then resolution,
  with hysteretic recovery (:mod:`repro.frontend.degradation`).

Enable it by passing ``RunConfig(frontend=FrontendConfig(...))`` to
:func:`repro.sim.simulator.run_simulation`; ``frontend=None`` (the
default) is bit-identical to the pre-frontend simulator.
"""

from repro.frontend.admission import (
    AdmissionController,
    AdmissionRecord,
    Decision,
    TokenBucket,
)
from repro.frontend.backpressure import BoundedQueue
from repro.frontend.config import (
    DEFAULT_LADDER,
    AdmissionConfig,
    BackpressureConfig,
    DegradeConfig,
    FrontendConfig,
    QualityLevel,
    QueuePolicy,
)
from repro.frontend.degradation import DegradationController, QualityChange
from repro.frontend.frontend import FrontendStats, ServiceFrontend

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AdmissionRecord",
    "BackpressureConfig",
    "BoundedQueue",
    "DEFAULT_LADDER",
    "Decision",
    "DegradationController",
    "DegradeConfig",
    "FrontendConfig",
    "FrontendStats",
    "QualityChange",
    "QualityLevel",
    "QueuePolicy",
    "ServiceFrontend",
    "TokenBucket",
]

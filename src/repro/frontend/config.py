"""Configuration for the overload-management frontend.

Everything here is a frozen dataclass so a :class:`FrontendConfig` can
ride inside :class:`~repro.sim.run_config.RunConfig` across process
boundaries (the ``workers=N`` sweep path) and key result caches.

The three sub-policies are independently optional:

* :class:`AdmissionConfig` — per-user token-bucket rate limits and a
  global concurrent-session cap (requests the service never accepts);
* :class:`BackpressureConfig` — a bounded head-node job queue with a
  configurable overflow policy (requests the service accepts *later*,
  or sheds);
* :class:`DegradeConfig` — the SLO-burn-driven quality ladder (requests
  the service accepts at reduced cost).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.util.validation import check_positive


class QueuePolicy(enum.Enum):
    """What a full head-node queue does with overflow.

    * ``BLOCK`` — hold excess requests in the frontend's wait queue and
      feed them in as completions free capacity (no request is lost,
      latency absorbs the wait).
    * ``SHED_OLDEST`` — drop the oldest *waiting* request to make room
      for the newest (fresh frames matter more than stale ones for an
      interactive service).
    * ``SHED_NEWEST`` — drop the incoming request once the wait queue is
      full (classic bounded-buffer tail drop).
    * ``DEGRADE`` — hold like ``BLOCK``, but every overflow also nudges
      the degradation controller one step down the quality ladder.
    """

    BLOCK = "block"
    SHED_OLDEST = "shed-oldest"
    SHED_NEWEST = "shed-newest"
    DEGRADE = "degrade"


@dataclass(frozen=True)
class AdmissionConfig:
    """Admission control: who gets in at all.

    Attributes:
        rate: Per-user sustained request budget in requests/second
            (token-bucket refill rate).  ``None`` disables rate
            limiting.
        burst: Token-bucket capacity (instantaneous burst allowance).
            Defaults to one frame interval's worth above ``rate``
            (``2 * rate`` when unset).
        max_sessions: Global cap on concurrently active interactive
            sessions (user actions).  A request opening a new session
            beyond the cap is rejected — and so is the rest of that
            session, so users see a clean "service busy" instead of a
            trickle.  ``None`` disables the cap.
        session_ttl: Seconds of inactivity after which a session stops
            counting against ``max_sessions``.
    """

    rate: Optional[float] = None
    burst: Optional[float] = None
    max_sessions: Optional[int] = None
    session_ttl: float = 1.0

    def __post_init__(self) -> None:
        if self.rate is not None:
            check_positive("AdmissionConfig.rate", self.rate)
        if self.burst is not None:
            check_positive("AdmissionConfig.burst", self.burst)
        if self.max_sessions is not None and self.max_sessions < 1:
            raise ValueError(
                f"max_sessions must be >= 1, got {self.max_sessions}"
            )
        check_positive("AdmissionConfig.session_ttl", self.session_ttl)

    @property
    def bucket_capacity(self) -> float:
        """Effective token-bucket capacity."""
        if self.burst is not None:
            return self.burst
        return 2.0 * self.rate if self.rate is not None else 0.0


@dataclass(frozen=True)
class BackpressureConfig:
    """Bounded head-node queue: how much work may be in the service.

    Attributes:
        queue_limit: Maximum jobs in the service at once (head-node
            queue + scheduler backlog + in flight).  Also bounds the
            frontend's wait queue under the shedding policies.
        policy: Overflow behavior (see :class:`QueuePolicy`).
    """

    queue_limit: int = 64
    policy: QueuePolicy = QueuePolicy.BLOCK

    def __post_init__(self) -> None:
        if self.queue_limit < 1:
            raise ValueError(
                f"queue_limit must be >= 1, got {self.queue_limit}"
            )
        if not isinstance(self.policy, QueuePolicy):
            object.__setattr__(self, "policy", QueuePolicy(self.policy))


@dataclass(frozen=True)
class QualityLevel:
    """One rung of the degradation ladder.

    Attributes:
        name: Human-readable label (shows up in stats / metrics).
        fps_factor: Fraction of each session's frames forwarded — the
            target-framerate reduction (Definition 4: fewer requests
            per action).
        resolution_factor: Fraction of a dataset's chunks a degraded
            interactive job renders — the image-resolution reduction
            expressed through the cost model (Definitions 1-2: fewer
            tasks, smaller composite group, cheaper ``TExec``).
    """

    name: str
    fps_factor: float = 1.0
    resolution_factor: float = 1.0

    def __post_init__(self) -> None:
        if not 0.0 < self.fps_factor <= 1.0:
            raise ValueError(
                f"fps_factor must be in (0, 1], got {self.fps_factor}"
            )
        if not 0.0 < self.resolution_factor <= 1.0:
            raise ValueError(
                f"resolution_factor must be in (0, 1], "
                f"got {self.resolution_factor}"
            )


#: The default quality ladder: degrade target framerate first (cheapest
#: perceptually), then image resolution (fewer chunks per job).
DEFAULT_LADDER: Tuple[QualityLevel, ...] = (
    QualityLevel("full", 1.0, 1.0),
    QualityLevel("half-rate", 0.5, 1.0),
    QualityLevel("half-rate/half-res", 0.5, 0.5),
    QualityLevel("quarter", 0.25, 0.25),
)


@dataclass(frozen=True)
class DegradeConfig:
    """SLO-driven graceful degradation.

    The controller samples delivered per-session framerate on the event
    queue, converts it to an SLO burn rate against the current rung's
    effective target, and walks the quality ladder hysteretically:
    ``patience`` consecutive hot samples step down, ``patience``
    consecutive cool samples (measured against the *restored* target)
    step back up.

    Attributes:
        target_fps: Framerate objective; ``None`` uses the scenario's
            target framerate.
        sample_interval: Controller sampling period in simulated
            seconds; ``None`` derives ~0.5 s windows.
        step_down_burn: Burn rate above which a sample counts as hot.
        step_up_burn: Burn rate (vs the next rung up) below which a
            sample counts as cool.
        patience: Consecutive hot/cool samples required to move.
        ladder: The quality ladder, best rung first.
    """

    target_fps: Optional[float] = None
    sample_interval: Optional[float] = None
    step_down_burn: float = 0.25
    step_up_burn: float = 0.05
    patience: int = 2
    ladder: Tuple[QualityLevel, ...] = DEFAULT_LADDER

    def __post_init__(self) -> None:
        if self.target_fps is not None:
            check_positive("DegradeConfig.target_fps", self.target_fps)
        if self.sample_interval is not None:
            check_positive(
                "DegradeConfig.sample_interval", self.sample_interval
            )
        if not 0.0 <= self.step_up_burn < self.step_down_burn:
            raise ValueError(
                "need 0 <= step_up_burn < step_down_burn, got "
                f"{self.step_up_burn} / {self.step_down_burn}"
            )
        if self.patience < 1:
            raise ValueError(f"patience must be >= 1, got {self.patience}")
        if not self.ladder:
            raise ValueError("ladder needs at least one QualityLevel")
        if not isinstance(self.ladder, tuple):
            object.__setattr__(self, "ladder", tuple(self.ladder))


@dataclass(frozen=True)
class FrontendConfig:
    """The complete overload-management policy for one run.

    Any combination of the three sub-policies may be enabled; an empty
    ``FrontendConfig()`` is a transparent pass-through (every request
    forwarded unchanged) that still measures admissions.
    """

    admission: Optional[AdmissionConfig] = None
    backpressure: Optional[BackpressureConfig] = None
    degrade: Optional[DegradeConfig] = None

    @classmethod
    def protective(
        cls,
        *,
        max_sessions: int = 8,
        queue_limit: int = 64,
        rate: Optional[float] = None,
    ) -> "FrontendConfig":
        """A sensible all-on policy for over-subscribed scenarios."""
        return cls(
            admission=AdmissionConfig(rate=rate, max_sessions=max_sessions),
            backpressure=BackpressureConfig(
                queue_limit=queue_limit, policy=QueuePolicy.SHED_OLDEST
            ),
            degrade=DegradeConfig(),
        )


__all__ = [
    "QueuePolicy",
    "AdmissionConfig",
    "BackpressureConfig",
    "QualityLevel",
    "DEFAULT_LADDER",
    "DegradeConfig",
    "FrontendConfig",
]

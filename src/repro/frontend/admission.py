"""Admission control: token buckets and the concurrent-session cap.

The head node of the paper accepts every request (§III, Algorithm 1);
under a Scenario-4-style burst the job queue grows without bound and
*every* user's delivered framerate collapses.  Admission control turns
that into a fair, explicit decision: each user gets a token-bucket
request budget, and the service as a whole caps how many interactive
sessions it will serve concurrently.  Rejections are recorded — never
silently dropped — so operators can see exactly who was turned away and
why.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.core.job import JobType
from repro.frontend.config import AdmissionConfig

if TYPE_CHECKING:  # pragma: no cover - typing only (avoids workload cycle)
    from repro.workload.trace import Request


class Decision(enum.Enum):
    """Outcome of one admission check."""

    ADMIT = "admit"
    REJECT_RATE = "reject-rate"
    REJECT_SESSIONS = "reject-sessions"

    @property
    def admitted(self) -> bool:
        """True when the request may proceed."""
        return self is Decision.ADMIT


class TokenBucket:
    """A standard token bucket in simulated time.

    Starts full; refills continuously at ``rate`` tokens/second up to
    ``capacity``.  One request costs one token.
    """

    __slots__ = ("rate", "capacity", "tokens", "last")

    def __init__(self, rate: float, capacity: float, now: float = 0.0) -> None:
        self.rate = rate
        self.capacity = capacity
        self.tokens = capacity
        self.last = now

    def try_take(self, now: float) -> bool:
        """Refill to ``now`` and consume one token if available."""
        if now > self.last:
            self.tokens = min(
                self.capacity, self.tokens + (now - self.last) * self.rate
            )
            self.last = now
        if self.tokens >= 1.0:
            self.tokens -= 1.0
            return True
        return False


@dataclass
class AdmissionRecord:
    """One rejected request, for the audit log."""

    time: float
    user: int
    action: int
    decision: Decision


class AdmissionController:
    """Applies :class:`AdmissionConfig` to the request stream.

    Session semantics: an interactive session is one user action; it is
    *active* from the first admitted request until ``session_ttl``
    seconds pass without another.  A new session beyond ``max_sessions``
    is rejected atomically — every subsequent request of that action is
    refused too, so a rejected user gets a clean busy signal rather than
    a sub-framerate trickle.  Batch requests are exempt from the session
    cap (the scheduler already defers batch work) but do consume their
    user's token budget.
    """

    #: At most this many individual rejection records are retained; the
    #: counters keep exact totals beyond it.
    MAX_RECORDS = 1024

    def __init__(self, config: AdmissionConfig, *, metrics=None) -> None:
        self.config = config
        self._buckets: Dict[int, TokenBucket] = {}
        self._session_last_seen: Dict[int, float] = {}
        self._rejected_actions: Set[int] = set()
        self.admitted = 0
        self.rejected_rate = 0
        self.rejected_sessions = 0
        self.records: List[AdmissionRecord] = []
        self._m_admitted = self._m_rejected = None
        if metrics is not None:
            self._m_admitted = metrics.counter(
                "repro_frontend_admitted",
                "requests admitted by the frontend",
            )
            self._m_rejected = {
                d: metrics.counter(
                    "repro_frontend_rejected",
                    "requests rejected by admission control",
                    labels={"reason": d.value},
                )
                for d in (Decision.REJECT_RATE, Decision.REJECT_SESSIONS)
            }

    # -- inspection --------------------------------------------------------

    def active_sessions(self, now: float) -> int:
        """Interactive sessions seen within ``session_ttl`` of ``now``."""
        ttl = self.config.session_ttl
        stale = [
            action
            for action, last in self._session_last_seen.items()
            if now - last > ttl
        ]
        for action in stale:
            del self._session_last_seen[action]
        return len(self._session_last_seen)

    @property
    def rejected(self) -> int:
        """Total rejected requests (all reasons)."""
        return self.rejected_rate + self.rejected_sessions

    @property
    def rejected_action_ids(self) -> Set[int]:
        """Actions refused by the session cap (never served at all)."""
        return set(self._rejected_actions)

    # -- decision ----------------------------------------------------------

    def decide(self, request: Request, now: float) -> Decision:
        """Admit or reject one request, updating all accounting."""
        decision = self._classify(request, now)
        if decision.admitted:
            self.admitted += 1
            if self._m_admitted is not None:
                self._m_admitted.inc()
            return decision
        if decision is Decision.REJECT_RATE:
            self.rejected_rate += 1
        else:
            self.rejected_sessions += 1
        if len(self.records) < self.MAX_RECORDS:
            self.records.append(
                AdmissionRecord(now, request.user, request.action, decision)
            )
        if self._m_rejected is not None:
            self._m_rejected[decision].inc()
        return decision

    def _classify(self, request: Request, now: float) -> Decision:
        cfg = self.config
        interactive = request.job_type is JobType.INTERACTIVE
        if interactive:
            # The session cap is checked before the token bucket so a
            # turned-away session does not drain its user's budget.
            if request.action in self._rejected_actions:
                return Decision.REJECT_SESSIONS
            if (
                request.action not in self._session_last_seen
                and cfg.max_sessions is not None
                and self.active_sessions(now) >= cfg.max_sessions
            ):
                self._rejected_actions.add(request.action)
                return Decision.REJECT_SESSIONS
        if cfg.rate is not None:
            bucket = self._buckets.get(request.user)
            if bucket is None:
                bucket = TokenBucket(cfg.rate, cfg.bucket_capacity, now)
                self._buckets[request.user] = bucket
            if not bucket.try_take(now):
                return Decision.REJECT_RATE
        if interactive:
            self._session_last_seen[request.action] = now
        return Decision.ADMIT

    def summary(self) -> Tuple[int, int, int]:
        """``(admitted, rejected_rate, rejected_sessions)`` totals."""
        return (self.admitted, self.rejected_rate, self.rejected_sessions)


__all__ = [
    "Decision",
    "TokenBucket",
    "AdmissionRecord",
    "AdmissionController",
]

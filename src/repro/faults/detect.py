"""Fault detectors — layer 2 of :mod:`repro.faults`.

Two detectors feed the head node's view of node health:

* **Heartbeat timeout** — rendering nodes report liveness every
  ``heartbeat_interval``; a node silent for ``heartbeat_timeout`` is
  declared dead.  Probes are only scheduled while a crash awaits
  detection, so fault-free stretches add no events (and faults-off runs
  stay bit-identical).
* **Estimate-vs-actual outliers** — the head node already predicts each
  task's execution time (the Estimate table, §V-B).  A finished task
  whose actual duration exceeds the prediction by ``outlier_ratio``
  is an outlier; ``outlier_streak`` consecutive outliers on one node
  raise a ``"straggler"`` verdict.  Separately, a *surprise miss* — the
  head node's cache mirror said the chunk was resident but the task
  reported a miss — is direct evidence the node's cache was wiped
  behind the head node's back; ``outlier_streak`` surprise misses with
  no intervening real hit raise a ``"wipe"`` verdict without waiting
  for the (slower) duration signal.

The :class:`HealthMonitor` is pure bookkeeping — it never touches the
cluster or the tables.  The :class:`~repro.faults.injector.FaultRuntime`
feeds it observations and reacts to its verdicts through the recovery
engine.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.faults.plan import DetectionConfig


class NodeHealth(enum.Enum):
    """Head-node view of one rendering node's health."""

    HEALTHY = "healthy"
    #: Missed at least one heartbeat but not yet timed out.
    SUSPECT = "suspect"
    #: Heartbeat timeout expired — declared crashed.
    DEAD = "dead"
    #: Alive but quarantined (straggler) — no new work scheduled.
    DEGRADED = "degraded"


@dataclass(frozen=True)
class Detection:
    """One detector verdict.

    ``latency`` is the virtual-time gap between fault injection and
    detection when the runtime can attribute the verdict to a known
    injection; ``None`` for verdicts with no matching injection (a
    detector false-positive, still worth reporting).
    """

    kind: str  # "crash" | "straggler" | "wipe"
    node: int
    time: float
    latency: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-friendly form (bench artifacts)."""
        return {
            "kind": self.kind,
            "node": self.node,
            "time": self.time,
            "latency": self.latency,
        }


class HealthMonitor:
    """Per-node health state + the two detectors' bookkeeping."""

    def __init__(self, config: DetectionConfig, node_count: int) -> None:
        self.config = config
        self.node_count = node_count
        self.health: List[NodeHealth] = [NodeHealth.HEALTHY] * node_count
        self.last_seen: List[float] = [0.0] * node_count
        self._streak: List[int] = [0] * node_count
        self._miss_streak: List[int] = [0] * node_count
        self._surprise_streak: List[int] = [0] * node_count

    # -- heartbeat ---------------------------------------------------------

    def beat(self, now: float, alive: Sequence[bool]) -> List[int]:
        """One heartbeat probe: update liveness, return newly dead nodes."""
        timeout = self.config.heartbeat_timeout
        health = self.health
        newly_dead: List[int] = []
        for node, is_alive in enumerate(alive):
            if is_alive:
                self.last_seen[node] = now
                if health[node] is NodeHealth.SUSPECT:
                    health[node] = NodeHealth.HEALTHY
            elif health[node] is not NodeHealth.DEAD:
                if now - self.last_seen[node] >= timeout:
                    health[node] = NodeHealth.DEAD
                    newly_dead.append(node)
                else:
                    health[node] = NodeHealth.SUSPECT
        return newly_dead

    # -- outlier detector --------------------------------------------------

    def observe_task(
        self,
        node: int,
        estimate: float,
        actual: float,
        cache_hit: Optional[bool],
        *,
        surprise: bool = False,
    ) -> Optional[str]:
        """Feed one finished task; return a verdict when a streak trips.

        ``surprise`` marks a surprise miss: the head node's mirror
        predicted a cache hit but the task reported a miss.  Returns
        ``"straggler"``, ``"wipe"``, or ``None``.  Streaks reset after a
        verdict so one sustained fault raises a bounded number of
        verdicts rather than one per task.
        """
        if estimate <= 0.0:
            return None
        # Wipe detector: the mirror is identical to the real cache by
        # construction, so surprise misses only ever happen when the
        # real cache lost content — accumulate them unconditionally
        # (reload hits interleave with them, so a hit proves nothing).
        if surprise:
            self._surprise_streak[node] += 1
            if self._surprise_streak[node] >= self.config.surprise_streak:
                self._reset_streaks(node)
                return "wipe"
        # Straggler detector: sustained duration inflation.  A streak
        # dominated by surprise misses is the wipe signature instead —
        # the inflation is reload I/O, not a slow node.
        if actual >= self.config.outlier_ratio * estimate:
            self._streak[node] += 1
            if surprise:
                self._miss_streak[node] += 1
            if self._streak[node] >= self.config.outlier_streak:
                streak = self._streak[node]
                misses = self._miss_streak[node]
                self._reset_streaks(node)
                return "wipe" if 2 * misses >= streak else "straggler"
        else:
            self._streak[node] = 0
            self._miss_streak[node] = 0
        return None

    def _reset_streaks(self, node: int) -> None:
        self._streak[node] = 0
        self._miss_streak[node] = 0
        self._surprise_streak[node] = 0

    # -- state transitions -------------------------------------------------

    def mark_degraded(self, node: int) -> None:
        """Record a quarantined straggler (outliers there stop counting)."""
        self.health[node] = NodeHealth.DEGRADED

    def mark_recovered(self, node: int, now: float) -> None:
        """Return a revived node to HEALTHY with fresh streaks."""
        self.health[node] = NodeHealth.HEALTHY
        self.last_seen[node] = now
        self._reset_streaks(node)


__all__ = ["NodeHealth", "Detection", "HealthMonitor"]

"""Fault injection runtime — wires a plan into one simulation run.

:class:`FaultRuntime` is created by the simulator when
``RunConfig(faults=...)`` is set and arms every planned event on the
virtual clock through the regular event queue.  With ``faults=None``
the simulator never constructs one, so fault-free runs stay
bit-identical to the pre-subsystem code (golden-trace pinned).

Two operating modes:

* **Vanilla** (``plan.detection is None``) — crashes are applied
  through ``service.fail_node`` exactly like the legacy
  ``node_failures`` hook: the head node is instantly aware and
  reschedules orphans with the ``fallback`` reason.  Stragglers, cache
  wipes, and storage degradation simply happen, unnoticed.
* **Self-healing** (``plan.detection`` set) — the head node is *not*
  told about faults.  A crashed node silently stops; placements onto it
  are absorbed by a dispatch guard; the heartbeat monitor must time out
  before the recovery engine marks the node failed and requeues the
  stranded work (audit reason ``requeue-crash``).  Stragglers and wipes
  are caught by the estimate-vs-actual outlier detector on the task
  completion path and healed by quarantine/speculation/rewarm.

The runtime also keeps the :class:`FaultReport` surfaced as
``SimulationResult.fault_report``: injected-event counts, every
detection with its latency, every recovery action, and the final
jobs-lost tally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, NamedTuple, Optional, Set

from repro.cluster.event_queue import PRIORITY_ARRIVAL, PRIORITY_CYCLE
from repro.faults.detect import Detection, HealthMonitor, NodeHealth
from repro.faults.plan import (
    CacheWipe,
    FaultPlan,
    NodeCrash,
    StorageDegrade,
    Straggler,
)
from repro.faults.recovery import RecoveryAction, RecoveryEngine


class Injection(NamedTuple):
    """One planned fault as injected: kind, target, onset, and lift.

    ``node`` is ``-1`` for cluster-wide events (full wipes, storage
    degradation); ``until`` is the planned lift time — revival, straggler
    clear, storage restore — or ``None`` when the fault is permanent.
    Recorded at arm time straight from the plan, so the list is
    deterministic and available even on runs that end mid-fault.
    """

    kind: str
    node: int
    time: float
    until: Optional[float] = None

    def to_dict(self) -> dict:
        """JSON-friendly form (bench artifacts, CLI --report)."""
        return {
            "kind": self.kind,
            "node": self.node,
            "time": self.time,
            "until": self.until,
        }


@dataclass
class FaultReport:
    """What the fault subsystem did and observed during one run."""

    self_healing: bool
    crashes: int = 0
    stragglers: int = 0
    wipes: int = 0
    storage_faults: int = 0
    revivals: int = 0
    injections: List[Injection] = field(default_factory=list)
    detections: List[Detection] = field(default_factory=list)
    actions: List[RecoveryAction] = field(default_factory=list)
    jobs_submitted: int = 0
    jobs_completed: int = 0
    jobs_lost: int = 0

    @property
    def events_injected(self) -> int:
        return self.crashes + self.stragglers + self.wipes + self.storage_faults

    def detection_latencies(self) -> List[float]:
        """Latencies of detections attributable to a known injection."""
        return [d.latency for d in self.detections if d.latency is not None]

    @property
    def detection_latency_mean(self) -> float:
        latencies = self.detection_latencies()
        return sum(latencies) / len(latencies) if latencies else 0.0

    @property
    def detection_latency_max(self) -> float:
        latencies = self.detection_latencies()
        return max(latencies) if latencies else 0.0

    def action_counts(self) -> Dict[str, int]:
        """Recovery actions per reason code (deterministic, gate-friendly)."""
        counts: Dict[str, int] = {}
        for action in self.actions:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        return counts

    def tasks_requeued(self) -> int:
        """Tasks re-placed by crash requeue + speculative re-issue."""
        return sum(
            a.count
            for a in self.actions
            if a.kind in ("requeue-crash", "speculative")
        )

    def summary(self) -> str:
        """One line: injections, detections, actions, jobs lost."""
        mode = "self-healing" if self.self_healing else "vanilla"
        parts = [
            f"{self.events_injected} faults injected ({mode})",
            f"{len(self.detections)} detections",
            f"{len(self.actions)} recovery actions",
            f"{self.jobs_lost} jobs lost",
        ]
        if self.detections and self.detection_latencies():
            parts.insert(
                2,
                f"detection latency mean {self.detection_latency_mean * 1e3:.1f} ms"
                f" / max {self.detection_latency_max * 1e3:.1f} ms",
            )
        return ", ".join(parts)

    def to_dict(self) -> dict:
        """JSON-friendly form (bench artifacts, CLI --report)."""
        return {
            "self_healing": self.self_healing,
            "crashes": self.crashes,
            "stragglers": self.stragglers,
            "wipes": self.wipes,
            "storage_faults": self.storage_faults,
            "revivals": self.revivals,
            "injections": [i.to_dict() for i in self.injections],
            "detections": [d.to_dict() for d in self.detections],
            "actions": [a.to_dict() for a in self.actions],
            "detection_latency_mean": self.detection_latency_mean,
            "detection_latency_max": self.detection_latency_max,
            "jobs_submitted": self.jobs_submitted,
            "jobs_completed": self.jobs_completed,
            "jobs_lost": self.jobs_lost,
        }


class FaultRuntime:
    """Arms one :class:`FaultPlan` on a live simulation."""

    def __init__(
        self,
        plan: FaultPlan,
        events,
        cluster,
        service,
        *,
        tracer=None,
        audit=None,
    ) -> None:
        self.plan = plan
        self.events = events
        self.cluster = cluster
        self.service = service
        self.tracer = tracer
        self.audit = audit
        self.report = FaultReport(self_healing=plan.self_healing)
        self.monitor: Optional[HealthMonitor] = None
        self.engine: Optional[RecoveryEngine] = None
        if plan.detection is not None:
            self.monitor = HealthMonitor(plan.detection, cluster.node_count)
            if plan.recovery is not None:
                self.engine = RecoveryEngine(
                    plan.recovery, service, audit=audit, tracer=tracer
                )
        #: Tasks stranded on a crashed-but-undetected node (its orphans
        #: plus placements absorbed by the dispatch guard).
        self._stash: Dict[int, List] = {}
        self._undetected: Set[int] = set()
        self._crash_time: Dict[int, float] = {}
        self._straggle_time: Dict[int, float] = {}
        self._wipe_time: Dict[int, float] = {}
        self._heartbeat_armed = False
        self._base_spec = None

    # -- arming ------------------------------------------------------------

    def arm(self) -> None:
        """Schedule every planned event; install detection hooks."""
        node_count = self.cluster.node_count
        highest = self.plan.max_node()
        if highest >= node_count:
            raise ValueError(
                f"fault plan references node {highest} "
                f"(cluster has {node_count} nodes)"
            )
        events = self.events
        for event in self.plan.events:
            until = getattr(event, "until", None)
            if isinstance(event, NodeCrash):
                until = event.revive_at
            target = getattr(event, "node", None)
            self.report.injections.append(
                Injection(
                    event.kind,
                    target if target is not None else -1,
                    event.time,
                    until,
                )
            )
            if isinstance(event, NodeCrash):
                self.report.crashes += 1
                if self.monitor is not None:
                    events.schedule(
                        event.time,
                        self._inject_crash,
                        event,
                        priority=PRIORITY_ARRIVAL,
                    )
                else:
                    # Legacy §VI-D semantics, bit-identical to the old
                    # node_failures hook: the exact same callback at the
                    # exact same (time, priority, seq) slot.
                    events.schedule(
                        event.time,
                        self.service.fail_node,
                        event.node,
                        priority=PRIORITY_ARRIVAL,
                    )
                if event.revive_at is not None:
                    events.schedule(
                        event.revive_at,
                        self._revive,
                        event.node,
                        priority=PRIORITY_ARRIVAL,
                    )
            elif isinstance(event, Straggler):
                self.report.stragglers += 1
                events.schedule(
                    event.time,
                    self._inject_straggler,
                    event,
                    priority=PRIORITY_ARRIVAL,
                )
                if event.until is not None:
                    events.schedule(
                        event.until,
                        self._clear_straggler,
                        event,
                        priority=PRIORITY_ARRIVAL,
                    )
            elif isinstance(event, CacheWipe):
                self.report.wipes += 1
                events.schedule(
                    event.time,
                    self._inject_wipe,
                    event,
                    priority=PRIORITY_ARRIVAL,
                )
            elif isinstance(event, StorageDegrade):
                self.report.storage_faults += 1
                events.schedule(
                    event.time,
                    self._inject_storage,
                    event,
                    priority=PRIORITY_ARRIVAL,
                )
                if event.until is not None:
                    events.schedule(
                        event.until,
                        self._restore_storage,
                        priority=PRIORITY_ARRIVAL,
                    )
        if self.monitor is not None:
            self.service._dispatch_guard = self._absorb_dead_placement
            self.cluster.add_task_finish_listener(
                self._on_task_finish, prepend=True
            )

    # -- injection: crash --------------------------------------------------

    def _inject_crash(self, event: NodeCrash) -> None:
        """Self-healing crash: the node dies silently; the head node's
        tables are left untouched until the heartbeat timeout fires."""
        node = self.cluster.nodes[event.node]
        now = self.events.now
        orphans = node.fail()
        if orphans:
            self._stash.setdefault(event.node, []).extend(orphans)
        self._crash_time[event.node] = now
        self._undetected.add(event.node)
        # The node's last successful heartbeat was (approximately) the
        # instant it died; the timeout counts from here.
        self.monitor.last_seen[event.node] = now
        self._trace_instant("crash injected", now, event.node)
        self._arm_heartbeat()

    def _absorb_dead_placement(self, assignment) -> bool:
        """Dispatch guard: swallow placements onto undetected-dead nodes.

        The head node believes the node is healthy, so the tables keep
        the assignment's bookkeeping; the task is stashed and will be
        requeued (or handed back on revival) once the truth emerges.
        """
        if assignment.node in self._undetected:
            self._stash.setdefault(assignment.node, []).append(assignment.task)
            return True
        return False

    def _arm_heartbeat(self) -> None:
        if not self._heartbeat_armed:
            self._heartbeat_armed = True
            self.events.schedule(
                self.events.now + self.plan.detection.heartbeat_interval,
                self._heartbeat,
                priority=PRIORITY_CYCLE,
            )

    def _heartbeat(self) -> None:
        """One probe round; self-rescheduling while crashes await detection."""
        self._heartbeat_armed = False
        now = self.events.now
        alive = [node._alive for node in self.cluster.nodes]
        for node in self.monitor.beat(now, alive):
            if node in self._undetected:
                self._detect_crash(node, now)
        if self._undetected:
            self._arm_heartbeat()

    def _detect_crash(self, node: int, now: float) -> None:
        self._undetected.discard(node)
        self.report.detections.append(
            Detection("crash", node, now, now - self._crash_time[node])
        )
        self._trace_instant("crash detected", now, node)
        stranded = self._stash.pop(node, [])
        if self.engine is not None:
            self.engine.requeue_crash(node, stranded, now)
            self.report.actions = self.engine.actions

    def _revive(self, node_id: int) -> None:
        """Planned revival: the node rejoins with a cold cache."""
        node = self.cluster.nodes[node_id]
        if node.alive:
            return
        now = self.events.now
        node.revive()
        self.report.revivals += 1
        if node_id in self._undetected:
            # Revived before the timeout fired: hand the stashed work
            # back — the head node never knew anything was wrong, and
            # its bookkeeping (in-flight counts, pending estimates) is
            # still consistent with the tasks running there.
            self._undetected.discard(node_id)
            for task in self._stash.pop(node_id, []):
                self.cluster.dispatch(task, node_id)
        else:
            tables = self.service.tables
            tables.mark_node_recovered(node_id, now)
            # The head node knows this node rebooted with a cold cache:
            # resync its mirror so hit predictions stay truthful.
            for chunk in list(tables.mirrors[node_id].chunks()):
                tables.drop_cached(chunk, node_id)
        if self.monitor is not None:
            self.monitor.mark_recovered(node_id, now)
        self._trace_instant("revived", now, node_id)

    # -- injection: straggler / wipe / storage ----------------------------

    def _inject_straggler(self, event: Straggler) -> None:
        node = self.cluster.nodes[event.node]
        node.render_factor = event.render_factor
        node.io_factor = event.io_factor
        self._straggle_time.setdefault(event.node, self.events.now)
        self._trace_instant("straggler onset", self.events.now, event.node)

    def _clear_straggler(self, event: Straggler) -> None:
        node = self.cluster.nodes[event.node]
        node.render_factor = 1.0
        node.io_factor = 1.0

    def _inject_wipe(self, event: CacheWipe) -> None:
        now = self.events.now
        if event.node is not None:
            targets = [event.node]
        else:
            targets = [
                node.node_id for node in self.cluster.nodes if node.alive
            ]
        for node_id in targets:
            cache = self.cluster.nodes[node_id].cache
            if event.dataset is not None:
                for chunk in cache.chunks():
                    if chunk.dataset == event.dataset:
                        cache.evict(chunk)
            else:
                cache.clear()
            self._wipe_time.setdefault(node_id, now)
            self._trace_instant("cache wiped", now, node_id)
        # The head node's mirror is deliberately left stale: hit
        # predictions now mispredict until detection resyncs them.

    def _inject_storage(self, event: StorageDegrade) -> None:
        import dataclasses

        storage = self.cluster.storage
        if self._base_spec is None:
            self._base_spec = storage.spec
        base = self._base_spec
        shared = base.shared_bandwidth
        storage.spec = dataclasses.replace(
            base,
            latency=base.latency * event.latency_factor,
            bandwidth=base.bandwidth * event.bandwidth_factor,
            shared_bandwidth=(
                shared * event.bandwidth_factor if shared is not None else None
            ),
        )
        self._trace_instant("storage degraded", self.events.now, -1)

    def _restore_storage(self) -> None:
        if self._base_spec is not None:
            self.cluster.storage.spec = self._base_spec

    # -- detection: outliers ----------------------------------------------

    def _on_task_finish(self, node, task) -> None:
        """Prepended task-finish listener: runs before the service pops
        the pending estimate, so the prediction is still available."""
        node_id = node.node_id
        monitor = self.monitor
        if monitor.health[node_id] is NodeHealth.DEGRADED:
            return
        estimate = self.service.tables._pending_est.get(task)
        if estimate is None or task.start_time is None:
            return
        # Surprise miss: the head node predicted a cache hit when it
        # placed the task (the pending estimate is exactly the render
        # time — no I/O term), yet the task reports a miss.  Outside a
        # wipe the mirror tracks the real cache, so this is direct
        # evidence the real cache lost content behind the mirror's back.
        tables = self.service.tables
        render = tables.cost.render_time(
            task.chunk.size, task.job.composite_group_size
        )
        surprise = not task.cache_hit and estimate == render
        if surprise and self.engine is not None:
            until = self.engine.rewarm_until.get(node_id)
            if until is not None and task.finish_time <= until:
                # The head already knows this cache is being rebuilt —
                # mispredictions from placements made before the rewarm
                # resync are expected, not a fresh wipe.  Skip the whole
                # observation: the inflated duration would otherwise
                # feed the straggler streak.
                return
        verdict = monitor.observe_task(
            node_id,
            estimate,
            task.finish_time - task.start_time,
            task.cache_hit,
            surprise=surprise,
        )
        if verdict == "straggler":
            self._detect_straggler(node_id)
        elif verdict == "wipe":
            self._detect_wipe(node_id)

    def _detect_straggler(self, node: int) -> None:
        now = self.events.now
        injected = self._straggle_time.get(node)
        self.report.detections.append(
            Detection(
                "straggler",
                node,
                now,
                now - injected if injected is not None else None,
            )
        )
        self._trace_instant("straggler detected", now, node)
        if self.engine is not None:
            if self.engine.quarantine(node, now):
                self.monitor.mark_degraded(node)
            self.report.actions = self.engine.actions

    def _detect_wipe(self, node: int) -> None:
        now = self.events.now
        injected = self._wipe_time.get(node)
        self.report.detections.append(
            Detection(
                "wipe",
                node,
                now,
                now - injected if injected is not None else None,
            )
        )
        self._trace_instant("wipe detected", now, node)
        if self.engine is not None:
            self.engine.rewarm(node, now)
            self.report.actions = self.engine.actions

    # -- wrap-up -----------------------------------------------------------

    def finalize(self) -> FaultReport:
        """Fill the end-of-run tallies; returns the report."""
        report = self.report
        report.jobs_submitted = self.service.jobs_submitted
        report.jobs_completed = self.service.jobs_completed
        report.jobs_lost = report.jobs_submitted - report.jobs_completed
        if self.engine is not None:
            report.actions = self.engine.actions
        return report

    def _trace_instant(self, name: str, now: float, node: int) -> None:
        if self.tracer is not None:
            from repro.obs.tracer import PID_HEAD

            self.tracer.instant(
                PID_HEAD,
                "faults",
                name,
                now,
                category="service",
                args={"node": node},
            )


__all__ = ["FaultReport", "FaultRuntime"]

"""Self-healing recovery policies — layer 3 of :mod:`repro.faults`.

The :class:`RecoveryEngine` layers scheduler-composable healing actions
over the existing :class:`~repro.core.scheduler_base.SchedulerContext`
machinery — every re-placement flows through ``ctx.assign`` with one of
the new closed-vocabulary audit reasons, so the decision audit log
(:mod:`repro.obs.audit`) records recovery exactly like first-time
scheduling and root-cause analysis can reconstruct what happened from
the log alone:

* ``requeue-crash`` — tasks orphaned by a detected crash re-placed onto
  surviving nodes.
* ``quarantine`` — a straggling node removed from scheduling (recorded
  as a non-placement audit row, ``task_index = -1``).
* ``speculative`` — a quarantined node's queued backlog re-issued onto
  healthy nodes.
* ``rewarm`` — the head node's cache mirror resynced after a wipe and
  the hottest lost chunks reloaded from storage.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.cluster.event_queue import PRIORITY_COMPLETION
from repro.faults.plan import RecoveryConfig
from repro.obs.audit import (
    REASON_QUARANTINE,
    REASON_REQUEUE_CRASH,
    REASON_REWARM,
    REASON_SPECULATIVE,
)


@dataclass(frozen=True)
class RecoveryAction:
    """One healing action taken by the recovery engine."""

    kind: str  # one of the four recovery reason codes
    node: int
    time: float
    #: Tasks re-placed (requeue/speculative) or chunks reloaded (rewarm).
    count: int = 0

    def to_dict(self) -> dict:
        """JSON-friendly form (bench artifacts, CLI --report)."""
        return {
            "kind": self.kind,
            "node": self.node,
            "time": self.time,
            "count": self.count,
        }


class RecoveryEngine:
    """Applies healing policies against the live service + tables."""

    def __init__(
        self,
        config: RecoveryConfig,
        service,
        *,
        audit=None,
        tracer=None,
    ) -> None:
        self.config = config
        self.service = service
        self.tables = service.tables
        self.cluster = service.cluster
        self.audit = audit
        self.tracer = tracer
        self.actions: List[RecoveryAction] = []
        #: Per-node virtual time when the latest rewarm reload lands —
        #: surprise misses before then are the rebuild, not a new wipe.
        self.rewarm_until: dict = {}

    def _instant(self, name: str, now: float, node: int) -> None:
        if self.tracer is not None:
            from repro.obs.tracer import PID_HEAD

            self.tracer.instant(
                PID_HEAD,
                "faults",
                name,
                now,
                category="service",
                args={"node": node},
            )

    # -- crash -------------------------------------------------------------

    def requeue_crash(self, node: int, tasks: list, now: float) -> int:
        """React to a detected crash: mark the node failed, re-place its
        stranded tasks (orphans + placements absorbed before detection).

        Returns the number of tasks re-placed.
        """
        service = self.service
        tables = self.tables
        tables.mark_node_failed(node)
        if not self.config.requeue:
            tasks = []
        for task in tasks:
            tables._pending_est.pop(task, None)
        if self.audit is not None:
            # Bookkeeping row naming the *crashed* node (the re-placement
            # rows below carry the surviving destination nodes).
            self.audit.record_recovery(now, REASON_REQUEUE_CRASH, node)
        if tasks:
            # The stranded tasks stayed counted in flight while the head
            # node believed the dead node was executing them; requeueing
            # dispatches them again, so balance the count first.
            service._tasks_inflight -= len(tasks)
            service.requeue_tasks(tasks, reason=REASON_REQUEUE_CRASH)
        self.actions.append(
            RecoveryAction(REASON_REQUEUE_CRASH, node, now, len(tasks))
        )
        self._instant("requeue-crash", now, node)
        return len(tasks)

    # -- straggler ---------------------------------------------------------

    def quarantine(self, node: int, now: float) -> bool:
        """Stop scheduling onto ``node`` (sticky for the run).

        Refuses (returning False) when the node is the last schedulable
        one — quarantining it would wedge every policy.
        """
        if not self.config.quarantine:
            return False
        tables = self.tables
        schedulable = sum(
            1
            for k in range(len(tables.alive))
            if tables.alive[k] and not tables.quarantined[k]
        )
        if schedulable <= 1:
            return False
        tables.quarantine(node)
        if self.audit is not None:
            self.audit.record_recovery(now, REASON_QUARANTINE, node)
        self.actions.append(RecoveryAction(REASON_QUARANTINE, node, now))
        self._instant("quarantine", now, node)
        if self.config.speculative:
            self.speculative(node, now)
        return True

    def speculative(self, node: int, now: float) -> int:
        """Re-issue a quarantined node's queued backlog elsewhere.

        Only unstarted tasks are stolen; whatever is already executing
        finishes (slowly) where it is, so no task completes twice.
        """
        service = self.service
        tables = self.tables
        backlog = self.cluster.nodes[node].steal_backlog()
        if not backlog:
            return 0
        for task in backlog:
            tables.cancel_assignment(task, node)
        service._tasks_inflight -= len(backlog)
        service.requeue_tasks(backlog, reason=REASON_SPECULATIVE)
        self.actions.append(
            RecoveryAction(REASON_SPECULATIVE, node, now, len(backlog))
        )
        self._instant("speculative", now, node)
        return len(backlog)

    # -- cache wipe --------------------------------------------------------

    def rewarm(self, node: int, now: float) -> int:
        """Resync the head node's mirror with the node's real cache and
        reload up to ``rewarm_limit`` of the most-recently-used lost
        chunks through the shared storage.

        Returns the number of chunks being reloaded.
        """
        if not self.config.rewarm:
            return 0
        tables = self.tables
        cluster = self.cluster
        real_cache = cluster.nodes[node].cache
        lost = [
            chunk
            for chunk in tables.mirrors[node].chunks()
            if chunk not in real_cache
        ]
        if not lost:
            return 0
        for chunk in lost:
            tables.drop_cached(chunk, node)
        # Full inventory resync: adopt the node's true contents *and*
        # recency order.  Dropping the lost entries alone leaves the
        # mirror's LRU order diverged from the real cache, so future
        # evictions pick different victims and every rewarm spawns the
        # next round of surprise misses.
        for chunk in real_cache.chunks():
            tables.warm(chunk, node)
        # Re-estimate the node's pending work against the resynced
        # mirror: tasks placed before the wipe predicted cache hits
        # that can no longer happen.  Left stale, each one would raise
        # a fresh surprise-miss (and a false "wipe" verdict) as the
        # backlog drains.
        node_obj = cluster.nodes[node]
        mirror = tables.mirrors[node]
        for task in list(node_obj._running) + list(node_obj.queue):
            est = tables._pending_est.get(task)
            if est is None or task.chunk in mirror:
                continue
            render = tables.cost.render_time(
                task.chunk.size, task.job.composite_group_size
            )
            if est == render:
                new_est = tables.io_estimate(task.chunk) + render
                tables._pending_est[task] = new_est
                # Propagate the correction into Available (§VI-D table
                # maintenance): the node is about to spend the backlog
                # on reloads, and placement should know.
                tables.available[node] += (
                    new_est - est
                ) / tables.executors_per_node
        # Surprise misses until the (re-estimated) backlog drains are
        # run-time staleness of old predictions, not a fresh wipe.
        self.rewarm_until[node] = max(
            self.rewarm_until.get(node, 0.0), tables.available[node]
        )
        # chunks() returns LRU-first; reload the hottest tail.
        reload = lost[-self.config.rewarm_limit:] if self.config.rewarm_limit else []
        storage = cluster.storage
        events = cluster.events
        for chunk in reload:
            io_time = storage.begin_load(chunk.size)
            self.rewarm_until[node] = max(
                self.rewarm_until.get(node, 0.0), now + io_time
            )
            events.schedule(
                now + io_time,
                self._finish_rewarm,
                node,
                chunk,
                priority=PRIORITY_COMPLETION,
            )
        if self.audit is not None:
            self.audit.record_recovery(now, REASON_REWARM, node)
        self.actions.append(
            RecoveryAction(REASON_REWARM, node, now, len(reload))
        )
        self._instant("rewarm", now, node)
        return len(reload)

    def _finish_rewarm(self, node: int, chunk) -> None:
        """Completion of one rewarm load: insert + re-mirror."""
        self.cluster.storage.end_load(chunk.size)
        render_node = self.cluster.nodes[node]
        if render_node.alive:
            cache = render_node.cache
            cache.insert(chunk)
            tables = self.tables
            tables.warm(chunk, node)
            # The two inserts may evict different victims — the recency
            # orders drifted while the reload was in flight.  Drop the
            # mirror-only leftovers so hit predictions stay truthful.
            for stale in list(tables.mirrors[node].chunks()):
                if stale not in cache:
                    tables.drop_cached(stale, node)


__all__ = ["RecoveryAction", "RecoveryEngine"]

"""Root-cause analysis — layer 4 of :mod:`repro.faults`.

:func:`analyze` localizes injected faults (node, fault type, onset
time) from what an operator of the real system would have: the decision
audit log (:mod:`repro.obs.audit`), the per-job critical paths
(:mod:`repro.obs.causal`), and optionally the SLO violation windows
(:mod:`repro.obs.slo`) that triggered the investigation.  It never
reads the ground-truth :class:`~repro.faults.plan.FaultPlan` — that is
reserved for :func:`score`, which grades the verdicts afterwards.

Heuristics, one per fault type:

* **crash (self-healing runs)** — a ``requeue-crash`` audit record
  names the node and anchors the onset; corroborated by the node
  *disappearing*: present among chosen/candidate nodes before the
  anchor, absent after.
* **crash (vanilla runs)** — the legacy path reschedules orphans in a
  burst of ``fallback`` records at one instant; the disappearing node
  across that instant is the crashed one.
* **straggler** — ``quarantine`` records name the node; the per-node
  render-time inflation of critical paths bounded by that node
  corroborates and back-dates the onset.
* **cache wipe** — ``rewarm`` records name the node; onset is
  back-dated to the last pre-detection completion bounded by the node
  with a cache hit (the wipe happened after it).
* **storage degradation** — no single node: the I/O phase of critical
  paths inflates across at least half the nodes simultaneously; the
  onset is where the inflation starts.

Each verdict carries a confidence in [0, 1]: how many independent
signals agreed (audit anchor, disappearance/inflation corroboration,
SLO-window overlap).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.audit import (
    REASON_FALLBACK,
    REASON_QUARANTINE,
    REASON_REQUEUE_CRASH,
    REASON_REWARM,
)


@dataclass(frozen=True)
class RCAVerdict:
    """One localized fault: what, where, when, and how sure."""

    kind: str  # "crash" | "straggler" | "wipe" | "storage"
    #: Implicated node (-1 for cluster-wide faults like storage).
    node: int
    #: Estimated fault onset (virtual seconds).
    onset: float
    confidence: float
    #: Human-readable signals that produced the verdict.
    evidence: Tuple[str, ...] = ()

    def describe(self) -> str:
        """One human-readable line for this verdict."""
        where = "cluster-wide" if self.node < 0 else f"node {self.node}"
        return (
            f"{self.kind} @ {where}, onset ~{self.onset:.3f}s "
            f"(confidence {self.confidence:.0%})"
        )

    def to_dict(self) -> dict:
        """JSON-friendly form (CLI --report)."""
        return {
            "kind": self.kind,
            "node": self.node,
            "onset": self.onset,
            "confidence": self.confidence,
            "evidence": list(self.evidence),
        }


@dataclass
class RCAReport:
    """All verdicts for one run, most confident first."""

    verdicts: List[RCAVerdict] = field(default_factory=list)
    #: SLO violation windows the analysis was asked to explain.
    windows_examined: int = 0

    @property
    def top(self) -> Optional[RCAVerdict]:
        return self.verdicts[0] if self.verdicts else None

    def for_kind(self, kind: str) -> List[RCAVerdict]:
        """All verdicts of one fault kind."""
        return [v for v in self.verdicts if v.kind == kind]

    def describe(self) -> str:
        """Semicolon-joined verdict lines (or a no-fault note)."""
        if not self.verdicts:
            return "no fault localized"
        return "; ".join(v.describe() for v in self.verdicts)

    def to_dict(self) -> dict:
        """JSON-friendly form (CLI --report)."""
        return {
            "verdicts": [v.to_dict() for v in self.verdicts],
            "windows_examined": self.windows_examined,
        }


def _records_of(audit) -> List:
    """Accept an AuditLog, a deque, or a plain record sequence."""
    records = getattr(audit, "records", audit)
    return list(records) if records is not None else []


def _nodes_seen(records: Iterable, *, before: float) -> Dict[int, float]:
    """node -> last time it was chosen or offered as a candidate."""
    last: Dict[int, float] = {}
    for r in records:
        if r.time >= before:
            continue
        if r.node >= 0:
            last[r.node] = r.time
        for c in r.candidates:
            last[c.node] = r.time
    return last


def _disappeared(records: Sequence, node: int, anchor: float) -> bool:
    """True when ``node`` is never chosen/offered after ``anchor``."""
    seen_before = False
    for r in records:
        involved = r.node == node or any(c.node == node for c in r.candidates)
        if not involved:
            continue
        # Recovery bookkeeping rows name the node without offering it.
        if r.reason in (REASON_REQUEUE_CRASH, REASON_QUARANTINE, REASON_REWARM):
            continue
        if r.time < anchor:
            seen_before = True
        elif r.time > anchor:
            return False
    return seen_before


def _window_overlap(windows, onset: float) -> bool:
    """Whether any violation window begins at or after the onset."""
    return any(w.end >= onset for w in windows)


def _crash_verdicts(records: Sequence, windows) -> List[RCAVerdict]:
    out: List[RCAVerdict] = []
    seen: set = set()
    for r in records:
        # Only the bookkeeping row (task_index < 0) names the crashed
        # node; placement rows with this reason carry the surviving
        # destinations.
        if r.reason != REASON_REQUEUE_CRASH or r.task_index >= 0:
            continue
        if r.node in seen:
            continue
        seen.add(r.node)
        evidence = [f"requeue-crash audit record at t={r.time:.3f}"]
        confidence = 0.6
        if _disappeared(records, r.node, r.time):
            confidence += 0.3
            evidence.append("node absent from all later decisions")
        if windows and _window_overlap(windows, r.time):
            confidence += 0.1
            evidence.append("overlaps an SLO violation window")
        out.append(
            RCAVerdict(
                "crash",
                r.node,
                r.time,
                min(confidence, 1.0),
                tuple(evidence),
            )
        )
    return out


def _vanilla_crash_verdicts(records: Sequence, windows) -> List[RCAVerdict]:
    """Crashes on runs without the recovery vocabulary.

    The legacy path reschedules every orphan in one burst of
    ``fallback`` records at the crash instant; the node that was being
    used before that instant and never again is the crashed one.
    """
    bursts: Dict[float, int] = {}
    for r in records:
        if r.reason == REASON_FALLBACK and r.task_index >= 0:
            bursts[r.time] = bursts.get(r.time, 0) + 1
    out: List[RCAVerdict] = []
    claimed: set = set()
    for anchor in sorted(t for t, n in bursts.items() if n >= 2):
        candidates = _nodes_seen(records, before=anchor)
        vanished = [
            node
            for node in candidates
            if node not in claimed and _disappeared(records, node, anchor)
        ]
        if len(vanished) != 1:
            continue
        node = vanished[0]
        claimed.add(node)
        evidence = [
            f"fallback re-placement burst at t={anchor:.3f}",
            "node absent from all later decisions",
        ]
        confidence = 0.7
        if windows and _window_overlap(windows, anchor):
            confidence += 0.1
            evidence.append("overlaps an SLO violation window")
        out.append(
            RCAVerdict("crash", node, anchor, confidence, tuple(evidence))
        )
    return out


def _render_inflation(paths: Sequence, node: int, anchor: float) -> float:
    """Ratio of the node's mean bounded render time after vs before."""
    before: List[float] = []
    after: List[float] = []
    for p in paths:
        if p.bounding_node != node or p.render <= 0:
            continue
        (after if p.finish >= anchor else before).append(p.render)
    if not before or not after:
        return 1.0
    return (sum(after) / len(after)) / (sum(before) / len(before))


def _straggler_verdicts(records: Sequence, paths, windows) -> List[RCAVerdict]:
    out: List[RCAVerdict] = []
    seen: set = set()
    for r in records:
        if r.reason != REASON_QUARANTINE or r.node in seen:
            continue
        seen.add(r.node)
        evidence = [f"quarantine audit record at t={r.time:.3f}"]
        confidence = 0.6
        onset = r.time
        inflation = _render_inflation(paths, r.node, r.time)
        if inflation >= 1.5:
            confidence += 0.3
            evidence.append(
                f"render time on node {r.node} inflated {inflation:.1f}x"
            )
            # Back-date to the first genuinely slow completion on the
            # node: render above 1.5x the other nodes' typical render.
            others = sorted(
                p.render
                for p in paths
                if p.bounding_node != r.node and p.render > 0
            )
            if others:
                typical = others[len(others) // 2]
                slow = [
                    p.finish
                    for p in paths
                    if p.bounding_node == r.node
                    and p.finish < r.time
                    and p.render >= 1.5 * typical
                ]
                if slow:
                    onset = max(min(slow), 0.0)
        if windows and _window_overlap(windows, onset):
            confidence += 0.1
            evidence.append("overlaps an SLO violation window")
        out.append(
            RCAVerdict(
                "straggler",
                r.node,
                onset,
                min(confidence, 1.0),
                tuple(evidence),
            )
        )
    return out


def _wipe_verdicts(records: Sequence, paths, windows) -> List[RCAVerdict]:
    out: List[RCAVerdict] = []
    seen: set = set()
    for r in records:
        if r.reason != REASON_REWARM or r.node in seen:
            continue
        seen.add(r.node)
        evidence = [f"rewarm audit record at t={r.time:.3f}"]
        confidence = 0.7
        # A wiped cache reveals itself as *reload* misses: misses that
        # begin after the node was demonstrably warm (hits started
        # earlier).  The first such miss started at the moment the wipe
        # was discovered on the node, which bounds the onset tightly.
        # The last pre-detection hit is a weaker signal — reloaded
        # chunks hit again while the backlog drains, so late hits do
        # not imply a late wipe.
        hit_paths = [
            p
            for p in paths
            if p.bounding_node == r.node and p.cache_hit and p.finish < r.time
        ]
        onset = max(r.time - 0.5, 0.0)
        if hit_paths:
            warm_from = min(p.finish - p.render for p in hit_paths)
            reload_starts = [
                max(p.finish - p.io - p.render, 0.0)
                for p in paths
                if p.bounding_node == r.node
                and not p.cache_hit
                and p.io > 0
                and p.finish <= r.time
                and p.finish - p.io - p.render > warm_from
            ]
            if reload_starts:
                onset = min(reload_starts)
                evidence.append(
                    f"first reload miss on node {r.node} "
                    f"started ~t={onset:.3f}"
                )
                confidence += 0.2
            else:
                onset = max(p.finish for p in hit_paths)
                evidence.append(
                    f"last cache hit on node {r.node} at t={onset:.3f}"
                )
                confidence += 0.1
        if windows and _window_overlap(windows, onset):
            evidence.append("overlaps an SLO violation window")
        out.append(
            RCAVerdict(
                "wipe", r.node, onset, min(confidence, 1.0), tuple(evidence)
            )
        )
    return out


def _storage_verdicts(paths, node_count: int, windows) -> List[RCAVerdict]:
    """Cluster-wide I/O inflation: many nodes slow at once."""
    missed = [p for p in paths if not p.cache_hit and p.io > 0]
    if len(missed) < 8 or node_count < 2:
        return []
    # Median I/O time of all misses is the healthy baseline — a bounded
    # degradation window inflates a minority of loads well past it.
    ios = sorted(p.io for p in missed)
    base = ios[len(ios) // 2]
    if base <= 0:
        return []
    inflated = [p for p in missed if p.io >= 2.0 * base]
    if len(inflated) < 4:
        return []
    nodes_inflated = {p.bounding_node for p in inflated}
    # Cluster-wide means several distinct nodes slow at once: half of a
    # small cluster, or at least four nodes of a large one (a window of
    # inflated loads can't plausibly touch half of 64 nodes).
    if len(nodes_inflated) < max(2, min(node_count // 2, 4)):
        # Localized slowness is a straggler's signature, not storage's.
        return []
    # The earliest inflated load *started* roughly its own I/O time
    # before it finished; that bounds the degradation onset.
    onset = max(min(p.finish - p.io for p in inflated), 0.0)
    evidence = [
        f"I/O inflated >=2x over the median on "
        f"{len(nodes_inflated)}/{node_count} nodes",
        f"earliest inflated load started ~t={onset:.3f}",
    ]
    confidence = 0.6 + 0.2 * min(2.0 * len(inflated) / len(missed), 1.0)
    if windows and _window_overlap(windows, onset):
        confidence += 0.1
        evidence.append("overlaps an SLO violation window")
    return [
        RCAVerdict(
            "storage", -1, onset, min(confidence, 1.0), tuple(evidence)
        )
    ]


def analyze(
    audit,
    paths: Sequence = (),
    windows: Sequence = (),
    *,
    node_count: Optional[int] = None,
) -> RCAReport:
    """Localize injected faults from operator-visible evidence only.

    Args:
        audit: The run's :class:`~repro.obs.audit.AuditLog` (or a plain
            sequence of :class:`~repro.obs.audit.DecisionRecord`).
        paths: The run's :class:`~repro.obs.causal.CriticalPath` list
            (pass ``result.critical_paths.paths``).
        windows: Optional :class:`~repro.obs.slo.ViolationWindow` list —
            the symptom being investigated; raises confidence of
            verdicts that explain it.
        node_count: Cluster size; inferred from the evidence when
            omitted (needed only for the storage heuristic).
    """
    records = _records_of(audit)
    paths = list(paths)
    windows = list(windows)
    if node_count is None:
        seen = {r.node for r in records if r.node >= 0}
        seen.update(p.bounding_node for p in paths)
        node_count = (max(seen) + 1) if seen else 0
    verdicts: List[RCAVerdict] = []
    verdicts.extend(_crash_verdicts(records, windows))
    if not verdicts:
        verdicts.extend(_vanilla_crash_verdicts(records, windows))
    verdicts.extend(_straggler_verdicts(records, paths, windows))
    verdicts.extend(_wipe_verdicts(records, paths, windows))
    verdicts.extend(_storage_verdicts(paths, node_count, windows))
    verdicts.sort(key=lambda v: (-v.confidence, v.onset))
    return RCAReport(verdicts=verdicts, windows_examined=len(windows))


def score(
    report: RCAReport,
    plan,
    *,
    time_tolerance: float = 1.0,
) -> Dict[str, object]:
    """Grade verdicts against the ground-truth plan (evaluation only).

    A planned event is *localized* when some verdict matches its kind,
    its node (for node-scoped faults), and falls within
    ``time_tolerance`` seconds of the true onset.  Returns the recall,
    the per-event outcomes, and the count of verdicts matching nothing
    (false positives).
    """
    matched_verdicts: set = set()
    events_out: List[dict] = []
    localized = 0
    for event in plan.events:
        node = getattr(event, "node", None)
        want_node = -1 if node is None else node
        # Cluster-wide events (storage, or a wipe of every node) match a
        # verdict on any node.
        node_agnostic = event.kind == "storage" or node is None
        hit = None
        for i, v in enumerate(report.verdicts):
            if i in matched_verdicts or v.kind != event.kind:
                continue
            if not node_agnostic and v.node != want_node:
                continue
            if abs(v.onset - event.time) > time_tolerance:
                continue
            hit = i
            break
        if hit is not None:
            matched_verdicts.add(hit)
            localized += 1
        events_out.append(
            {
                "kind": event.kind,
                "node": want_node,
                "time": event.time,
                "localized": hit is not None,
            }
        )
    total = len(plan.events)
    return {
        "events": events_out,
        "localized": localized,
        "total": total,
        "recall": localized / total if total else 1.0,
        "false_positives": len(report.verdicts) - len(matched_verdicts),
    }


__all__ = ["RCAVerdict", "RCAReport", "analyze", "score"]

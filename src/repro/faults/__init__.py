"""Fault injection, self-healing scheduling, and root-cause analysis.

Four layers (see DESIGN §11):

* :mod:`repro.faults.plan` — declarative, seeded
  :class:`~repro.faults.plan.FaultPlan` of typed fault events.
* :mod:`repro.faults.detect` — heartbeat-timeout and
  estimate-vs-actual outlier detectors.
* :mod:`repro.faults.recovery` — scheduler-composable healing policies
  (requeue, quarantine, speculative re-issue, cache rewarm).
* :mod:`repro.faults.rca` — localizes the injected fault from the
  audit log + critical paths, scored against the ground-truth plan.

Entry points: ``RunConfig(faults=FaultPlan(...))``,
``SimulationResult.fault_report``, and the ``repro faults`` CLI verb.
"""

from repro.faults.detect import Detection, HealthMonitor, NodeHealth
from repro.faults.injector import FaultReport, FaultRuntime, Injection
from repro.faults.plan import (
    CacheWipe,
    DetectionConfig,
    FaultPlan,
    NodeCrash,
    RecoveryConfig,
    StorageDegrade,
    Straggler,
)
from repro.faults.recovery import RecoveryAction, RecoveryEngine
from repro.faults.rca import RCAReport, RCAVerdict, analyze, score

__all__ = [
    "FaultPlan",
    "NodeCrash",
    "Straggler",
    "CacheWipe",
    "StorageDegrade",
    "DetectionConfig",
    "RecoveryConfig",
    "NodeHealth",
    "Detection",
    "HealthMonitor",
    "RecoveryAction",
    "RecoveryEngine",
    "FaultReport",
    "FaultRuntime",
    "Injection",
    "RCAVerdict",
    "RCAReport",
    "analyze",
    "score",
]

"""Declarative fault plans — layer 1 of :mod:`repro.faults`.

A :class:`FaultPlan` is a typed, fully deterministic description of the
faults one simulation run will suffer: node crashes (with optional
revival), stragglers (degraded render/IO rates), cache wipes (per node
or per dataset), and storage degradation (elevated latency / reduced
bandwidth).  Events are scheduled on the virtual clock through the
regular event queue, so a run with ``faults=None`` is bit-identical to
a run that predates the subsystem (the golden-trace hashes pin this).

A plan optionally carries a :class:`DetectionConfig` and a
:class:`RecoveryConfig`.  Without them the plan is *vanilla*: crashes
are applied exactly like the legacy ``RunConfig(node_failures=...)``
hook (the head node learns instantly, §VI-D), and nothing else is
detected or healed.  With them the run is *self-healing*: the head node
only learns about faults through the detectors
(:mod:`repro.faults.detect`) and reacts through the recovery policies
(:mod:`repro.faults.recovery`).

Plans can be written in code, parsed from the CLI mini-language
(:meth:`FaultPlan.parse`), generated as a seeded storm
(:meth:`FaultPlan.storm`), or built from the deprecated
``node_failures`` pairs (:meth:`FaultPlan.from_node_failures`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple, Union


def _check_time(name: str, value: float) -> None:
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value}")


@dataclass(frozen=True)
class NodeCrash:
    """Node ``node`` crashes at ``time``; optionally revives later."""

    time: float
    node: int
    revive_at: Optional[float] = None

    kind = "crash"

    def __post_init__(self) -> None:
        _check_time("time", self.time)
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.revive_at is not None and self.revive_at <= self.time:
            raise ValueError(
                f"revive_at ({self.revive_at}) must be after the crash "
                f"time ({self.time})"
            )


@dataclass(frozen=True)
class Straggler:
    """Node ``node`` slows down at ``time``: its render (and optionally
    I/O) durations are multiplied by the given factors until ``until``
    (or for the rest of the run)."""

    time: float
    node: int
    render_factor: float = 4.0
    io_factor: float = 1.0
    until: Optional[float] = None

    kind = "straggler"

    def __post_init__(self) -> None:
        _check_time("time", self.time)
        if self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")
        if self.render_factor < 1.0 or self.io_factor < 1.0:
            raise ValueError(
                "straggler factors must be >= 1.0, got "
                f"render={self.render_factor}, io={self.io_factor}"
            )
        if self.until is not None and self.until <= self.time:
            raise ValueError(
                f"until ({self.until}) must be after time ({self.time})"
            )


@dataclass(frozen=True)
class CacheWipe:
    """Main-memory cache contents are lost at ``time``.

    ``node=None`` wipes every node; ``dataset`` (when set) restricts the
    wipe to that dataset's chunks.  The head node's cache mirror is
    deliberately *not* updated — the whole point is that the scheduler's
    hit predictions go stale until detection/recovery resyncs them.
    """

    time: float
    node: Optional[int] = None
    dataset: Optional[str] = None

    kind = "wipe"

    def __post_init__(self) -> None:
        _check_time("time", self.time)
        if self.node is not None and self.node < 0:
            raise ValueError(f"node must be >= 0, got {self.node}")


@dataclass(frozen=True)
class StorageDegrade:
    """The shared storage degrades at ``time``: access latency is
    multiplied by ``latency_factor`` and bandwidth by
    ``bandwidth_factor`` until ``until`` (or for the rest of the run)."""

    time: float
    latency_factor: float = 1.0
    bandwidth_factor: float = 1.0
    until: Optional[float] = None

    kind = "storage"

    def __post_init__(self) -> None:
        _check_time("time", self.time)
        if self.latency_factor < 1.0:
            raise ValueError(
                f"latency_factor must be >= 1.0, got {self.latency_factor}"
            )
        if not 0.0 < self.bandwidth_factor <= 1.0:
            raise ValueError(
                "bandwidth_factor must be in (0, 1], got "
                f"{self.bandwidth_factor}"
            )
        if self.until is not None and self.until <= self.time:
            raise ValueError(
                f"until ({self.until}) must be after time ({self.time})"
            )


FaultEvent = Union[NodeCrash, Straggler, CacheWipe, StorageDegrade]

_EVENT_TYPES = (NodeCrash, Straggler, CacheWipe, StorageDegrade)


@dataclass(frozen=True)
class DetectionConfig:
    """How the head node notices faults (layer 2).

    Attributes:
        heartbeat_interval: Virtual seconds between heartbeat probes of
            the rendering nodes (probes only run while a crash awaits
            detection, so fault-free stretches schedule no events).
        heartbeat_timeout: A node silent this long is declared dead.
        outlier_ratio: A finished task whose actual execution exceeded
            the head node's estimate by this factor counts as an
            outlier.
        outlier_streak: Consecutive outliers on one node before the
            detector raises a verdict (straggler or cache wipe,
            classified by the surprise-miss mix of the streak).
        surprise_streak: Surprise misses (the head node's mirror
            predicted a hit, the task reported a miss) on one node
            before the wipe detector trips.  Mirrors track the real
            caches exactly outside faults, so surprise misses are
            strong evidence — the default is lower than
            ``outlier_streak``.
    """

    heartbeat_interval: float = 0.05
    heartbeat_timeout: float = 0.15
    outlier_ratio: float = 3.0
    outlier_streak: int = 3
    surprise_streak: int = 2

    def __post_init__(self) -> None:
        if self.heartbeat_interval <= 0:
            raise ValueError(
                f"heartbeat_interval must be > 0, got {self.heartbeat_interval}"
            )
        if self.heartbeat_timeout < self.heartbeat_interval:
            raise ValueError(
                "heartbeat_timeout must be >= heartbeat_interval, got "
                f"{self.heartbeat_timeout} < {self.heartbeat_interval}"
            )
        if self.outlier_ratio <= 1.0:
            raise ValueError(
                f"outlier_ratio must be > 1.0, got {self.outlier_ratio}"
            )
        if self.outlier_streak < 1:
            raise ValueError(
                f"outlier_streak must be >= 1, got {self.outlier_streak}"
            )
        if self.surprise_streak < 1:
            raise ValueError(
                f"surprise_streak must be >= 1, got {self.surprise_streak}"
            )


@dataclass(frozen=True)
class RecoveryConfig:
    """Which self-healing policies react to detections (layer 3).

    Attributes:
        requeue: Re-execute tasks orphaned by a detected crash
            (audit reason ``requeue-crash``).
        quarantine: Stop scheduling onto a detected straggler
            (audit reason ``quarantine``; sticky for the run).
        speculative: Re-issue a quarantined node's queued backlog onto
            healthy nodes (audit reason ``speculative``); the task
            already executing finishes slowly wherever it is.
        rewarm: After a detected cache wipe, resync the head node's
            cache mirror and reload the hottest lost chunks
            (audit reason ``rewarm``).
        rewarm_limit: Maximum chunks reloaded per wipe detection.
    """

    requeue: bool = True
    quarantine: bool = True
    speculative: bool = True
    rewarm: bool = True
    rewarm_limit: int = 4

    def __post_init__(self) -> None:
        if self.rewarm_limit < 0:
            raise ValueError(
                f"rewarm_limit must be >= 0, got {self.rewarm_limit}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events plus healing policy.

    ``detection=None`` (the default) reproduces the legacy §VI-D
    semantics: crashes are applied with the head node instantly aware,
    and stragglers/wipes/storage faults simply happen without any
    reaction.  Setting ``detection`` makes the run self-healing;
    ``recovery=None`` then means "detect but do not act" (a useful
    ablation), while a :class:`RecoveryConfig` enables the healing
    policies.
    """

    events: Tuple[FaultEvent, ...] = field(default_factory=tuple)
    detection: Optional[DetectionConfig] = None
    recovery: Optional[RecoveryConfig] = None

    def __post_init__(self) -> None:
        events = tuple(self.events)
        for event in events:
            if not isinstance(event, _EVENT_TYPES):
                raise TypeError(
                    f"fault events must be NodeCrash/Straggler/CacheWipe/"
                    f"StorageDegrade, got {type(event).__name__}"
                )
        object.__setattr__(self, "events", events)
        if self.recovery is not None and self.detection is None:
            raise ValueError(
                "recovery requires detection: pass detection="
                "DetectionConfig(...) as well"
            )

    @property
    def self_healing(self) -> bool:
        """Whether the plan both detects faults and reacts to them."""
        return self.detection is not None and self.recovery is not None

    def max_node(self) -> int:
        """Highest node index any event references (-1 if none do)."""
        highest = -1
        for event in self.events:
            node = getattr(event, "node", None)
            if node is not None and node > highest:
                highest = node
        return highest

    def describe(self) -> str:
        """One line per event, in plan order."""
        lines = []
        for event in self.events:
            parts = [f"{event.kind}@{event.time:g}"]
            for name in ("node", "revive_at", "render_factor", "io_factor",
                         "dataset", "latency_factor", "bandwidth_factor",
                         "until"):
                value = getattr(event, name, None)
                if value is not None and value != 1.0:
                    parts.append(f"{name}={value:g}" if not isinstance(value, str)
                                 else f"{name}={value}")
            lines.append(" ".join(parts))
        mode = (
            "self-healing" if self.self_healing
            else "detect-only" if self.detection is not None
            else "vanilla"
        )
        if not lines:
            return f"fault plan ({mode}, no events)"
        return (
            f"fault plan ({mode}, {len(self.events)} events):\n  "
            + "\n  ".join(lines)
        )

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_node_failures(
        cls, failures: Sequence[Tuple[float, int]]
    ) -> "FaultPlan":
        """The legacy ``RunConfig(node_failures=...)`` pairs as a plan.

        Vanilla semantics (no detection/recovery): the resulting run is
        bit-identical to the pre-plan crash hook.
        """
        return cls(
            events=tuple(NodeCrash(time, node) for time, node in failures)
        )

    @classmethod
    def parse(cls, spec: str, *, heal: bool = True) -> "FaultPlan":
        """Parse the CLI mini-language into a plan.

        Grammar: semicolon-separated events, each
        ``kind@time[:key=value,...]``::

            crash@10:node=3,revive=20
            straggler@5:node=2,render=4,io=2,until=15
            wipe@8:node=1
            wipe@8:dataset=ds2
            storage@6:latency=5,bw=0.25,until=12

        ``heal=True`` (default) attaches default detection + recovery
        configs; ``heal=False`` yields a vanilla plan.
        """
        events = []
        for raw in spec.split(";"):
            raw = raw.strip()
            if not raw:
                continue
            head, _, tail = raw.partition(":")
            kind, at, time_text = head.partition("@")
            kind = kind.strip().lower()
            if not at:
                raise ValueError(
                    f"bad fault event {raw!r}: expected kind@time[:k=v,...]"
                )
            try:
                time = float(time_text)
            except ValueError:
                raise ValueError(
                    f"bad fault time in {raw!r}: {time_text!r}"
                ) from None
            fields = {}
            if tail:
                for part in tail.split(","):
                    key, sep, value = part.partition("=")
                    if not sep:
                        raise ValueError(
                            f"bad fault option {part!r} in {raw!r}; "
                            f"expected key=value"
                        )
                    fields[key.strip()] = value.strip()
            try:
                events.append(_parse_event(kind, time, fields, raw))
            except KeyError as exc:
                raise ValueError(
                    f"fault event {raw!r} missing required option {exc}"
                ) from None
        return cls(
            events=tuple(events),
            detection=DetectionConfig() if heal else None,
            recovery=RecoveryConfig() if heal else None,
        )

    @classmethod
    def storm(
        cls,
        seed: int,
        *,
        node_count: int,
        duration: float,
        heal: bool = True,
    ) -> "FaultPlan":
        """A seeded, reproducible fault storm for benchmarks.

        One crash (with revival), one straggler, one cache wipe, and one
        storage-degradation window, on distinct nodes, at pseudo-random
        times inside ``duration``.  The same ``(seed, node_count,
        duration)`` always yields the identical plan.
        """
        if node_count < 2:
            raise ValueError(f"storm needs >= 2 nodes, got {node_count}")
        if duration <= 0:
            raise ValueError(f"duration must be > 0, got {duration}")
        rng = random.Random(seed)
        nodes = rng.sample(range(node_count), min(3, node_count))
        crash_at = rng.uniform(0.25, 0.45) * duration
        events: Tuple[FaultEvent, ...] = (
            NodeCrash(
                crash_at,
                nodes[0],
                revive_at=crash_at + rng.uniform(0.25, 0.35) * duration,
            ),
            Straggler(
                rng.uniform(0.15, 0.3) * duration,
                nodes[1],
                render_factor=rng.uniform(4.0, 8.0),
                io_factor=1.0,
            ),
            CacheWipe(rng.uniform(0.5, 0.7) * duration, node=nodes[2 % len(nodes)]),
            StorageDegrade(
                rng.uniform(0.7, 0.8) * duration,
                latency_factor=rng.uniform(3.0, 6.0),
                bandwidth_factor=rng.uniform(0.3, 0.6),
                until=0.95 * duration,
            ),
        )
        return cls(
            events=events,
            detection=DetectionConfig() if heal else None,
            recovery=RecoveryConfig() if heal else None,
        )


def _parse_event(kind: str, time: float, fields: dict, raw: str) -> FaultEvent:
    """Build one typed event from parsed mini-language fields."""
    if kind == "crash":
        unknown = set(fields) - {"node", "revive"}
        if unknown:
            raise ValueError(
                f"unknown crash option(s) in {raw!r}: {', '.join(sorted(unknown))}"
            )
        return NodeCrash(
            time,
            int(fields["node"]),
            revive_at=float(fields["revive"]) if "revive" in fields else None,
        )
    if kind == "straggler":
        unknown = set(fields) - {"node", "render", "io", "until"}
        if unknown:
            raise ValueError(
                f"unknown straggler option(s) in {raw!r}: "
                f"{', '.join(sorted(unknown))}"
            )
        return Straggler(
            time,
            int(fields["node"]),
            render_factor=float(fields.get("render", 4.0)),
            io_factor=float(fields.get("io", 1.0)),
            until=float(fields["until"]) if "until" in fields else None,
        )
    if kind == "wipe":
        unknown = set(fields) - {"node", "dataset"}
        if unknown:
            raise ValueError(
                f"unknown wipe option(s) in {raw!r}: {', '.join(sorted(unknown))}"
            )
        return CacheWipe(
            time,
            node=int(fields["node"]) if "node" in fields else None,
            dataset=fields.get("dataset"),
        )
    if kind == "storage":
        unknown = set(fields) - {"latency", "bw", "until"}
        if unknown:
            raise ValueError(
                f"unknown storage option(s) in {raw!r}: "
                f"{', '.join(sorted(unknown))}"
            )
        return StorageDegrade(
            time,
            latency_factor=float(fields.get("latency", 1.0)),
            bandwidth_factor=float(fields.get("bw", 1.0)),
            until=float(fields["until"]) if "until" in fields else None,
        )
    raise ValueError(
        f"unknown fault kind {kind!r} in {raw!r}; "
        f"expected crash/straggler/wipe/storage"
    )


__all__ = [
    "NodeCrash",
    "Straggler",
    "CacheWipe",
    "StorageDegrade",
    "FaultEvent",
    "DetectionConfig",
    "RecoveryConfig",
    "FaultPlan",
]

"""Shared utilities: byte/time unit helpers, seeded RNG, validation."""

from repro.util.units import (
    KiB,
    MiB,
    GiB,
    TiB,
    bytes_to_gib,
    bytes_to_mib,
    fmt_bytes,
    fmt_seconds,
    MICROSECOND,
    MILLISECOND,
)
from repro.util.rng import make_rng, spawn_rngs
from repro.util.validation import (
    check_positive,
    check_non_negative,
    check_in_range,
    check_type,
)

__all__ = [
    "KiB",
    "MiB",
    "GiB",
    "TiB",
    "bytes_to_gib",
    "bytes_to_mib",
    "fmt_bytes",
    "fmt_seconds",
    "MICROSECOND",
    "MILLISECOND",
    "make_rng",
    "spawn_rngs",
    "check_positive",
    "check_non_negative",
    "check_in_range",
    "check_type",
]

"""Small argument-validation helpers used across the library.

These raise early, with messages naming the offending parameter, so that
configuration mistakes surface at construction time rather than as silent
nonsense deep inside a simulation run.
"""

from __future__ import annotations

from typing import Any, Tuple, Type, Union


def check_positive(name: str, value: float) -> float:
    """Require ``value > 0``; return it for chaining."""
    if not value > 0:
        raise ValueError(f"{name} must be > 0, got {value!r}")
    return value


def check_non_negative(name: str, value: float) -> float:
    """Require ``value >= 0``; return it for chaining."""
    if value < 0:
        raise ValueError(f"{name} must be >= 0, got {value!r}")
    return value


def check_in_range(
    name: str,
    value: float,
    lo: float,
    hi: float,
    *,
    inclusive: bool = True,
) -> float:
    """Require ``lo <= value <= hi`` (or strict, if ``inclusive=False``)."""
    ok = (lo <= value <= hi) if inclusive else (lo < value < hi)
    if not ok:
        bounds = f"[{lo}, {hi}]" if inclusive else f"({lo}, {hi})"
        raise ValueError(f"{name} must be in {bounds}, got {value!r}")
    return value


def check_type(
    name: str,
    value: Any,
    types: Union[Type, Tuple[Type, ...]],
) -> Any:
    """Require ``isinstance(value, types)``; return it for chaining."""
    if not isinstance(value, types):
        expected = (
            types.__name__
            if isinstance(types, type)
            else " | ".join(t.__name__ for t in types)
        )
        raise TypeError(
            f"{name} must be {expected}, got {type(value).__name__}: {value!r}"
        )
    return value


__all__ = ["check_positive", "check_non_negative", "check_in_range", "check_type"]

"""Seeded random-number-generator helpers.

Every stochastic component of the simulator (workload generation, I/O
jitter, user think times) takes an explicit seed or an explicit
``numpy.random.Generator``.  Simulations are therefore bit-reproducible,
which the test suite and the benchmark harness rely on.
"""

from __future__ import annotations

from typing import List, Optional, Union

import numpy as np

SeedLike = Union[int, np.random.Generator, None]


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` from a seed or pass one through.

    ``None`` produces an OS-entropy generator (only appropriate for
    exploratory use; library code should always thread an explicit seed).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: SeedLike, n: int) -> List[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses :class:`numpy.random.SeedSequence` spawning so that child streams
    are independent regardless of how many are requested, and so that the
    assignment of streams to components is stable under refactorings that
    change consumption order within one component.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    if isinstance(seed, np.random.Generator):
        # Spawn from the generator's bit generator seed sequence.
        seq = seed.bit_generator.seed_seq  # type: ignore[attr-defined]
    else:
        seq = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in seq.spawn(n)]


def stable_hash32(*parts: object) -> int:
    """A deterministic 32-bit hash of the reprs of ``parts``.

    Unlike builtin ``hash`` this is stable across processes (no
    ``PYTHONHASHSEED`` dependence), so it can derive per-entity seeds.
    """
    acc = 2166136261  # FNV-1a offset basis
    for part in parts:
        for byte in repr(part).encode("utf-8"):
            acc ^= byte
            acc = (acc * 16777619) & 0xFFFFFFFF
    return acc


__all__ = ["SeedLike", "make_rng", "spawn_rngs", "stable_hash32"]

"""Byte and time unit constants and formatting helpers.

The simulator keeps all sizes in integer **bytes** and all times in float
**seconds**.  These helpers exist so that configuration code reads like the
paper ("512 MB chunks", "2 GB memory quota", "30 ms request interval")
instead of raw powers of two.
"""

from __future__ import annotations

# ---------------------------------------------------------------------------
# Byte units (binary, as used for memory quotas and chunk sizes).
# ---------------------------------------------------------------------------

KiB: int = 1024
MiB: int = 1024 * KiB
GiB: int = 1024 * MiB
TiB: int = 1024 * GiB

# ---------------------------------------------------------------------------
# Time units, expressed in seconds.
# ---------------------------------------------------------------------------

MICROSECOND: float = 1e-6
MILLISECOND: float = 1e-3


def bytes_to_mib(n: int) -> float:
    """Convert a byte count to MiB as a float."""
    return n / MiB


def bytes_to_gib(n: int) -> float:
    """Convert a byte count to GiB as a float."""
    return n / GiB


def fmt_bytes(n: int) -> str:
    """Render a byte count with an adaptive binary unit.

    >>> fmt_bytes(512 * MiB)
    '512.0 MiB'
    >>> fmt_bytes(3 * GiB)
    '3.0 GiB'
    """
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or unit == "TiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024.0
    raise AssertionError("unreachable")


def fmt_seconds(t: float) -> str:
    """Render a duration with an adaptive unit (us / ms / s).

    >>> fmt_seconds(0.0305)
    '30.500 ms'
    """
    if t == 0.0:
        return "0 s"
    a = abs(t)
    if a < 1e-3:
        return f"{t * 1e6:.1f} us"
    if a < 1.0:
        return f"{t * 1e3:.3f} ms"
    return f"{t:.3f} s"

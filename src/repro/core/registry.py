"""Scheduler registry: build any of the paper's six policies by name.

The evaluation (Figs. 4-9, Table III) compares ``OURS`` against the five
modified-for-this-application baselines of §VI-B.  ``make_scheduler``
constructs a fresh instance; ``SCHEDULER_NAMES`` lists them in the
paper's figure order (FS, SF, FCFS, FCFSU, FCFSL, OURS).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.core.fcfs import FCFSLScheduler, FCFSScheduler, FCFSUScheduler
from repro.core.fs import FSScheduler
from repro.core.ours import OursScheduler
from repro.core.rr import RRScheduler
from repro.core.scheduler_base import Scheduler
from repro.core.sf import SFScheduler

_FACTORIES: Dict[str, Callable[..., Scheduler]] = {
    "FS": FSScheduler,
    "SF": SFScheduler,
    "FCFS": FCFSScheduler,
    "FCFSU": FCFSUScheduler,
    "FCFSL": FCFSLScheduler,
    "OURS": OursScheduler,
    # Not in the paper's evaluation but named alongside FCFS/SF in its
    # related-work survey (§II-B); provided for completeness.
    "RR": RRScheduler,
}

#: The paper's six evaluated schedulers, in figure order, plus extras.
SCHEDULER_NAMES: List[str] = list(_FACTORIES)
#: Only the six the paper's figures compare (benches use this).
PAPER_SCHEDULERS: List[str] = ["FS", "SF", "FCFS", "FCFSU", "FCFSL", "OURS"]


def make_scheduler(name: str, **kwargs: object) -> Scheduler:
    """Instantiate a scheduler by registry name (case-insensitive).

    Keyword arguments are forwarded to the constructor (e.g.
    ``make_scheduler("OURS", cycle=0.01)``).

    Raises:
        KeyError: For an unknown name, listing the valid ones.
    """
    factory = _FACTORIES.get(name.upper())
    if factory is None:
        raise KeyError(
            f"unknown scheduler {name!r}; valid names: {', '.join(SCHEDULER_NAMES)}"
        )
    return factory(**kwargs)


def register_scheduler(name: str, factory: Callable[..., Scheduler]) -> None:
    """Register a custom scheduling policy under ``name``.

    Allows downstream users to benchmark their own policies with the
    same harness; refuses to silently replace a built-in.
    """
    key = name.upper()
    if key in _FACTORIES:
        raise ValueError(f"scheduler {key!r} is already registered")
    _FACTORIES[key] = factory
    SCHEDULER_NAMES.append(key)


__all__ = ["SCHEDULER_NAMES", "PAPER_SCHEDULERS", "make_scheduler", "register_scheduler"]

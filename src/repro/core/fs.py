"""The Fair-Sharing baseline (paper §VI-B).

FS allocates computational resources so that each user receives an
equal share on average over time, the policy popularized by Hadoop's
fair scheduler [26].  Like OURS it runs on a constant scheduling cycle
(the paper's Table III groups them as the two cycle-based methods with
cheap per-job cost), but it is locality-blind: tasks go to the node with
the smallest available time regardless of where data is cached, which is
why its data-reuse hit rate collapses to 8-29 % in Table III.

Implementation: per-user deficit counters of estimated resource-seconds
consumed.  Each cycle drains the arrival queue into per-user FIFO
queues, then repeatedly dispatches the next job of the least-served
user, charging that user the job's estimated execution cost.  Counters
persist across cycles so fairness is long-run, and are normalized each
cycle (minimum subtracted) to avoid unbounded growth; idle users do not
bank unlimited credit.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, Sequence

from repro.core.job import RenderJob
from repro.core.scheduler_base import (
    Scheduler,
    SchedulerContext,
    Trigger,
    greedy_min_available,
)
from repro.obs.audit import REASON_ONLY_AVAILABLE


class FSScheduler(Scheduler):
    """Fair Sharing across users on a fixed scheduling cycle."""

    name = "FS"
    trigger = Trigger.CYCLE

    def __init__(self, cycle: float = 0.015) -> None:
        if cycle <= 0:
            raise ValueError(f"cycle must be > 0, got {cycle}")
        self.cycle = cycle
        self._usage: Dict[int, float] = {}
        self._queues: "OrderedDict[int, Deque[RenderJob]]" = OrderedDict()

    def reset(self) -> None:
        self._usage.clear()
        self._queues.clear()

    def pending_task_count(self) -> int:
        # FS never defers work past the cycle in which it can be placed;
        # the queues are always fully drained within schedule().
        return sum(len(q) for q in self._queues.values())

    def _charge(self, job: RenderJob, ctx: SchedulerContext) -> float:
        """Estimated resource-seconds a job consumes (Σ task estimates)."""
        tables = ctx.tables
        group = job.composite_group_size
        return sum(tables.estimate(t.chunk, group) for t in job.tasks)

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        for job in jobs:
            ctx.decompose(job)
            queue = self._queues.get(job.user)
            if queue is None:
                queue = deque()
                self._queues[job.user] = queue
                self._usage.setdefault(job.user, 0.0)
            queue.append(job)

        # Normalize usage so counters stay bounded and newly arrived
        # users compete from the current floor rather than from zero.
        active = [u for u, q in self._queues.items() if q]
        if not active:
            return
        floor = min(self._usage[u] for u in active)
        if floor > 0:
            for u in self._usage:
                self._usage[u] = max(0.0, self._usage[u] - floor)

        # Dispatch all queued jobs, least-served user first.
        remaining = sum(len(self._queues[u]) for u in active)
        while remaining:
            user = min(active, key=lambda u: (self._usage[u], u))
            queue = self._queues[user]
            job = queue.popleft()
            remaining -= 1
            if not queue:
                active.remove(user)
            self._usage[user] += self._charge(job, ctx)
            for task in job.tasks:
                ctx.assign(
                    task, greedy_min_available(task, ctx), REASON_ONLY_AVAILABLE
                )


__all__ = ["FSScheduler"]

"""The paper's cost model (§IV, Definitions 1-4).

Pure functions that evaluate the performance quantities the paper
defines, given jobs whose task timings were filled in by the simulator
(or by any other execution substrate):

* **Definition 1** — task execution time
  ``TExec(i,j,k) = t_io + t_render + t_composite ≈ t_io + α``;
  ``t_io`` vanishes when the chunk is already in the node's main memory.
* **Definition 2** — job start/finish: ``JS(i) = min TS``,
  ``JF(i) = max TF`` (+ compositing, which the simulator folds into the
  job's ``finish_time``), and ``JExec(i) = JF(i) - JS(i)``.
* **Definition 3** — job latency ``Latency(i) = JF(i) - JI(i)``: the
  delay noticeable at the user's end.
* **Definition 4** — framerate of a series of interactive jobs:
  ``(n - 1) / Σ (JF(i+1) - JF(i))``, i.e. the reciprocal mean spacing of
  successive job completions of one user action.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Optional, Sequence

from repro.core.job import RenderJob, RenderTask


# ---------------------------------------------------------------------------
# Definition 1 — task level
# ---------------------------------------------------------------------------


def task_execution_time(task: RenderTask) -> float:
    """``TExec`` of a completed task (start to finish on its node)."""
    if task.start_time is None or task.finish_time is None:
        raise ValueError(f"task {task!r} has not completed")
    return task.finish_time - task.start_time


def task_alpha(task: RenderTask) -> float:
    """The non-I/O component α of a completed task's execution time.

    By Definition 1, ``TExec ≈ t_io + α`` with α the (small) rendering
    and compositing remainder.
    """
    return task_execution_time(task) - task.io_time


# ---------------------------------------------------------------------------
# Definitions 2-3 — job level
# ---------------------------------------------------------------------------


def job_start_time(job: RenderJob) -> float:
    """``JS(i)`` — the minimal task start time."""
    return job.start_time()


def job_finish_time(job: RenderJob) -> float:
    """``JF(i)`` — job completion including compositing."""
    if job.finish_time is None:
        raise ValueError(f"job {job!r} has not completed")
    return job.finish_time


def job_execution_time(job: RenderJob) -> float:
    """``JExec(i) = JF(i) - JS(i)``."""
    return job_finish_time(job) - job_start_time(job)


def job_latency(job: RenderJob) -> float:
    """``Latency(i) = JF(i) - JI(i)`` — the user-visible delay."""
    return job_finish_time(job) - job.arrival_time


# ---------------------------------------------------------------------------
# Definition 4 — framerate of an interactive job series
# ---------------------------------------------------------------------------


def framerate(finish_times: Sequence[float]) -> float:
    """Framerate of a job series from its completion instants.

    ``Framerate = (n-1) / Σ_{i=1}^{n-1} (JF(i+1) - JF(i))`` — the paper's
    Definition 4.  The sum telescopes to ``JF(n) - JF(1)``, but we keep
    the definition explicit for clarity.  Requires the series to be in
    completion order; returns 0.0 for fewer than two completions (no
    frame interval exists).
    """
    n = len(finish_times)
    if n < 2:
        return 0.0
    total = 0.0
    for i in range(n - 1):
        dt = finish_times[i + 1] - finish_times[i]
        if dt < 0:
            raise ValueError("finish_times must be non-decreasing")
        total += dt
    if total <= 0:
        return math.inf
    return (n - 1) / total


def action_framerate(jobs: Iterable[RenderJob]) -> float:
    """Framerate over the completed jobs of one user action.

    Jobs are ordered by finish time (completion order, as a user would
    perceive frames); incomplete jobs are ignored.
    """
    finishes = sorted(j.finish_time for j in jobs if j.finish_time is not None)
    return framerate(finishes)


# ---------------------------------------------------------------------------
# Aggregates used throughout the evaluation
# ---------------------------------------------------------------------------


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean; 0.0 for an empty sequence."""
    return sum(values) / len(values) if values else 0.0


def percentile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated percentile ``q`` in [0, 100]; 0.0 if empty."""
    if not values:
        return 0.0
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"q must be in [0, 100], got {q}")
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    pos = (len(ordered) - 1) * q / 100.0
    lo = int(math.floor(pos))
    hi = int(math.ceil(pos))
    if lo == hi:
        return ordered[lo]
    frac = pos - lo
    return ordered[lo] * (1 - frac) + ordered[hi] * frac


def mean_latency(jobs: Iterable[RenderJob]) -> float:
    """Mean Definition-3 latency over completed jobs."""
    lats = [job_latency(j) for j in jobs if j.finish_time is not None]
    return mean(lats)


def mean_execution_time(jobs: Iterable[RenderJob]) -> float:
    """Mean ``JExec`` ("working time") over completed jobs.

    The paper's batch "working time" bars (Figs. 5-7): shorter working
    time indicates higher batch throughput.
    """
    execs = [job_execution_time(j) for j in jobs if j.finish_time is not None]
    return mean(execs)


__all__ = [
    "task_execution_time",
    "task_alpha",
    "job_start_time",
    "job_finish_time",
    "job_execution_time",
    "job_latency",
    "framerate",
    "action_framerate",
    "mean",
    "percentile",
    "mean_latency",
    "mean_execution_time",
]

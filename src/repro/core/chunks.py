"""Datasets, data chunks, and decomposition policies (paper §III-C).

A *dataset* is a named volumetric array of a given byte size stored on the
cluster file system.  Before rendering, a dataset is partitioned into
*chunks*; a rendering job over the dataset decomposes into one task per
chunk.  The paper discusses two decomposition strategies:

* **Uniform decomposition** — the conventional approach: every dataset is
  split into exactly ``p`` equal chunks (``p`` = number of rendering
  nodes), and chunk ``j`` is always processed by node ``j``.  This is the
  decomposition used by the FCFSU baseline.

* **Chunked decomposition** — the paper's approach: a dataset of size
  ``Dsize`` is split into ``m = ceil(Dsize / Chkmax)`` chunks, where
  ``Chkmax`` is the maximal chunk size (bounded by GPU memory).  More than
  one chunk may live on a node, so the system supports datasets larger
  than the aggregate GPU memory.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, NamedTuple, Sequence, Tuple

from repro.util.units import fmt_bytes
from repro.util.validation import check_positive


class Chunk(NamedTuple):
    """One piece of a dataset, the unit of caching and task assignment.

    Chunks are identified by ``(dataset, index)`` and are hashable so they
    can key the head node's ``Cache`` and ``Estimate`` tables directly.
    A named tuple rather than a frozen dataclass: chunks key every hot
    dict in the scheduler (caches, replica sets, backlogs, estimates),
    and tuple hashing/equality run at C level with no Python frame —
    producing the same hash value ``hash((dataset, index, size))`` the
    previous dataclass precomputed, so hash-ordered containers are laid
    out identically.

    Attributes:
        dataset: Name of the owning dataset.
        index: Chunk index within the dataset, ``0 <= index < m``.
        size: Chunk size in bytes.
    """

    dataset: str
    index: int
    size: int

    @property
    def key(self) -> Tuple[str, int]:
        """The ``(dataset, index)`` identity tuple."""
        return (self.dataset, self.index)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.dataset}[{self.index}]({fmt_bytes(self.size)})"


@dataclass(frozen=True)
class Dataset:
    """A named dataset of ``size`` bytes resident on the file system.

    Attributes:
        name: Unique dataset name (e.g. ``"plume"`` or ``"ds03"``).
        size: Total dataset size in bytes.
    """

    name: str
    size: int

    def __post_init__(self) -> None:
        check_positive("Dataset.size", self.size)
        if not self.name:
            raise ValueError("Dataset.name must be non-empty")


class DecompositionPolicy:
    """Base class for data decomposition policies.

    A policy maps a :class:`Dataset` to its list of :class:`Chunk` pieces.
    Decompositions are deterministic and cached per dataset so that the
    same ``Chunk`` objects (and hence the same cache keys) are produced
    for every job over the same data.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[str, int], List[Chunk]] = {}

    def chunk_count(self, dataset: Dataset) -> int:
        """Number of chunks this policy produces for ``dataset``."""
        return len(self.decompose(dataset))

    def decompose(self, dataset: Dataset) -> List[Chunk]:
        """Return the chunk list for ``dataset`` (memoized by name+size)."""
        key = (dataset.name, dataset.size)
        cached = self._cache.get(key)
        if cached is None:
            cached = self._decompose(dataset)
            if not cached:
                raise ValueError(f"decomposition of {dataset} produced no chunks")
            total = sum(c.size for c in cached)
            if total != dataset.size:
                raise AssertionError(
                    f"decomposition of {dataset.name} loses bytes: "
                    f"{total} != {dataset.size}"
                )
            self._cache[key] = cached
        return cached

    def _decompose(self, dataset: Dataset) -> List[Chunk]:
        raise NotImplementedError


def _split_even(name: str, size: int, m: int) -> List[Chunk]:
    """Split ``size`` bytes into ``m`` chunks differing by at most one byte."""
    base, extra = divmod(size, m)
    return [
        Chunk(dataset=name, index=j, size=base + (1 if j < extra else 0))
        for j in range(m)
    ]


class ChunkedDecomposition(DecompositionPolicy):
    """The paper's decomposition: ``m = ceil(Dsize / Chkmax)`` equal chunks.

    ``chunk_max`` should not exceed a rendering node's graphics memory and
    should not be much smaller either (more chunks means more per-task
    overheads); the paper reports that a moderate size slightly below the
    graphics-memory limit works well.
    """

    def __init__(self, chunk_max: int) -> None:
        super().__init__()
        self.chunk_max = int(check_positive("chunk_max", chunk_max))

    def _decompose(self, dataset: Dataset) -> List[Chunk]:
        m = max(1, math.ceil(dataset.size / self.chunk_max))
        return _split_even(dataset.name, dataset.size, m)

    def __repr__(self) -> str:
        return f"ChunkedDecomposition(chunk_max={fmt_bytes(self.chunk_max)})"


class UniformDecomposition(DecompositionPolicy):
    """The conventional decomposition: always ``p`` chunks (one per node).

    Used by the FCFSU baseline.  Chunk ``j`` is conventionally pinned to
    rendering node ``j``; that pinning is implemented by the FCFSU
    scheduler, not here.
    """

    def __init__(self, node_count: int) -> None:
        super().__init__()
        self.node_count = int(check_positive("node_count", node_count))

    def _decompose(self, dataset: Dataset) -> List[Chunk]:
        return _split_even(dataset.name, dataset.size, self.node_count)

    def __repr__(self) -> str:
        return f"UniformDecomposition(node_count={self.node_count})"


def dataset_suite(
    count: int,
    size: int,
    *,
    prefix: str = "ds",
) -> List[Dataset]:
    """Create ``count`` equally sized datasets named ``ds00, ds01, ...``.

    Mirrors the experiment setup of Table II (e.g. "12 datasets, 2 GB
    each").
    """
    check_positive("count", count)
    check_positive("size", size)
    width = max(2, len(str(count - 1)))
    return [Dataset(name=f"{prefix}{i:0{width}d}", size=size) for i in range(count)]


def total_size(datasets: Sequence[Dataset]) -> int:
    """Sum of dataset sizes in bytes."""
    return sum(d.size for d in datasets)


__all__ = [
    "Chunk",
    "Dataset",
    "DecompositionPolicy",
    "ChunkedDecomposition",
    "UniformDecomposition",
    "dataset_suite",
    "total_size",
]

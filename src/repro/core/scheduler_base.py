"""Scheduler interface and shared machinery.

A *scheduler* maps queued rendering jobs to per-node task assignments.
Schedulers differ along three axes, all visible in this interface:

* **Trigger** — when scheduling runs:
  ``IMMEDIATE`` (per job arrival: the FCFS family),
  ``CYCLE`` (every ω seconds: OURS and FS),
  ``WINDOW`` (when a batch window fills or times out: SF).
* **Decomposition** — how jobs split into tasks: the paper's chunked
  policy by default; FCFSU substitutes the uniform one-chunk-per-node
  policy.
* **Policy** — the placement decision itself, expressed against the
  head-node tables in :class:`~repro.core.tables.SchedulerTables`.

Schedulers may *defer* work by keeping an internal backlog (OURS holds
batch tasks until nodes free up); ``pending_task_count`` exposes it so
the service knows when the system has fully drained.
"""

from __future__ import annotations

import enum
from abc import ABC, abstractmethod
from typing import List, NamedTuple, Optional, Sequence

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters
from repro.core.chunks import ChunkedDecomposition, DecompositionPolicy
from repro.core.job import RenderJob, RenderTask
from repro.core.tables import SchedulerTables
from repro.obs.audit import REASON_FALLBACK


class Trigger(enum.Enum):
    """When a scheduler's ``schedule`` method is invoked."""

    IMMEDIATE = "immediate"
    CYCLE = "cycle"
    WINDOW = "window"


class Assignment(NamedTuple):
    """One placement decision: run ``task`` on node ``node``.

    One instance exists per task placement; a named tuple keeps the
    per-assignment cost to a C-level allocation of two references.
    """

    task: RenderTask
    node: int


#: Direct tuple allocation for Assignment instances: the generated
#: namedtuple ``__new__`` is a Python-level frame per call, and assign()
#: runs once per placed task.  ``tuple.__new__(Assignment, ...)`` builds
#: the identical object C-level.
_assignment_new = tuple.__new__


class SchedulerContext:
    """Everything a policy may consult when placing tasks.

    Wraps the cluster (read-only state: time, node count) and the head
    node's tables.  Policies must route *all* placements through
    :meth:`assign` so the tables stay consistent.

    ``tracer`` is the run's observability sink (or ``None`` when tracing
    is off): the service emits one span per scheduler invocation, and
    policies may add their own instants/spans for decisions worth seeing
    on the timeline (guard with ``if ctx.tracer is not None``).
    ``metrics`` is likewise the run's
    :class:`~repro.obs.metrics.MetricsRegistry` (or ``None`` when the
    metrics layer is off): policies may publish their own counters or
    histograms (guard with ``if ctx.metrics is not None``).
    ``audit`` is the run's :class:`~repro.obs.audit.AuditLog` (or
    ``None``, the default): when present, every :meth:`assign` also
    records a decision-audit entry with the candidate-node snapshot and
    the policy's reason code.
    """

    __slots__ = (
        "cluster",
        "tables",
        "decomposition",
        "tracer",
        "metrics",
        "audit",
        "_audit_record",
        "_tables_record",
        "_assignments",
        "_events",
        "_node_count",
    )

    def __init__(
        self,
        cluster: Cluster,
        tables: SchedulerTables,
        decomposition: DecompositionPolicy,
        *,
        tracer=None,
        metrics=None,
        audit=None,
    ) -> None:
        self.cluster = cluster
        self.tables = tables
        self.decomposition = decomposition
        self.tracer = tracer
        self.metrics = metrics
        self.audit = audit
        # Pre-bound audit hook (or None): assign() pays one load and one
        # identity check on the unaudited path.
        self._audit_record = audit.record_assignment if audit is not None else None
        # Pre-bound table hook: assign() runs once per placed task and
        # the tables object is fixed for the context's lifetime.
        self._tables_record = tables.record_assignment
        self._assignments: List[Assignment] = []
        # Hot-path caches: the event queue (clock reads) and the node
        # count (fixed for a cluster's lifetime; failed nodes keep their
        # slot) — scheduling probes them constantly.
        self._events = cluster.events
        self._node_count = cluster.node_count

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._events._now

    @property
    def node_count(self) -> int:
        """Number of rendering nodes ``p``."""
        return self._node_count

    @property
    def cost(self) -> CostParameters:
        """Rendering cost constants."""
        return self.cluster.cost

    def decompose(self, job: RenderJob) -> List[RenderTask]:
        """Decompose ``job`` under the active decomposition policy."""
        return job.decompose(self.decomposition)

    def assign(
        self, task: RenderTask, node: int, reason: Optional[str] = None
    ) -> None:
        """Place ``task`` on ``node``, updating the head-node tables.

        ``reason`` is the policy's decision-audit reason code (one of
        the :data:`~repro.obs.audit.REASON_CODES`); it is consulted only
        when the run carries an audit log, and ``None`` lets the log
        derive a code from the tables — so policies unaware of auditing
        keep working.
        """
        if not 0 <= node < self._node_count:
            raise ValueError(f"node {node} out of range")
        now = self._events._now
        audit_record = self._audit_record
        if audit_record is not None:
            # Audited before the tables absorb the assignment: the
            # candidate snapshot must show the state the policy scored.
            audit_record(task, node, self.tables, now, reason)
        self._tables_record(task, node, now)
        self._assignments.append(_assignment_new(Assignment, (task, node)))

    def assign_all(
        self,
        tasks: Sequence[RenderTask],
        node: int,
        reason: Optional[str] = None,
    ) -> None:
        """Place every task in ``tasks`` on ``node`` (batched :meth:`assign`).

        Bit-identical to calling :meth:`assign` per task in order — the
        tables absorb the same per-task updates in the same sequence —
        but the bounds check, clock read, and audit probe are hoisted
        out of the loop.  OURS places whole interactive chunks this way.
        """
        if not 0 <= node < self._node_count:
            raise ValueError(f"node {node} out of range")
        now = self._events._now
        audit_record = self._audit_record
        record = self._tables_record
        append = self._assignments.append
        if audit_record is not None:
            for task in tasks:
                audit_record(task, node, self.tables, now, reason)
                record(task, node, now)
                append(_assignment_new(Assignment, (task, node)))
        else:
            for task in tasks:
                record(task, node, now)
                append(_assignment_new(Assignment, (task, node)))

    def take_assignments(self) -> List[Assignment]:
        """Return and clear the assignments accumulated via :meth:`assign`."""
        out = self._assignments
        self._assignments = []
        return out


class Scheduler(ABC):
    """Base class for scheduling policies.

    Subclasses set the class attributes below and implement
    :meth:`schedule`.

    Attributes:
        name: Registry name (e.g. ``"OURS"``, ``"FCFSL"``).
        trigger: When :meth:`schedule` is invoked by the service.
        cycle: Scheduling period ω for ``CYCLE`` triggers.
        window_size: Batch-window length for ``WINDOW`` triggers.
        window_timeout: Maximum wait before a partial window flushes.
    """

    name: str = "base"
    trigger: Trigger = Trigger.IMMEDIATE
    cycle: float = 0.015
    window_size: int = 16
    window_timeout: float = 0.1

    def make_decomposition(
        self, node_count: int, chunk_max: int
    ) -> DecompositionPolicy:
        """Decomposition policy this scheduler requires.

        Default: the paper's chunked policy with maximal chunk size
        ``Chkmax``.  FCFSU overrides this with the uniform policy.
        """
        return ChunkedDecomposition(chunk_max)

    @abstractmethod
    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        """Place the queued ``jobs`` (possibly deferring some work).

        Implementations decompose jobs via ``ctx.decompose`` and place
        tasks via ``ctx.assign``.  Deferred work must be retained
        internally and re-attempted on later invocations (the service
        passes an empty ``jobs`` list on cycles with no new arrivals).
        """

    def pending_task_count(self) -> int:
        """Tasks held back internally and not yet assigned (default 0)."""
        return 0

    def reschedule(
        self,
        tasks: Sequence[RenderTask],
        ctx: SchedulerContext,
        reason: str = REASON_FALLBACK,
    ) -> None:
        """Re-place tasks orphaned by a node failure (paper §VI-D).

        Default: locality-aware greedy onto surviving nodes — tasks
        whose chunks have live replicas go there, the rest reload from
        the file system.  Policies may override (e.g. to fold orphans
        back into their cycle queues).  Audited as ``fallback`` by
        default: the placement happens outside the policy's normal
        scoring loop.  The fault-recovery engine passes its own reason
        codes (``requeue-crash``, ``speculative``) instead.
        """
        for task in tasks:
            ctx.assign(task, greedy_locality_aware(task, ctx), reason)

    def reset(self) -> None:
        """Clear internal state between simulation runs (default no-op)."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(name={self.name!r})"


def greedy_min_available(
    task: RenderTask,
    ctx: SchedulerContext,
) -> int:
    """The locality-blind greedy step: the min-available-time node."""
    return ctx.tables.min_available_node()


def greedy_locality_aware(
    task: RenderTask,
    ctx: SchedulerContext,
) -> int:
    """Greedy step scoring ``Available[k] + exec_estimate(c, k)``.

    Among non-cached nodes the I/O penalty is uniform, so only the
    cached replicas of the chunk and the globally min-available node can
    win; this evaluates just those candidates.
    """
    tables = ctx.tables
    chunk = task.chunk
    group = task.job.composite_group_size
    now = ctx.now
    render = ctx.cost.render_time(chunk.size, group)
    best_node = tables.min_available_node()
    best_score = tables.predicted_available(best_node, now) + tables.exec_estimate(
        chunk, best_node, group
    )
    for k in tables.cached_nodes(chunk):
        if k == best_node:
            continue
        score = tables.predicted_available(k, now) + render
        if score < best_score:
            best_score = score
            best_node = k
    return best_node


__all__ = [
    "Trigger",
    "Assignment",
    "SchedulerContext",
    "Scheduler",
    "greedy_min_available",
    "greedy_locality_aware",
]

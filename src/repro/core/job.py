"""Rendering jobs and tasks (paper §III-A, §IV).

A *rendering job* ``J_i`` corresponds to one rendering request — either a
single frame of an interactive user action, or one frame of a batch
submission (animation / time-varying data).  Based on the data
decomposition policy, a job is split into ``t_i`` independent *tasks*
``T_{i,j}``, each responsible for one data chunk.  Tasks of the same job
join at a compositing barrier: the job finishes when its last task
finishes plus the image-compositing time of the render group.
"""

from __future__ import annotations

import enum
import math
from typing import List, Optional

from repro.core.chunks import Chunk, Dataset, DecompositionPolicy  # noqa: F401 (Chunk re-exported for typing)


class JobType(enum.Enum):
    """Job classes with different scheduling treatment (paper §V-A).

    Interactive jobs come from live user actions and must be scheduled in
    the same cycle they arrive; batch jobs may be deferred until rendering
    nodes become available.
    """

    INTERACTIVE = "interactive"
    BATCH = "batch"


#: Id-space stride between allocator namespaces.  Wide enough that no
#: single run can overflow into the next namespace (2^40 jobs at the
#: full-scale Scenario 4 rate is centuries of simulated time), while
#: namespace 0 still yields the plain 0, 1, 2, ... sequence — so
#: un-namespaced runs are byte-identical to the historical global
#: counter after a fresh start.
NAMESPACE_STRIDE = 1 << 40


class JobIdAllocator:
    """Explicit job-id source, replacing the process-global counter.

    Each simulator carries its own allocator, so concurrent or repeated
    runs in one process no longer share (or need to reset) hidden
    state.  A federation gives shard ``k`` the allocator
    ``JobIdAllocator(namespace=k)``: ids from distinct namespaces never
    collide, which is what makes merged per-shard results joinable on
    ``job_id``.

    Args:
        namespace: Shard index; ids start at
            ``namespace * NAMESPACE_STRIDE``.
    """

    __slots__ = ("namespace", "_next")

    def __init__(self, namespace: int = 0) -> None:
        if namespace < 0:
            raise ValueError(f"namespace must be >= 0, got {namespace}")
        self.namespace = namespace
        self._next = namespace * NAMESPACE_STRIDE

    def allocate(self) -> int:
        """Return the next id in this allocator's namespace."""
        job_id = self._next
        self._next += 1
        return job_id

    @property
    def allocated(self) -> int:
        """How many ids this allocator has handed out."""
        return self._next - self.namespace * NAMESPACE_STRIDE

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"JobIdAllocator(namespace={self.namespace}, "
            f"allocated={self.allocated})"
        )


#: Fallback allocator for jobs constructed without an explicit id —
#: direct ``RenderJob(...)`` construction in tests and closed-loop
#: drivers.  Simulator runs use their own per-service allocator and
#: never touch this one.
_default_allocator = JobIdAllocator()


def _next_job_id() -> int:
    return _default_allocator.allocate()


class RenderTask:
    """A task ``T_{i,j}``: render one data chunk for one job.

    Mutable timing fields are filled in by the simulator as the task moves
    through the system (cf. Definition 1 of the paper):

    * ``node`` — rendering node the task was assigned to,
    * ``assign_time`` — when the scheduler placed the task (recorded
      only on audited runs; ``None`` otherwise),
    * ``start_time`` — ``TS(i,j,k)``, when the node began executing it,
    * ``finish_time`` — ``TF(i,j,k) = TS + TExec``,
    * ``io_time`` — the ``t_io`` component actually paid (0 on cache hit),
    * ``cache_hit`` — whether the chunk was already in the node's memory.
    """

    __slots__ = (
        "job",
        "index",
        "chunk",
        "node",
        "assign_time",
        "start_time",
        "finish_time",
        "io_time",
        "cache_hit",
    )

    def __init__(self, job: "RenderJob", index: int, chunk: Chunk) -> None:
        self.job = job
        self.index = index
        self.chunk = chunk
        self.node = None
        self.assign_time = None
        self.start_time = None
        self.finish_time = None
        self.io_time = 0.0
        self.cache_hit = None

    @property
    def job_type(self) -> JobType:
        """The owning job's type (interactive or batch)."""
        return self.job.job_type

    @property
    def done(self) -> bool:
        """True once the task has a finish time."""
        return self.finish_time is not None

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RenderTask(job={self.job.job_id}, index={self.index}, "
            f"chunk={self.chunk.key}, node={self.node})"
        )


class RenderJob:
    """A rendering job ``J_i`` over one dataset.

    Attributes:
        job_id: Globally unique, monotonically increasing id.
        job_type: Interactive or batch.
        dataset: The dataset to render.
        arrival_time: ``JI(i)`` — the job initial time, when the request
            was issued and queued at the head node.
        user: Identifier of the submitting user (used by Fair Sharing).
        action: Identifier of the user action / batch submission this job
            belongs to.  Framerate (Definition 4) is computed per action
            over the series of its jobs.
        sequence: Index of the job within its action's frame series.
        chunk_fraction: Fraction of the dataset's chunks this job
            renders (graceful degradation: a reduced-resolution frame
            covers fewer chunks, shrinking ``t_i`` and the compositing
            group per cost-model Definitions 1-4).  ``1.0`` = full
            quality.
        tasks: The decomposed tasks; populated by :meth:`decompose`.
    """

    __slots__ = (
        "job_id",
        "job_type",
        "dataset",
        "arrival_time",
        "user",
        "action",
        "sequence",
        "chunk_fraction",
        "tasks",
        "composite_group_size",
        "tasks_left",
        "finish_time",
    )

    def __init__(
        self,
        job_type: JobType,
        dataset: Dataset,
        arrival_time: float,
        *,
        user: int = 0,
        action: int = 0,
        sequence: int = 0,
        job_id: Optional[int] = None,
    ) -> None:
        self.job_id = _next_job_id() if job_id is None else job_id
        self.job_type = job_type
        self.dataset = dataset
        self.arrival_time = float(arrival_time)
        self.user = user
        self.action = action
        self.sequence = sequence
        self.chunk_fraction = 1.0
        self.tasks: List[RenderTask] = []
        # Number of distinct participants assumed for compositing-cost
        # purposes; set at decomposition (== task count upper bound).
        self.composite_group_size: int = 0
        # Tasks not yet finished; set at decomposition, decremented by
        # the service on each task completion (0 again == job done).
        self.tasks_left: int = 0
        self.finish_time: Optional[float] = None

    # -- decomposition ----------------------------------------------------

    def decompose(self, policy: DecompositionPolicy) -> List[RenderTask]:
        """Split the job into one task per chunk of its dataset.

        Idempotent: repeated calls return the existing task list (the
        paper decomposes each job exactly once, at scheduling time).

        When ``chunk_fraction < 1`` (graceful degradation) only the
        leading ``ceil(m * fraction)`` chunks are rendered — at least
        one — so a degraded frame costs proportionally less I/O,
        rendering, and compositing.
        """
        if not self.tasks:
            chunks = policy.decompose(self.dataset)
            if self.chunk_fraction < 1.0:
                keep = max(1, math.ceil(len(chunks) * self.chunk_fraction))
                chunks = chunks[:keep]
            self.tasks = [RenderTask(self, j, c) for j, c in enumerate(chunks)]
            self.composite_group_size = len(self.tasks)
            self.tasks_left = len(self.tasks)
        return self.tasks

    @property
    def task_count(self) -> int:
        """``t_i`` — number of tasks (0 before decomposition)."""
        return len(self.tasks)

    # -- timing (Definitions 2-3) -----------------------------------------

    @property
    def is_complete(self) -> bool:
        """True when every task has finished."""
        return bool(self.tasks) and all(t.done for t in self.tasks)

    def start_time(self) -> float:
        """``JS(i)`` — minimal task start time.  Requires all tasks started."""
        starts = [t.start_time for t in self.tasks]
        if not starts or any(s is None for s in starts):
            raise ValueError(f"job {self.job_id} has unstarted tasks")
        return min(starts)  # type: ignore[type-var]

    def last_task_finish(self) -> float:
        """Maximal task finish time (before image compositing)."""
        ends = [t.finish_time for t in self.tasks]
        if not ends or any(e is None for e in ends):
            raise ValueError(f"job {self.job_id} has unfinished tasks")
        return max(ends)  # type: ignore[type-var]

    def group_nodes(self) -> List[int]:
        """Distinct rendering nodes participating in this job."""
        seen = []
        for t in self.tasks:
            if t.node is not None and t.node not in seen:
                seen.append(t.node)
        return seen

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RenderJob(id={self.job_id}, {self.job_type.value}, "
            f"dataset={self.dataset.name}, t={self.arrival_time:.4f}, "
            f"action={self.action})"
        )


def reset_job_ids() -> None:
    """Reset the fallback job-id allocator (test isolation helper).

    Only affects jobs constructed without an explicit ``job_id``;
    simulator runs carry their own :class:`JobIdAllocator` and are
    unaffected.
    """
    global _default_allocator
    _default_allocator = JobIdAllocator()


__all__ = [
    "JobType",
    "RenderTask",
    "RenderJob",
    "JobIdAllocator",
    "NAMESPACE_STRIDE",
    "reset_job_ids",
]

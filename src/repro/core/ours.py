"""OURS — the paper's cycle-based, locality-aware heuristic (Algorithm 1).

Every ω seconds (the *scheduling cycle*) the head node drains its job
queue and schedules in four phases:

1. **Decompose & categorize** — jobs split into per-chunk tasks, hashed
   into interactive (``H_I``) and batch (``H_B``) sub-queues by chunk.
   Batch tasks join a persistent backlog — they are *held* until
   rendering nodes become available (the batch-deferral heuristic).
2. **Interactive chunks** — split into cached (``Cache[c] ≠ ∅``) and
   non-cached; non-cached chunks are ordered longest-estimate-first (LPT
   — starting the most expensive loads earliest minimizes makespan; the
   paper says only "sort ... based on Estimate[c]").  Each chunk's tasks
   all go to ``argmin_k Available[k] + exec_estimate(c, k)`` — the node
   already caching ``c`` unless its backlog exceeds the I/O cost, which
   is how load spreads across replicas over successive cycles.
3. **Cached batch tasks** — node-centric (Algorithm 1 lines 16-22): each
   node pulls backlog tasks whose chunks it caches until its predicted
   available time crosses the next scheduling time λ = now + ω.
4. **Non-cached batch tasks** — backlog chunks sorted by cached-replica
   count (fewest first: chunks with replicas already had their chance in
   phase 3, and loading them elsewhere would duplicate cache); a node
   may take one only if it has had no interactive assignment for
   ε = Estimate[c]/2 seconds — disk I/O is far longer than a cycle, so
   a node busy with interactive work must not start a cold batch load.

Algorithm 1 runs all four phases every cycle; in particular the batch
backlog is re-sorted each time, which is the O(p x m log m) scheduling
cost the paper measures in Fig. 9 (it grows with the number of data
chunks in play).  The constructor's ``early_exit`` flag enables an
optimization beyond the paper — skipping the batch phases outright when
every node is already booked past λ — which flattens that cost curve;
the Fig. 9 bench reports both variants.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Sequence, Tuple

from repro.core.chunks import Chunk
from repro.core.job import JobType, RenderJob, RenderTask
from repro.core.scheduler_base import Scheduler, SchedulerContext, Trigger


class OursScheduler(Scheduler):
    """The paper's scheduling design (Algorithm 1, Table I parameters).

    Args:
        cycle: The scheduling cycle ω, chosen so interactive jobs are
            scheduled timely with minimal overhead (default 15 ms,
            i.e. at most a handful of interactive jobs per cycle at the
            paper's 33.33 fps target).
        early_exit: Optimization beyond the paper — skip the batch
            phases (including the backlog re-sort) when every node is
            already booked past the next scheduling time λ.  Off by
            default for fidelity to Algorithm 1.
    """

    name = "OURS"
    trigger = Trigger.CYCLE

    def __init__(self, cycle: float = 0.015, *, early_exit: bool = False) -> None:
        if cycle <= 0:
            raise ValueError(f"cycle must be > 0, got {cycle}")
        self.cycle = cycle
        self.early_exit = early_exit
        #: Deterministic work counters (cycles run; total chunk keys
        #: sorted by the non-cached batch phase) — used by the Fig. 9
        #: analysis, which must not depend on wall-clock noise.
        self.cycles_run = 0
        self.backlog_chunks_sorted = 0
        #: H_B backlog: chunk -> FIFO of deferred batch tasks, in first-
        #: arrival order of chunks (OrderedDict preserves it).
        self._batch_backlog: "OrderedDict[Chunk, Deque[RenderTask]]" = OrderedDict()

    def reset(self) -> None:
        self._batch_backlog.clear()
        self.cycles_run = 0
        self.backlog_chunks_sorted = 0

    def pending_task_count(self) -> int:
        return sum(len(dq) for dq in self._batch_backlog.values())

    # -- Algorithm 1 --------------------------------------------------------

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        now = ctx.now
        lam = now + self.cycle  # λ — the next scheduling time
        tables = ctx.tables
        self.cycles_run += 1

        # Phase 1: decompose jobs and categorize tasks by chunk/type.
        h_interactive: "OrderedDict[Chunk, List[RenderTask]]" = OrderedDict()
        backlog = self._batch_backlog
        for job in jobs:
            tasks = ctx.decompose(job)
            if job.job_type is JobType.INTERACTIVE:
                for task in tasks:
                    bucket = h_interactive.get(task.chunk)
                    if bucket is None:
                        h_interactive[task.chunk] = [task]
                    else:
                        bucket.append(task)
            else:
                for task in tasks:
                    dq = backlog.get(task.chunk)
                    if dq is None:
                        backlog[task.chunk] = deque((task,))
                    else:
                        dq.append(task)

        # Phase 2: interactive chunks — cached first, then non-cached in
        # descending Estimate order (longest processing time first).
        if h_interactive:
            cached: List[Chunk] = []
            noncached: List[Tuple[float, int, Chunk]] = []
            for order, (chunk, tasks) in enumerate(h_interactive.items()):
                if tables.replica_count(chunk) > 0:
                    cached.append(chunk)
                else:
                    group = tasks[0].job.composite_group_size
                    noncached.append((-tables.estimate(chunk, group), order, chunk))
            noncached.sort()
            for chunk in cached:
                self._place_interactive_chunk(chunk, h_interactive[chunk], ctx)
            for _neg_est, _order, chunk in noncached:
                self._place_interactive_chunk(chunk, h_interactive[chunk], ctx)

        if not backlog:
            return
        if self.early_exit:
            # Optimization (beyond the paper): batch phases cannot place
            # anything when every node is booked past λ.
            min_node = tables.min_available_node()
            if tables.predicted_available(min_node, now) >= lam:
                return

        self._schedule_cached_batch(lam, ctx)
        if backlog:
            self._schedule_noncached_batch(lam, ctx)

    # -- phase 2 helper -------------------------------------------------------

    def _place_interactive_chunk(
        self,
        chunk: Chunk,
        tasks: List[RenderTask],
        ctx: SchedulerContext,
    ) -> None:
        """Assign every interactive task on ``chunk`` to one best node."""
        tables = ctx.tables
        now = ctx.now
        group = tasks[0].job.composite_group_size
        render = ctx.cost.render_time(chunk.size, group)
        best = tables.min_available_node()
        best_score = tables.predicted_available(best, now) + tables.exec_estimate(
            chunk, best, group
        )
        for k in tables.cached_nodes(chunk):
            if k == best:
                continue
            score = tables.predicted_available(k, now) + render
            if score < best_score:
                best_score = score
                best = k
        for task in tasks:
            ctx.assign(task, best)

    # -- phase 3: cached batch --------------------------------------------------

    def _schedule_cached_batch(self, lam: float, ctx: SchedulerContext) -> None:
        """Fill each node with backlog tasks whose chunks it caches."""
        tables = ctx.tables
        now = ctx.now
        backlog = self._batch_backlog
        for k in range(ctx.node_count):
            if tables.predicted_available(k, now) >= lam:
                continue
            # Scan the node's mirrored cache (bounded by quota/chunk-size)
            # rather than the whole backlog.
            for chunk in tables.mirrors[k].chunks():
                dq = backlog.get(chunk)
                if dq is None:
                    continue
                while dq and tables.predicted_available(k, now) < lam:
                    ctx.assign(dq.popleft(), k)
                if not dq:
                    del backlog[chunk]
                if tables.predicted_available(k, now) >= lam:
                    break

    # -- phase 4: non-cached batch -------------------------------------------------

    def _schedule_noncached_batch(self, lam: float, ctx: SchedulerContext) -> None:
        """Place cold batch tasks on interactively idle nodes."""
        tables = ctx.tables
        now = ctx.now
        backlog = self._batch_backlog
        # Sort remaining backlog chunks by cached-replica count, fewest
        # first; ties keep first-arrival order (OrderedDict iteration).
        self.backlog_chunks_sorted += len(backlog)
        order: Deque[Chunk] = deque(
            sorted(backlog.keys(), key=tables.replica_count)
        )
        for k in range(ctx.node_count):
            if not order:
                break
            idle_for = now - tables.last_interactive_assign[k]
            while order and tables.predicted_available(k, now) < lam:
                chunk = order[0]
                dq = backlog.get(chunk)
                if dq is None or not dq:
                    order.popleft()
                    backlog.pop(chunk, None)
                    continue
                group = dq[0].job.composite_group_size
                epsilon = tables.estimate(chunk, group) / 2.0
                if idle_for <= epsilon:
                    break  # node recently served interactive work
                ctx.assign(dq.popleft(), k)
                if not dq:
                    del backlog[chunk]
                    order.popleft()


__all__ = ["OursScheduler"]

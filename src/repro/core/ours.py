"""OURS — the paper's cycle-based, locality-aware heuristic (Algorithm 1).

Every ω seconds (the *scheduling cycle*) the head node drains its job
queue and schedules in four phases:

1. **Decompose & categorize** — jobs split into per-chunk tasks, hashed
   into interactive (``H_I``) and batch (``H_B``) sub-queues by chunk.
   Batch tasks join a persistent backlog — they are *held* until
   rendering nodes become available (the batch-deferral heuristic).
2. **Interactive chunks** — split into cached (``Cache[c] ≠ ∅``) and
   non-cached; non-cached chunks are ordered longest-estimate-first (LPT
   — starting the most expensive loads earliest minimizes makespan; the
   paper says only "sort ... based on Estimate[c]").  Each chunk's tasks
   all go to ``argmin_k Available[k] + exec_estimate(c, k)`` — the node
   already caching ``c`` unless its backlog exceeds the I/O cost, which
   is how load spreads across replicas over successive cycles.
3. **Cached batch tasks** — node-centric (Algorithm 1 lines 16-22): each
   node pulls backlog tasks whose chunks it caches until its predicted
   available time crosses the next scheduling time λ = now + ω.
4. **Non-cached batch tasks** — backlog chunks sorted by cached-replica
   count (fewest first: chunks with replicas already had their chance in
   phase 3, and loading them elsewhere would duplicate cache); a node
   may take one only if it has had no interactive assignment for
   ε = Estimate[c]/2 seconds — disk I/O is far longer than a cycle, so
   a node busy with interactive work must not start a cold batch load.

Algorithm 1 runs all four phases every cycle; in particular the batch
backlog is (logically) re-sorted each time, which is the O(p x m log m)
scheduling cost the paper measures in Fig. 9 (it grows with the number
of data chunks in play).  This implementation serves that ordering from
the incrementally maintained
:class:`~repro.core.tables.ReplicaBucketIndex` on the head-node tables —
replica-count changes are folded in at phase-4 entry instead of
rebuilding the order from scratch — which is bit-identical to the
re-sort (the ``backlog_chunks_sorted`` counter still measures the
algorithmic work Fig. 9 reports; ``backlog_sorts_avoided`` counts the
chunk keys the index did *not* have to re-order).  The constructor's
``early_exit`` flag enables an optimization beyond the paper — skipping
the batch phases outright when every node is already booked past λ —
which flattens that cost curve; the Fig. 9 bench reports both variants.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.chunks import Chunk
from repro.core.job import JobType, RenderJob, RenderTask
from repro.core.scheduler_base import Scheduler, SchedulerContext, Trigger
from repro.core.tables import MinScanAvailability
from repro.obs.audit import (
    REASON_CACHE_HIT,
    REASON_FALLBACK,
    REASON_MIN_ESTIMATE,
)


class OursScheduler(Scheduler):
    """The paper's scheduling design (Algorithm 1, Table I parameters).

    Args:
        cycle: The scheduling cycle ω, chosen so interactive jobs are
            scheduled timely with minimal overhead (default 15 ms,
            i.e. at most a handful of interactive jobs per cycle at the
            paper's 33.33 fps target).
        early_exit: Optimization beyond the paper — skip the batch
            phases (including the backlog re-sort) when every node is
            already booked past the next scheduling time λ.  Off by
            default for fidelity to Algorithm 1.
    """

    name = "OURS"
    trigger = Trigger.CYCLE

    def __init__(self, cycle: float = 0.015, *, early_exit: bool = False) -> None:
        if cycle <= 0:
            raise ValueError(f"cycle must be > 0, got {cycle}")
        self.cycle = cycle
        self.early_exit = early_exit
        #: Deterministic work counters (cycles run; total chunk keys
        #: ordered by the non-cached batch phase) — used by the Fig. 9
        #: analysis, which must not depend on wall-clock noise.
        self.cycles_run = 0
        self.backlog_chunks_sorted = 0
        #: Chunk keys the incremental index served without re-ordering
        #: (``backlog_chunks_sorted`` minus the re-bucketed ones) —
        #: the work a per-cycle full re-sort would have repeated.
        self.backlog_sorts_avoided = 0
        #: H_B backlog: chunk -> FIFO of deferred batch tasks, in first-
        #: arrival order of chunks (OrderedDict preserves it).
        self._batch_backlog: "OrderedDict[Chunk, Deque[RenderTask]]" = OrderedDict()
        #: O(1)-maintained total of tasks across the backlog deques.
        self._pending_tasks = 0
        #: The tables' backlog index this scheduler last populated (so
        #: ``reset`` can clear membership it added).
        self._index = None

    def reset(self) -> None:
        self._batch_backlog.clear()
        self.cycles_run = 0
        self.backlog_chunks_sorted = 0
        self.backlog_sorts_avoided = 0
        self._pending_tasks = 0
        if self._index is not None:
            self._index.clear()
            self._index = None

    def pending_task_count(self) -> int:
        return self._pending_tasks

    # -- Algorithm 1 --------------------------------------------------------

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        now = ctx.now
        lam = now + self.cycle  # λ — the next scheduling time
        tables = ctx.tables
        index = self._index = tables.backlog_index
        self.cycles_run += 1

        # Phase 1: decompose jobs and categorize tasks by chunk/type.
        # (Skipped outright on the frequent no-arrival cycles that only
        # drain backlog.)
        backlog = self._batch_backlog
        h_interactive: "Optional[OrderedDict[Chunk, List[RenderTask]]]" = None
        if jobs:
            h_interactive = OrderedDict()
            decompose = ctx.decompose
            interactive_get = h_interactive.get
            backlog_get = backlog.get
            for job in jobs:
                tasks = decompose(job)
                if job.job_type is JobType.INTERACTIVE:
                    for task in tasks:
                        bucket = interactive_get(task.chunk)
                        if bucket is None:
                            h_interactive[task.chunk] = [task]
                        else:
                            bucket.append(task)
                else:
                    self._pending_tasks += len(tasks)
                    for task in tasks:
                        dq = backlog_get(task.chunk)
                        if dq is None:
                            backlog[task.chunk] = deque((task,))
                            index.add(task.chunk)
                        else:
                            dq.append(task)

        # Phase 2: interactive chunks — cached first, then non-cached in
        # descending Estimate order (longest processing time first).
        if h_interactive:
            cached: List[tuple] = []
            noncached: List[tuple] = []
            replicas_get = tables._replicas.get
            estimate = tables.estimate
            for order, (chunk, tasks) in enumerate(h_interactive.items()):
                replicas = replicas_get(chunk)
                if replicas:
                    cached.append((chunk, tasks, replicas))
                else:
                    group = tasks[0].job.composite_group_size
                    # ``order`` is unique, so the sort never compares the
                    # trailing (unorderable) task lists.
                    noncached.append(
                        (-estimate(chunk, group), order, chunk, tasks)
                    )
            noncached.sort()
            place = self._place_interactive_chunk
            for chunk, tasks, replicas in cached:
                place(chunk, tasks, ctx, tables, now, replicas)
            for _neg_est, _order, chunk, tasks in noncached:
                place(chunk, tasks, ctx, tables, now, None)

        if not backlog:
            return
        if self.early_exit:
            # Optimization (beyond the paper): batch phases cannot place
            # anything when every node is booked past λ.
            min_node = tables.min_available_node()
            if tables.predicted_available(min_node, now) >= lam:
                return

        self._schedule_cached_batch(lam, ctx)
        if backlog:
            self._schedule_noncached_batch(lam, ctx)

    # -- phase 2 helper -------------------------------------------------------

    def _place_interactive_chunk(
        self,
        chunk: Chunk,
        tasks: List[RenderTask],
        ctx: SchedulerContext,
        tables,
        now: float,
        replicas,
    ) -> None:
        """Assign every interactive task on ``chunk`` to one best node.

        Hot path (once per interactive chunk per cycle): the table
        accessors (``predicted_available``, ``exec_estimate``) are
        inlined here — same arithmetic, no per-probe call overhead.
        ``replicas`` is ``tables``' live cached-node set for ``chunk``
        (or ``None``); membership is equivalent to the per-node mirror
        test by the tables' replica invariant.
        """
        group = tasks[0].job.composite_group_size
        render = tables._render_memo_get((chunk.size, group))
        if render is None:
            render = tables.cost.render_time(chunk.size, group)
        available = tables.available
        # Min-node selection: under the scan view (python backend at the
        # paper's node counts) the C-level ``min``+``index`` scan is kept
        # inline — no strategy-call frame on the hottest path.  Other
        # views (lazy heap above SCAN_CUTOFF, numpy argmin) are asked
        # through ``tables.heap`` — all share the identical tie order.
        heap = tables.heap
        if type(heap) is MinScanAvailability:
            best = available.index(min(available))
        else:
            best = heap.min_node()
        t = available[best]
        if t < now:
            t = now
        if replicas is not None and best in replicas:
            best_score = t + render
        else:
            best_score = t + (tables.io_estimate(chunk) + render)
        if replicas:
            for k in replicas:
                if k == best:
                    continue
                t = available[k]
                score = (t if t > now else now) + render
                if score < best_score:
                    best_score = score
                    best = k
        reason = (
            REASON_CACHE_HIT
            if replicas is not None and best in replicas
            else REASON_MIN_ESTIMATE
        )
        ctx.assign_all(tasks, best, reason)

    # -- phase 3: cached batch --------------------------------------------------

    def _schedule_cached_batch(self, lam: float, ctx: SchedulerContext) -> None:
        """Fill each node with backlog tasks whose chunks it caches."""
        tables = ctx.tables
        now = ctx.now
        backlog = self._batch_backlog
        index = tables.backlog_index
        available = tables.available
        assign = ctx.assign
        for k in range(ctx.node_count):
            t = available[k]
            if (t if t > now else now) >= lam:
                continue
            # Scan the node's mirrored cache (bounded by quota/chunk-size)
            # rather than the whole backlog.
            for chunk in tables.mirrors[k].chunks():
                dq = backlog.get(chunk)
                if dq is None:
                    continue
                while dq:
                    t = available[k]
                    if (t if t > now else now) >= lam:
                        break
                    assign(dq.popleft(), k)
                    self._pending_tasks -= 1
                if not dq:
                    del backlog[chunk]
                    index.discard(chunk)
                t = available[k]
                if (t if t > now else now) >= lam:
                    break

    # -- phase 4: non-cached batch -------------------------------------------------

    def _schedule_noncached_batch(self, lam: float, ctx: SchedulerContext) -> None:
        """Place cold batch tasks on interactively idle nodes.

        Backlog chunks are consumed by cached-replica count, fewest
        first (ties keep first-arrival order), from the incrementally
        maintained :class:`~repro.core.tables.ReplicaBucketIndex` —
        ``begin_pass`` folds in the replica-count changes accumulated
        since the previous cycle, which is exactly the view the
        per-cycle re-sort used to compute (counts read once at phase-4
        entry, frozen for the rest of the phase).
        """
        tables = ctx.tables
        now = ctx.now
        backlog = self._batch_backlog
        index = tables.backlog_index
        self.backlog_chunks_sorted += len(backlog)
        self.backlog_sorts_avoided += len(backlog) - index.begin_pass()
        available = tables.available
        assign = ctx.assign
        for k in range(ctx.node_count):
            chunk = index.peek()
            if chunk is None:
                break
            idle_for = now - tables.last_interactive_assign[k]
            while True:
                t = available[k]
                if (t if t > now else now) >= lam:
                    break
                dq = backlog.get(chunk)
                if dq is None or not dq:
                    # Defensive: a chunk tracked by the index but absent
                    # from the backlog (should not occur; both are
                    # updated in lockstep).
                    index.discard(chunk)
                    backlog.pop(chunk, None)
                    chunk = index.peek()
                    if chunk is None:
                        return
                    continue
                group = dq[0].job.composite_group_size
                epsilon = tables.estimate(chunk, group) / 2.0
                if idle_for <= epsilon:
                    break  # node recently served interactive work
                assign(dq.popleft(), k)
                self._pending_tasks -= 1
                if not dq:
                    del backlog[chunk]
                    index.discard(chunk)
                    chunk = index.peek()
                    if chunk is None:
                        return


__all__ = ["OursScheduler"]

"""The Shortest-First baseline (paper §VI-B).

SF sorts the jobs within a batch window by estimated execution time and
schedules the shortest first, using the same locality-blind greedy
placement as FCFS.  The window fills to ``window_size`` jobs or flushes
after ``window_timeout`` seconds, whichever comes first (the service
drives the trigger).

A job's execution-time estimate is its critical path under the cost
model: the maximum cold-node task estimate over its chunks (SF, like FS
and FCFS, does not consult the cache table — the paper groups it with
the methods that "do not take data locality into consideration").
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.core.job import RenderJob
from repro.core.scheduler_base import (
    Scheduler,
    SchedulerContext,
    Trigger,
    greedy_min_available,
)
from repro.obs.audit import REASON_ONLY_AVAILABLE


class SFScheduler(Scheduler):
    """Shortest-(estimated-)First within a batch window."""

    name = "SF"
    trigger = Trigger.WINDOW

    def __init__(self, window_size: int = 16, window_timeout: float = 0.1) -> None:
        if window_size < 1:
            raise ValueError(f"window_size must be >= 1, got {window_size}")
        if window_timeout <= 0:
            raise ValueError(f"window_timeout must be > 0, got {window_timeout}")
        self.window_size = window_size
        self.window_timeout = window_timeout

    def _job_estimate(self, job: RenderJob, ctx: SchedulerContext) -> float:
        """Estimated job execution time: the longest cold task estimate."""
        tables = ctx.tables
        group = job.composite_group_size
        return max(tables.estimate(t.chunk, group) for t in job.tasks)

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        estimated: List[Tuple[float, int, RenderJob]] = []
        for order, job in enumerate(jobs):
            ctx.decompose(job)
            estimated.append((self._job_estimate(job, ctx), order, job))
        estimated.sort()  # shortest first; arrival order breaks ties
        for _est, _order, job in estimated:
            for task in job.tasks:
                ctx.assign(
                    task, greedy_min_available(task, ctx), REASON_ONLY_AVAILABLE
                )


__all__ = ["SFScheduler"]

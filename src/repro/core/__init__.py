"""The paper's primary contribution: cost model, tables, and schedulers."""

from repro.core.chunks import (
    Chunk,
    ChunkedDecomposition,
    Dataset,
    DecompositionPolicy,
    UniformDecomposition,
    dataset_suite,
    total_size,
)
from repro.core.cost_model import (
    action_framerate,
    framerate,
    job_execution_time,
    job_finish_time,
    job_latency,
    job_start_time,
    mean_execution_time,
    mean_latency,
    task_alpha,
    task_execution_time,
)
from repro.core.fcfs import FCFSLScheduler, FCFSScheduler, FCFSUScheduler
from repro.core.fs import FSScheduler
from repro.core.job import (
    JobIdAllocator,
    JobType,
    RenderJob,
    RenderTask,
    reset_job_ids,
)
from repro.core.ours import OursScheduler
from repro.core.registry import SCHEDULER_NAMES, make_scheduler, register_scheduler
from repro.core.scheduler_base import (
    Assignment,
    Scheduler,
    SchedulerContext,
    Trigger,
)
from repro.core.sf import SFScheduler
from repro.core.tables import SchedulerTables

__all__ = [
    "Chunk",
    "ChunkedDecomposition",
    "Dataset",
    "DecompositionPolicy",
    "UniformDecomposition",
    "dataset_suite",
    "total_size",
    "action_framerate",
    "framerate",
    "job_execution_time",
    "job_finish_time",
    "job_latency",
    "job_start_time",
    "mean_execution_time",
    "mean_latency",
    "task_alpha",
    "task_execution_time",
    "FCFSLScheduler",
    "FCFSScheduler",
    "FCFSUScheduler",
    "FSScheduler",
    "JobIdAllocator",
    "JobType",
    "RenderJob",
    "RenderTask",
    "reset_job_ids",
    "OursScheduler",
    "SCHEDULER_NAMES",
    "make_scheduler",
    "register_scheduler",
    "Assignment",
    "Scheduler",
    "SchedulerContext",
    "Trigger",
    "SFScheduler",
    "SchedulerTables",
]

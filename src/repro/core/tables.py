"""The head node's three scheduling tables (paper §V-A, §V-B).

To trace system status the head node maintains:

* the **cached-data table** (``Cache``) — which data chunks are resident
  in the main memory of each rendering node,
* the **available-time table** (``Available``) — the predicted time at
  which each rendering node finishes its current and scheduled workload,
* the **estimated-I/O-cost table** (``Estimate``) — the latest measured
  I/O time for each data chunk, initialized from a contention-free "test
  run" estimate.

All three are *predictions* updated at scheduling time and corrected when
tasks actually complete (§V-B).  The cache mirror is exact by
construction: a rendering node executes tasks in exactly the order the
head node assigned them, and both apply identical LRU operations in that
order, so the mirrored LRU state always equals the node's real cache
state at the corresponding point of its task sequence.

Implementation notes — schedulers make O(jobs x tasks) placement queries
per second, so the table operations are designed to be cheap:

* "node with minimal available time" (the greedy step of every
  scheduler here) goes through a pluggable availability view: a single
  C-level ``min`` scan over the shared list for small clusters
  (:class:`MinScanAvailability`), a compacting lazy-deletion heap for
  large ones (:class:`NodeAvailabilityHeap`), or a vectorized numpy
  ``argmin`` when the tables run on the array backend
  (:class:`ArgminAvailability`) — all three share the exact
  ``(time, node)`` tie order, so they are interchangeable bit-for-bit;
* locality-aware scoring needs only the cached replica set of a chunk
  (usually 0-2 nodes) plus that minimum, because among non-cached nodes
  the I/O penalty is uniform and the min-available node dominates;
* the per-chunk I/O and placement estimates are memoized
  (:meth:`SchedulerTables.io_estimate` / :meth:`SchedulerTables.estimate`),
  invalidated per chunk when a measurement or replica set changes;
* the OURS batch backlog keeps chunks bucketed by replica count
  incrementally (:class:`ReplicaBucketIndex`) instead of re-sorting the
  whole backlog every scheduling cycle.

Struct-of-arrays backend (``backend="numpy"``): the three tables are
additionally backed by dense arrays — ``available`` as a float64 vector
(argmin placement queries), cache residency as a ``(node, chunk)`` bool
matrix plus a per-chunk replica-count vector, and ``Estimate`` as a
float64 vector — all keyed by dense chunk ids handed out on first
sight (:meth:`SchedulerTables.chunk_id`).  Because numpy's float64 is
IEEE-754 double with the same rounding as Python's ``float`` and every
per-task update stays scalar (only *selection* is vectorized), the
backend is bit-identical to the dict/list path; the golden-trace suite
and the backend differential tests pin that.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.cluster.costs import CostParameters
from repro.cluster.memory import LRUChunkCache
from repro.cluster.storage import StorageModel
from repro.core.chunks import Chunk
from repro.core.job import JobType, RenderTask

#: Node count above which the python backend switches from the C-level
#: ``min`` scan to the compacting lazy-deletion heap: the scan is O(p)
#: per placement, the heap O(log p) amortized, and the crossover sits
#: well above the cluster sizes the paper studies (p ≤ 64).
SCAN_CUTOFF = 128

_INF = math.inf


def _scan_min_excluding(current, excluded: Set[int]) -> Optional[int]:
    """Min-available node not in ``excluded`` by linear scan.

    Shared by every availability view (the exclusion path is the fault
    path — rare, correctness over speed).  When *every* node is
    excluded (full-quarantine fault storms) the answer is decided in
    O(len(excluded)) membership checks, without touching the table.
    """
    p = len(current)
    if len(excluded) >= p and all(k in excluded for k in range(p)):
        return None
    best: Optional[int] = None
    best_t = _INF
    for k in range(p):
        if current[k] < best_t and k not in excluded:
            best = k
            best_t = current[k]
    if best is None:
        # Every candidate sits at +inf (all failed); still prefer
        # the first non-excluded slot, as the (time, node) order does.
        for k in range(p):
            if k not in excluded:
                return k
    return best


class MinScanAvailability:
    """Min-available-node view over the shared available-time list.

    At the cluster sizes the paper studies (p ≤ 64) a single C-level
    ``min`` scan over the shared list beats maintaining heap entries on
    every table update (two updates per task — assignment and
    completion — versus one query per placement).  The shared list *is*
    the state, so :meth:`update` is a no-op; ties resolve to the
    smallest node id exactly as the ``(time, node)`` heap ordering does.
    """

    __slots__ = ("_current",)

    #: Views that maintain private state set this; the tables then call
    #: :meth:`update` on every available-time write.
    needs_update = False

    def __init__(self, available: List[float]) -> None:
        self._current = available  # shared, owned by SchedulerTables

    def update(self, node: int) -> None:
        """Record that ``node``'s available time changed (no-op)."""

    def min_node(self) -> int:
        """Node with the smallest available time (O(p) C-level scan)."""
        current = self._current
        return current.index(min(current))

    def min_node_excluding(self, excluded: Set[int]) -> Optional[int]:
        """Min-available node not in ``excluded`` (None if all excluded)."""
        return _scan_min_excluding(self._current, excluded)


class NodeAvailabilityHeap:
    """Compacting lazy-deletion heap over the shared available-time list.

    Every :meth:`update` pushes a fresh ``(time, node)`` entry and
    leaves the superseded one in place; :meth:`min_node` pops entries
    whose recorded time no longer matches the live table until the top
    is current.  Left unchecked, stale entries accumulate one per
    update, degrading ``min_node`` toward O(n log n) and growing memory
    without bound on long runs — so the heap *compacts*: whenever the
    stale entries would outnumber the live ones (heap size reaching
    ``2p``), it rebuilds from the live table in O(p).  Amortized cost
    stays O(log p) per update and the footprint is pinned below ``2p``
    entries.

    Tie order is ``(time, node)`` — identical to the first-minimum scan
    of :class:`MinScanAvailability`, so the two views are
    interchangeable without moving a single assignment.
    """

    __slots__ = ("_current", "_heap")

    needs_update = True

    def __init__(self, available: List[float]) -> None:
        self._current = available  # shared, owned by SchedulerTables
        self._heap: List[Tuple[float, int]] = []
        self._rebuild()

    def __len__(self) -> int:
        """Live + stale entry count (pinned below ``2p`` by compaction)."""
        return len(self._heap)

    def _rebuild(self) -> None:
        heap = [(t, k) for k, t in enumerate(self._current)]
        heapq.heapify(heap)
        self._heap = heap

    def update(self, node: int) -> None:
        """Record that ``node``'s available time changed."""
        heap = self._heap
        if len(heap) + 1 >= 2 * len(self._current):
            self._rebuild()
        else:
            heapq.heappush(heap, (self._current[node], node))

    def min_node(self) -> int:
        """Node with the smallest available time (amortized O(log p))."""
        heap = self._heap
        current = self._current
        while True:
            entry = heap[0]
            k = entry[1]
            if current[k] == entry[0]:
                return k
            heapq.heappop(heap)

    def min_node_excluding(self, excluded: Set[int]) -> Optional[int]:
        """Min-available node not in ``excluded`` (None if all excluded)."""
        return _scan_min_excluding(self._current, excluded)


class ArgminAvailability:
    """Vectorized min-available-node view over the numpy ``available``.

    Placement queries are a single C-level ``argmin``; candidate
    exclusion masks the excluded lanes at +inf and re-argmins.  numpy's
    ``argmin`` returns the *first* minimal index, matching the
    ``(time, node)`` tie order of the scan and heap views exactly.
    """

    __slots__ = ("_current",)

    needs_update = False

    def __init__(self, available: "np.ndarray") -> None:
        self._current = available  # shared, owned by SchedulerTables

    def update(self, node: int) -> None:
        """Record that ``node``'s available time changed (no-op)."""

    def min_node(self) -> int:
        """Node with the smallest available time (vectorized argmin)."""
        return int(self._current.argmin())

    def min_node_excluding(self, excluded: Set[int]) -> Optional[int]:
        """Min-available node not in ``excluded`` (None if all excluded)."""
        current = self._current
        p = current.shape[0]
        if len(excluded) >= p and all(k in excluded for k in range(p)):
            return None
        if not excluded:
            return int(current.argmin())
        masked = current.copy()
        drop = [k for k in excluded if 0 <= k < p]
        if drop:
            masked[drop] = _INF
        best = int(masked.argmin())
        if masked[best] != _INF:
            return best
        # Every candidate sits at +inf (all failed); still prefer the
        # first non-excluded slot, as the (time, node) order does.
        for k in range(p):
            if k not in excluded:
                return k
        return None


class ReplicaBucketIndex:
    """Incrementally maintained replica-count ordering of a chunk set.

    OURS' non-cached batch phase consumes backlog chunks ordered by
    ``(replica count, first-arrival order)``, fewest replicas first.
    Algorithm 1 re-sorts the whole backlog every scheduling cycle — the
    O(p x m log m) cost the paper measures in Fig. 9.  This index keeps
    that ordering incrementally: the tables report replica-count changes
    (cache insert / evict / node failure) as they happen, and the index
    re-buckets only the affected chunks.

    The subtle part is *when* a count change may take effect.  The
    reference implementation reads replica counts once, at phase-4
    entry, and the resulting order stays frozen for the rest of the
    phase even though assignments made *during* the phase mutate the
    counts.  The index reproduces that exactly:

    * changes reported via :meth:`count_changed` only land in a dirty
      set;
    * :meth:`begin_pass` — called at phase-4 entry — folds the dirty
      set in;
    * between ``begin_pass`` calls the observable order never moves.

    Entries live in per-count lazy-deletion min-heaps keyed by arrival
    sequence number (monotonic, re-issued when a chunk re-enters after
    being drained — mirroring ``OrderedDict`` re-insertion at the end).
    An entry is valid iff it matches ``_recorded[chunk]``; stale entries
    are dropped when :meth:`peek` meets them.
    """

    __slots__ = ("_tables", "_recorded", "_buckets", "_count_heap", "_dirty", "_seq")

    def __init__(self, tables: "SchedulerTables") -> None:
        self._tables = tables
        #: chunk -> (count, seq) of its single valid entry.
        self._recorded: Dict[Chunk, Tuple[int, int]] = {}
        #: count -> lazy-deletion min-heap of (seq, chunk).
        self._buckets: Dict[int, List[Tuple[int, Chunk]]] = {}
        #: lazy min-heap over bucket keys (may hold duplicates).
        self._count_heap: List[int] = []
        #: chunks whose live count may differ from the recorded one.
        self._dirty: Dict[Chunk, None] = {}
        self._seq = 0

    def __len__(self) -> int:
        return len(self._recorded)

    def __contains__(self, chunk: Chunk) -> bool:
        return chunk in self._recorded

    def _push(self, count: int, seq: int, chunk: Chunk) -> None:
        bucket = self._buckets.get(count)
        if bucket is None:
            self._buckets[count] = [(seq, chunk)]
            heapq.heappush(self._count_heap, count)
        else:
            heapq.heappush(bucket, (seq, chunk))

    def add(self, chunk: Chunk) -> None:
        """Track ``chunk`` at its *current* replica count.

        Call when the chunk enters the backlog; a fresh sequence number
        places it after every chunk already tracked (ties by count).
        """
        count = self._tables.replica_count(chunk)
        seq = self._seq
        self._seq = seq + 1
        self._recorded[chunk] = (count, seq)
        self._push(count, seq, chunk)
        self._dirty.pop(chunk, None)

    def discard(self, chunk: Chunk) -> None:
        """Stop tracking ``chunk`` (no-op when untracked)."""
        self._recorded.pop(chunk, None)
        self._dirty.pop(chunk, None)

    def count_changed(self, chunk: Chunk) -> None:
        """Note that ``chunk``'s replica count changed.

        O(1); buffered until the next :meth:`begin_pass` so the order
        observed by an in-progress phase stays frozen.  No-op for
        untracked chunks (every cache insert/evict reports here, but
        only backlog members matter).
        """
        if chunk in self._recorded:
            self._dirty[chunk] = None

    def begin_pass(self) -> int:
        """Fold buffered count changes in; start a new frozen view.

        Returns the number of chunks actually re-bucketed (0 when the
        pass is served fully incrementally).
        """
        if not self._dirty:
            return 0
        tables = self._tables
        recorded = self._recorded
        moved = 0
        for chunk in self._dirty:
            entry = recorded.get(chunk)
            if entry is None:
                continue
            count = tables.replica_count(chunk)
            if count == entry[0]:
                continue
            seq = entry[1]
            recorded[chunk] = (count, seq)
            self._push(count, seq, chunk)
            moved += 1
        self._dirty.clear()
        return moved

    def peek(self) -> Optional[Chunk]:
        """The tracked chunk minimal in ``(recorded count, seq)`` order."""
        buckets = self._buckets
        recorded = self._recorded
        count_heap = self._count_heap
        while count_heap:
            count = count_heap[0]
            bucket = buckets.get(count)
            if bucket:
                while bucket:
                    entry = bucket[0]
                    chunk = entry[1]
                    if recorded.get(chunk) == (count, entry[0]):
                        return chunk
                    heapq.heappop(bucket)
            if not bucket and bucket is not None:
                del buckets[count]
            heapq.heappop(count_heap)
        return None

    def clear(self) -> None:
        """Forget all tracked chunks and buffered changes."""
        self._recorded.clear()
        self._buckets.clear()
        self._count_heap.clear()
        self._dirty.clear()
        self._seq = 0

    def check_invariants(self) -> None:
        """Assert internal consistency (test helper).

        * every tracked chunk's valid entry is present in the bucket its
          recorded count names, and that bucket's key is reachable from
          the count heap;
        * no chunk has two valid entries;
        * a tracked chunk that is *not* dirty records the live replica
          count (dirty chunks are allowed to lag until ``begin_pass``).
        """
        valid: Dict[Chunk, Tuple[int, int]] = {}
        reachable = set(self._count_heap)
        for count, bucket in self._buckets.items():
            if count not in reachable:
                raise AssertionError(f"bucket {count} unreachable from count heap")
            for seq, chunk in bucket:
                if self._recorded.get(chunk) == (count, seq):
                    if chunk in valid:
                        raise AssertionError(f"duplicate valid entry for {chunk}")
                    valid[chunk] = (count, seq)
        for chunk, entry in self._recorded.items():
            if valid.get(chunk) != entry:
                raise AssertionError(f"no valid bucket entry for {chunk}")
            if chunk not in self._dirty:
                live = self._tables.replica_count(chunk)
                if live != entry[0]:
                    raise AssertionError(
                        f"clean entry for {chunk} records count {entry[0]} "
                        f"but live count is {live}"
                    )


class SchedulerTables:
    """``Available`` + ``Cache`` + ``Estimate`` with prediction correction.

    Args:
        node_count: Number of rendering nodes ``p``.
        memory_quota: Per-node main-memory budget (bytes) — sizes the
            mirrored LRU caches.
        cost: Rendering cost constants (for execution-time estimates).
        storage: The cluster's storage model (seeds ``Estimate``).
        backend: ``"python"`` (dict/list tables, the reference path) or
            ``"numpy"`` (struct-of-arrays tables with vectorized
            placement queries).  Both are bit-identical; see the module
            docstring.
    """

    __slots__ = (
        "node_count",
        "cost",
        "_storage",
        "executors_per_node",
        "backend",
        "available",
        "heap",
        "mirrors",
        "_replicas",
        "_io_estimate",
        "_estimate_memo",
        "last_interactive_assign",
        "_pending_est",
        "_pending_per_node",
        "alive",
        "quarantined",
        "backlog_index",
        "_render_memo_get",
        "_avail_track",
        "_cids",
        "_chunk_of",
        "_io_arr",
        "_resident",
        "_rep_count",
    )

    def __init__(
        self,
        node_count: int,
        memory_quota: int,
        cost: CostParameters,
        storage: StorageModel,
        *,
        executors_per_node: int = 1,
        backend: str = "python",
    ) -> None:
        if backend not in ("python", "numpy"):
            raise ValueError(
                f"unknown tables backend {backend!r}: use 'python' or 'numpy'"
            )
        self.node_count = node_count
        self.cost = cost
        self._storage = storage
        self.backend = backend
        #: Rendering pipelines per node: queued work drains this many
        #: tasks at a time, so availability advances by est/executors.
        self.executors_per_node = max(1, executors_per_node)
        if backend == "numpy":
            #: Available[R_k] — predicted available time of each node.
            self.available = np.zeros(node_count, dtype=np.float64)
            self.heap = ArgminAvailability(self.available)
            #: Dense chunk-id registry: chunk -> column index into the
            #: SoA tables, handed out on first sight.
            self._cids: Optional[Dict[Chunk, int]] = {}
            self._chunk_of: List[Chunk] = []
            cap = 256
            #: Estimate[c] as a float64 vector (NaN = not yet seeded).
            self._io_arr = np.full(cap, np.nan, dtype=np.float64)
            #: Cache table as a (node, chunk) residency matrix ...
            self._resident = np.zeros((node_count, cap), dtype=bool)
            #: ... plus its per-chunk replica-count vector.
            self._rep_count = np.zeros(cap, dtype=np.int64)
        else:
            self.available = [0.0] * node_count
            self.heap = (
                NodeAvailabilityHeap(self.available)
                if node_count > SCAN_CUTOFF
                else MinScanAvailability(self.available)
            )
            self._cids = None
            self._chunk_of = []
            self._io_arr = None
            self._resident = None
            self._rep_count = None
        #: True when the availability view keeps private state and must
        #: hear about every available-time write (hot-path guard: a
        #: bool test is cheaper than a no-op method call).
        self._avail_track = self.heap.needs_update
        #: Mirrored per-node LRU caches (the Cache table, exact).
        self.mirrors: List[LRUChunkCache] = [
            LRUChunkCache(memory_quota) for _ in range(node_count)
        ]
        #: Reverse index: chunk -> set of node ids caching it.
        self._replicas: Dict[Chunk, Set[int]] = {}
        #: Replica-count ordering of the OURS batch backlog, maintained
        #: incrementally from cache insert/evict/fail events (membership
        #: is driven by the scheduler).
        self.backlog_index = ReplicaBucketIndex(self)
        #: Bound getter on the cost model's render-time memo: hot paths
        #: probe the memo directly and only fall back to
        #: ``cost.render_time`` on the first sight of a key.
        self._render_memo_get = cost._render_memo.get
        #: Estimate[c] — latest known I/O time per chunk.
        self._io_estimate: Dict[Chunk, float] = {}
        #: Memoized ``estimate()`` results: chunk -> {group_size: est},
        #: dropped per chunk when a completion revises ``Estimate[c]``.
        self._estimate_memo: Dict[Chunk, Dict[int, float]] = {}
        #: Last time an interactive task was assigned to each node.
        self.last_interactive_assign: List[float] = [-float("inf")] * node_count
        #: Predicted execution time of each in-flight task (for correction).
        self._pending_est: Dict[RenderTask, float] = {}
        self._pending_per_node: List[int] = [0] * node_count
        #: Liveness mask (paper §VI-D: failed nodes become unavailable).
        self.alive: List[bool] = [True] * node_count
        #: Quarantine mask (fault recovery: stragglers withheld from
        #: scheduling while still finishing their running work).
        self.quarantined: List[bool] = [False] * node_count

    # -- dense chunk ids (numpy backend) -------------------------------------

    def chunk_id(self, chunk: Chunk) -> int:
        """Dense id of ``chunk`` (numpy backend), assigned on first sight.

        Ids index the columns of the SoA tables (``Estimate`` vector,
        residency matrix, replica-count vector); they are stable for
        the lifetime of the tables.
        """
        cids = self._cids
        if cids is None:
            raise RuntimeError("chunk ids exist only on the numpy backend")
        cid = cids.get(chunk)
        if cid is None:
            cid = self._register_chunk(chunk)
        return cid

    def _register_chunk(self, chunk: Chunk) -> int:
        cid = len(self._chunk_of)
        self._cids[chunk] = cid
        self._chunk_of.append(chunk)
        if cid >= self._io_arr.shape[0]:
            self._grow(cid)
        return cid

    def _grow(self, cid: int) -> None:
        """Double the SoA capacity to cover column ``cid``."""
        old = self._io_arr.shape[0]
        cap = max(2 * old, cid + 1)
        io = np.full(cap, np.nan, dtype=np.float64)
        io[:old] = self._io_arr
        self._io_arr = io
        resident = np.zeros((self.node_count, cap), dtype=bool)
        resident[:, :old] = self._resident
        self._resident = resident
        reps = np.zeros(cap, dtype=np.int64)
        reps[:old] = self._rep_count
        self._rep_count = reps

    # -- Cache table --------------------------------------------------------

    def cached_nodes(self, chunk: Chunk) -> Set[int]:
        """Cache[c]: the nodes predicted to hold ``chunk`` in memory."""
        return self._replicas.get(chunk, _EMPTY_SET)

    def is_cached(self, chunk: Chunk, node: int) -> bool:
        """True if ``chunk`` is predicted resident on ``node``."""
        return chunk in self.mirrors[node]

    def cached_mask(self, chunk: Chunk) -> "np.ndarray":
        """Residency of ``chunk`` across all nodes as a bool vector.

        Numpy backend only: a copy of the residency-matrix column, for
        vectorized candidate filtering (``available[mask].min()``-style
        queries in array-native policies).
        """
        if self._cids is None:
            raise RuntimeError(
                "cached_mask needs the numpy backend "
                "(RunConfig(tables_backend='numpy'))"
            )
        return self._resident[:, self.chunk_id(chunk)].copy()

    def replica_count(self, chunk: Chunk) -> int:
        """Number of nodes predicted to cache ``chunk``."""
        cids = self._cids
        if cids is not None:
            cid = cids.get(chunk)
            return int(self._rep_count[cid]) if cid is not None else 0
        nodes = self._replicas.get(chunk)
        return len(nodes) if nodes else 0

    def _mirror_access(self, chunk: Chunk, node: int) -> bool:
        """Apply the LRU access the node will perform; return hit flag."""
        mirror = self.mirrors[node]
        # Inlined mirror.touch — the hit path runs once per assignment.
        entries = mirror._entries
        if chunk in entries:
            entries.move_to_end(chunk)
            return True
        self._mirror_miss(chunk, node)
        return False

    def _mirror_miss(self, chunk: Chunk, node: int) -> None:
        """Miss path of :meth:`_mirror_access`: insert + replica upkeep."""
        evicted = self.mirrors[node].insert(chunk)
        index = self.backlog_index
        cids = self._cids
        for victim in evicted:
            nodes = self._replicas.get(victim)
            if nodes is not None:
                nodes.discard(node)
                if not nodes:
                    del self._replicas[victim]
            index.count_changed(victim)
            if cids is not None:
                vcid = cids[victim]  # was inserted, so registered
                self._resident[node, vcid] = False
                self._rep_count[vcid] -= 1
        self._replicas.setdefault(chunk, set()).add(node)
        index.count_changed(chunk)
        if cids is not None:
            cid = cids.get(chunk)
            if cid is None:
                cid = self._register_chunk(chunk)
            self._resident[node, cid] = True
            self._rep_count[cid] += 1

    # -- Estimate table -------------------------------------------------------

    def io_estimate(self, chunk: Chunk) -> float:
        """Estimated I/O time to load ``chunk`` from the file system.

        Initialized from the contention-free storage estimate (the
        paper's "test run"), then updated to the latest measured value.
        """
        cids = self._cids
        if cids is not None:
            cid = cids.get(chunk)
            if cid is None:
                cid = self._register_chunk(chunk)
            est = self._io_arr[cid]
            if est == est:  # not NaN: already seeded
                return est
            seeded = self._storage.estimate_load_time(chunk.size)
            self._io_arr[cid] = seeded
            return seeded
        est = self._io_estimate.get(chunk)
        if est is None:
            est = self._storage.estimate_load_time(chunk.size)
            self._io_estimate[chunk] = est
        return est

    def estimate(self, chunk: Chunk, group_size: int) -> float:
        """Estimate[c]: execution time of a task over ``chunk`` on a cold
        node (I/O + render).

        Memoized per (chunk, group size); invalidated when a completed
        miss revises the chunk's measured I/O time (the contention
        signal, see :meth:`correct_completion`).
        """
        memo = self._estimate_memo.get(chunk)
        if memo is None:
            memo = self._estimate_memo[chunk] = {}
        est = memo.get(group_size)
        if est is None:
            est = memo[group_size] = self.io_estimate(chunk) + self.cost.render_time(
                chunk.size, group_size
            )
        return est

    def exec_estimate(self, chunk: Chunk, node: int, group_size: int) -> float:
        """Predicted execution time of a task on a specific node.

        The I/O term is omitted when the chunk is predicted cached on the
        node (Definition 1's "the I/O time can be omitted...").
        """
        render = self.cost.render_time(chunk.size, group_size)
        if chunk in self.mirrors[node]:
            return render
        return self.io_estimate(chunk) + render

    def estimate_components(
        self, chunk: Chunk, group_size: int
    ) -> Tuple[float, float]:
        """``(cached_estimate, cold_estimate)`` for one chunk/group pair.

        The node-independent halves of :meth:`exec_estimate`: render-only
        when the chunk is resident, I/O + render otherwise.  One call
        prices every candidate node of a decision (the audit snapshot
        needs all of them at once).
        """
        render = self._render_memo_get((chunk.size, group_size))
        if render is None:
            render = self.cost.render_time(chunk.size, group_size)
        return render, self.io_estimate(chunk) + render

    # -- Available table ------------------------------------------------------

    def predicted_available(self, node: int, now: float) -> float:
        """Available[R_k], floored at the current time."""
        return max(self.available[node], now)

    def min_available_node(self) -> int:
        """Node with the smallest predicted available time."""
        return self.heap.min_node()

    # -- scheduling-time updates ----------------------------------------------

    def record_assignment(self, task: RenderTask, node: int, now: float) -> float:
        """Account an assignment of ``task`` to ``node``.

        Updates all three tables plus the interactive-idle tracking, and
        returns the predicted task execution time.
        """
        chunk = task.chunk
        job = task.job
        render = self._render_memo_get((chunk.size, job.composite_group_size))
        if render is None:
            render = self.cost.render_time(chunk.size, job.composite_group_size)
        # Inlined _mirror_access (this runs once per placed task).
        entries = self.mirrors[node]._entries
        if chunk in entries:
            entries.move_to_end(chunk)
            est = render
        else:
            self._mirror_miss(chunk, node)
            est = self.io_estimate(chunk) + render
        t = self.available[node]
        if t < now:
            t = now
        self.available[node] = t + est / self.executors_per_node
        if self._avail_track:
            self.heap.update(node)
        self._pending_est[task] = est
        self._pending_per_node[node] += 1
        if job.job_type is JobType.INTERACTIVE:
            self.last_interactive_assign[node] = now
        return est

    def mark_node_failed(self, node: int) -> None:
        """Remove a crashed node from scheduling consideration.

        The paper's fault-tolerance note (§VI-D): by dynamically
        updating the tables to identify unavailable nodes, rendering
        carries on as long as copies of the required chunks exist on
        other nodes.  The node's mirrored cache entries are dropped
        (its memory is gone) and its available time becomes infinite so
        no greedy step ever selects it.
        """
        self.alive[node] = False
        mirror = self.mirrors[node]
        index = self.backlog_index
        cids = self._cids
        for chunk in mirror.chunks():
            nodes = self._replicas.get(chunk)
            if nodes is not None:
                nodes.discard(node)
                if not nodes:
                    del self._replicas[chunk]
            index.count_changed(chunk)
            if cids is not None:
                self._rep_count[cids[chunk]] -= 1
        mirror.clear()
        if cids is not None:
            self._resident[node, :] = False
        self.available[node] = math.inf
        self.heap.update(node)
        self._pending_per_node[node] = 0

    def quarantine(self, node: int) -> None:
        """Withhold ``node`` from scheduling without declaring it dead.

        The node stays alive — work already executing there finishes and
        corrects the tables — but its available time is pinned at
        infinity so no greedy step ever selects it again.  Sticky for
        the run unless :meth:`mark_node_recovered` lifts it.
        """
        self.quarantined[node] = True
        self.available[node] = math.inf
        self.heap.update(node)

    def mark_node_recovered(self, node: int, now: float) -> None:
        """Return a revived (or un-quarantined) node to scheduling.

        The node rejoins with a cold cache: :meth:`mark_node_failed`
        already dropped its mirror, and a revived process starts empty,
        so only the liveness/quarantine masks and the available time
        need resetting.
        """
        self.alive[node] = True
        self.quarantined[node] = False
        self.available[node] = now
        self.heap.update(node)
        self._pending_per_node[node] = 0

    def cancel_assignment(self, task: RenderTask, node: int) -> None:
        """Forget an in-flight prediction for a task being re-issued.

        Used by speculative re-execution: the task was stolen back from
        ``node``'s queue before starting, so its pending estimate must
        not feed a later completion correction there.
        """
        self._pending_est.pop(task, None)
        if self._pending_per_node[node] > 0:
            self._pending_per_node[node] -= 1

    def drop_cached(self, chunk: Chunk, node: int) -> None:
        """Remove ``chunk`` from ``node``'s mirror (cache-wipe resync).

        The inverse of :meth:`warm` — used when detection learns the
        node's real cache lost entries behind the head node's back.
        """
        mirror = self.mirrors[node]
        if mirror.evict(chunk):
            nodes = self._replicas.get(chunk)
            if nodes is not None:
                nodes.discard(node)
                if not nodes:
                    del self._replicas[chunk]
            self.backlog_index.count_changed(chunk)
            if self._cids is not None:
                cid = self._cids[chunk]  # was resident, so registered
                self._resident[node, cid] = False
                self._rep_count[cid] -= 1

    def warm(self, chunk: Chunk, node: int) -> None:
        """Mark ``chunk`` resident on ``node`` (pre-run cache warm-up).

        Used by the service's prewarm pass (the paper's "test run"),
        which must keep the mirrors identical to the real node caches.
        """
        self._mirror_access(chunk, node)

    # -- completion-time corrections (§V-B) -------------------------------------

    def correct_completion(self, task: RenderTask, node: int, now: float) -> None:
        """Reconcile predictions with a task's actual completion.

        * ``Available`` absorbs the prediction error of this task and is
          reset exactly to ``now`` when the node has nothing pending.
        * ``Estimate`` is updated to the measured I/O time on a miss.
        """
        est = self._pending_est.pop(task, None)
        self._pending_per_node[node] -= 1
        if self.quarantined[node]:
            # A quarantined node finishing its residual work must stay
            # pinned at +inf — resetting Available would silently return
            # it to scheduling.
            if self._pending_per_node[node] < 0:
                self._pending_per_node[node] = 0
        else:
            if est is not None and task.start_time is not None:
                actual = task.finish_time - task.start_time  # type: ignore[operator]
                self.available[node] += actual - est
            if self._pending_per_node[node] <= 0:
                self._pending_per_node[node] = 0
                self.available[node] = now
            elif self.available[node] < now:
                self.available[node] = now
            if self._avail_track:
                self.heap.update(node)
        if (
            not task.cache_hit
            and task.io_time > 0
            and not self.quarantined[node]
        ):
            # Quarantined stragglers' measurements are excluded: their
            # degraded I/O would poison the global per-chunk estimate.
            if self._cids is not None:
                self._io_arr[self.chunk_id(task.chunk)] = task.io_time
            else:
                self._io_estimate[task.chunk] = task.io_time
            self._estimate_memo.pop(task.chunk, None)

    # -- diagnostics ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert reverse-index/mirror/bucket-index consistency (test
        helper)."""
        for k, mirror in enumerate(self.mirrors):
            mirror.check_invariants()
            for chunk in mirror:
                if k not in self._replicas.get(chunk, _EMPTY_SET):
                    raise AssertionError(f"replica index missing {chunk} @ {k}")
        for chunk, nodes in self._replicas.items():
            for k in nodes:
                if chunk not in self.mirrors[k]:
                    raise AssertionError(f"stale replica {chunk} @ {k}")
        self.backlog_index.check_invariants()
        if self._cids is not None:
            for chunk, nodes in self._replicas.items():
                cid = self._cids.get(chunk)
                if cid is None:
                    raise AssertionError(f"replicated chunk {chunk} has no id")
                if int(self._rep_count[cid]) != len(nodes):
                    raise AssertionError(
                        f"replica-count vector disagrees for {chunk}: "
                        f"{int(self._rep_count[cid])} != {len(nodes)}"
                    )
                for k in range(self.node_count):
                    if bool(self._resident[k, cid]) != (k in nodes):
                        raise AssertionError(
                            f"residency matrix disagrees for {chunk} @ {k}"
                        )
            live = {self._cids[c] for c in self._replicas}
            for cid in range(len(self._chunk_of)):
                if cid not in live and int(self._rep_count[cid]) != 0:
                    raise AssertionError(
                        f"orphan replica count for {self._chunk_of[cid]}"
                    )
        for chunk, memo in self._estimate_memo.items():
            if self._cids is not None:
                cid = self._cids.get(chunk)
                io = None
                if cid is not None:
                    seen = self._io_arr[cid]
                    io = seen if seen == seen else None
            else:
                io = self._io_estimate.get(chunk)
            if io is None:
                continue
            for group, est in memo.items():
                expected = io + self.cost.render_time(chunk.size, group)
                if est != expected:
                    raise AssertionError(
                        f"stale estimate memo for {chunk} group {group}: "
                        f"{est} != {expected}"
                    )


_EMPTY_SET: Set[int] = frozenset()  # type: ignore[assignment]


__all__ = [
    "SchedulerTables",
    "MinScanAvailability",
    "NodeAvailabilityHeap",
    "ArgminAvailability",
    "ReplicaBucketIndex",
    "SCAN_CUTOFF",
]

"""The head node's three scheduling tables (paper §V-A, §V-B).

To trace system status the head node maintains:

* the **cached-data table** (``Cache``) — which data chunks are resident
  in the main memory of each rendering node,
* the **available-time table** (``Available``) — the predicted time at
  which each rendering node finishes its current and scheduled workload,
* the **estimated-I/O-cost table** (``Estimate``) — the latest measured
  I/O time for each data chunk, initialized from a contention-free "test
  run" estimate.

All three are *predictions* updated at scheduling time and corrected when
tasks actually complete (§V-B).  The cache mirror is exact by
construction: a rendering node executes tasks in exactly the order the
head node assigned them, and both apply identical LRU operations in that
order, so the mirrored LRU state always equals the node's real cache
state at the corresponding point of its task sequence.

Implementation notes — schedulers make O(jobs x tasks) placement queries
per second, so the table operations are designed to be cheap:

* a lazy-deletion binary heap answers "node with minimal available time"
  in amortized O(log p) (the greedy step of every scheduler here);
* locality-aware scoring needs only the cached replica set of a chunk
  (usually 0-2 nodes) plus that heap top, because among non-cached nodes
  the I/O penalty is uniform and the min-available node dominates.
"""

from __future__ import annotations

import heapq
import math
from typing import Dict, List, Optional, Set, Tuple

from repro.cluster.costs import CostParameters
from repro.cluster.memory import LRUChunkCache
from repro.cluster.storage import StorageModel
from repro.core.chunks import Chunk
from repro.core.job import JobType, RenderTask


class NodeAvailabilityHeap:
    """Lazy-deletion min-heap over (available_time, node).

    ``update`` pushes a fresh entry; stale entries are skipped on pop.
    """

    __slots__ = ("_heap", "_current")

    def __init__(self, available: List[float]) -> None:
        self._current = available  # shared, owned by SchedulerTables
        self._heap: List[Tuple[float, int]] = [
            (t, k) for k, t in enumerate(available)
        ]
        heapq.heapify(self._heap)

    def update(self, node: int) -> None:
        """Record that ``node``'s available time changed."""
        heapq.heappush(self._heap, (self._current[node], node))

    def min_node(self) -> int:
        """Node with the smallest available time (amortized O(log p))."""
        heap = self._heap
        while True:
            t, k = heap[0]
            if t == self._current[k]:
                return k
            heapq.heappop(heap)

    def min_node_excluding(self, excluded: Set[int]) -> Optional[int]:
        """Min-available node not in ``excluded`` (None if all excluded).

        Pops through excluded/stale entries non-destructively by scanning
        a temporary side list; O(|excluded| log p) amortized.
        """
        heap = self._heap
        popped: List[Tuple[float, int]] = []
        result: Optional[int] = None
        while heap:
            t, k = heap[0]
            if t != self._current[k]:
                heapq.heappop(heap)
                continue
            if k in excluded:
                popped.append(heapq.heappop(heap))
                continue
            result = k
            break
        for entry in popped:
            heapq.heappush(heap, entry)
        return result


class SchedulerTables:
    """``Available`` + ``Cache`` + ``Estimate`` with prediction correction.

    Args:
        node_count: Number of rendering nodes ``p``.
        memory_quota: Per-node main-memory budget (bytes) — sizes the
            mirrored LRU caches.
        cost: Rendering cost constants (for execution-time estimates).
        storage: The cluster's storage model (seeds ``Estimate``).
    """

    def __init__(
        self,
        node_count: int,
        memory_quota: int,
        cost: CostParameters,
        storage: StorageModel,
        *,
        executors_per_node: int = 1,
    ) -> None:
        self.node_count = node_count
        self.cost = cost
        self._storage = storage
        #: Rendering pipelines per node: queued work drains this many
        #: tasks at a time, so availability advances by est/executors.
        self.executors_per_node = max(1, executors_per_node)
        #: Available[R_k] — predicted available time of each node.
        self.available: List[float] = [0.0] * node_count
        self.heap = NodeAvailabilityHeap(self.available)
        #: Mirrored per-node LRU caches (the Cache table, exact).
        self.mirrors: List[LRUChunkCache] = [
            LRUChunkCache(memory_quota) for _ in range(node_count)
        ]
        #: Reverse index: chunk -> set of node ids caching it.
        self._replicas: Dict[Chunk, Set[int]] = {}
        #: Estimate[c] — latest known I/O time per chunk.
        self._io_estimate: Dict[Chunk, float] = {}
        #: Last time an interactive task was assigned to each node.
        self.last_interactive_assign: List[float] = [-float("inf")] * node_count
        #: Predicted execution time of each in-flight task (for correction).
        self._pending_est: Dict[RenderTask, float] = {}
        self._pending_per_node: List[int] = [0] * node_count
        #: Liveness mask (paper §VI-D: failed nodes become unavailable).
        self.alive: List[bool] = [True] * node_count

    # -- Cache table --------------------------------------------------------

    def cached_nodes(self, chunk: Chunk) -> Set[int]:
        """Cache[c]: the nodes predicted to hold ``chunk`` in memory."""
        return self._replicas.get(chunk, _EMPTY_SET)

    def is_cached(self, chunk: Chunk, node: int) -> bool:
        """True if ``chunk`` is predicted resident on ``node``."""
        return chunk in self.mirrors[node]

    def replica_count(self, chunk: Chunk) -> int:
        """Number of nodes predicted to cache ``chunk``."""
        nodes = self._replicas.get(chunk)
        return len(nodes) if nodes else 0

    def _mirror_access(self, chunk: Chunk, node: int) -> bool:
        """Apply the LRU access the node will perform; return hit flag."""
        mirror = self.mirrors[node]
        if mirror.touch(chunk):
            return True
        evicted = mirror.insert(chunk)
        for victim in evicted:
            nodes = self._replicas.get(victim)
            if nodes is not None:
                nodes.discard(node)
                if not nodes:
                    del self._replicas[victim]
        self._replicas.setdefault(chunk, set()).add(node)
        return False

    # -- Estimate table -------------------------------------------------------

    def io_estimate(self, chunk: Chunk) -> float:
        """Estimated I/O time to load ``chunk`` from the file system.

        Initialized from the contention-free storage estimate (the
        paper's "test run"), then updated to the latest measured value.
        """
        est = self._io_estimate.get(chunk)
        if est is None:
            est = self._storage.estimate_load_time(chunk.size)
            self._io_estimate[chunk] = est
        return est

    def estimate(self, chunk: Chunk, group_size: int) -> float:
        """Estimate[c]: execution time of a task over ``chunk`` on a cold
        node (I/O + render)."""
        return self.io_estimate(chunk) + self.cost.render_time(
            chunk.size, group_size
        )

    def exec_estimate(self, chunk: Chunk, node: int, group_size: int) -> float:
        """Predicted execution time of a task on a specific node.

        The I/O term is omitted when the chunk is predicted cached on the
        node (Definition 1's "the I/O time can be omitted...").
        """
        render = self.cost.render_time(chunk.size, group_size)
        if chunk in self.mirrors[node]:
            return render
        return self.io_estimate(chunk) + render

    # -- Available table ------------------------------------------------------

    def predicted_available(self, node: int, now: float) -> float:
        """Available[R_k], floored at the current time."""
        return max(self.available[node], now)

    def min_available_node(self) -> int:
        """Node with the smallest predicted available time."""
        return self.heap.min_node()

    # -- scheduling-time updates ----------------------------------------------

    def record_assignment(self, task: RenderTask, node: int, now: float) -> float:
        """Account an assignment of ``task`` to ``node``.

        Updates all three tables plus the interactive-idle tracking, and
        returns the predicted task execution time.
        """
        chunk = task.chunk
        group = task.job.composite_group_size
        hit = self._mirror_access(chunk, node)
        render = self.cost.render_time(chunk.size, group)
        est = render if hit else self.io_estimate(chunk) + render
        self.available[node] = (
            max(self.available[node], now) + est / self.executors_per_node
        )
        self.heap.update(node)
        self._pending_est[task] = est
        self._pending_per_node[node] += 1
        if task.job.job_type is JobType.INTERACTIVE:
            self.last_interactive_assign[node] = now
        return est

    def mark_node_failed(self, node: int) -> None:
        """Remove a crashed node from scheduling consideration.

        The paper's fault-tolerance note (§VI-D): by dynamically
        updating the tables to identify unavailable nodes, rendering
        carries on as long as copies of the required chunks exist on
        other nodes.  The node's mirrored cache entries are dropped
        (its memory is gone) and its available time becomes infinite so
        no greedy step ever selects it.
        """
        self.alive[node] = False
        mirror = self.mirrors[node]
        for chunk in mirror.chunks():
            nodes = self._replicas.get(chunk)
            if nodes is not None:
                nodes.discard(node)
                if not nodes:
                    del self._replicas[chunk]
        mirror.clear()
        self.available[node] = math.inf
        self.heap.update(node)
        self._pending_per_node[node] = 0

    def warm(self, chunk: Chunk, node: int) -> None:
        """Mark ``chunk`` resident on ``node`` (pre-run cache warm-up).

        Used by the service's prewarm pass (the paper's "test run"),
        which must keep the mirrors identical to the real node caches.
        """
        self._mirror_access(chunk, node)

    # -- completion-time corrections (§V-B) -------------------------------------

    def correct_completion(self, task: RenderTask, node: int, now: float) -> None:
        """Reconcile predictions with a task's actual completion.

        * ``Available`` absorbs the prediction error of this task and is
          reset exactly to ``now`` when the node has nothing pending.
        * ``Estimate`` is updated to the measured I/O time on a miss.
        """
        est = self._pending_est.pop(task, None)
        self._pending_per_node[node] -= 1
        if est is not None and task.start_time is not None:
            actual = task.finish_time - task.start_time  # type: ignore[operator]
            self.available[node] += actual - est
        if self._pending_per_node[node] <= 0:
            self._pending_per_node[node] = 0
            self.available[node] = now
        elif self.available[node] < now:
            self.available[node] = now
        self.heap.update(node)
        if not task.cache_hit and task.io_time > 0:
            self._io_estimate[task.chunk] = task.io_time

    # -- diagnostics ---------------------------------------------------------

    def check_invariants(self) -> None:
        """Assert reverse-index/mirror consistency (test helper)."""
        for k, mirror in enumerate(self.mirrors):
            mirror.check_invariants()
            for chunk in mirror:
                if k not in self._replicas.get(chunk, _EMPTY_SET):
                    raise AssertionError(f"replica index missing {chunk} @ {k}")
        for chunk, nodes in self._replicas.items():
            for k in nodes:
                if chunk not in self.mirrors[k]:
                    raise AssertionError(f"stale replica {chunk} @ {k}")


_EMPTY_SET: Set[int] = frozenset()  # type: ignore[assignment]


__all__ = ["SchedulerTables", "NodeAvailabilityHeap"]

"""The First-Come-First-Serve scheduler family (paper §VI-B).

* **FCFS** — schedules jobs in arrival order; every task goes to the
  node with the smallest predicted available time.  Locality-blind.
* **FCFSL** — FCFS with data locality in the greedy search: tasks score
  nodes by ``Available[k] + exec_estimate`` so a node holding the chunk
  wins unless its backlog exceeds the I/O cost.
* **FCFSU** — FCFS over the *uniform* decomposition: every dataset is
  split into exactly ``p`` chunks and chunk ``j`` is pinned to node
  ``j``.  Data reuse is perfect whenever the data fits in aggregate
  memory, but every job occupies the entire cluster, so per-job
  overheads are multiplied (the paper's "twice as many computing
  resources" effect).

All three trigger immediately on job arrival (no scheduling cycle).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.chunks import DecompositionPolicy, UniformDecomposition
from repro.core.job import RenderJob
from repro.core.scheduler_base import (
    Scheduler,
    SchedulerContext,
    Trigger,
    greedy_locality_aware,
    greedy_min_available,
)
from repro.obs.audit import (
    REASON_CACHE_HIT,
    REASON_FALLBACK,
    REASON_MIN_ESTIMATE,
    REASON_ONLY_AVAILABLE,
)


class FCFSScheduler(Scheduler):
    """First-Come-First-Serve with locality-blind greedy placement."""

    name = "FCFS"
    trigger = Trigger.IMMEDIATE

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        for job in jobs:
            for task in ctx.decompose(job):
                ctx.assign(
                    task, greedy_min_available(task, ctx), REASON_ONLY_AVAILABLE
                )


class FCFSLScheduler(Scheduler):
    """First-Come-First-Serve with data locality in the greedy search."""

    name = "FCFSL"
    trigger = Trigger.IMMEDIATE

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        tables = ctx.tables
        for job in jobs:
            for task in ctx.decompose(job):
                node = greedy_locality_aware(task, ctx)
                reason = (
                    REASON_CACHE_HIT
                    if tables.is_cached(task.chunk, node)
                    else REASON_MIN_ESTIMATE
                )
                ctx.assign(task, node, reason)


class FCFSUScheduler(Scheduler):
    """First-Come-First-Serve with uniform data partition and distribution.

    The decomposition produces exactly one chunk per rendering node and
    the placement is the identity mapping: task ``j`` (chunk ``j``) runs
    on node ``j``.  This reproduces the conventional parallel-volume-
    rendering configuration the paper uses as its strongest
    perfect-locality baseline.
    """

    name = "FCFSU"
    trigger = Trigger.IMMEDIATE

    def make_decomposition(
        self, node_count: int, chunk_max: int
    ) -> DecompositionPolicy:
        return UniformDecomposition(node_count)

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        for job in jobs:
            tasks = ctx.decompose(job)
            if len(tasks) != ctx.node_count:
                raise ValueError(
                    f"FCFSU requires one task per node, got {len(tasks)} tasks "
                    f"for {ctx.node_count} nodes"
                )
            for task in tasks:
                # Static pinning: chunk j always runs on node j — a cache
                # hit once warm, otherwise outside any scoring loop.
                node = task.chunk.index
                reason = (
                    REASON_CACHE_HIT
                    if ctx.tables.is_cached(task.chunk, node)
                    else REASON_FALLBACK
                )
                ctx.assign(task, node, reason)


__all__ = ["FCFSScheduler", "FCFSLScheduler", "FCFSUScheduler"]

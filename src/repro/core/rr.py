"""Round-Robin — the third classic simple heuristic of §II-B.

The paper's related-work survey names First-Come First-Served, Round
Robin, and Shortest First as the simple dynamic heuristics that "can
achieve good performance in practice" [25].  The evaluation benchmarks
FCFS and SF; RR is provided here for completeness: tasks are dealt to
rendering nodes cyclically, ignoring both load and locality.

RR's load balance is perfect in *task counts* but blind to execution
times (a node stuck on a 5-second cold load keeps receiving its turn),
and its data reuse is poor-but-not-random: a dataset whose chunk count
shares a factor with the node count revisits the same nodes
periodically, so its hit rate sits between FCFS's and the
locality-aware schedulers' depending on the workload arithmetic.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.job import RenderJob
from repro.core.scheduler_base import Scheduler, SchedulerContext, Trigger
from repro.obs.audit import REASON_FALLBACK


class RRScheduler(Scheduler):
    """Deal tasks to nodes cyclically, skipping failed nodes."""

    name = "RR"
    trigger = Trigger.IMMEDIATE

    def __init__(self) -> None:
        self._next = 0

    def reset(self) -> None:
        self._next = 0

    def schedule(self, jobs: Sequence[RenderJob], ctx: SchedulerContext) -> None:
        p = ctx.node_count
        alive = ctx.tables.alive
        quarantined = ctx.tables.quarantined
        for job in jobs:
            for task in ctx.decompose(job):
                for _ in range(p):
                    node = self._next
                    self._next = (self._next + 1) % p
                    if alive[node] and not quarantined[node]:
                        break
                else:
                    raise RuntimeError("no schedulable rendering nodes")
                # Cyclic dealing consults neither load nor cache state.
                ctx.assign(task, node, REASON_FALLBACK)


__all__ = ["RRScheduler"]

"""A deterministic in-process message-passing communicator.

The paper's renderer uses MPI (§V-C); this module provides the
equivalent substrate for the software renderer: rank-addressed mailboxes
with the familiar ``send`` / ``recv`` / ``sendrecv`` / ``bcast`` /
``gather`` verbs, plus traffic accounting against an
:class:`~repro.cluster.interconnect.Interconnect` so compositing
algorithms report realistic message/byte/time totals.

Algorithms are written in *round* style rather than SPMD threads: each
communication stage first posts all sends, then performs all receives
(see :mod:`repro.render.compositing`).  That keeps execution single-
threaded and bit-deterministic while exercising the same communication
schedules as the MPI implementation.

Per-stage elapsed time is modeled as the maximum over ranks of each
rank's receive cost in the stage (links are parallel across disjoint
pairs); ``elapsed`` accumulates stage maxima when algorithms bracket
stages with :meth:`begin_stage` / :meth:`end_stage`.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.cluster.interconnect import Interconnect, LinkSpec


def payload_nbytes(payload: Any) -> int:
    """Approximate wire size of a message payload in bytes."""
    if isinstance(payload, np.ndarray):
        return int(payload.nbytes)
    if isinstance(payload, (bytes, bytearray, memoryview)):
        return len(payload)
    if isinstance(payload, (list, tuple)):
        return sum(payload_nbytes(p) for p in payload)
    if payload is None:
        return 0
    return 64  # envelope-sized scalar/object


class CommunicatorError(RuntimeError):
    """Protocol misuse: bad ranks, missing messages, unfinished stages."""


class SimCommunicator:
    """Mailbox-based message passing between ``size`` simulated ranks.

    Args:
        size: Number of simulated ranks.
        interconnect: Link model for traffic accounting.
        tracer: Optional :class:`~repro.obs.tracer.Tracer`; each
            ``begin_stage``/``end_stage`` bracket then emits one span on
            the communicator's modeled timeline (``elapsed`` seconds),
            annotated with the stage's message and byte counts.
        tracer_pid: Track (``pid``) the stage spans are emitted on.
    """

    def __init__(
        self,
        size: int,
        *,
        interconnect: Optional[Interconnect] = None,
        tracer=None,
        tracer_pid: int = 0,
    ) -> None:
        if size < 1:
            raise CommunicatorError(f"size must be >= 1, got {size}")
        self.size = size
        self.interconnect = (
            interconnect if interconnect is not None else Interconnect(LinkSpec())
        )
        from repro.obs.tracer import active_tracer

        self._tracer = active_tracer(tracer)
        self._tracer_pid = tracer_pid
        self._mail: Dict[Tuple[int, int, int], Deque[Any]] = {}
        self._stage_recv_cost: Optional[List[float]] = None
        self._stage_messages = 0
        self._stage_bytes = 0
        self.elapsed = 0.0
        self.stages = 0

    # -- validation ---------------------------------------------------------

    def _check_rank(self, name: str, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"{name}={rank} out of range for {self.size} ranks"
            )

    # -- stage timing ---------------------------------------------------------

    def begin_stage(self) -> None:
        """Open a communication stage (for elapsed-time accounting)."""
        if self._stage_recv_cost is not None:
            raise CommunicatorError("begin_stage inside an open stage")
        self._stage_recv_cost = [0.0] * self.size
        self._stage_messages = 0
        self._stage_bytes = 0

    def end_stage(self) -> None:
        """Close the stage; elapsed advances by the slowest rank."""
        if self._stage_recv_cost is None:
            raise CommunicatorError("end_stage without begin_stage")
        stage_time = max(self._stage_recv_cost)
        if self._tracer is not None:
            self._tracer.complete(
                self._tracer_pid,
                "comm",
                f"stage {self.stages}",
                self.elapsed,
                stage_time,
                category="comm",
                args={
                    "messages": self._stage_messages,
                    "bytes": self._stage_bytes,
                },
            )
        self.elapsed += stage_time
        self.stages += 1
        self._stage_recv_cost = None

    # -- point to point ----------------------------------------------------------

    def send(self, src: int, dst: int, payload: Any, *, tag: int = 0) -> None:
        """Deliver ``payload`` from ``src`` to ``dst``'s mailbox."""
        self._check_rank("src", src)
        self._check_rank("dst", dst)
        if src == dst:
            raise CommunicatorError("self-sends are not modeled; keep data local")
        nbytes = payload_nbytes(payload)
        cost = self.interconnect.send(nbytes)
        if self._stage_recv_cost is not None:
            self._stage_recv_cost[dst] += cost
            self._stage_messages += 1
            self._stage_bytes += nbytes
        self._mail.setdefault((src, dst, tag), deque()).append(payload)

    def recv(self, dst: int, src: int, *, tag: int = 0) -> Any:
        """Take the next message from ``src`` out of ``dst``'s mailbox."""
        self._check_rank("src", src)
        self._check_rank("dst", dst)
        queue = self._mail.get((src, dst, tag))
        if not queue:
            raise CommunicatorError(
                f"rank {dst} has no message from {src} with tag {tag}"
            )
        return queue.popleft()

    def sendrecv(
        self,
        rank: int,
        partner: int,
        payload: Any,
        *,
        tag: int = 0,
    ) -> Any:
        """Exchange with ``partner``; requires the partner's symmetric call.

        In round style: call ``sendrecv`` for both ranks of the pair; the
        second call completes both receives.  For clarity, compositing
        code uses explicit send-all-then-recv-all loops instead.
        """
        self.send(rank, partner, payload, tag=tag)
        return self.recv(rank, partner, tag=tag)

    # -- collectives -----------------------------------------------------------

    def bcast(self, root: int, payload: Any, *, tag: int = 0) -> None:
        """Send ``payload`` from ``root`` to every other rank."""
        self._check_rank("root", root)
        for dst in range(self.size):
            if dst != root:
                self.send(root, dst, payload, tag=tag)

    def gather(self, root: int, *, tag: int = 0) -> List[Any]:
        """Receive one pending message from every non-root rank, in rank order.

        Callers must have ``send`` from each rank to ``root`` first; the
        root's own contribution is represented by ``None`` in the result.
        """
        self._check_rank("root", root)
        out: List[Any] = []
        for src in range(self.size):
            out.append(None if src == root else self.recv(root, src, tag=tag))
        return out

    # -- diagnostics ---------------------------------------------------------

    def pending_messages(self) -> int:
        """Messages delivered but not yet received."""
        return sum(len(q) for q in self._mail.values())

    def assert_drained(self) -> None:
        """Raise if any mailbox still holds messages (protocol leak)."""
        if self.pending_messages():
            leftovers = {
                key: len(q) for key, q in self._mail.items() if q
            }
            raise CommunicatorError(f"undrained mailboxes: {leftovers}")


__all__ = ["SimCommunicator", "CommunicatorError", "payload_nbytes"]

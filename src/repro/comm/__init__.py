"""Deterministic in-process message passing (the MPI stand-in)."""

from repro.comm.communicator import (
    CommunicatorError,
    SimCommunicator,
    payload_nbytes,
)

__all__ = ["CommunicatorError", "SimCommunicator", "payload_nbytes"]

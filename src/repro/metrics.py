"""Deprecated alias for :mod:`repro.reporting`.

``repro.metrics`` (the paper's report tables: collectors, analysis,
timeline, report rendering) collided with :mod:`repro.obs.metrics` (the
runtime metrics registry).  The package now lives at
:mod:`repro.reporting`; this module keeps old imports working — both
``from repro.metrics import X`` and submodule imports such as
``import repro.metrics.collectors`` — while emitting a single
:class:`DeprecationWarning` per process through the
:mod:`repro._compat` funnel.
"""

from __future__ import annotations

import importlib
import sys

from repro._compat import import_stacklevel, warn_deprecated

warn_deprecated(
    "repro.metrics has been renamed to repro.reporting (it collided with "
    "the repro.obs.metrics runtime registry); update imports — the alias "
    "will be removed in a future release",
    stacklevel=import_stacklevel(),
)

from repro.reporting import *  # noqa: E402,F401,F403
from repro.reporting import __all__  # noqa: E402,F401

#: Submodules of the old package, aliased so ``repro.metrics.<sub>``
#: imports keep resolving to their ``repro.reporting`` counterparts.
_SUBMODULES = ("analysis", "collectors", "report", "timeline")

for _name in _SUBMODULES:
    _module = importlib.import_module(f"repro.reporting.{_name}")
    sys.modules[f"repro.metrics.{_name}"] = _module
    setattr(sys.modules[__name__], _name, _module)
del _name, _module

"""Deprecated alias for :mod:`repro.reporting`.

``repro.metrics`` (the paper's report tables: collectors, analysis,
timeline, report rendering) collided with :mod:`repro.obs.metrics` (the
runtime metrics registry).  The package now lives at
:mod:`repro.reporting`; this module keeps old imports working — both
``from repro.metrics import X`` and submodule imports such as
``import repro.metrics.collectors`` — while emitting a single
:class:`DeprecationWarning` per process.
"""

from __future__ import annotations

import importlib
import sys
import warnings


def _import_stacklevel() -> int:
    """Stack level of the nearest frame outside the import machinery.

    A plain ``stacklevel=2`` attributes this module-body warning to the
    import machinery when the import came through
    :func:`importlib.import_module` (its ``importlib/__init__.py`` frame
    is *not* one of the bootstrap frames :func:`warnings.warn` skips on
    its own) — misleading in the warning text, and invisible to
    per-module warning filters (pytest's
    ``error::DeprecationWarning:tests...`` config never matched it).
    Walk outward to the first frame that is not import machinery,
    counting levels exactly as ``warn()`` does: frames CPython's
    stacklevel walk treats as internal (importlib bootstrap) don't
    count.
    """
    level = 1  # the warn() call in this module's body
    try:
        frame = sys._getframe(2)  # the module body's caller
    except ValueError:  # imported with no caller frame (direct exec)
        return level + 1
    while frame is not None:
        filename = frame.f_code.co_filename
        if "importlib" in filename and "_bootstrap" in filename:
            # warn() skips these without counting; mirror that.
            frame = frame.f_back
            continue
        level += 1
        if "importlib" not in filename and not filename.startswith("<frozen"):
            break
        frame = frame.f_back
    return level


warnings.warn(
    "repro.metrics has been renamed to repro.reporting (it collided with "
    "the repro.obs.metrics runtime registry); update imports — the alias "
    "will be removed in a future release",
    DeprecationWarning,
    stacklevel=_import_stacklevel(),
)

from repro.reporting import *  # noqa: E402,F401,F403
from repro.reporting import __all__  # noqa: E402,F401

#: Submodules of the old package, aliased so ``repro.metrics.<sub>``
#: imports keep resolving to their ``repro.reporting`` counterparts.
_SUBMODULES = ("analysis", "collectors", "report", "timeline")

for _name in _SUBMODULES:
    _module = importlib.import_module(f"repro.reporting.{_name}")
    sys.modules[f"repro.metrics.{_name}"] = _module
    setattr(sys.modules[__name__], _name, _module)
del _name, _module

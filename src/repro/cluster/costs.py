"""Calibrated cost constants for rendering and compositing.

The paper's cost model (§IV) is ``TExec ≈ t_io + α`` with α ≪ t_io.  This
module provides the structure *inside* α so the simulator reproduces the
second-order effects the evaluation depends on:

* **Ray casting is screen-space bound**: per-task render time is
  dominated by a fixed setup cost plus a per-pixel term, with only a weak
  dependence on chunk byte size.  This single property produces the
  paper's FCFSU result — splitting a job into twice as many tasks
  consumes twice the computing resources and halves the achievable
  framerate (§VI-C, Scenario 1), and quarters it at 64 nodes
  (Scenario 3).
* **Group-size overhead**: each job pays per-compositing-stage
  coordination/transmission overhead that grows with the render group
  (the "unnecessary transmission overheads over the network" of §III-C).
* **Compositing is pipelined** on a separate thread (§V-C), so its time
  extends job latency but does not occupy the render thread.

Two presets, :func:`cost_preset_linux8` and :func:`cost_preset_anl`, are
calibrated against the paper's two systems (8-node GTX 285 cluster and
the ANL Eureka FX5600 cluster) such that the published framerate shapes
hold; see EXPERIMENTS.md for the calibration targets.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.cluster.interconnect import swap_stage_count
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class CostParameters:
    """Constants of the rendering/compositing cost model.

    Attributes:
        render_base: Fixed per-task cost (dispatch, shader setup, texture
            bind) in seconds.
        render_per_pixel: Ray-casting cost per output pixel in seconds.
        image_pixels: Output image resolution in pixels (the paper
            renders full-screen images; per-task ray casting cost is
            proportional to this).
        render_per_byte: Residual data-size dependence of rendering
            (sampling long rays through a bigger brick) in s/byte.
        group_stage_overhead: Per-compositing-stage coordination and
            transmission overhead charged to each task's render time, in
            seconds.  A job over ``g`` nodes pays
            ``swap_stage_count(g)`` stages.
        composite_stage_latency: Per-stage latency of the (threaded)
            image compositing, charged to job latency only.
        composite_per_pixel: Per-pixel blending/transmission cost of
            compositing, charged to job latency only.
        render_jitter: Half-width of uniform multiplicative noise on
            *actual* render times (view-dependent sampling depth, early
            ray termination, shader divergence make real frame times
            vary).  The head node's estimates use the mean — the
            prediction/actual discrepancy the paper's table-correction
            machinery (§V-B) exists to absorb.
    """

    render_base: float = 2.0e-3
    render_per_pixel: float = 3.86e-9
    image_pixels: int = 1024 * 1024
    render_per_byte: float = 2.5e-12
    group_stage_overhead: float = 1.2e-3
    composite_stage_latency: float = 0.4e-3
    composite_per_pixel: float = 1.0e-9
    render_jitter: float = 0.15

    def __post_init__(self) -> None:
        check_non_negative("render_base", self.render_base)
        check_non_negative("render_per_pixel", self.render_per_pixel)
        check_positive("image_pixels", self.image_pixels)
        check_non_negative("render_per_byte", self.render_per_byte)
        check_non_negative("group_stage_overhead", self.group_stage_overhead)
        check_non_negative("composite_stage_latency", self.composite_stage_latency)
        check_non_negative("composite_per_pixel", self.composite_per_pixel)
        if not 0.0 <= self.render_jitter < 1.0:
            raise ValueError(
                f"render_jitter must be in [0, 1), got {self.render_jitter}"
            )
        # Derived-cost memo tables.  The simulator evaluates render_time
        # for every placement decision *and* every task execution, but a
        # run only ever sees a handful of distinct (chunk size, group
        # size) pairs; composite_time likewise.  Stashed around the
        # frozen-dataclass guard; ``replace()`` builds fresh (empty)
        # memos on the copy.
        object.__setattr__(self, "_render_memo", {})
        object.__setattr__(self, "_composite_memo", {})

    # -- derived costs -----------------------------------------------------

    def render_time(self, chunk_bytes: int, group_size: int) -> float:
        """Render-thread time for one task (excludes I/O and compositing).

        ``group_size`` is the number of tasks/nodes participating in the
        owning job (the render group ``G`` of Definition 2).
        """
        key = (chunk_bytes, group_size)
        t = self._render_memo.get(key)
        if t is None:
            stages = swap_stage_count(max(1, group_size))
            t = self._render_memo[key] = (
                self.render_base
                + self.render_per_pixel * self.image_pixels
                + self.render_per_byte * chunk_bytes
                + self.group_stage_overhead * stages
            )
        return t

    def composite_time(self, group_size: int) -> float:
        """Image-compositing time for a render group of ``group_size``.

        Runs on the compositing thread; extends job finish time only.
        """
        t = self._composite_memo.get(group_size)
        if t is None:
            stages = swap_stage_count(max(1, group_size))
            t = self._composite_memo[group_size] = (
                self.composite_stage_latency * stages
                + self.composite_per_pixel * self.image_pixels
            )
        return t

    def with_overrides(self, **kwargs: float) -> "CostParameters":
        """Return a copy with the given fields replaced."""
        return replace(self, **kwargs)


def cost_preset_linux8() -> CostParameters:
    """Cost constants calibrated for the paper's 8-node Linux cluster.

    Calibration targets (Scenario 1, hit-path task times):

    * 512 MiB chunk in a 4-node group: ~9.6 ms → 8 nodes sustain the
      200 jobs/s demand of six 33.33 fps actions with slim headroom.
    * 256 MiB chunk in an 8-node group (FCFSU): ~10.1 ms → system
      throughput ~99 jobs/s ≈ 16.5 fps per action, matching the paper's
      "nearly half of the target framerate".
    """
    return CostParameters(
        render_base=2.0e-3,
        render_per_pixel=3.86e-9,
        image_pixels=1024 * 1024,
        render_per_byte=2.5e-12,
        group_stage_overhead=1.2e-3,
        composite_stage_latency=0.4e-3,
        composite_per_pixel=1.0e-9,
    )


def cost_preset_anl() -> CostParameters:
    """Cost constants calibrated for the ANL Eureka GPU cluster runs.

    Calibration targets (Scenario 3, hit-path task times):

    * 512 MiB chunk in a 16-node group: ~6.5 ms → 64 nodes sustain
      ~615 jobs/s, above the ~535 jobs/s demand (OURS reaches the
      near-target 32.8 fps of the paper).
    * 128 MiB chunk in a 64-node group (FCFSU): ~6.0 ms → system
      throughput ~167 jobs/s ≈ 10-11 fps, matching the paper's 11.25 fps.
    """
    return CostParameters(
        render_base=1.5e-3,
        render_per_pixel=2.658e-9,
        image_pixels=1024 * 1024,
        render_per_byte=2.5e-12,
        group_stage_overhead=0.25e-3,
        composite_stage_latency=0.25e-3,
        composite_per_pixel=1.0e-9,
    )


__all__ = ["CostParameters", "cost_preset_linux8", "cost_preset_anl"]

"""Discrete-event GPU-cluster substrate.

Everything the scheduler runs *on*: the simulation clock and event queue,
per-node LRU memory caches, the disk/file-server I/O model, the GPU and
optional explicit video-memory model, the interconnect, rendering nodes
with FIFO render threads, and the :class:`Cluster` aggregate.
"""

from repro.cluster.cluster import Cluster
from repro.cluster.costs import CostParameters, cost_preset_anl, cost_preset_linux8
from repro.cluster.event_queue import (
    EventQueue,
    SimulationError,
    PRIORITY_ARRIVAL,
    PRIORITY_COMPLETION,
    PRIORITY_CYCLE,
)
from repro.cluster.gpu import GpuMemoryModel, GpuSpec
from repro.cluster.interconnect import Interconnect, LinkSpec, swap_stage_count
from repro.cluster.memory import ChunkTooLargeError, LRUChunkCache
from repro.cluster.node import RenderNode
from repro.cluster.storage import StorageModel, StorageSpec

__all__ = [
    "Cluster",
    "CostParameters",
    "cost_preset_anl",
    "cost_preset_linux8",
    "EventQueue",
    "SimulationError",
    "PRIORITY_ARRIVAL",
    "PRIORITY_COMPLETION",
    "PRIORITY_CYCLE",
    "GpuMemoryModel",
    "GpuSpec",
    "Interconnect",
    "LinkSpec",
    "swap_stage_count",
    "ChunkTooLargeError",
    "LRUChunkCache",
    "RenderNode",
    "StorageModel",
    "StorageSpec",
]

"""Disk / file-server I/O model (paper §III-B, Fig. 2).

Data I/O is the dominant cost in the visualization pipeline: loading a
chunk from the file system takes seconds, versus milliseconds for
rendering and compositing.  This module models that cost.

Two regimes are supported:

* **Local-disk** (default): each rendering node streams from its own disk
  at ``bandwidth`` bytes/s after a fixed ``latency`` (seek/open).
* **Shared file server**: an optional aggregate ``shared_bandwidth`` cap
  across the cluster.  When more streams are active than the server can
  serve at full rate, each stream's bandwidth degrades proportionally.
  Contention is approximated at load-start time (the effective rate seen
  by a load is fixed when it begins), which keeps the simulation at one
  event per task while still penalizing I/O storms — exactly the failure
  mode locality-blind schedulers trigger.

Optional multiplicative jitter models real-world I/O variance; it is off
by default so that unit tests and benchmarks are exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.util.rng import SeedLike, make_rng
from repro.util.units import MiB
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class StorageSpec:
    """Static description of the storage subsystem.

    Attributes:
        bandwidth: Per-stream streaming bandwidth in bytes/s.
        latency: Fixed per-load latency in seconds (seek, open, metadata).
        shared_bandwidth: Optional aggregate byte/s cap across all nodes
            (models a shared file server).  ``None`` means local disks.
        jitter: Multiplicative jitter half-width; a load's duration is
            scaled by ``U(1 - jitter, 1 + jitter)``.  0 disables jitter.
        timeout: Optional per-attempt I/O deadline in seconds.  A load
            whose duration would exceed it is abandoned at the deadline
            and retried by the node after exponential backoff (a slow
            shared file server then costs bounded waiting, not an
            unbounded stall).  ``None`` (default) disables timeouts —
            behavior is bit-identical to the pre-timeout model.
        max_retries: How many times a timed-out load may be retried
            before the node accepts whatever duration storage quotes
            (the final attempt never times out, so loads cannot starve).
        backoff: Base of the exponential retry delay; attempt ``k``
            waits ``backoff * 2**k`` seconds after its timeout.
    """

    bandwidth: float = 100 * MiB
    latency: float = 0.010
    shared_bandwidth: Optional[float] = None
    jitter: float = 0.0
    timeout: Optional[float] = None
    max_retries: int = 3
    backoff: float = 0.05

    def __post_init__(self) -> None:
        check_positive("StorageSpec.bandwidth", self.bandwidth)
        check_non_negative("StorageSpec.latency", self.latency)
        if self.shared_bandwidth is not None:
            check_positive("StorageSpec.shared_bandwidth", self.shared_bandwidth)
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError(f"jitter must be in [0, 1), got {self.jitter}")
        if self.timeout is not None:
            check_positive("StorageSpec.timeout", self.timeout)
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        check_non_negative("StorageSpec.backoff", self.backoff)


class StorageModel:
    """Runtime I/O cost model with stream-count contention tracking.

    One instance is shared by all rendering nodes of a cluster so that the
    shared-file-server regime can observe cluster-wide concurrency.
    """

    def __init__(self, spec: StorageSpec, *, seed: SeedLike = 0) -> None:
        self.spec = spec
        self._active_loads = 0
        self._active_bytes = 0
        self._total_loads = 0
        self._total_bytes = 0
        self._metrics = None
        self._rng: np.random.Generator = make_rng(seed)

    def set_metrics(self, registry) -> None:
        """Publish load/byte counters into ``registry`` (``None`` detaches)."""
        if registry is None:
            self._metrics = None
            return
        self._metrics = (
            registry.counter("repro_io_loads", "chunk loads started"),
            registry.counter("repro_io_bytes", "bytes requested from storage"),
        )

    # -- inspection --------------------------------------------------------

    @property
    def active_loads(self) -> int:
        """Number of loads currently in flight."""
        return self._active_loads

    @property
    def active_bytes(self) -> int:
        """Bytes of I/O currently in flight (observability counter).

        Exact when callers pass the load size back to :meth:`end_load`;
        legacy zero-argument ``end_load`` calls only decrement the load
        count, so the byte gauge is best-effort for such callers.
        """
        return self._active_bytes

    @property
    def total_loads(self) -> int:
        """Loads started since construction."""
        return self._total_loads

    @property
    def total_bytes(self) -> int:
        """Bytes requested since construction."""
        return self._total_bytes

    # -- cost --------------------------------------------------------------

    def estimate_load_time(self, nbytes: int) -> float:
        """Contention-free load duration: ``latency + nbytes / bandwidth``.

        This is what the head node's ``Estimate`` table is seeded with (the
        paper's "test run").
        """
        check_non_negative("nbytes", nbytes)
        return self.spec.latency + nbytes / self.spec.bandwidth

    def effective_bandwidth(self, concurrent: int) -> float:
        """Per-stream bandwidth when ``concurrent`` loads are in flight."""
        bw = self.spec.bandwidth
        shared = self.spec.shared_bandwidth
        if shared is not None and concurrent > 0:
            bw = min(bw, shared / concurrent)
        return bw

    def begin_load(self, nbytes: int) -> float:
        """Start a load of ``nbytes`` and return its duration in seconds.

        The caller must pair this with :meth:`end_load` when the load's
        completion event fires.
        """
        check_non_negative("nbytes", nbytes)
        self._active_loads += 1
        self._active_bytes += nbytes
        self._total_loads += 1
        self._total_bytes += nbytes
        if self._metrics is not None:
            m_loads, m_bytes = self._metrics
            m_loads.inc()
            m_bytes.inc(nbytes)
        bw = self.effective_bandwidth(self._active_loads)
        duration = self.spec.latency + nbytes / bw
        if self.spec.jitter:
            duration *= float(
                self._rng.uniform(1.0 - self.spec.jitter, 1.0 + self.spec.jitter)
            )
        return duration

    def end_load(self, nbytes: int = 0) -> None:
        """Mark one in-flight load as finished.

        Args:
            nbytes: Size of the finished load, used to keep the
                :attr:`active_bytes` gauge exact.  Callers that don't
                track sizes may omit it (the gauge then under-reports).
        """
        if self._active_loads <= 0:
            raise RuntimeError("end_load without matching begin_load")
        self._active_loads -= 1
        self._active_bytes -= min(nbytes, self._active_bytes)
        if self._active_loads == 0:
            self._active_bytes = 0


__all__ = ["StorageSpec", "StorageModel"]

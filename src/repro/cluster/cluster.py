"""The cluster: one head node's worth of state plus ``p`` rendering nodes.

This class wires the substrate together (event queue, shared storage,
interconnect, rendering nodes) and exposes the aggregate statistics the
evaluation reports (cache hit rates, utilization).  The head-node *logic*
(job queue, dispatch, scheduling) lives in
:class:`repro.sim.service.VisualizationService`; the cluster is the
machine it runs on.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional

from repro.cluster.costs import CostParameters
from repro.cluster.event_queue import EventQueue
from repro.cluster.gpu import GpuSpec
from repro.cluster.interconnect import Interconnect, LinkSpec
from repro.cluster.node import RenderNode, TaskFinishCallback
from repro.cluster.storage import StorageModel, StorageSpec
from repro.util.rng import spawn_rngs
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps cluster<-core one-way)
    from repro.core.job import RenderTask


class Cluster:
    """A simulated GPU cluster.

    Args:
        node_count: Number of rendering nodes ``p``.
        memory_quota: Per-node main-memory byte budget for chunk caching.
        cost: Rendering/compositing cost constants.
        storage_spec: I/O model parameters (shared by all nodes).
        link_spec: Interconnect parameters.
        gpu: Per-node GPU description (bounds ``Chkmax``; used by the
            explicit VRAM model when ``model_vram`` is set).
        model_vram: Enable the explicit video-memory model (paper future
            work; off by default to match the paper's cost model).
        executors_per_node: Concurrent rendering pipelines (GPUs) per
            node; the calibrated presets use 1.
        events: Optionally share an existing event queue.
        storage_seed: Seed for I/O jitter (only relevant when the storage
            spec enables jitter).
    """

    def __init__(
        self,
        node_count: int,
        memory_quota: int,
        cost: CostParameters,
        *,
        storage_spec: Optional[StorageSpec] = None,
        link_spec: Optional[LinkSpec] = None,
        gpu: Optional[GpuSpec] = None,
        model_vram: bool = False,
        events: Optional[EventQueue] = None,
        storage_seed: int = 0,
        executors_per_node: int = 1,
    ) -> None:
        check_positive("node_count", node_count)
        check_positive("memory_quota", memory_quota)
        self.cost = cost
        self.events = events if events is not None else EventQueue()
        self.storage = StorageModel(
            storage_spec if storage_spec is not None else StorageSpec(),
            seed=storage_seed,
        )
        self.interconnect = Interconnect(
            link_spec if link_spec is not None else LinkSpec()
        )
        self.gpu = gpu
        self._task_finish_listeners: List[TaskFinishCallback] = []
        node_rngs = spawn_rngs(storage_seed + 1, node_count)
        self.nodes: List[RenderNode] = [
            RenderNode(
                k,
                memory_quota,
                cost,
                self.storage,
                self.events,
                gpu=gpu,
                model_vram=model_vram,
                on_task_finish=self._notify_task_finish,
                rng=node_rngs[k],
                executors=executors_per_node,
            )
            for k in range(node_count)
        ]

    # -- wiring ------------------------------------------------------------

    def add_task_finish_listener(
        self, callback: TaskFinishCallback, *, prepend: bool = False
    ) -> None:
        """Register a callback fired on every task completion.

        With exactly one listener (the common case: the service), nodes
        call it directly; the fan-out wrapper is wired in only once a
        second listener appears.  ``prepend`` puts the callback ahead of
        the existing listeners — the fault outlier detector uses this to
        read pending-estimate state before the service consumes it.
        """
        listeners = self._task_finish_listeners
        if prepend:
            listeners.insert(0, callback)
        else:
            listeners.append(callback)
        target = callback if len(listeners) == 1 else self._notify_task_finish
        for node in self.nodes:
            node._on_task_finish = target

    def _notify_task_finish(self, node: RenderNode, task: RenderTask) -> None:
        for callback in self._task_finish_listeners:
            callback(node, task)

    # -- convenience -------------------------------------------------------

    @property
    def node_count(self) -> int:
        """Number of rendering nodes ``p``."""
        return len(self.nodes)

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self.events.now

    def dispatch(self, task: RenderTask, node_id: int) -> None:
        """Hand a task to rendering node ``node_id``'s FIFO queue."""
        self.nodes[node_id].enqueue(task)

    # -- aggregate statistics ----------------------------------------------

    def total_tasks_executed(self) -> int:
        """Tasks completed across all nodes."""
        return sum(n.tasks_executed for n in self.nodes)

    def cache_hit_rate(self) -> float:
        """Data-reuse hit rate across all executed tasks (Table III)."""
        hits = sum(n.cache_hits for n in self.nodes)
        misses = sum(n.cache_misses for n in self.nodes)
        total = hits + misses
        return hits / total if total else 0.0

    def mean_utilization(self, elapsed: float) -> float:
        """Mean render-thread utilization over ``elapsed`` seconds."""
        if not self.nodes:
            return 0.0
        return sum(n.utilization(elapsed) for n in self.nodes) / len(self.nodes)

    def total_backlog(self) -> int:
        """Tasks queued (not started) across all nodes."""
        return sum(n.backlog for n in self.nodes)

    def idle_nodes(self) -> List[int]:
        """Ids of nodes with an idle render thread and empty queue."""
        return [n.node_id for n in self.nodes if not n.busy and not n.queue]


__all__ = ["Cluster"]

"""Byte-accounted LRU chunk cache (paper §V-B).

Every rendering node has a system-memory limit; when a new chunk must be
loaded and the limit is reached, the least-recently-used cached chunks
are released.  The head node additionally keeps a *mirror* of each node's
cache (the ``Cache`` table) so it can predict hits at scheduling time —
that mirror is the same class.

The cache is keyed by :class:`repro.core.chunks.Chunk` objects (hashable,
frozen) and accounts capacity in bytes, since chunks are not necessarily
equal-sized.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Iterator, List, Optional

from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps cluster<-core one-way)
    from repro.core.chunks import Chunk


class ChunkTooLargeError(ValueError):
    """A chunk exceeds the cache capacity outright."""


class LRUChunkCache:
    """An LRU cache of data chunks with a byte-capacity budget.

    ``touch``/``contains`` implement the lookup path; ``insert`` loads a
    chunk, evicting least-recently-used entries until it fits and
    returning the eviction list (the head node uses it to keep its mirror
    and the ``Cache`` table consistent).

    An optional ``observer`` callable — ``observer(kind, chunk)`` with
    ``kind`` in ``{"insert", "evict"}`` — fires on mutations, letting the
    observability layer emit cache instants without the cache knowing
    about tracers.  It is ``None`` by default (one identity check per
    mutation; the ``touch`` hot path is untouched).
    """

    __slots__ = ("capacity", "observer", "_entries", "_used")

    def __init__(self, capacity: int) -> None:
        self.capacity = int(check_positive("capacity", capacity))
        self.observer = None
        self._entries: "OrderedDict[Chunk, int]" = OrderedDict()
        self._used = 0

    # -- inspection --------------------------------------------------------

    @property
    def used_bytes(self) -> int:
        """Bytes currently occupied."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes currently free."""
        return self.capacity - self._used

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, chunk: "Chunk") -> bool:
        return chunk in self._entries

    def __iter__(self) -> Iterator["Chunk"]:
        """Iterate chunks from least to most recently used."""
        return iter(self._entries)

    def chunks(self) -> List["Chunk"]:
        """Cached chunks, least recently used first."""
        return list(self._entries)

    def lru_chunk(self) -> Optional["Chunk"]:
        """The least-recently-used chunk, or None if empty."""
        return next(iter(self._entries), None)

    # -- mutation ----------------------------------------------------------

    def touch(self, chunk: "Chunk") -> bool:
        """Mark ``chunk`` most-recently-used.  Returns True on hit."""
        if chunk in self._entries:
            self._entries.move_to_end(chunk)
            return True
        return False

    def insert(self, chunk: "Chunk") -> List["Chunk"]:
        """Load ``chunk`` into the cache, evicting LRU entries as needed.

        If the chunk is already cached this is equivalent to
        :meth:`touch` and evicts nothing.

        Returns:
            The chunks evicted to make room (possibly empty).

        Raises:
            ChunkTooLargeError: If ``chunk.size`` exceeds the capacity —
                the configuration bug the paper guards against by bounding
                ``Chkmax`` by node memory.
        """
        if chunk.size > self.capacity:
            raise ChunkTooLargeError(
                f"chunk {chunk} of {chunk.size} bytes exceeds cache capacity "
                f"{self.capacity}"
            )
        if self.touch(chunk):
            return []
        evicted: List["Chunk"] = []
        while self._used + chunk.size > self.capacity:
            victim, size = self._entries.popitem(last=False)
            self._used -= size
            evicted.append(victim)
        self._entries[chunk] = chunk.size
        self._used += chunk.size
        if self.observer is not None:
            for victim in evicted:
                self.observer("evict", victim)
            self.observer("insert", chunk)
        return evicted

    def evict(self, chunk: "Chunk") -> bool:
        """Explicitly remove ``chunk``.  Returns True if it was present."""
        size = self._entries.pop(chunk, None)
        if size is None:
            return False
        self._used -= size
        if self.observer is not None:
            self.observer("evict", chunk)
        return True

    def clear(self) -> None:
        """Drop every cached chunk.

        The observer sees one evict per dropped chunk — a node crash or
        cache wipe ends every residency interval in the trace, exactly
        like ordinary LRU pressure would.
        """
        if self.observer is not None:
            for chunk in list(self._entries):
                self.observer("evict", chunk)
        self._entries.clear()
        self._used = 0

    def check_invariants(self) -> None:
        """Assert internal consistency (used by property-based tests)."""
        total = sum(self._entries.values())
        if total != self._used:
            raise AssertionError(f"byte accounting drift: {total} != {self._used}")
        if self._used > self.capacity:
            raise AssertionError(f"over capacity: {self._used} > {self.capacity}")
        for chunk, size in self._entries.items():
            if chunk.size != size:
                raise AssertionError(f"stale size for {chunk}")


__all__ = ["LRUChunkCache", "ChunkTooLargeError"]

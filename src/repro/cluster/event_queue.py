"""Discrete-event simulation core: clock + binary-heap event queue.

The whole cluster simulation is driven by one :class:`EventQueue`.  Events
are ``(time, priority, seq, callback, args)`` tuples on a binary heap;
``seq`` is a monotonically increasing tie-breaker so that events scheduled
at the same instant fire in scheduling order (stable FIFO within a
timestamp), which keeps simulations deterministic.

Design notes (per the HPC guides: measure, keep the hot loop lean):
the queue stores plain tuples rather than event objects, and the run loop
avoids attribute lookups in its body.  One simulated task costs exactly
one event, so Scenario-4-sized runs (hundreds of thousands of tasks)
remain tractable in pure Python.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

EventCallback = Callable[..., None]

_INF = float("inf")

#: Priority constants: lower fires first among events at the same time.
PRIORITY_COMPLETION = 0  # task/IO completions observed before new decisions
PRIORITY_ARRIVAL = 1  # job arrivals
PRIORITY_CYCLE = 2  # scheduling cycles run after arrivals at the same tick
PRIORITY_DEFAULT = 1


class SimulationError(RuntimeError):
    """Raised for inconsistencies detected during a simulation run."""


class EventQueue:
    """A time-ordered event queue with a simulation clock.

    The clock only moves forward; scheduling an event in the past raises
    :class:`SimulationError` (a symptom of a broken component, better
    caught loudly than silently reordered).
    """

    __slots__ = ("_heap", "_seq", "_now", "_processed")

    def __init__(self, start_time: float = 0.0) -> None:
        self._heap: List[Tuple[float, int, int, EventCallback, tuple]] = []
        self._seq = itertools.count()
        self._now = float(start_time)
        self._processed = 0

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    # -- scheduling ----------------------------------------------------------

    def schedule(
        self,
        time: float,
        callback: EventCallback,
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> None:
        """Schedule ``callback(*args)`` to run at simulation ``time``.

        Events at equal ``time`` order by ``priority`` then by insertion.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time:.9f} before now={self._now:.9f}"
            )
        heapq.heappush(self._heap, (time, priority, next(self._seq), callback, args))

    def schedule_after(
        self,
        delay: float,
        callback: EventCallback,
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self.schedule(self._now + delay, callback, *args, priority=priority)

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        if not self._heap:
            return False
        time, _prio, _seq, callback, args = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback(*args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
    ) -> int:
        """Run events until the queue drains, ``until`` passes, or a budget hits.

        Args:
            until: If given, stop before executing any event strictly after
                this time.  The clock advances to ``until`` only once every
                event at or before ``until`` has executed; a ``max_events``
                stop with earlier events still pending leaves the clock at
                the last executed event, so a resumed ``run`` (or ``step``)
                can never move time backwards.
            max_events: Optional safety budget on the number of events.

        Returns:
            The number of events executed by this call.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        until_t = _INF if until is None else until
        if max_events is None:
            # Hot path: no budget, bare drain-to-`until` loop.
            while heap:
                item = heap[0]
                t = item[0]
                if t > until_t:
                    break
                pop(heap)
                self._now = t
                self._processed += 1
                executed += 1
                item[3](*item[4])
        else:
            while heap and executed < max_events:
                item = heap[0]
                t = item[0]
                if t > until_t:
                    break
                pop(heap)
                self._now = t
                self._processed += 1
                executed += 1
                item[3](*item[4])
        if (
            until is not None
            and self._now < until
            and (not heap or heap[0][0] > until)
        ):
            self._now = until
        return executed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None


__all__ = [
    "EventQueue",
    "EventCallback",
    "SimulationError",
    "PRIORITY_COMPLETION",
    "PRIORITY_ARRIVAL",
    "PRIORITY_CYCLE",
    "PRIORITY_DEFAULT",
]

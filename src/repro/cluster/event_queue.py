"""Discrete-event simulation core: clock + binary-heap event queue.

The whole cluster simulation is driven by one :class:`EventQueue`.  Events
are ``(time, priority, seq, callback, args)`` tuples on a binary heap;
``seq`` is a monotonically increasing tie-breaker so that events scheduled
at the same instant fire in scheduling order (stable FIFO within a
timestamp), which keeps simulations deterministic.

Design notes (per the HPC guides: measure, keep the hot loop lean):
the queue stores plain tuples rather than event objects, and the run loop
avoids attribute lookups in its body.  One simulated task costs exactly
one event, so Scenario-4-sized runs (hundreds of thousands of tasks)
remain tractable in pure Python.

Bulk work goes through :meth:`EventQueue.schedule_many`: a pre-built
batch (e.g. every arrival of a workload trace) is validated, appended,
and the heap restored with one C-level ``heapify`` instead of one
``heappush`` per event.  Because events are totally ordered by
``(time, priority, seq)`` — ``seq`` is unique — the pop order is
independent of the heap's internal layout, so ``heapify`` is
execution-order-equivalent to repeated ``schedule`` calls.

Event times must be finite: ``NaN`` compares false against everything,
so a NaN time would slip past a naive ``time < now`` guard and corrupt
the heap invariant (every sift comparison involving it is false),
silently reordering the run.  Both scheduling entry points reject
non-finite times/delays with :class:`SimulationError`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Iterable, List, Optional, Tuple

EventCallback = Callable[..., None]

_INF = float("inf")

#: Priority constants: lower fires first among events at the same time.
PRIORITY_COMPLETION = 0  # task/IO completions observed before new decisions
PRIORITY_ARRIVAL = 1  # job arrivals
PRIORITY_CYCLE = 2  # scheduling cycles run after arrivals at the same tick
PRIORITY_DEFAULT = 1


class SimulationError(RuntimeError):
    """Raised for inconsistencies detected during a simulation run."""


class EventQueue:
    """A time-ordered event queue with a simulation clock.

    The clock only moves forward; scheduling an event in the past raises
    :class:`SimulationError` (a symptom of a broken component, better
    caught loudly than silently reordered).
    """

    __slots__ = ("_heap", "_seq", "_now", "_processed")

    def __init__(self, start_time: float = 0.0) -> None:
        self._heap: List[Tuple[float, int, int, EventCallback, tuple]] = []
        self._seq = itertools.count()
        self._now = float(start_time)
        self._processed = 0

    # -- clock -------------------------------------------------------------

    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def __len__(self) -> int:
        return len(self._heap)

    # -- scheduling ----------------------------------------------------------

    def _bad_time(self, time: float) -> SimulationError:
        """Diagnose why ``time`` failed the scheduling guard."""
        if not (time == time):  # NaN
            return SimulationError("cannot schedule event at NaN time")
        if time == _INF or time == -_INF:
            return SimulationError(f"cannot schedule event at infinite time {time!r}")
        return SimulationError(
            f"cannot schedule event at t={time:.9f} before now={self._now:.9f}"
        )

    def schedule(
        self,
        time: float,
        callback: EventCallback,
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> None:
        """Schedule ``callback(*args)`` to run at simulation ``time``.

        Events at equal ``time`` order by ``priority`` then by insertion.
        ``time`` must be finite and not in the past; the chained
        comparison is one guard for all three hazards (NaN fails both
        sides, +inf fails the right, past times fail the left).
        """
        if not (self._now <= time < _INF):
            raise self._bad_time(time)
        heapq.heappush(self._heap, (time, priority, next(self._seq), callback, args))

    def schedule_after(
        self,
        delay: float,
        callback: EventCallback,
        *args: Any,
        priority: int = PRIORITY_DEFAULT,
    ) -> None:
        """Schedule ``callback(*args)`` to run ``delay`` seconds from now."""
        if not (0.0 <= delay < _INF):
            raise SimulationError(
                f"delay must be finite and non-negative, got {delay!r}"
            )
        self.schedule(self._now + delay, callback, *args, priority=priority)

    def schedule_many(
        self,
        events: Iterable[Tuple[float, EventCallback, tuple]],
        *,
        priority: int = PRIORITY_DEFAULT,
    ) -> int:
        """Schedule a batch of ``(time, callback, args)`` events at once.

        Execution-order-equivalent to calling :meth:`schedule` once per
        triple in iteration order (same validation, same FIFO
        tie-breaking), but heap maintenance is amortized: a bulk batch
        is appended and the heap rebuilt with a single C-level
        ``heapify`` — O(n + k) instead of O(k log n) — which is how the
        simulator preloads a whole workload trace.  Small batches
        relative to the pending heap fall back to per-event pushes
        (rebuilding would cost more than it saves).

        The batch is atomic: if any time is non-finite or in the past,
        nothing is scheduled.

        Returns:
            The number of events scheduled.
        """
        now = self._now
        seq = self._seq
        batch: List[Tuple[float, int, int, EventCallback, tuple]] = []
        append = batch.append
        for time, callback, args in events:
            if not (now <= time < _INF):
                raise self._bad_time(time)
            append((time, priority, next(seq), callback, args))
        if not batch:
            return 0
        heap = self._heap
        if len(batch) >= (len(heap) >> 1):
            heap.extend(batch)
            heapq.heapify(heap)
        else:
            push = heapq.heappush
            for item in batch:
                push(heap, item)
        return len(batch)

    # -- execution ---------------------------------------------------------

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        if not self._heap:
            return False
        time, _prio, _seq, callback, args = heapq.heappop(self._heap)
        self._now = time
        self._processed += 1
        callback(*args)
        return True

    def run(
        self,
        until: Optional[float] = None,
        *,
        max_events: Optional[int] = None,
        live_count: bool = False,
    ) -> int:
        """Run events until the queue drains, ``until`` passes, or a budget hits.

        Args:
            until: If given, stop before executing any event strictly after
                this time.  The clock advances to ``until`` only once every
                event at or before ``until`` has executed; a ``max_events``
                stop with earlier events still pending leaves the clock at
                the last executed event, so a resumed ``run`` (or ``step``)
                can never move time backwards.
            max_events: Optional safety budget on the number of events.
            live_count: Settle :attr:`processed` on every iteration
                instead of once per call, so observers that read the
                counter *mid-run* (telemetry-stream ticks, the stall
                watchdog thread) see exact values.  Costs one slot
                write per event; leave off when nothing reads the
                counter mid-run.

        Returns:
            The number of events executed by this call.
        """
        heap = self._heap
        pop = heapq.heappop
        executed = 0
        until_t = _INF if until is None else until
        if live_count:
            # Live path: ``_processed`` is exact at every callback (and
            # for other threads), like ``step``.  The general bounded
            # loop serves all argument combinations — a caller paying a
            # per-event write is past micro-specialization anyway.
            budget = _INF if max_events is None else max_events
            while heap and executed < budget:
                item = heap[0]
                t = item[0]
                if t > until_t:
                    break
                pop(heap)
                self._now = t
                executed += 1
                self._processed += 1
                item[3](*item[4])
            if (
                until is not None
                and self._now < until
                and (not heap or heap[0][0] > until)
            ):
                self._now = until
            return executed
        # ``_processed`` is batched on this path: callbacks observe
        # ``now`` (written every iteration — they depend on it) but
        # nothing reads the processed counter mid-run, so it is settled
        # once per call, in a ``finally`` so a raising callback still
        # counts its predecessors.  Mid-run readers must pass
        # ``live_count=True`` instead.
        try:
            if max_events is None:
                if until is None:
                    # Hot path: full drain, no horizon comparison; the
                    # heap-top peek is folded into the pop.
                    while heap:
                        item = pop(heap)
                        self._now = item[0]
                        executed += 1
                        item[3](*item[4])
                else:
                    # Drain-to-timestamp: pop everything due at or
                    # before ``until`` (one peek + one pop per event).
                    while heap and heap[0][0] <= until_t:
                        item = pop(heap)
                        self._now = item[0]
                        executed += 1
                        item[3](*item[4])
            else:
                while heap and executed < max_events:
                    item = heap[0]
                    t = item[0]
                    if t > until_t:
                        break
                    pop(heap)
                    self._now = t
                    executed += 1
                    item[3](*item[4])
        finally:
            self._processed += executed
        if (
            until is not None
            and self._now < until
            and (not heap or heap[0][0] > until)
        ):
            self._now = until
        return executed

    def peek_time(self) -> Optional[float]:
        """Time of the next pending event, or None when empty."""
        return self._heap[0][0] if self._heap else None


__all__ = [
    "EventQueue",
    "EventCallback",
    "SimulationError",
    "PRIORITY_COMPLETION",
    "PRIORITY_ARRIVAL",
    "PRIORITY_CYCLE",
    "PRIORITY_DEFAULT",
]

"""Interconnect model: point-to-point links with latency and bandwidth.

Used in two places:

* the *cost model* side — estimating image-compositing time for a render
  group of ``g`` nodes (binary/2-3 swap runs ``ceil(log2 g)``-ish stages,
  each paying a link latency plus pixel payload transfer), and
* the *functional* side — :class:`repro.comm.SimCommunicator` charges
  every message it delivers against a link model, so the compositing
  algorithms in :mod:`repro.render.compositing` report realistic byte and
  time totals.

The model is the classic postal/LogP-style ``latency + nbytes/bandwidth``
per message; congestion is not modeled (compositing traffic in the paper
is milliseconds against seconds of I/O, so first-order costs suffice).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.util.units import GiB
from repro.util.validation import check_non_negative, check_positive


@dataclass(frozen=True)
class LinkSpec:
    """One network link: fixed ``latency`` (s) plus ``bandwidth`` (bytes/s)."""

    latency: float = 50e-6
    bandwidth: float = 1.25 * GiB  # ~10 Gb/s

    def __post_init__(self) -> None:
        check_non_negative("LinkSpec.latency", self.latency)
        check_positive("LinkSpec.bandwidth", self.bandwidth)

    def transfer_time(self, nbytes: int) -> float:
        """Time to move ``nbytes`` over the link."""
        check_non_negative("nbytes", nbytes)
        return self.latency + nbytes / self.bandwidth


class Interconnect:
    """A fully connected switch of identical links with traffic accounting."""

    def __init__(self, spec: LinkSpec) -> None:
        self.spec = spec
        self._messages = 0
        self._bytes = 0

    @property
    def messages(self) -> int:
        """Messages sent since construction."""
        return self._messages

    @property
    def bytes_sent(self) -> int:
        """Payload bytes sent since construction."""
        return self._bytes

    def send(self, nbytes: int) -> float:
        """Account one message of ``nbytes``; return its transfer time."""
        self._messages += 1
        self._bytes += int(nbytes)
        return self.spec.transfer_time(nbytes)

    def reset_counters(self) -> None:
        """Zero the traffic counters."""
        self._messages = 0
        self._bytes = 0


def swap_stage_count(group_size: int) -> int:
    """Number of compositing stages for a group of ``group_size`` nodes.

    Binary swap uses ``log2 g`` stages for powers of two; the 2-3 swap
    generalization used by the paper handles arbitrary ``g`` in
    ``ceil(log2 g)`` stages.  A group of one composites locally (0
    stages).
    """
    if group_size < 1:
        raise ValueError(f"group_size must be >= 1, got {group_size}")
    if group_size == 1:
        return 0
    return int(math.ceil(math.log2(group_size)))


__all__ = ["LinkSpec", "Interconnect", "swap_stage_count"]

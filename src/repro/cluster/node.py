"""A rendering node: FIFO task queue, memory cache, render thread.

Per the paper's system design (§III-A, §V-C), a rendering node processes
incoming tasks on a First-In-First-Out basis on its rendering thread; a
separate compositing thread handles image compositing (so compositing
does not block the next render), and a communication thread talks to the
head node (modeled as free).

Task execution (Definition 1):

``TExec(i,j,k) = t_io + t_render (+ t_upload)``

* ``t_io`` — paid only when the chunk is absent from the node's main
  memory; the node then loads it through the shared
  :class:`~repro.cluster.storage.StorageModel` and inserts it into its
  LRU cache (evicting as needed).
* ``t_upload`` — host→VRAM copy, charged only when the explicit
  :class:`~repro.cluster.gpu.GpuMemoryModel` is enabled (off by default,
  matching the paper's cost model).
* ``t_render`` — from :class:`~repro.cluster.costs.CostParameters`.

``t_composite`` is charged at the *job* level by the service, since it
runs on the compositing thread.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable, Deque, Optional

from repro.cluster.costs import CostParameters
from repro.cluster.event_queue import PRIORITY_COMPLETION, EventQueue
from repro.cluster.gpu import GpuMemoryModel, GpuSpec
from repro.cluster.memory import LRUChunkCache
from repro.cluster.storage import StorageModel

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps cluster<-core one-way)
    from repro.core.job import RenderTask

TaskFinishCallback = Callable[["RenderNode", "RenderTask"], None]


class RenderNode:
    """One rendering node of the cluster.

    Attributes:
        node_id: Index of this node, ``0 <= node_id < p``.
        cache: The node's main-memory LRU chunk cache (its "memory
            quota", Table II).
        queue: Tasks assigned by the head node, processed FIFO.
        executors: Concurrent rendering pipelines (GPUs) on the node.
            The paper's systems have 1 (GTX 285) or 2 (dual FX5600)
            GPUs per node; the calibrated presets model one pipeline
            per node (matching the paper's per-node accounting), and
            the multi-GPU ablation sets 2.
    """

    __slots__ = (
        "node_id",
        "cache",
        "queue",
        "executors",
        "_cost",
        "_render_memo_get",
        "_storage",
        "_events",
        "_vram",
        "_on_task_finish",
        "_rng",
        "_jitter_buf",
        "_jitter_pos",
        "_running",
        "_loading",
        "_alive",
        "render_factor",
        "io_factor",
        "_tracer",
        "_flows",
        "_metrics",
        "_pid",
        "_slot_of",
        "_free_slots",
        "busy_time",
        "tasks_executed",
        "cache_hits",
        "cache_misses",
        "io_seconds",
        "io_timeouts",
        "composite_seconds",
        "last_finish_time",
    )

    def __init__(
        self,
        node_id: int,
        memory_quota: int,
        cost: CostParameters,
        storage: StorageModel,
        events: EventQueue,
        *,
        gpu: Optional[GpuSpec] = None,
        model_vram: bool = False,
        on_task_finish: Optional[TaskFinishCallback] = None,
        rng: Optional["object"] = None,
        executors: int = 1,
    ) -> None:
        if executors < 1:
            raise ValueError(f"executors must be >= 1, got {executors}")
        self.executors = executors
        self.node_id = node_id
        self.cache = LRUChunkCache(memory_quota)
        self.queue: Deque[RenderTask] = deque()
        self._cost = cost
        # Bound getter on the shared render-time memo (cf. the head-node
        # tables): execution probes it once per task.
        self._render_memo_get = cost._render_memo.get
        self._storage = storage
        self._events = events
        self._vram: Optional[GpuMemoryModel] = (
            GpuMemoryModel(gpu) if (model_vram and gpu is not None) else None
        )
        self._on_task_finish = on_task_finish
        self._rng = rng
        # Jitter draws are consumed one per executed task; scalar
        # ``Generator.uniform`` calls are slow, so draws are pre-fetched
        # in blocks (bit-identical: a block draw consumes the PCG64
        # stream exactly as the same number of scalar draws would).
        self._jitter_buf: list = []
        self._jitter_pos = 0
        self._running: list = []
        # Tasks with an active storage stream (keeps end_load balanced
        # across completions, crashes, and timed-out attempts).
        self._loading: set = set()
        self._alive = True
        # Straggler degradation (fault injection): multipliers on the
        # node's render and I/O times.  1.0 → healthy, hot path pays one
        # float compare per task.
        self.render_factor = 1.0
        self.io_factor = 1.0
        # observability (None → zero-cost: one identity check per task)
        self._tracer = None
        self._flows = False
        self._metrics = None
        self._pid = 0
        self._slot_of: dict = {}
        self._free_slots: list = []
        # statistics
        self.busy_time = 0.0
        self.tasks_executed = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.io_seconds = 0.0
        self.io_timeouts = 0
        self.composite_seconds = 0.0
        self.last_finish_time = 0.0

    # -- inspection --------------------------------------------------------

    @property
    def busy(self) -> bool:
        """True while at least one rendering pipeline is executing."""
        return bool(self._running)

    @property
    def saturated(self) -> bool:
        """True when every rendering pipeline is occupied."""
        return len(self._running) >= self.executors

    @property
    def alive(self) -> bool:
        """False once the node has crashed (see :meth:`fail`)."""
        return self._alive

    @property
    def current_task(self) -> Optional["RenderTask"]:
        """The earliest-started task currently executing, if any."""
        return self._running[0] if self._running else None

    @property
    def running_tasks(self) -> list:
        """All tasks currently executing (<= ``executors``)."""
        return list(self._running)

    @property
    def backlog(self) -> int:
        """Queued tasks not yet started (excludes the running one)."""
        return len(self.queue)

    @property
    def vram(self) -> Optional[GpuMemoryModel]:
        """The explicit VRAM model, when enabled."""
        return self._vram

    def utilization(self, elapsed: float) -> float:
        """Busy fraction of the node's pipeline-seconds over ``elapsed``."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / (elapsed * self.executors))

    # -- observability -----------------------------------------------------

    def set_tracer(self, tracer) -> None:
        """Attach a :class:`~repro.obs.tracer.Tracer` to this node.

        Emits one I/O span per cache-missing load, one render span per
        executed task (on a per-pipeline lane when the node has several
        executors), and cache hit/miss/evict instants.  Call before the
        simulation runs; pass ``None`` to detach.
        """
        from repro.obs.tracer import active_tracer, pid_for_node

        self._tracer = active_tracer(tracer)
        self._pid = pid_for_node(self.node_id)
        self._slot_of = {}
        self._free_slots = []
        self.cache.observer = (
            self._on_cache_event if self._tracer is not None else None
        )
        if self._vram is not None:
            self._vram.observer = (
                self._on_vram_event if self._tracer is not None else None
            )

    def set_flow_events(self, enabled: bool) -> None:
        """Emit Chrome flow steps linking each job's causal chain.

        Effective only while a tracer is attached; the simulator turns
        this on when a run carries both a tracer and an audit log.
        """
        self._flows = bool(enabled)

    def set_metrics(self, registry) -> None:
        """Publish this node's task/cache/I/O counters into ``registry``.

        The bound counters are cluster aggregates (all nodes increment
        the same series) — per-node breakdowns stay the tracer's job.
        Pass ``None`` to detach (the hot path then pays one identity
        check, like a detached tracer).
        """
        if registry is None:
            self._metrics = None
            return
        self._metrics = (
            registry.counter(
                "repro_tasks_executed", "render tasks begun executing"
            ),
            registry.counter(
                "repro_cache_hits", "tasks whose chunk was memory-resident"
            ),
            registry.counter(
                "repro_cache_misses", "tasks that paid a storage load"
            ),
            registry.counter(
                "repro_io_seconds", "simulated seconds spent loading chunks"
            ),
            registry.counter(
                "repro_io_timeouts", "chunk loads abandoned at the I/O deadline"
            ),
        )

    def _on_cache_event(self, kind: str, chunk) -> None:
        """Cache observer: emit insert/evict instants.

        The structured args (dataset, index, bytes) make chunk residency
        reconstructable from the instant stream alone — the timeline
        model pairs each insert with its evict (or the end of the run)
        to draw the cache-residency heatmap.
        """
        if kind in ("insert", "evict"):
            self._tracer.instant(
                self._pid,
                "cache",
                f"{kind} {chunk.key}",
                self._events.now,
                category="cache",
                args={
                    "dataset": chunk.dataset,
                    "index": chunk.index,
                    "bytes": chunk.size,
                },
            )

    def _on_vram_event(self, kind: str, chunk) -> None:
        """VRAM observer: emit host→device upload instants."""
        if kind == "upload":
            self._tracer.instant(
                self._pid,
                "gpu",
                f"upload {chunk.key}",
                self._events.now,
                category="render",
                args={"bytes": chunk.size},
            )

    # -- execution ---------------------------------------------------------

    def enqueue(self, task: RenderTask) -> None:
        """Accept a task from the head node; start it if idle."""
        if not self._alive:
            raise RuntimeError(f"node {self.node_id} has failed")
        if task.node is not None and task.node != self.node_id:
            raise ValueError(
                f"task {task!r} already assigned to node {task.node}, "
                f"cannot enqueue on node {self.node_id}"
            )
        task.node = self.node_id
        queue = self.queue
        queue.append(task)
        running = self._running
        executors = self.executors
        while queue and len(running) < executors:
            self._begin_next()

    def _begin_next(self) -> None:
        """Pop the next task; load its chunk (or hit) and execute."""
        task = self.queue.popleft()
        self._running.append(task)
        task.start_time = self._events._now

        # Inlined self.cache.touch — this is the per-task hit test.
        chunk = task.chunk
        entries = self.cache._entries
        if chunk in entries:
            entries.move_to_end(chunk)
            task.cache_hit = True
            self.cache_hits += 1
            self._commit_execution(task, io_time=0.0)
        else:
            task.cache_hit = False
            self.cache_misses += 1
            self._attempt_load(task, 0, 0.0)

    def _attempt_load(self, task: "RenderTask", attempt: int, waited: float) -> None:
        """Open a storage stream for a missing chunk; retry on timeout.

        With ``StorageSpec.timeout`` unset every load is accepted on the
        first attempt and this is a straight pass-through.  With a
        deadline, an attempt whose quoted duration exceeds it releases
        the stream at the deadline and retries ``backoff * 2**attempt``
        later; the final attempt is always accepted so the task cannot
        starve.  Retries re-quote the duration, so a load stalled by a
        transient I/O storm completes quickly once contention passes.
        """
        if not self._alive or task not in self._running:
            # Crash or re-dispatch (§VI-D) voided this load while the
            # retry was backing off.
            return
        now = self._events._now
        chunk = task.chunk
        io_time = self._storage.begin_load(chunk.size)
        if self.io_factor != 1.0:
            io_time *= self.io_factor
        spec = self._storage.spec
        if (
            spec.timeout is not None
            and io_time > spec.timeout
            and attempt < spec.max_retries
        ):
            self._storage.end_load(chunk.size)
            self.io_timeouts += 1
            if self._metrics is not None:
                self._metrics[4].inc()
            delay = spec.timeout + spec.backoff * (2.0 ** attempt)
            self._events.schedule(
                now + delay,
                self._attempt_load,
                task,
                attempt + 1,
                waited + delay,
                priority=PRIORITY_COMPLETION,
            )
            return
        self._loading.add(task)
        evicted = self.cache.insert(chunk)
        if self._vram is not None:
            for victim in evicted:
                self._vram.invalidate(victim)
        self._commit_execution(task, io_time=io_time, waited=waited)

    def _commit_execution(
        self, task: "RenderTask", *, io_time: float, waited: float = 0.0
    ) -> None:
        """Charge the task's costs and schedule its completion event.

        ``waited`` is simulated time already burned on timed-out load
        attempts; it is part of the task's I/O accounting but not of the
        remaining execution (it has already elapsed in event time).
        """
        now = self._events._now
        chunk = task.chunk
        hit = task.cache_hit
        upload_time = self._vram.access(chunk) if self._vram is not None else 0.0
        cost = self._cost
        render_time = self._render_memo_get(
            (chunk.size, task.job.composite_group_size)
        )
        if render_time is None:
            render_time = cost.render_time(
                chunk.size, task.job.composite_group_size
            )
        jitter = cost.render_jitter
        if jitter and self._rng is not None:
            # Actual frame cost varies with the view; the head node's
            # estimates use the mean (prediction error is corrected at
            # completion, §V-B).
            pos = self._jitter_pos
            buf = self._jitter_buf
            if pos >= len(buf):
                buf = self._jitter_buf = self._rng.uniform(
                    -1.0, 1.0, 256
                ).tolist()
                pos = 0
            self._jitter_pos = pos + 1
            render_time *= 1.0 + jitter * buf[pos]
        if self.render_factor != 1.0:
            # Straggler degradation (fault injection).
            render_time *= self.render_factor

        task.io_time = waited + io_time
        self.io_seconds += waited + io_time
        metrics = self._metrics
        if metrics is not None:
            m_tasks, m_hits, m_misses, m_io, _ = metrics
            m_tasks.inc()
            if hit:
                m_hits.inc()
            else:
                m_misses.inc()
                m_io.inc(waited + io_time)
        exec_time = io_time + upload_time + render_time
        tracer = self._tracer
        if tracer is not None:
            self._trace_execution(
                task, now, hit, io_time, upload_time, render_time
            )
        self._events.schedule(
            now + exec_time, self._finish, task, priority=PRIORITY_COMPLETION
        )

    def _trace_execution(
        self,
        task: "RenderTask",
        now: float,
        hit: bool,
        io_time: float,
        upload_time: float,
        render_time: float,
    ) -> None:
        """Emit the task's I/O + render spans and cache instant.

        Spans are recorded at task start — the discrete-event model
        fixes every duration then, so both spans are fully known.  With
        multiple executors each pipeline gets its own lane (slots are
        reused in LIFO order), keeping per-lane timestamps monotonic.
        """
        tracer = self._tracer
        pid = self._pid
        slot = self._free_slots.pop() if self._free_slots else len(self._slot_of)
        self._slot_of[task] = slot
        suffix = f" {slot}" if self.executors > 1 else ""
        key = task.chunk.key
        job_id = task.job.job_id
        tracer.instant(
            pid,
            "cache",
            "hit" if hit else "miss",
            now,
            category="cache",
            args={"chunk": key, "job": job_id},
        )
        if not hit:
            tracer.complete(
                pid,
                f"io{suffix}",
                f"load {key}",
                now,
                io_time,
                category="io",
                args={"bytes": task.chunk.size, "job": job_id},
            )
        tracer.complete(
            pid,
            f"render{suffix}",
            f"render {key}",
            now + io_time,
            upload_time + render_time,
            category="render",
            args={
                "job": job_id,
                "task": task.index,
                "hit": hit,
                "upload_s": upload_time,
            },
        )
        if self._flows:
            # Causal hop: the job's flow arrow lands on this render span.
            tracer.flow_step(
                pid, f"render{suffix}", f"job {job_id}", now + io_time, job_id
            )

    def _finish(self, task: RenderTask) -> None:
        """Completion event: record times, notify, start the next task."""
        if not self._alive or task not in self._running:
            # The node crashed while this task was in flight; the stale
            # completion event is void (the task was re-dispatched).
            # The membership test catches stale events that outlive a
            # planned revival — the node is alive again, but the voided
            # task finished elsewhere long ago.
            return
        now = self._events._now
        task.finish_time = now
        self.last_finish_time = now
        self.busy_time += now - task.start_time  # type: ignore[operator]
        self.tasks_executed += 1
        if task in self._loading:
            self._loading.discard(task)
            self._storage.end_load(task.chunk.size)
        running = self._running
        running.remove(task)
        if self._tracer is not None:
            slot = self._slot_of.pop(task, None)
            if slot is not None:
                self._free_slots.append(slot)
        if self._on_task_finish is not None:
            self._on_task_finish(self, task)
        queue = self.queue
        executors = self.executors
        while queue and len(running) < executors and self._alive:
            self._begin_next()

    def fail(self) -> "list":
        """Crash the node (paper §VI-D fault-tolerance discussion).

        The node stops accepting and executing work and its memory
        contents are lost.  Returns the orphaned tasks — the one in
        flight plus the queued backlog — with their per-run state reset
        so the head node can re-dispatch them to surviving nodes.
        """
        if not self._alive:
            return []
        self._alive = False
        if self._tracer is not None:
            self._tracer.instant(
                self._pid,
                "cache",
                "node failed",
                self._events.now,
                category="service",
            )
            self._slot_of.clear()
            self._free_slots.clear()
        orphans = []
        for task in self._running:
            if task in self._loading:
                # Balance the in-flight load's storage accounting (a
                # task backing off between timed-out attempts holds no
                # stream and needs no balancing).
                self._storage.end_load(task.chunk.size)
            orphans.append(task)
        self._running = []
        self._loading.clear()
        orphans.extend(self.queue)
        self.queue.clear()
        for task in orphans:
            task.node = None
            task.start_time = None
            task.finish_time = None
            task.io_time = 0.0
            task.cache_hit = None
        self.cache.clear()
        if self._vram is not None:
            # VRAM contents die with the node; a revived node starts
            # with whatever the (now cold) model still tracks, which the
            # first accesses repopulate.
            pass
        return orphans

    def revive(self) -> None:
        """Bring a crashed node back (planned revival, fault injection).

        The process restarts empty: :meth:`fail` already cleared the
        queue, the running set, and the cache, so rejoining is just the
        liveness flip.  No-op when the node never crashed.
        """
        if self._alive:
            return
        self._alive = True
        if self._tracer is not None:
            self._tracer.instant(
                self._pid,
                "cache",
                "node revived",
                self._events.now,
                category="service",
            )

    def steal_backlog(self) -> "list":
        """Remove and return the queued (unstarted) tasks.

        Speculative re-execution: tasks already running stay — they
        finish (slowly) where they are, so no task completes twice.
        Stolen tasks have their node slot reset for re-dispatch; their
        other per-run state was never touched (they had not started).
        """
        stolen = list(self.queue)
        self.queue.clear()
        for task in stolen:
            task.node = None
        return stolen

    def drain_check(self) -> None:
        """Assert the node is quiescent (test helper)."""
        if self._running or self.queue:
            raise AssertionError(
                f"node {self.node_id} not drained: "
                f"running={len(self._running)}, backlog={len(self.queue)}"
            )


__all__ = ["RenderNode", "TaskFinishCallback"]

"""GPU specification and the optional explicit video-memory model.

The paper's cost model folds the main-memory → video-memory upload into
the I/O term and omits it entirely on a main-memory hit ("the I/O time
can be omitted if the data chunk is already loaded in the main memory",
§IV Definition 1).  We follow that by default: :class:`GpuSpec` only
bounds ``Chkmax`` (a chunk must fit in video memory).

The paper's stated future work — "minimize the data transfer between main
memory and video memory" — motivates :class:`GpuMemoryModel`, an explicit
VRAM LRU with upload costs.  Enabling it (``SystemConfig.model_vram``)
charges an upload whenever a task's chunk is in main memory but not in
video memory, which exposes VRAM thrashing when one node serves more
distinct chunks than its GPU can hold.  The ablation bench
``benchmarks/bench_ablation_vram.py`` quantifies this effect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.memory import LRUChunkCache
from repro.util.units import GiB
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only (keeps cluster<-core one-way)
    from repro.core.chunks import Chunk


@dataclass(frozen=True)
class GpuSpec:
    """Static description of one GPU.

    Attributes:
        video_memory: VRAM capacity in bytes (GTX 285: 1 GiB; Quadro
            FX5600: 1.5 GiB).
        upload_bandwidth: Host-to-device copy bandwidth in bytes/s
            (PCIe-generation dependent; ~4-6 GiB/s for the paper's era).
    """

    video_memory: int = 1 * GiB
    upload_bandwidth: float = 4 * GiB

    def __post_init__(self) -> None:
        check_positive("GpuSpec.video_memory", self.video_memory)
        check_positive("GpuSpec.upload_bandwidth", self.upload_bandwidth)

    def upload_time(self, nbytes: int) -> float:
        """Host→device copy time for ``nbytes``."""
        return nbytes / self.upload_bandwidth


class GpuMemoryModel:
    """Explicit VRAM LRU cache tracking which chunks are GPU-resident.

    ``access`` returns the upload time to charge for a task: zero if the
    chunk is already resident, otherwise the host→device copy time (with
    LRU eviction of older chunks to make room).

    An optional ``observer`` callable — ``observer(kind, chunk)`` with
    ``kind`` in ``{"upload", "vram-hit"}`` — fires on accesses so the
    observability layer can emit VRAM instants; ``None`` by default.
    """

    def __init__(self, spec: GpuSpec) -> None:
        self.spec = spec
        self.observer = None
        self._cache = LRUChunkCache(spec.video_memory)
        self._uploads = 0
        self._upload_bytes = 0
        self._hits = 0

    @property
    def uploads(self) -> int:
        """Number of host→device chunk uploads performed."""
        return self._uploads

    @property
    def upload_bytes(self) -> int:
        """Total bytes uploaded to the device."""
        return self._upload_bytes

    @property
    def hits(self) -> int:
        """Number of VRAM-resident accesses (no upload needed)."""
        return self._hits

    def resident(self, chunk: Chunk) -> bool:
        """True if ``chunk`` currently occupies video memory."""
        return chunk in self._cache

    def access(self, chunk: Chunk) -> float:
        """Account one rendering access to ``chunk``; return upload seconds."""
        if self._cache.touch(chunk):
            self._hits += 1
            if self.observer is not None:
                self.observer("vram-hit", chunk)
            return 0.0
        self._cache.insert(chunk)
        self._uploads += 1
        self._upload_bytes += chunk.size
        if self.observer is not None:
            self.observer("upload", chunk)
        return self.spec.upload_time(chunk.size)

    def invalidate(self, chunk: Chunk) -> None:
        """Drop ``chunk`` from VRAM (e.g. after main-memory eviction)."""
        self._cache.evict(chunk)


__all__ = ["GpuSpec", "GpuMemoryModel"]

"""Gradient-based Blinn-Phong shading for the ray caster.

Levoy's classic volume-rendering pipeline [5] applies shading at every
sample point using the scalar field's gradient as the surface normal;
the GPU ray casters the paper builds on [6] do the same in fragment
shaders.  This module provides the CPU equivalent:

* :func:`gradient` — central-difference gradients of the (trilinearly
  interpolated) field at arbitrary points,
* :class:`Lighting` — Blinn-Phong material/light parameters,
* :func:`shade` — per-sample color modulation.

Shading a *brick* needs field values one voxel beyond the owned region
in every direction; build bricks with ``margin=1``
(:meth:`repro.render.volume.Volume.bricks`) so that brick-parallel
shaded rendering still reproduces the monolithic image exactly.
Gradient sample points are clamped to the volume's valid interpolation
range, so boundary voxels get consistent one-sided differences in both
paths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

from repro.render.raycast import trilinear
from repro.render.volume import Brick


@dataclass(frozen=True)
class Lighting:
    """Blinn-Phong parameters.

    Attributes:
        ambient / diffuse / specular: Material coefficients in [0, 1].
        shininess: Specular exponent.
        light_direction: Unit-ish vector *towards* the light in voxel
            space; ``None`` means a headlight (the view direction).
        gradient_floor: Gradient magnitudes below this render unshaded
            (homogeneous regions have meaningless normals).
    """

    ambient: float = 0.3
    diffuse: float = 0.6
    specular: float = 0.2
    shininess: float = 32.0
    light_direction: Optional[Tuple[float, float, float]] = None
    gradient_floor: float = 1e-3

    def __post_init__(self) -> None:
        for name in ("ambient", "diffuse", "specular"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.5:
                raise ValueError(f"{name} must be in [0, 1.5], got {value}")
        if self.shininess <= 0:
            raise ValueError(f"shininess must be > 0, got {self.shininess}")
        if self.gradient_floor < 0:
            raise ValueError(
                f"gradient_floor must be >= 0, got {self.gradient_floor}"
            )


def gradient(
    brick: Brick,
    points: np.ndarray,
    *,
    h: float = 1.0,
) -> np.ndarray:
    """Central-difference gradient of the field at global ``points``.

    Offset sample positions are clamped to the brick's data extent.
    For a ``margin=1`` brick (or the whole volume) the extent coincides
    with the volume boundary exactly where clamping can occur, so
    brick-parallel gradients equal monolithic ones at every owned
    sample point; interior offsets are never clamped.

    Args:
        brick: Source of field data (``margin=1`` bricks or the whole
            volume).
        points: ``(N, 3)`` global sample positions.
        h: Finite-difference step in voxels.

    Returns:
        ``(N, 3)`` gradient vectors (d/dx, d/dy, d/dz).
    """
    origin = np.asarray(brick.origin, dtype=np.float64)
    limit = origin + np.asarray(brick.data.shape, dtype=np.float64) - 1.0
    out = np.empty((points.shape[0], 3), dtype=np.float64)
    for axis in range(3):
        step = np.zeros(3)
        step[axis] = h
        plus = np.clip(points + step, origin, limit)
        minus = np.clip(points - step, origin, limit)
        span = plus[:, axis] - minus[:, axis]
        span[span == 0.0] = 1.0  # degenerate single-voxel axis
        f_plus = trilinear(brick.data, plus - origin)
        f_minus = trilinear(brick.data, minus - origin)
        out[:, axis] = (f_plus - f_minus) / span
    return out


def shade(
    rgb: np.ndarray,
    gradients: np.ndarray,
    view_dirs: np.ndarray,
    lighting: Lighting,
) -> np.ndarray:
    """Blinn-Phong-shade per-sample colors.

    Args:
        rgb: ``(N, 3)`` base colors from the transfer function.
        gradients: ``(N, 3)`` field gradients at the samples.
        view_dirs: ``(N, 3)`` unit ray directions (from eye into the
            volume).
        lighting: Material/light parameters.

    Returns:
        ``(N, 3)`` shaded colors, clipped to [0, 1].
    """
    mag = np.linalg.norm(gradients, axis=1)
    lit = mag > lighting.gradient_floor
    shaded = rgb.astype(np.float64).copy()
    if not np.any(lit):
        return shaded
    # Normals point against the gradient (outward from dense regions).
    normals = -gradients[lit] / mag[lit][:, None]
    if lighting.light_direction is None:
        to_light = -view_dirs[lit]  # headlight
    else:
        light = np.asarray(lighting.light_direction, dtype=np.float64)
        light = light / np.linalg.norm(light)
        to_light = np.broadcast_to(light, normals.shape)
    to_eye = -view_dirs[lit]
    # Two-sided diffuse: volume "surfaces" have no consistent winding.
    n_dot_l = np.abs(np.sum(normals * to_light, axis=1))
    half = to_light + to_eye
    half_norm = np.linalg.norm(half, axis=1, keepdims=True)
    half_norm[half_norm == 0.0] = 1.0
    half = half / half_norm
    n_dot_h = np.abs(np.sum(normals * half, axis=1))
    intensity = lighting.ambient + lighting.diffuse * n_dot_l
    shaded[lit] = shaded[lit] * intensity[:, None]
    shaded[lit] += (
        lighting.specular * np.power(n_dot_h, lighting.shininess)
    )[:, None]
    np.clip(shaded, 0.0, 1.0, out=shaded)
    return shaded


__all__ = ["Lighting", "gradient", "shade"]

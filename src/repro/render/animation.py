"""Batch animation rendering: camera paths → frame sequences.

The paper's batch jobs are "producing animation or visualizing
time-varying data" (§I); one batch submission is a series of rendering
jobs over the same dataset.  This module provides the functional
counterpart for the software renderer: orbit camera paths and a driver
that renders every frame sort-last and (optionally) writes PPM files —
what a rendering node group actually executes when the scheduler grants
a batch submission its slots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Sequence, Union

import numpy as np

from repro.render.camera import Camera, default_camera_for
from repro.render.image import write_ppm
from repro.render.sortlast import render_sort_last
from repro.render.transfer_function import TransferFunction
from repro.render.volume import Volume
from repro.util.validation import check_positive

if False:  # pragma: no cover - typing only
    from repro.render.shading import Lighting


@dataclass(frozen=True)
class OrbitPath:
    """A camera orbit: azimuth sweep with optional elevation bob.

    Attributes:
        frames: Number of frames.
        azimuth_start / azimuth_end: Orbit range in degrees (end
            exclusive, so a 360° sweep loops seamlessly).
        elevation: Base elevation in degrees.
        elevation_swing: Sinusoidal elevation amplitude over the sweep.
    """

    frames: int
    azimuth_start: float = 0.0
    azimuth_end: float = 360.0
    elevation: float = 20.0
    elevation_swing: float = 0.0

    def __post_init__(self) -> None:
        check_positive("frames", self.frames)

    def cameras(self, shape, **camera_overrides) -> List[Camera]:
        """Instantiate per-frame cameras framing a volume of ``shape``."""
        out: List[Camera] = []
        span = self.azimuth_end - self.azimuth_start
        for i in range(self.frames):
            u = i / self.frames
            azimuth = self.azimuth_start + span * u
            elevation = self.elevation + self.elevation_swing * math.sin(
                2.0 * math.pi * u
            )
            out.append(
                default_camera_for(
                    shape,
                    azimuth=azimuth,
                    elevation=elevation,
                    **camera_overrides,
                )
            )
        return out


@dataclass
class AnimationResult:
    """Summary of one rendered animation."""

    frames: int
    ranks: int
    algorithm: str
    total_samples: int
    total_messages: int
    total_bytes: int
    paths: List[Path] = field(default_factory=list)


FrameCallback = Callable[[int, np.ndarray], None]


def render_animation(
    volume: Volume,
    path: OrbitPath,
    tf: TransferFunction,
    *,
    ranks: int = 4,
    algorithm: str = "2-3-swap",
    step: float = 0.7,
    lighting: Optional["Lighting"] = None,
    width: int = 128,
    height: int = 128,
    output_dir: Optional[Union[str, Path]] = None,
    on_frame: Optional[FrameCallback] = None,
) -> AnimationResult:
    """Render every frame of an orbit animation sort-last.

    Args:
        output_dir: If given, frames are written as
            ``frame_0000.ppm …`` into this directory.
        on_frame: Optional callback ``(index, premultiplied_rgba)`` per
            frame (e.g. for streaming or custom encoding).

    Returns:
        Aggregate statistics plus any written file paths.
    """
    cameras = path.cameras(volume.shape, width=width, height=height)
    out_dir: Optional[Path] = None
    if output_dir is not None:
        out_dir = Path(output_dir)
        out_dir.mkdir(parents=True, exist_ok=True)
    result = AnimationResult(
        frames=len(cameras),
        ranks=ranks,
        algorithm=algorithm,
        total_samples=0,
        total_messages=0,
        total_bytes=0,
    )
    for i, camera in enumerate(cameras):
        frame = render_sort_last(
            volume,
            camera,
            tf,
            ranks=ranks,
            algorithm=algorithm,
            step=step,
            lighting=lighting,
        )
        result.total_samples += frame.render_stats.samples
        result.total_messages += frame.compositing.messages
        result.total_bytes += frame.compositing.bytes_sent
        if on_frame is not None:
            on_frame(i, frame.image)
        if out_dir is not None:
            result.paths.append(
                write_ppm(out_dir / f"frame_{i:04d}.ppm", frame.image, background=0.08)
            )
    return result


__all__ = ["OrbitPath", "AnimationResult", "render_animation"]

"""Transfer functions: scalar value → color and opacity.

Ray casting applies a transfer function at every sample point to map
scalar values to optical properties (paper §II-A).  This module
implements piecewise-linear RGBA transfer functions compiled to a
lookup table, plus a few presets suited to the synthetic datasets.

Opacities in the control points are *reference* opacities for a unit
sampling step; the renderer applies the standard opacity correction
``a' = 1 - (1 - a)^(dt / reference_step)`` so images converge as the
step size shrinks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

ControlPoint = Tuple[float, Tuple[float, float, float, float]]


@dataclass(frozen=True)
class TransferFunction:
    """A piecewise-linear RGBA transfer function over scalars in [0, 1].

    Attributes:
        points: Control points ``(scalar, (r, g, b, a))`` sorted by
            scalar; evaluation clamps outside the first/last point.
        resolution: LUT resolution used by the renderer.
    """

    points: Tuple[ControlPoint, ...]
    resolution: int = 256

    def __post_init__(self) -> None:
        if len(self.points) < 2:
            raise ValueError("a transfer function needs >= 2 control points")
        xs = [p[0] for p in self.points]
        if any(b < a for a, b in zip(xs, xs[1:])):
            raise ValueError(f"control points must be sorted by scalar: {xs}")
        for x, rgba in self.points:
            if not 0.0 <= x <= 1.0:
                raise ValueError(f"control scalar {x} outside [0, 1]")
            if len(rgba) != 4:
                raise ValueError(f"RGBA needs 4 components, got {rgba!r}")
            if any(not 0.0 <= c <= 1.0 for c in rgba):
                raise ValueError(f"RGBA components outside [0, 1]: {rgba!r}")
        if self.resolution < 2:
            raise ValueError(f"resolution must be >= 2, got {self.resolution}")

    def lut(self) -> np.ndarray:
        """Compile to a ``(resolution, 4)`` float32 lookup table."""
        xs = np.array([p[0] for p in self.points], dtype=np.float64)
        cs = np.array([p[1] for p in self.points], dtype=np.float64)
        grid = np.linspace(0.0, 1.0, self.resolution)
        table = np.empty((self.resolution, 4), dtype=np.float32)
        for ch in range(4):
            table[:, ch] = np.interp(grid, xs, cs[:, ch])
        return table

    def __call__(self, scalars: np.ndarray) -> np.ndarray:
        """Evaluate exactly (piecewise-linear, no LUT quantization)."""
        xs = np.array([p[0] for p in self.points], dtype=np.float64)
        cs = np.array([p[1] for p in self.points], dtype=np.float64)
        s = np.clip(np.asarray(scalars, dtype=np.float64), 0.0, 1.0)
        out = np.empty(s.shape + (4,), dtype=np.float32)
        for ch in range(4):
            out[..., ch] = np.interp(s, xs, cs[:, ch])
        return out


def grayscale_ramp(max_opacity: float = 0.5) -> TransferFunction:
    """Transparent black → opaque white ramp."""
    return TransferFunction(
        points=(
            (0.0, (0.0, 0.0, 0.0, 0.0)),
            (1.0, (1.0, 1.0, 1.0, max_opacity)),
        )
    )


def fire(max_opacity: float = 0.6) -> TransferFunction:
    """Black-body style ramp (combustion/plume rendering)."""
    return TransferFunction(
        points=(
            (0.00, (0.0, 0.0, 0.0, 0.00)),
            (0.20, (0.1, 0.0, 0.0, 0.00)),
            (0.40, (0.8, 0.2, 0.0, 0.15 * max_opacity)),
            (0.60, (1.0, 0.5, 0.0, 0.45 * max_opacity)),
            (0.80, (1.0, 0.8, 0.2, 0.80 * max_opacity)),
            (1.00, (1.0, 1.0, 0.8, max_opacity)),
        )
    )


def cool_warm(max_opacity: float = 0.5) -> TransferFunction:
    """Blue → white → red diverging map (supernova shells)."""
    return TransferFunction(
        points=(
            (0.00, (0.0, 0.1, 0.5, 0.00)),
            (0.30, (0.2, 0.5, 0.9, 0.15 * max_opacity)),
            (0.50, (0.9, 0.9, 0.9, 0.30 * max_opacity)),
            (0.70, (0.9, 0.4, 0.2, 0.60 * max_opacity)),
            (1.00, (0.7, 0.0, 0.0, max_opacity)),
        )
    )


def isosurface_like(
    level: float,
    *,
    width: float = 0.05,
    color: Sequence[float] = (0.9, 0.9, 0.2),
    opacity: float = 0.8,
) -> TransferFunction:
    """A narrow opacity peak around ``level`` (pseudo-isosurface)."""
    if not 0.0 < level < 1.0:
        raise ValueError(f"level must be inside (0, 1), got {level}")
    lo = max(0.0, level - width)
    hi = min(1.0, level + width)
    r, g, b = color
    points: List[ControlPoint] = [(0.0, (0.0, 0.0, 0.0, 0.0))]
    if lo > 0.0:
        points.append((lo, (r, g, b, 0.0)))
    points.append((level, (r, g, b, opacity)))
    if hi < 1.0:
        points.append((hi, (r, g, b, 0.0)))
        points.append((1.0, (0.0, 0.0, 0.0, 0.0)))
    else:
        points.append((1.0, (r, g, b, opacity)))
    return TransferFunction(points=tuple(points))


__all__ = [
    "TransferFunction",
    "grayscale_ramp",
    "fire",
    "cool_warm",
    "isosurface_like",
]

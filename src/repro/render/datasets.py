"""Synthetic volumetric datasets in the spirit of the paper's Fig. 10.

The paper renders a plume simulation (252x252x1024), a combustion
simulation (2025x1600x400), and a supernova simulation (864^3).  Those
datasets are not public; these procedural generators produce fields
with the same qualitative structure at configurable resolution:

* :func:`plume` — a buoyant turbulent column rising along +z,
* :func:`combustion` — wrinkled flame sheets around a stoichiometric
  surface of a noisy mixture-fraction field,
* :func:`supernova` — an expanding shell structure with angular
  perturbations and a hot core.

All return float32 volumes normalized to [0, 1].  The noise is seeded
value noise (trilinearly upsampled random lattices, summed over
octaves), so datasets are fully reproducible.
"""

from __future__ import annotations

from typing import Dict, Sequence, Tuple

import numpy as np
from scipy import ndimage

from repro.render.volume import Volume
from repro.util.rng import SeedLike, make_rng


def value_noise(
    shape: Sequence[int],
    *,
    octaves: int = 3,
    base_cells: int = 4,
    persistence: float = 0.5,
    seed: SeedLike = 0,
) -> np.ndarray:
    """Seeded multi-octave value noise, normalized to [0, 1].

    Each octave draws a coarse random lattice and trilinearly upsamples
    it to the target shape; octave ``o`` has ``base_cells * 2^o`` cells
    per axis and amplitude ``persistence^o``.
    """
    if octaves < 1:
        raise ValueError(f"octaves must be >= 1, got {octaves}")
    rng = make_rng(seed)
    out = np.zeros(shape, dtype=np.float64)
    amplitude = 1.0
    total = 0.0
    for o in range(octaves):
        cells = [min(s, base_cells * (2**o) + 1) for s in shape]
        lattice = rng.random(cells)
        zoom = [s / c for s, c in zip(shape, cells)]
        out += amplitude * ndimage.zoom(lattice, zoom, order=1)
        total += amplitude
        amplitude *= persistence
    out /= total
    lo, hi = out.min(), out.max()
    if hi > lo:
        out = (out - lo) / (hi - lo)
    return out


def _grid(shape: Sequence[int]) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Normalized coordinates in [0, 1] per axis."""
    axes = [np.linspace(0.0, 1.0, s) for s in shape]
    return np.meshgrid(*axes, indexing="ij")  # type: ignore[return-value]


def _normalize(field: np.ndarray) -> np.ndarray:
    lo, hi = field.min(), field.max()
    if hi > lo:
        field = (field - lo) / (hi - lo)
    return field.astype(np.float32)


def plume(
    shape: Sequence[int] = (64, 64, 128),
    *,
    seed: SeedLike = 11,
) -> Volume:
    """A buoyant turbulent plume rising along +z."""
    x, y, z = _grid(shape)
    noise = value_noise(shape, octaves=4, base_cells=3, seed=seed)
    sway = 0.08 * np.sin(6.0 * z + 4.0 * noise)
    r = np.sqrt((x - 0.5 - sway) ** 2 + (y - 0.5 + 0.5 * sway) ** 2)
    # The column widens with height and its density decays upward.
    radius = 0.08 + 0.22 * z
    column = np.exp(-((r / radius) ** 2))
    density = column * (1.0 - 0.55 * z) * (0.55 + 0.9 * noise)
    density *= z > 0.02  # lift-off above the inlet
    return Volume(_normalize(density), name="plume")


def combustion(
    shape: Sequence[int] = (96, 72, 48),
    *,
    seed: SeedLike = 23,
) -> Volume:
    """Wrinkled flame sheets of a turbulent combustion field."""
    x, _y, _z = _grid(shape)
    mixture = 0.62 * x + 0.38 * value_noise(
        shape, octaves=4, base_cells=4, seed=seed
    )
    # Heat release peaks where the mixture fraction crosses
    # stoichiometry; two offset sheets give layered flame fronts.
    sheet1 = np.exp(-(((mixture - 0.45) / 0.045) ** 2))
    sheet2 = 0.6 * np.exp(-(((mixture - 0.62) / 0.07) ** 2))
    temperature = sheet1 + sheet2
    return Volume(_normalize(temperature), name="combustion")


def supernova(
    shape: Sequence[int] = (64, 64, 64),
    *,
    seed: SeedLike = 37,
) -> Volume:
    """Expanding shells with angular perturbation and a hot core."""
    x, y, z = _grid(shape)
    cx = x - 0.5
    cy = y - 0.5
    cz = z - 0.5
    r = np.sqrt(cx**2 + cy**2 + cz**2) / 0.5
    noise = value_noise(shape, octaves=4, base_cells=4, seed=seed)
    wobble = 0.12 * (noise - 0.5)
    shells = np.exp(-(((r + wobble - 0.72) / 0.08) ** 2)) + 0.7 * np.exp(
        -(((r + wobble - 0.45) / 0.06) ** 2)
    )
    core = 0.9 * np.exp(-((r / 0.16) ** 2))
    field = (shells + core) * (r < 1.05)
    return Volume(_normalize(field), name="supernova")


_GENERATORS = {
    "plume": plume,
    "combustion": combustion,
    "supernova": supernova,
}


def make_volume(
    name: str,
    shape: Sequence[int] = None,  # type: ignore[assignment]
    *,
    seed: SeedLike = None,
) -> Volume:
    """Build a named synthetic dataset (``plume`` / ``combustion`` /
    ``supernova``) at the given resolution."""
    generator = _GENERATORS.get(name)
    if generator is None:
        raise KeyError(
            f"unknown dataset {name!r}; valid: {sorted(_GENERATORS)}"
        )
    kwargs: Dict[str, object] = {}
    if shape is not None:
        kwargs["shape"] = shape
    if seed is not None:
        kwargs["seed"] = seed
    return generator(**kwargs)  # type: ignore[arg-type]


DATASET_NAMES = tuple(sorted(_GENERATORS))

__all__ = [
    "value_noise",
    "plume",
    "combustion",
    "supernova",
    "make_volume",
    "DATASET_NAMES",
]

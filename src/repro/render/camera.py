"""Cameras and ray generation for the software ray caster.

An orbit camera parameterized by azimuth/elevation around a look-at
center, supporting orthographic (the mode used by correctness tests —
axis-ordering of bricks is exact) and perspective projection.  Rays are
produced as vectorized ``(H*W, 3)`` origin/direction arrays in voxel
space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from repro.util.validation import check_positive


def _normalize(v: np.ndarray) -> np.ndarray:
    norm = float(np.linalg.norm(v))
    if norm == 0.0:
        raise ValueError("zero-length vector")
    return v / norm


@dataclass(frozen=True)
class Camera:
    """An orbit camera.

    Attributes:
        center: Look-at point (voxel space).
        distance: Eye distance from the center.
        azimuth: Horizontal orbit angle in degrees.
        elevation: Vertical orbit angle in degrees, in (-90, 90).
        width / height: Image resolution in pixels.
        mode: ``"ortho"`` or ``"persp"``.
        view_size: For orthographic — world-space height of the image
            plane window; for perspective — ignored.
        fov_degrees: Vertical field of view for perspective mode.
        up: World up vector.
    """

    center: Tuple[float, float, float]
    distance: float
    azimuth: float = 30.0
    elevation: float = 20.0
    width: int = 128
    height: int = 128
    mode: str = "ortho"
    view_size: float = 2.0
    fov_degrees: float = 45.0
    up: Tuple[float, float, float] = (0.0, 0.0, 1.0)

    def __post_init__(self) -> None:
        check_positive("distance", self.distance)
        check_positive("width", self.width)
        check_positive("height", self.height)
        check_positive("view_size", self.view_size)
        if self.mode not in ("ortho", "persp"):
            raise ValueError(f"mode must be 'ortho' or 'persp', got {self.mode!r}")
        if not -89.9 <= self.elevation <= 89.9:
            raise ValueError(f"elevation out of range: {self.elevation}")
        if not 1.0 <= self.fov_degrees <= 170.0:
            raise ValueError(f"fov out of range: {self.fov_degrees}")

    # -- geometry ------------------------------------------------------------

    def eye(self) -> np.ndarray:
        """Camera position in voxel space."""
        az = math.radians(self.azimuth)
        el = math.radians(self.elevation)
        direction = np.array(
            [
                math.cos(el) * math.cos(az),
                math.cos(el) * math.sin(az),
                math.sin(el),
            ]
        )
        return np.asarray(self.center, dtype=np.float64) + self.distance * direction

    def basis(self) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return (forward, right, up) orthonormal camera axes."""
        eye = self.eye()
        forward = _normalize(np.asarray(self.center, dtype=np.float64) - eye)
        up_hint = np.asarray(self.up, dtype=np.float64)
        right = np.cross(forward, up_hint)
        if np.linalg.norm(right) < 1e-9:  # looking along `up`
            right = np.cross(forward, np.array([0.0, 1.0, 0.0]))
        right = _normalize(right)
        true_up = np.cross(right, forward)
        return forward, right, true_up

    def rays(self) -> Tuple[np.ndarray, np.ndarray]:
        """Generate per-pixel rays.

        Returns:
            ``(origins, directions)`` — each of shape ``(H*W, 3)``;
            directions are unit length.  Pixel (row 0, col 0) is the
            top-left of the image.
        """
        eye = self.eye()
        forward, right, true_up = self.basis()
        aspect = self.width / self.height
        # Pixel-center coordinates in [-0.5, 0.5] (v flipped: +v is up).
        us = (np.arange(self.width) + 0.5) / self.width - 0.5
        vs = 0.5 - (np.arange(self.height) + 0.5) / self.height
        uu, vv = np.meshgrid(us, vs)  # (H, W)
        if self.mode == "ortho":
            h = self.view_size
            w = self.view_size * aspect
            offsets = (
                uu[..., None] * (w * right) + vv[..., None] * (h * true_up)
            )
            origins = eye + offsets.reshape(-1, 3)
            directions = np.broadcast_to(forward, origins.shape).copy()
        else:
            tan_half = math.tan(math.radians(self.fov_degrees) / 2.0)
            dirs = (
                forward
                + uu[..., None] * (2.0 * tan_half * aspect * right)
                + vv[..., None] * (2.0 * tan_half * true_up)
            ).reshape(-1, 3)
            directions = dirs / np.linalg.norm(dirs, axis=1, keepdims=True)
            origins = np.broadcast_to(eye, directions.shape).copy()
        return origins, directions


def default_camera_for(shape: Tuple[int, int, int], **overrides: object) -> Camera:
    """A camera framing a volume of the given voxel ``shape``."""
    center = tuple((n - 1) / 2.0 for n in shape)
    diag = math.sqrt(sum((n - 1) ** 2 for n in shape))
    params = dict(
        center=center,
        distance=1.8 * diag,
        view_size=1.1 * diag,
        azimuth=30.0,
        elevation=20.0,
    )
    params.update(overrides)  # type: ignore[arg-type]
    return Camera(**params)  # type: ignore[arg-type]


__all__ = ["Camera", "default_camera_for"]

"""Volumetric datasets and brick decomposition for sort-last rendering.

A :class:`Volume` wraps a 3-D scalar field (float32, values in [0, 1])
indexed ``[x, y, z]`` in *voxel space*: the continuous sampling domain
is ``[0, nx-1] x [0, ny-1] x [0, nz-1]`` and trilinear interpolation is
valid for points with ``floor(p) <= n-2`` per axis.

For parallel (sort-last) rendering the volume splits into axis-aligned
**bricks**.  Ownership is defined on interpolation *base cells*: brick
``b`` owns sample points ``p`` with ``lo <= p < hi`` (half-open per
axis), so every sample point on a ray belongs to exactly one brick and
brick-wise rendering + depth compositing reproduces the monolithic
render exactly.  Each brick carries a one-voxel ghost layer on its high
faces so interpolation near its boundary needs no remote data — the
standard ghost-cell construction of distributed volume renderers.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.util.validation import check_positive


@dataclass(frozen=True)
class Brick:
    """One axis-aligned piece of a volume.

    Attributes:
        index: Grid position ``(bx, by, bz)`` of the brick.
        lo: Inclusive lower corner of the owned sample region (voxels).
        hi: Exclusive upper corner of the owned sample region (voxels).
        origin: Global voxel index of ``data[0, 0, 0]``.  Equals ``lo``
            for a plain ghost-1 brick; lies below ``lo`` when the brick
            carries an extra *margin* for gradient (shading) lookups.
        data: Local scalar field; ``data[i, j, k]`` corresponds to
            global voxel ``origin + (i, j, k)``.
    """

    index: Tuple[int, int, int]
    lo: Tuple[int, int, int]
    hi: Tuple[int, int, int]
    data: np.ndarray
    origin: Tuple[int, int, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.origin is None:
            object.__setattr__(self, "origin", self.lo)

    @property
    def owned_shape(self) -> Tuple[int, int, int]:
        """Extent of the owned sample region per axis."""
        return tuple(h - l for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    def covers_point_range(self, lo: Sequence[float], hi: Sequence[float]) -> bool:
        """True if trilinear lookups are valid for all points in
        ``[lo, hi]`` (the interpolation cell of every point is in
        ``data``)."""
        for axis in range(3):
            base_min = int(np.floor(lo[axis]))
            base_max = int(np.floor(hi[axis]))
            if base_min < self.origin[axis]:
                return False
            if base_max + 1 > self.origin[axis] + self.data.shape[axis] - 1:
                return False
        return True

    def center(self) -> np.ndarray:
        """Center of the owned region in voxel space."""
        return (np.asarray(self.lo, dtype=np.float64) + np.asarray(self.hi)) / 2.0

    def contains(self, points: np.ndarray) -> np.ndarray:
        """Boolean ownership mask for an ``(N, 3)`` array of points."""
        lo = np.asarray(self.lo, dtype=np.float64)
        hi = np.asarray(self.hi, dtype=np.float64)
        return np.all((points >= lo) & (points < hi), axis=-1)


class Volume:
    """A scalar volume with brick decomposition support.

    Args:
        data: 3-D array; converted to float32.  Values are expected in
            [0, 1] (transfer functions index a [0, 1] LUT; out-of-range
            values are clamped at sampling time).
        name: Optional label (dataset name).
    """

    def __init__(self, data: np.ndarray, *, name: str = "volume") -> None:
        array = np.asarray(data, dtype=np.float32)
        if array.ndim != 3:
            raise ValueError(f"volume data must be 3-D, got shape {array.shape}")
        if min(array.shape) < 2:
            raise ValueError(
                f"each axis needs >= 2 voxels for interpolation, got {array.shape}"
            )
        self.data = array
        self.name = name

    @property
    def shape(self) -> Tuple[int, int, int]:
        """Voxel counts per axis."""
        return self.data.shape  # type: ignore[return-value]

    @property
    def nbytes(self) -> int:
        """In-memory size of the scalar field."""
        return int(self.data.nbytes)

    def bounds(self) -> Tuple[np.ndarray, np.ndarray]:
        """Continuous sampling domain ``[0, n-1]`` per axis."""
        hi = np.asarray(self.shape, dtype=np.float64) - 1.0
        return np.zeros(3), hi

    def whole_brick(self) -> Brick:
        """The volume as a single brick (monolithic rendering)."""
        n = self.shape
        return Brick(
            index=(0, 0, 0),
            lo=(0, 0, 0),
            hi=(n[0] - 1, n[1] - 1, n[2] - 1),
            data=self.data,
        )

    def bricks(self, counts: Sequence[int], *, margin: int = 0) -> List[Brick]:
        """Split into a regular ``bx x by x bz`` grid of bricks.

        The *base-cell* space ``[0, n-1)`` per axis is split as evenly
        as possible; each brick's data slice extends one voxel past its
        owned region (the interpolation ghost layer), clamped at the
        volume edge.

        Args:
            margin: Extra voxels of data on every side (clamped at the
                volume boundary).  ``margin=1`` suffices for central-
                difference gradients at owned sample points (shading).

        Raises:
            ValueError: If a requested axis count exceeds the number of
                base cells on that axis.
        """
        if len(counts) != 3:
            raise ValueError(f"counts must have 3 entries, got {counts!r}")
        if margin < 0:
            raise ValueError(f"margin must be >= 0, got {margin}")
        edges: List[np.ndarray] = []
        for axis, c in enumerate(counts):
            check_positive(f"counts[{axis}]", c)
            cells = self.shape[axis] - 1
            if c > cells:
                raise ValueError(
                    f"axis {axis}: cannot split {cells} cells into {c} bricks"
                )
            edges.append(np.linspace(0, cells, int(c) + 1).astype(np.int64))
        out: List[Brick] = []
        n = self.shape
        for bx, by, bz in itertools.product(*(range(int(c)) for c in counts)):
            lo = tuple(int(v) for v in (edges[0][bx], edges[1][by], edges[2][bz]))
            hi = tuple(
                int(v) for v in (edges[0][bx + 1], edges[1][by + 1], edges[2][bz + 1])
            )
            # Data covers base cells lo..hi-1 plus the +1 ghost vertex,
            # widened by `margin` and clamped to the volume.
            origin = tuple(max(0, l - margin) for l in lo)
            stop = tuple(min(n[a], hi[a] + 1 + margin) for a in range(3))
            sl = tuple(slice(o, s) for o, s in zip(origin, stop))
            out.append(
                Brick(
                    index=(bx, by, bz),
                    lo=lo,  # type: ignore[arg-type]
                    hi=hi,  # type: ignore[arg-type]
                    data=self.data[sl],
                    origin=origin,  # type: ignore[arg-type]
                )
            )
        return out

    def split_for_ranks(self, ranks: int, *, margin: int = 0) -> List[Brick]:
        """Split into approximately ``ranks`` bricks (sort-last layout).

        Factorizes ``ranks`` into a near-cubic grid, preferring to cut
        the longest axes; the brick count equals ``ranks`` exactly when
        ``ranks`` factorizes onto the axes, which holds for the usual
        power-of-two node counts.
        """
        check_positive("ranks", ranks)
        counts = [1, 1, 1]
        remaining = int(ranks)
        # Greedily assign prime factors (largest first) to the axis with
        # the most cells per current brick.
        factors: List[int] = []
        n = remaining
        f = 2
        while f * f <= n:
            while n % f == 0:
                factors.append(f)
                n //= f
            f += 1
        if n > 1:
            factors.append(n)
        for factor in sorted(factors, reverse=True):
            axis = max(
                range(3), key=lambda a: (self.shape[a] - 1) / counts[a]
            )
            counts[axis] *= factor
        return self.bricks(counts, margin=margin)


__all__ = ["Volume", "Brick"]

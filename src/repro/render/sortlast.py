"""Sort-last parallel rendering: bricks → rank images → compositing.

The functional analogue of one rendering job in the paper's system: the
volume splits into bricks (one per rank), every rank ray-casts its brick
into a full-resolution subimage, subimages are sorted front-to-back and
blended by a compositing algorithm over the simulated communicator.

Used by the examples, by the Fig. 2 pipeline bench (to calibrate the
cost model's render/composite constants against a real renderer), and
by the correctness tests (sort-last result == monolithic render).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, List, Optional

import numpy as np

from repro.comm.communicator import SimCommunicator
from repro.render.camera import Camera
from repro.render.compositing import CompositeResult, composite
from repro.render.raycast import RenderStats, brick_depth, integrate_brick
from repro.render.transfer_function import TransferFunction
from repro.render.volume import Volume

if TYPE_CHECKING:  # pragma: no cover
    from repro.render.shading import Lighting


@dataclass
class SortLastResult:
    """Output of one sort-last render."""

    image: np.ndarray
    ranks: int
    algorithm: str
    compositing: CompositeResult
    render_stats: RenderStats


def render_sort_last(
    volume: Volume,
    camera: Camera,
    tf: TransferFunction,
    *,
    ranks: int,
    algorithm: str = "2-3-swap",
    step: float = 0.5,
    reference_step: float = 1.0,
    lighting: Optional["Lighting"] = None,
    comm: Optional[SimCommunicator] = None,
) -> SortLastResult:
    """Render ``volume`` across ``ranks`` bricks and composite.

    The brick count equals ``ranks`` (the volume splitter factorizes the
    rank count onto the axes).  Returns the final image plus compositing
    traffic statistics.  With ``lighting``, bricks carry the one-voxel
    gradient margin automatically.
    """
    bricks = volume.split_for_ranks(ranks, margin=1 if lighting else 0)
    stats = RenderStats()
    images: List[np.ndarray] = []
    depths: List[float] = []
    for brick in bricks:
        images.append(
            integrate_brick(
                brick,
                camera,
                tf,
                step=step,
                reference_step=reference_step,
                lighting=lighting,
                stats=stats,
            )
        )
        depths.append(brick_depth(brick, camera))
    order = np.argsort(depths, kind="stable")
    sorted_images = [images[i] for i in order]
    result = composite(sorted_images, algorithm=algorithm, comm=comm)
    return SortLastResult(
        image=result.image,
        ranks=len(bricks),
        algorithm=algorithm,
        compositing=result,
        render_stats=stats,
    )


__all__ = ["SortLastResult", "render_sort_last"]

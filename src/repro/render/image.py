"""Image utilities: the over operator, conversion, PPM output.

Images are premultiplied RGBA float32 arrays of shape ``(H, W, 4)``.
Premultiplication makes front-to-back composition the associative
*over* operator, which is what lets sort-last compositing split and
reassociate blending arbitrarily (binary swap, 2-3 swap, direct send)
without changing the result.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence, Union

import numpy as np


def over(front: np.ndarray, back: np.ndarray) -> np.ndarray:
    """Composite premultiplied ``front`` over ``back``.

    ``C = C_f + (1 - A_f) * C_b`` for all four channels.
    """
    if front.shape != back.shape:
        raise ValueError(f"shape mismatch: {front.shape} vs {back.shape}")
    alpha_f = front[..., 3:4]
    return front + (1.0 - alpha_f) * back


def composite_sequence(images: Sequence[np.ndarray]) -> np.ndarray:
    """Blend images given in front-to-back order (reference compositor)."""
    if not images:
        raise ValueError("no images to composite")
    out = images[0].astype(np.float64)
    for img in images[1:]:
        out = over(out, img.astype(np.float64))
    return out.astype(np.float32)


def to_display(image: np.ndarray, background: float = 0.0) -> np.ndarray:
    """Resolve premultiplied RGBA onto an opaque gray background.

    Returns an ``(H, W, 3)`` float array in [0, 1].
    """
    rgb = image[..., :3] + (1.0 - image[..., 3:4]) * background
    return np.clip(rgb, 0.0, 1.0)


def to_uint8(image: np.ndarray, background: float = 0.0) -> np.ndarray:
    """Resolve and quantize to ``(H, W, 3)`` uint8."""
    return (to_display(image, background) * 255.0 + 0.5).astype(np.uint8)


def write_ppm(path: Union[str, Path], image: np.ndarray, *, background: float = 0.0) -> Path:
    """Write a premultiplied RGBA image as a binary PPM (P6) file.

    PPM needs no imaging dependencies and is readable by effectively
    every viewer/converter — adequate for the Fig. 10 gallery.
    """
    path = Path(path)
    pixels = to_uint8(image, background)
    height, width, _ = pixels.shape
    with open(path, "wb") as fh:
        fh.write(f"P6\n{width} {height}\n255\n".encode("ascii"))
        fh.write(pixels.tobytes())
    return path


def max_channel_difference(a: np.ndarray, b: np.ndarray) -> float:
    """Largest absolute per-channel difference between two images."""
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    return float(np.max(np.abs(a.astype(np.float64) - b.astype(np.float64))))


__all__ = [
    "over",
    "composite_sequence",
    "to_display",
    "to_uint8",
    "write_ppm",
    "max_channel_difference",
]

"""The software ray-casting volume renderer (GPU ray caster stand-in).

Implements the classic front-to-back ray-casting integrator of Levoy /
Kruger-Westermann on the CPU with NumPy vectorization: for every pixel a
ray is traversed through the volume; at each sample point the scalar
field is trilinearly interpolated, mapped through the transfer function,
opacity-corrected for the step size, and composited front-to-back in
premultiplied RGBA.

Brick rendering uses a *global* parametric sample grid (``t = k * step``
measured from each ray's origin) and exact half-open ownership tests, so
rendering a volume brick-by-brick and compositing the brick images in
depth order reproduces the monolithic render to floating-point accuracy
— the property sort-last parallel rendering depends on, and the property
the test suite verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional, Tuple

import numpy as np

from repro.render.camera import Camera
from repro.render.transfer_function import TransferFunction
from repro.render.volume import Brick, Volume
from repro.util.validation import check_positive

if TYPE_CHECKING:  # pragma: no cover - typing only (shading imports raycast)
    from repro.render.shading import Lighting


def trilinear(data: np.ndarray, pts: np.ndarray) -> np.ndarray:
    """Trilinear interpolation of ``data`` at local points ``pts`` (N, 3).

    Points must satisfy ``0 <= p`` and ``floor(p) <= shape - 2`` per
    axis; brick ownership plus the ghost layer guarantee this for every
    sample the integrator produces.
    """
    base = np.floor(pts).astype(np.int64)
    # Guard the upper edge: a point exactly on the last vertex would
    # index out of bounds; clamping keeps the interpolation exact there.
    np.minimum(base, np.asarray(data.shape) - 2, out=base)
    np.maximum(base, 0, out=base)
    frac = pts - base
    x0, y0, z0 = base[:, 0], base[:, 1], base[:, 2]
    fx, fy, fz = frac[:, 0], frac[:, 1], frac[:, 2]
    c000 = data[x0, y0, z0]
    c100 = data[x0 + 1, y0, z0]
    c010 = data[x0, y0 + 1, z0]
    c110 = data[x0 + 1, y0 + 1, z0]
    c001 = data[x0, y0, z0 + 1]
    c101 = data[x0 + 1, y0, z0 + 1]
    c011 = data[x0, y0 + 1, z0 + 1]
    c111 = data[x0 + 1, y0 + 1, z0 + 1]
    c00 = c000 * (1 - fx) + c100 * fx
    c10 = c010 * (1 - fx) + c110 * fx
    c01 = c001 * (1 - fx) + c101 * fx
    c11 = c011 * (1 - fx) + c111 * fx
    c0 = c00 * (1 - fy) + c10 * fy
    c1 = c01 * (1 - fy) + c11 * fy
    return c0 * (1 - fz) + c1 * fz


def _slab_range(
    origins: np.ndarray,
    dirs: np.ndarray,
    lo: np.ndarray,
    hi: np.ndarray,
) -> Tuple[np.ndarray, np.ndarray]:
    """Ray-box parametric entry/exit (``t0 > t1`` means no hit)."""
    with np.errstate(divide="ignore", invalid="ignore"):
        inv = 1.0 / dirs
        ta = (lo - origins) * inv
        tb = (hi - origins) * inv
    tmin = np.minimum(ta, tb)
    tmax = np.maximum(ta, tb)
    # Axes with zero direction: inside the slab → (-inf, +inf); outside
    # → empty.  The nan from 0 * inf is handled by the where below.
    zero = dirs == 0.0
    inside = (origins >= lo) & (origins <= hi)
    tmin = np.where(zero, np.where(inside, -np.inf, np.inf), tmin)
    tmax = np.where(zero, np.where(inside, np.inf, -np.inf), tmax)
    t0 = np.max(tmin, axis=1)
    t1 = np.min(tmax, axis=1)
    return t0, t1


@dataclass
class RenderStats:
    """Work counters of one integration (used for cost calibration)."""

    rays: int = 0
    samples: int = 0
    steps: int = 0


def integrate_brick(
    brick: Brick,
    camera: Camera,
    tf: TransferFunction,
    *,
    step: float = 0.5,
    reference_step: float = 1.0,
    early_termination: Optional[float] = None,
    lighting: Optional["Lighting"] = None,
    stats: Optional[RenderStats] = None,
) -> np.ndarray:
    """Ray-cast one brick; return a premultiplied RGBA image (H, W, 4).

    Samples lie on the global grid ``t = k * step`` and only points
    inside the brick's half-open owned region contribute, so brick
    images composite exactly (see module docstring).

    Args:
        step: Sampling step in voxels along the ray.
        reference_step: Step for which transfer-function opacities are
            calibrated (opacity correction).
        early_termination: Optional accumulated-alpha cutoff in (0, 1];
            only meaningful for monolithic renders — it breaks the exact
            brick-compositing equivalence and is therefore off by
            default.
        lighting: Optional Blinn-Phong shading (Levoy [5]); brick-
            parallel shaded rendering requires ``margin=1`` bricks.
        stats: Optional work counters, incremented in place.
    """
    check_positive("step", step)
    check_positive("reference_step", reference_step)
    if early_termination is not None and not 0.0 < early_termination <= 1.0:
        raise ValueError(f"early_termination must be in (0, 1]: {early_termination}")
    if lighting is not None:
        from repro.render.shading import gradient as _gradient  # deferred: avoids cycle
        # Gradients need one voxel of slack below the owned region
        # (unless the brick starts at the volume boundary, where clamped
        # one-sided differences are the correct behaviour anyway).
        for axis in range(3):
            if brick.lo[axis] > 0 and brick.origin[axis] >= brick.lo[axis]:
                raise ValueError(
                    "shading a brick requires a one-voxel margin; build "
                    "bricks with margin=1 (Volume.bricks / split_for_ranks)"
                )
    else:
        _gradient = None  # type: ignore[assignment]

    origins, dirs = camera.rays()
    n_rays = origins.shape[0]
    lo = np.asarray(brick.lo, dtype=np.float64)
    hi = np.asarray(brick.hi, dtype=np.float64)
    data_origin = np.asarray(brick.origin, dtype=np.float64)
    accum = np.zeros((n_rays, 4), dtype=np.float64)

    t0, t1 = _slab_range(origins, dirs, lo, hi)
    t0 = np.maximum(t0, 0.0)
    hit = t0 <= t1
    if stats is not None:
        stats.rays += n_rays
    if not np.any(hit):
        return accum.reshape(camera.height, camera.width, 4).astype(np.float32)

    k0 = np.where(hit, np.ceil(t0 / step), 1.0)
    k1 = np.where(hit, np.floor(t1 / step), 0.0)
    kmin = int(np.min(k0[hit]))
    kmax = int(np.max(k1[hit]))

    lut = tf.lut()
    res = lut.shape[0]
    correction = step / reference_step
    cutoff = early_termination

    for k in range(kmin, kmax + 1):
        active = (k0 <= k) & (k <= k1)
        if cutoff is not None:
            active &= accum[:, 3] < cutoff
        idx = np.nonzero(active)[0]
        if idx.size == 0:
            continue
        t = k * step
        p = origins[idx] + t * dirs[idx]
        owned = np.all((p >= lo) & (p < hi), axis=1)
        idx = idx[owned]
        if idx.size == 0:
            continue
        local = p[owned] - data_origin
        s = trilinear(brick.data, local)
        if stats is not None:
            stats.samples += int(idx.size)
        bins = np.clip((s * (res - 1) + 0.5).astype(np.int64), 0, res - 1)
        rgba = lut[bins]
        alpha = 1.0 - np.power(1.0 - rgba[:, 3].astype(np.float64), correction)
        color = rgba[:, :3].astype(np.float64)
        if lighting is not None:
            from repro.render.shading import shade as _shade

            grads = _gradient(brick, p[owned])
            color = _shade(color, grads, dirs[idx], lighting)
        trans = 1.0 - accum[idx, 3]
        accum[idx, :3] += trans[:, None] * color * alpha[:, None]
        accum[idx, 3] += trans * alpha
        if stats is not None:
            stats.steps += 1

    return accum.reshape(camera.height, camera.width, 4).astype(np.float32)


def render_volume(
    volume: Volume,
    camera: Camera,
    tf: TransferFunction,
    *,
    step: float = 0.5,
    reference_step: float = 1.0,
    early_termination: Optional[float] = None,
    lighting: Optional["Lighting"] = None,
    stats: Optional[RenderStats] = None,
) -> np.ndarray:
    """Monolithic ray-cast of a whole volume (premultiplied RGBA)."""
    return integrate_brick(
        volume.whole_brick(),
        camera,
        tf,
        step=step,
        reference_step=reference_step,
        early_termination=early_termination,
        lighting=lighting,
        stats=stats,
    )


def brick_depth(brick: Brick, camera: Camera) -> float:
    """Depth sort key: distance of the brick center along the view axis.

    For axis-aligned regular-grid bricks this yields a correct
    front-to-back visibility order (the standard cell-ordering used by
    sort-last volume renderers).
    """
    forward, _right, _up = camera.basis()
    return float(np.dot(brick.center() - camera.eye(), forward))


__all__ = [
    "trilinear",
    "integrate_brick",
    "render_volume",
    "brick_depth",
    "RenderStats",
]

"""Sort-last image compositing: direct send, binary swap, 2-3 swap.

After every rendering node ray-casts its brick, the per-node images must
be blended in depth order into the final picture (paper §II-A).  The
classic algorithms are implemented here over the deterministic
:class:`~repro.comm.SimCommunicator`:

* **direct send** — the image splits into ``p`` row regions; every rank
  mails region ``j`` to rank ``j``; each rank blends its region across
  all ``p`` inputs.  One stage, ``p (p-1)`` messages.
* **binary swap** (Ma et al. [12]) — ``log2 p`` stages of pairwise
  half-image exchanges; requires a power-of-two rank count.
* **2-3 swap** (Yu et al. [13]) — the generalization the paper's system
  uses: stages exchange within groups of 2 *or* 3, supporting rank
  counts of the form ``2^a 3^b`` directly; other counts are handled by
  first pair-merging a few adjacent ranks down to the largest
  2-3-smooth count (an engineering variant preserving depth order and
  correctness for arbitrary ``p``).

All algorithms assume the caller passes per-rank images **sorted
front-to-back** (rank 0 closest) in premultiplied RGBA; associativity of
the *over* operator guarantees every algorithm produces the same final
image, which the test suite checks against the sequential reference.

Group invariant of the swap family: at every stage, the members of a
group own the *same* current row region (they kept equal digit-parts in
earlier stages), and the union of the rank ranges they represent is
contiguous in depth — so blending received pieces in member order is
depth-correct.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.comm.communicator import SimCommunicator
from repro.render.image import composite_sequence, over


@dataclass(frozen=True)
class CompositeResult:
    """Final image plus traffic statistics of one compositing run."""

    image: np.ndarray
    messages: int
    bytes_sent: int
    stages: int
    elapsed: float
    algorithm: str


def factorize_2_3(n: int) -> Optional[List[int]]:
    """Factor ``n`` into 3s and 2s (3s first), or None if not smooth."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    factors: List[int] = []
    while n % 3 == 0:
        factors.append(3)
        n //= 3
    while n % 2 == 0:
        factors.append(2)
        n //= 2
    return factors if n == 1 else None


def largest_2_3_smooth_leq(n: int) -> int:
    """The largest ``2^a 3^b`` (>= 1) not exceeding ``n``."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    best = 1
    a = 1
    while a <= n:
        b = a
        while b <= n:
            best = max(best, b)
            b *= 3
        a *= 2
    return best


def _row_partition(start: int, end: int, k: int) -> List[Tuple[int, int]]:
    """Split rows [start, end) into ``k`` contiguous near-equal parts."""
    edges = np.linspace(start, end, k + 1).astype(np.int64)
    return [(int(edges[i]), int(edges[i + 1])) for i in range(k)]


def _radix_swap(
    comm: SimCommunicator,
    pieces: List[np.ndarray],
    physical: List[int],
    factors: Sequence[int],
) -> Tuple[List[np.ndarray], List[Tuple[int, int]]]:
    """Run swap stages over logical ranks; return final pieces/regions.

    ``pieces[i]`` is logical rank ``i``'s current image piece (full
    image rows initially); ``physical[i]`` maps to communicator ranks.
    """
    m = len(pieces)
    height = pieces[0].shape[0]
    regions: List[Tuple[int, int]] = [(0, height)] * m
    stride = 1
    for k in factors:
        comm.begin_stage()
        outgoing: List[List[Tuple[int, np.ndarray]]] = [[] for _ in range(m)]
        # Post all sends of this stage first (round style).
        for base in range(0, m, stride * k):
            for offset in range(stride):
                members = [base + offset + d * stride for d in range(k)]
                start, end = regions[members[0]]
                parts = _row_partition(start, end, k)
                for j, member in enumerate(members):
                    for d, target in enumerate(members):
                        lo, hi = parts[d]
                        piece = pieces[member][lo - start : hi - start]
                        if target == member:
                            outgoing[member].append((d, piece))
                        else:
                            comm.send(
                                physical[member],
                                physical[target],
                                piece,
                                tag=stride,
                            )
        # Receive and blend.
        new_pieces: List[np.ndarray] = [None] * m  # type: ignore[list-item]
        new_regions: List[Tuple[int, int]] = [(0, 0)] * m
        for base in range(0, m, stride * k):
            for offset in range(stride):
                members = [base + offset + d * stride for d in range(k)]
                start, end = regions[members[0]]
                parts = _row_partition(start, end, k)
                for d, member in enumerate(members):
                    collected: List[np.ndarray] = []
                    for src in members:  # front-to-back by member order
                        if src == member:
                            own = next(
                                p for dd, p in outgoing[member] if dd == d
                            )
                            collected.append(own)
                        else:
                            collected.append(
                                comm.recv(
                                    physical[member],
                                    physical[src],
                                    tag=stride,
                                )
                            )
                    blended = collected[0].astype(np.float64)
                    for nxt in collected[1:]:
                        blended = over(blended, nxt.astype(np.float64))
                    new_pieces[member] = blended
                    new_regions[member] = parts[d]
        pieces = new_pieces
        regions = new_regions
        comm.end_stage()
        stride *= k
    return pieces, regions


def _gather_to_root(
    comm: SimCommunicator,
    pieces: List[np.ndarray],
    regions: List[Tuple[int, int]],
    physical: List[int],
    shape: Tuple[int, ...],
) -> np.ndarray:
    """Assemble the final image at communicator rank 0."""
    comm.begin_stage()
    root_phys = 0
    final = np.zeros(shape, dtype=np.float64)
    for i, phys in enumerate(physical):
        lo, hi = regions[i]
        if hi <= lo:
            continue
        if phys == root_phys:
            final[lo:hi] = pieces[i]
        else:
            comm.send(phys, root_phys, pieces[i], tag=999)
    for i, phys in enumerate(physical):
        lo, hi = regions[i]
        if hi <= lo or phys == root_phys:
            continue
        final[lo:hi] = comm.recv(root_phys, phys, tag=999)
    comm.end_stage()
    return final.astype(np.float32)


def _run(
    images: Sequence[np.ndarray],
    comm: Optional[SimCommunicator],
    algorithm: str,
) -> CompositeResult:
    if not images:
        raise ValueError("no images to composite")
    p = len(images)
    shapes = {img.shape for img in images}
    if len(shapes) != 1:
        raise ValueError(f"image shapes differ: {shapes}")
    if comm is None:
        comm = SimCommunicator(p)
    elif comm.size < p:
        raise ValueError(f"communicator of size {comm.size} for {p} images")
    m0, b0, s0, e0 = (
        comm.interconnect.messages,
        comm.interconnect.bytes_sent,
        comm.stages,
        comm.elapsed,
    )

    if p == 1:
        final = images[0].astype(np.float32)
    elif algorithm == "serial-gather":
        final = _serial_gather(comm, images)
    elif algorithm == "direct-send":
        final = _direct_send(comm, images)
    elif algorithm == "binary-swap":
        factors = factorize_2_3(p)
        if factors is None or any(f == 3 for f in factors):
            raise ValueError(
                f"binary swap needs a power-of-two rank count, got {p}"
            )
        pieces = [img.astype(np.float64) for img in images]
        pieces, regions = _radix_swap(comm, pieces, list(range(p)), factors)
        final = _gather_to_root(comm, pieces, regions, list(range(p)), images[0].shape)
    elif algorithm == "2-3-swap":
        final = _two_three_swap(comm, images)
    else:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; use 'serial-gather', "
            "'direct-send', 'binary-swap', or '2-3-swap'"
        )
    comm.assert_drained()
    return CompositeResult(
        image=final,
        messages=comm.interconnect.messages - m0,
        bytes_sent=comm.interconnect.bytes_sent - b0,
        stages=comm.stages - s0,
        elapsed=comm.elapsed - e0,
        algorithm=algorithm,
    )


def _serial_gather(
    comm: SimCommunicator, images: Sequence[np.ndarray]
) -> np.ndarray:
    """The naive baseline: every rank mails its full image to the root,
    which blends all of them.  One stage, p-1 full-image messages, all
    converging on one link — the bottleneck that motivated binary swap
    (paper §II-A: compositing "can become very expensive because of the
    potentially large amount of messages exchanged")."""
    p = len(images)
    comm.begin_stage()
    for src in range(1, p):
        comm.send(src, 0, images[src], tag=3)
    stack = [images[0]]
    for src in range(1, p):
        stack.append(comm.recv(0, src, tag=3))
    comm.end_stage()
    return composite_sequence(stack)


def _direct_send(comm: SimCommunicator, images: Sequence[np.ndarray]) -> np.ndarray:
    p = len(images)
    height = images[0].shape[0]
    parts = _row_partition(0, height, p)
    comm.begin_stage()
    for src in range(p):
        for dst in range(p):
            if dst == src:
                continue
            lo, hi = parts[dst]
            comm.send(src, dst, images[src][lo:hi], tag=1)
    pieces: List[np.ndarray] = []
    regions: List[Tuple[int, int]] = []
    for dst in range(p):
        lo, hi = parts[dst]
        stack = []
        for src in range(p):  # front-to-back
            if src == dst:
                stack.append(images[dst][lo:hi])
            else:
                stack.append(comm.recv(dst, src, tag=1))
        pieces.append(composite_sequence(stack).astype(np.float64))
        regions.append((lo, hi))
    comm.end_stage()
    return _gather_to_root(comm, pieces, regions, list(range(p)), images[0].shape)


def _two_three_swap(comm: SimCommunicator, images: Sequence[np.ndarray]) -> np.ndarray:
    p = len(images)
    factors = factorize_2_3(p)
    pieces = [img.astype(np.float64) for img in images]
    physical = list(range(p))
    if factors is None:
        # Pre-merge adjacent pairs down to the largest 2-3-smooth count.
        m = largest_2_3_smooth_leq(p)
        extras = p - m
        comm.begin_stage()
        for i in range(extras):
            back, front = 2 * i + 1, 2 * i
            comm.send(back, front, pieces[back], tag=7)
        merged: List[np.ndarray] = []
        merged_phys: List[int] = []
        for i in range(extras):
            received = comm.recv(2 * i, 2 * i + 1, tag=7)
            merged.append(over(pieces[2 * i], received))
            merged_phys.append(2 * i)
        for r in range(2 * extras, p):
            merged.append(pieces[r])
            merged_phys.append(r)
        comm.end_stage()
        pieces = merged
        physical = merged_phys
        factors = factorize_2_3(m)
        assert factors is not None
    if len(pieces) == 1:
        return pieces[0].astype(np.float32)
    pieces, regions = _radix_swap(comm, pieces, physical, factors)
    return _gather_to_root(comm, pieces, regions, physical, images[0].shape)


def serial_gather(
    images: Sequence[np.ndarray], *, comm: Optional[SimCommunicator] = None
) -> CompositeResult:
    """Composite by the naive gather-everything-at-the-root baseline."""
    return _run(images, comm, "serial-gather")


def direct_send(
    images: Sequence[np.ndarray], *, comm: Optional[SimCommunicator] = None
) -> CompositeResult:
    """Composite front-to-back-sorted images by direct send."""
    return _run(images, comm, "direct-send")


def binary_swap(
    images: Sequence[np.ndarray], *, comm: Optional[SimCommunicator] = None
) -> CompositeResult:
    """Composite front-to-back-sorted images by binary swap (p = 2^k)."""
    return _run(images, comm, "binary-swap")


def two_three_swap(
    images: Sequence[np.ndarray], *, comm: Optional[SimCommunicator] = None
) -> CompositeResult:
    """Composite front-to-back-sorted images by 2-3 swap (any p)."""
    return _run(images, comm, "2-3-swap")


def composite(
    images: Sequence[np.ndarray],
    *,
    algorithm: str = "2-3-swap",
    comm: Optional[SimCommunicator] = None,
) -> CompositeResult:
    """Composite by algorithm name."""
    return _run(images, comm, algorithm)


__all__ = [
    "CompositeResult",
    "composite",
    "serial_gather",
    "direct_send",
    "binary_swap",
    "two_three_swap",
    "factorize_2_3",
    "largest_2_3_smooth_leq",
]

"""Software volume-rendering substrate: ray caster, compositing, data."""

from repro.render.animation import AnimationResult, OrbitPath, render_animation
from repro.render.camera import Camera, default_camera_for
from repro.render.compositing import (
    CompositeResult,
    binary_swap,
    composite,
    direct_send,
    serial_gather,
    factorize_2_3,
    largest_2_3_smooth_leq,
    two_three_swap,
)
from repro.render.datasets import (
    DATASET_NAMES,
    combustion,
    make_volume,
    plume,
    supernova,
    value_noise,
)
from repro.render.image import (
    composite_sequence,
    max_channel_difference,
    over,
    to_display,
    to_uint8,
    write_ppm,
)
from repro.render.raycast import (
    RenderStats,
    brick_depth,
    integrate_brick,
    render_volume,
    trilinear,
)
from repro.render.shading import Lighting, gradient, shade
from repro.render.sortlast import SortLastResult, render_sort_last
from repro.render.transfer_function import (
    TransferFunction,
    cool_warm,
    fire,
    grayscale_ramp,
    isosurface_like,
)
from repro.render.volume import Brick, Volume

__all__ = [
    "AnimationResult",
    "OrbitPath",
    "render_animation",
    "Camera",
    "default_camera_for",
    "CompositeResult",
    "binary_swap",
    "composite",
    "direct_send",
    "serial_gather",
    "factorize_2_3",
    "largest_2_3_smooth_leq",
    "two_three_swap",
    "DATASET_NAMES",
    "combustion",
    "make_volume",
    "plume",
    "supernova",
    "value_noise",
    "composite_sequence",
    "max_channel_difference",
    "over",
    "to_display",
    "to_uint8",
    "write_ppm",
    "RenderStats",
    "brick_depth",
    "integrate_brick",
    "render_volume",
    "trilinear",
    "Lighting",
    "gradient",
    "shade",
    "SortLastResult",
    "render_sort_last",
    "TransferFunction",
    "cool_warm",
    "fire",
    "grayscale_ramp",
    "isosurface_like",
    "Brick",
    "Volume",
]

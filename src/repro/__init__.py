"""repro — reproduction of "A Job Scheduling Design for Visualization
Services using GPU Clusters" (Hsu, Wang, Ma, Yu, Chen — IEEE CLUSTER 2012).

A locality-aware job scheduler for multi-user parallel volume rendering
services, with:

* the paper's cycle-based heuristic scheduler (``OURS``, Algorithm 1)
  and the five baselines it is evaluated against (FS, SF, FCFS, FCFSU,
  FCFSL),
* the cost model of §IV (task/job execution time, latency, framerate),
* a discrete-event GPU-cluster simulator (LRU memory quotas, disk I/O,
  interconnect, optional explicit VRAM model),
* a real software volume-rendering substrate (NumPy ray caster, sort-
  last compositing via binary swap / 2-3 swap over a simulated
  communicator),
* workload generators reproducing the four Table II scenarios,
* analysis/reporting for every table and figure of the evaluation,
* a structured observability layer (virtual-time spans/counters, Chrome
  trace-event export, per-node io/render/composite/idle profiles), and
* an overload-management frontend (admission control, backpressure,
  SLO-driven graceful degradation) for demand beyond cluster capacity,
  and
* a fault-injection + self-healing subsystem (deterministic fault
  plans, oracle-free detection, audited recovery, root-cause analysis
  over the decision audit log).

Quickstart::

    from repro import RunConfig, run_simulation, scenario_1

    result = run_simulation(scenario_1(scale=0.2), "OURS")
    print(result.summary().row())

Overloaded service with protection::

    from repro import FrontendConfig, make_scenario

    overloaded = make_scenario(2, scale=0.2, load=2.5)
    protected = run_simulation(
        overloaded,
        "OURS",
        config=RunConfig(frontend=FrontendConfig.protective()),
    )
    print(protected.frontend.summary())
"""

from repro.cluster import (
    Cluster,
    CostParameters,
    EventQueue,
    GpuSpec,
    LinkSpec,
    LRUChunkCache,
    StorageSpec,
)
from repro.core import (
    Chunk,
    ChunkedDecomposition,
    Dataset,
    JobType,
    RenderJob,
    RenderTask,
    SCHEDULER_NAMES,
    Scheduler,
    SchedulerTables,
    UniformDecomposition,
    action_framerate,
    framerate,
    job_latency,
    make_scheduler,
    register_scheduler,
)
from repro.faults import (
    CacheWipe,
    DetectionConfig,
    FaultPlan,
    FaultReport,
    NodeCrash,
    RecoveryConfig,
    StorageDegrade,
    Straggler,
)
from repro.frontend import (
    AdmissionConfig,
    BackpressureConfig,
    DegradeConfig,
    FrontendConfig,
    FrontendStats,
    QualityLevel,
    QueuePolicy,
)
from repro.reporting import SchedulerSummary, SimulationCollector, comparison_table
from repro.obs import (
    AuditConfig,
    AuditLog,
    ClusterProfile,
    CriticalPathAnalysis,
    NodeProfile,
    NullTracer,
    Tracer,
    first_divergence,
    phase_delta_table,
    write_chrome_trace,
)
from repro.sim import (
    RunConfig,
    SimulationResult,
    SystemConfig,
    VisualizationService,
    compare_schedulers,
    run_simulation,
    system_anl,
    system_linux8,
)
from repro.workload import (
    Scenario,
    WorkloadTrace,
    make_scenario,
    persistent_actions,
    poisson_action_stream,
    poisson_batch_stream,
    scenario_1,
    scenario_2,
    scenario_3,
    scenario_4,
)

__version__ = "1.3.0"

__all__ = [
    "Cluster",
    "CostParameters",
    "EventQueue",
    "GpuSpec",
    "LinkSpec",
    "LRUChunkCache",
    "StorageSpec",
    "Chunk",
    "ChunkedDecomposition",
    "Dataset",
    "JobType",
    "RenderJob",
    "RenderTask",
    "SCHEDULER_NAMES",
    "Scheduler",
    "SchedulerTables",
    "UniformDecomposition",
    "action_framerate",
    "framerate",
    "job_latency",
    "make_scheduler",
    "register_scheduler",
    "CacheWipe",
    "DetectionConfig",
    "FaultPlan",
    "FaultReport",
    "NodeCrash",
    "RecoveryConfig",
    "StorageDegrade",
    "Straggler",
    "AdmissionConfig",
    "BackpressureConfig",
    "DegradeConfig",
    "FrontendConfig",
    "FrontendStats",
    "QualityLevel",
    "QueuePolicy",
    "SchedulerSummary",
    "SimulationCollector",
    "comparison_table",
    "Tracer",
    "NullTracer",
    "write_chrome_trace",
    "ClusterProfile",
    "NodeProfile",
    "AuditConfig",
    "AuditLog",
    "CriticalPathAnalysis",
    "first_divergence",
    "phase_delta_table",
    "RunConfig",
    "SimulationResult",
    "SystemConfig",
    "VisualizationService",
    "compare_schedulers",
    "run_simulation",
    "system_anl",
    "system_linux8",
    "Scenario",
    "WorkloadTrace",
    "make_scenario",
    "persistent_actions",
    "poisson_action_stream",
    "poisson_batch_stream",
    "scenario_1",
    "scenario_2",
    "scenario_3",
    "scenario_4",
    "__version__",
]

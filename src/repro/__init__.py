"""repro — reproduction of "A Job Scheduling Design for Visualization
Services using GPU Clusters" (Hsu, Wang, Ma, Yu, Chen — IEEE CLUSTER 2012).

A locality-aware job scheduler for multi-user parallel volume rendering
services, with:

* the paper's cycle-based heuristic scheduler (``OURS``, Algorithm 1)
  and the five baselines it is evaluated against (FS, SF, FCFS, FCFSU,
  FCFSL),
* the cost model of §IV (task/job execution time, latency, framerate),
* a discrete-event GPU-cluster simulator (LRU memory quotas, disk I/O,
  interconnect, optional explicit VRAM model),
* a real software volume-rendering substrate (NumPy ray caster, sort-
  last compositing via binary swap / 2-3 swap over a simulated
  communicator),
* workload generators reproducing the four Table II scenarios,
* analysis/reporting for every table and figure of the evaluation,
* a structured observability layer (virtual-time spans/counters, Chrome
  trace-event export, per-node io/render/composite/idle profiles, live
  NDJSON telemetry streaming with online anomaly detection), and
* an overload-management frontend (admission control, backpressure,
  SLO-driven graceful degradation) for demand beyond cluster capacity,
* a fault-injection + self-healing subsystem (deterministic fault
  plans, oracle-free detection, audited recovery, root-cause analysis
  over the decision audit log), and
* a fleet-scale federation tier: N independent simulator shards behind
  a user router (consistent-hash or dataset-locality-aware) with a
  deterministic merged report.

Public API
----------

Two convenience entry points cover the common cases end to end:

* :func:`simulate` — build a Table II scenario and run it on one
  simulated cluster; returns a
  :class:`~repro.sim.SimulationResult`.
* :func:`federate` — shard a scenario across a federation of
  simulators; returns a :class:`~repro.federation.FederatedResult`.

Everything they accept (``RunConfig``, ``FederationConfig``,
``Scenario`` factories, scheduler names) and everything they return is
exported here; the lower-level building blocks
(:func:`run_simulation`, :func:`run_federation`, the scheduler
registry, the obs/faults/frontend subsystems) stay public for
composed use.

Quickstart::

    from repro import simulate

    result = simulate(scenario=1, scheduler="OURS", scale=0.2)
    print(result.summary().row())

Federated fleet::

    from repro import FederationConfig, federate

    merged = federate(
        scenario=4,
        scale=0.1,
        config=FederationConfig(shards=8, router="locality"),
    )
    print(merged.shard_table())

Overloaded service with protection::

    from repro import FrontendConfig, RunConfig, make_scenario, simulate

    overloaded = make_scenario(2, scale=0.2, load=2.5)
    protected = simulate(
        overloaded,
        "OURS",
        config=RunConfig(frontend=FrontendConfig.protective()),
    )
    print(protected.frontend.summary())
"""

from repro.cluster import (
    Cluster,
    CostParameters,
    EventQueue,
    GpuSpec,
    LinkSpec,
    LRUChunkCache,
    StorageSpec,
)
from repro.core import (
    Chunk,
    ChunkedDecomposition,
    Dataset,
    JobIdAllocator,
    JobType,
    RenderJob,
    RenderTask,
    SCHEDULER_NAMES,
    Scheduler,
    SchedulerTables,
    UniformDecomposition,
    action_framerate,
    framerate,
    job_latency,
    make_scheduler,
    register_scheduler,
)
from repro.federation import (
    FederatedResult,
    FederationConfig,
    build_shards,
    plan_replication,
    run_federation,
)
from repro.faults import (
    CacheWipe,
    DetectionConfig,
    FaultPlan,
    FaultReport,
    NodeCrash,
    RecoveryConfig,
    StorageDegrade,
    Straggler,
)
from repro.frontend import (
    AdmissionConfig,
    BackpressureConfig,
    DegradeConfig,
    FrontendConfig,
    FrontendStats,
    QualityLevel,
    QueuePolicy,
)
from repro.reporting import SchedulerSummary, SimulationCollector, comparison_table
from repro.obs import (
    AnomalyConfig,
    AnomalyRecord,
    AuditConfig,
    AuditLog,
    ClusterProfile,
    CriticalPathAnalysis,
    NodeProfile,
    NullTracer,
    StreamConfig,
    StreamReport,
    Tracer,
    first_divergence,
    follow_stream,
    phase_delta_table,
    read_stream,
    score_anomalies,
    write_chrome_trace,
)
from repro.sim import (
    RunConfig,
    SimulationResult,
    SystemConfig,
    VisualizationService,
    compare_schedulers,
    run_simulation,
    system_anl,
    system_linux8,
)
from repro.workload import (
    Scenario,
    WorkloadTrace,
    make_scenario,
    persistent_actions,
    poisson_action_stream,
    poisson_batch_stream,
    scenario_1,
    scenario_2,
    scenario_3,
    scenario_4,
)

__version__ = "1.5.0"


def simulate(scenario=1, scheduler="OURS", *, config=None, scale=1.0,
             seed=None, load=1.0, users=1):
    """Run one scenario on one simulated cluster (the simple front door).

    Args:
        scenario: A Table II scenario number (1-4) or an already-built
            :class:`Scenario`.
        scheduler: Registry name (``OURS``, ``FCFS``, ...) or a
            :class:`Scheduler` instance.
        config: Optional :class:`RunConfig`.
        scale, seed, load, users: Scenario-builder knobs, used only
            when ``scenario`` is a number.

    Returns:
        The :class:`~repro.sim.SimulationResult`.
    """
    if not isinstance(scenario, Scenario):
        scenario = make_scenario(
            scenario, scale=scale, seed=seed, load=load, users=users
        )
    return run_simulation(scenario, scheduler, config=config)


def federate(scenario=4, scheduler="OURS", *, config=None, scale=1.0,
             seed=None, load=1.0, users=None):
    """Run one scenario across a federation of simulator shards.

    Args:
        scenario: A Table II scenario number (1-4) or an already-built
            :class:`Scenario`.
        scheduler: Per-shard scheduling policy (name or instance).
        config: Optional :class:`FederationConfig`; defaults to two
            locality-routed shards.
        scale, seed, load, users: Scenario-builder knobs, used only
            when ``scenario`` is a number.  ``users`` defaults to the
            shard count so each shard sees about one Table II load
            after routing.

    Returns:
        The merged :class:`~repro.federation.FederatedResult`.
    """
    if config is None:
        config = FederationConfig()
    if not isinstance(scenario, Scenario):
        scenario = make_scenario(
            scenario,
            scale=scale,
            seed=seed,
            load=load,
            users=config.shards if users is None else users,
        )
    return run_federation(scenario, scheduler, config)


__all__ = [
    "simulate",
    "federate",
    "FederationConfig",
    "FederatedResult",
    "run_federation",
    "build_shards",
    "plan_replication",
    "Cluster",
    "CostParameters",
    "EventQueue",
    "GpuSpec",
    "LinkSpec",
    "LRUChunkCache",
    "StorageSpec",
    "Chunk",
    "ChunkedDecomposition",
    "Dataset",
    "JobIdAllocator",
    "JobType",
    "RenderJob",
    "RenderTask",
    "SCHEDULER_NAMES",
    "Scheduler",
    "SchedulerTables",
    "UniformDecomposition",
    "action_framerate",
    "framerate",
    "job_latency",
    "make_scheduler",
    "register_scheduler",
    "CacheWipe",
    "DetectionConfig",
    "FaultPlan",
    "FaultReport",
    "NodeCrash",
    "RecoveryConfig",
    "StorageDegrade",
    "Straggler",
    "AdmissionConfig",
    "BackpressureConfig",
    "DegradeConfig",
    "FrontendConfig",
    "FrontendStats",
    "QualityLevel",
    "QueuePolicy",
    "SchedulerSummary",
    "SimulationCollector",
    "comparison_table",
    "Tracer",
    "NullTracer",
    "write_chrome_trace",
    "ClusterProfile",
    "NodeProfile",
    "AuditConfig",
    "AuditLog",
    "CriticalPathAnalysis",
    "first_divergence",
    "phase_delta_table",
    "StreamConfig",
    "StreamReport",
    "AnomalyConfig",
    "AnomalyRecord",
    "follow_stream",
    "read_stream",
    "score_anomalies",
    "RunConfig",
    "SimulationResult",
    "SystemConfig",
    "VisualizationService",
    "compare_schedulers",
    "run_simulation",
    "system_anl",
    "system_linux8",
    "Scenario",
    "WorkloadTrace",
    "make_scenario",
    "persistent_actions",
    "poisson_action_stream",
    "poisson_batch_stream",
    "scenario_1",
    "scenario_2",
    "scenario_3",
    "scenario_4",
    "__version__",
]

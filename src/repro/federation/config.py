"""Run configuration for a federated (sharded) simulation.

:class:`FederationConfig` is to :func:`~repro.federation.run_federation`
what :class:`~repro.sim.RunConfig` is to
:func:`~repro.sim.run_simulation`: one frozen, picklable object
describing *how* to run — here, how many head-node shards, which
user-routing policy places users onto them, which replication policy
homes datasets, and whether the shards execute serially or on a
process pool.  The per-shard simulator options ride along as a nested
``RunConfig``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Tuple

from repro.sim.run_config import RunConfig

#: Valid ``router`` values: consistent-hash (uniform spread) or
#: locality-aware (dominant-dataset residency) user placement.
ROUTER_POLICIES: Tuple[str, ...] = ("hash", "locality")

#: Valid ``replication`` values.  ``auto`` resolves per router:
#: ``mirror`` for hash routing (any shard may see any dataset),
#: ``partition`` for locality routing (each dataset has one home).
REPLICATION_POLICIES: Tuple[str, ...] = ("auto", "mirror", "partition")

#: Valid ``frontend_scope`` values: per-shard admission (each shard
#: enforces the configured caps independently) or a global view (the
#: configured caps describe the whole fleet and are divided across
#: shards).
FRONTEND_SCOPES: Tuple[str, ...] = ("shard", "global")


@dataclass(frozen=True)
class FederationConfig:
    """Everything about *how* to run a federated scenario.

    Attributes:
        shards: Number of independent head-node shards.  Each shard is
            a full simulator instance (head node + render nodes per the
            scenario's system config).
        router: User→shard placement policy — ``"hash"``
            (consistent-hash ring, uniform and residency-blind) or
            ``"locality"`` (route each user to the home shard of their
            dominant dataset, preserving the Cache table's locality
            across the shard boundary).
        replication: Cross-shard dataset placement — ``"mirror"``
            (every dataset resident on every shard), ``"partition"``
            (each dataset homed on exactly one shard, demand-balanced),
            or ``"auto"`` (mirror under hash routing, partition under
            locality routing).
        run: The per-shard :class:`~repro.sim.RunConfig`.  Its
            ``job_namespace`` is overridden per shard (shard ``k`` runs
            in namespace ``k``) so merged job ids never collide.
        workers: Process-pool width for running shards.  ``1`` (serial)
            and ``N`` produce bit-identical
            :class:`~repro.federation.FederatedResult`\\ s — the same
            parity discipline as ``sweep(workers=N)``.
        frontend_scope: How ``run.frontend`` caps apply when a frontend
            is configured: ``"shard"`` applies them per shard,
            ``"global"`` treats them as fleet-wide totals and divides
            them across shards.
    """

    shards: int = 2
    router: str = "locality"
    replication: str = "auto"
    run: RunConfig = field(default_factory=RunConfig)
    workers: int = 1
    frontend_scope: str = "shard"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.router not in ROUTER_POLICIES:
            raise ValueError(
                f"unknown router {self.router!r}; valid: "
                + ", ".join(ROUTER_POLICIES)
            )
        if self.replication not in REPLICATION_POLICIES:
            raise ValueError(
                f"unknown replication {self.replication!r}; valid: "
                + ", ".join(REPLICATION_POLICIES)
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.frontend_scope not in FRONTEND_SCOPES:
            raise ValueError(
                f"unknown frontend_scope {self.frontend_scope!r}; valid: "
                + ", ".join(FRONTEND_SCOPES)
            )

    @property
    def resolved_replication(self) -> str:
        """The effective replication policy (``auto`` resolved)."""
        if self.replication != "auto":
            return self.replication
        return "partition" if self.router == "locality" else "mirror"

    def replace(self, **changes) -> "FederationConfig":
        """A copy with the given fields changed."""
        return replace(self, **changes)


__all__ = [
    "FederationConfig",
    "ROUTER_POLICIES",
    "REPLICATION_POLICIES",
    "FRONTEND_SCOPES",
]

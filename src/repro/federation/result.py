"""Deterministic merge of per-shard results into one federated report.

A federation runs N independent simulators; :class:`FederatedResult`
recombines their :class:`~repro.sim.SimulationResult`\\ s into one view:

* **job records** — concatenated in shard order (shard-namespaced job
  ids never collide, so the merged list is joinable on ``job_id``),
* **latency / framerate summary** — recomputed over the merged records
  with :func:`repro.reporting.analysis.summarize`, exactly as a single
  run would,
* **SLO reports** — per-objective concatenation of violation windows
  plus summed evaluation denominators (action ids are globally unique
  across shards, so windows never double-count),
* **frontend accounting** — counter sums; the conservation identity
  (every request seen is forwarded, rejected, shed, thinned, or
  unserved) survives summation because it holds per shard,
* **metrics** — counters summed by (name, labels) across shard
  registries.

Every merge is order-deterministic (shard order, then each shard's own
deterministic order), so serial and process-pool federated runs
produce byte-identical merged reports — the federation-level analogue
of the sweep parity discipline.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.frontend.frontend import FrontendStats
from repro.reporting.analysis import SchedulerSummary, summarize
from repro.reporting.collectors import JobRecord
from repro.sim.simulator import SimulationResult
from repro.federation.config import FederationConfig
from repro.federation.replication import ReplicationPlan
from repro.federation.router import RoutingTable


def merge_frontend_stats(
    parts: Sequence[FrontendStats],
) -> Optional[FrontendStats]:
    """Sum per-shard overload accounting into one fleet view.

    Counter fields add; ``max_wait_depth`` takes the worst shard;
    ``final_quality_level`` reports the most-degraded shard;
    ``quality_changes`` concatenate in shard order.  The conservation
    identity holds on the sum because it holds on every part.
    """
    parts = [p for p in parts if p is not None]
    if not parts:
        return None
    merged = FrontendStats(config=parts[0].config)
    for part in parts:
        merged.requests_seen += part.requests_seen
        merged.forwarded += part.forwarded
        merged.rejected_rate += part.rejected_rate
        merged.rejected_sessions += part.rejected_sessions
        merged.deferred += part.deferred
        merged.shed_oldest += part.shed_oldest
        merged.shed_newest += part.shed_newest
        merged.frames_dropped += part.frames_dropped
        merged.degraded_jobs += part.degraded_jobs
        merged.max_wait_depth = max(merged.max_wait_depth, part.max_wait_depth)
        merged.unserved_at_end += part.unserved_at_end
        merged.final_quality_level = max(
            merged.final_quality_level, part.final_quality_level
        )
        merged.quality_changes.extend(part.quality_changes)
        merged.rejected_actions |= part.rejected_actions
    return merged


def merge_metric_counters(
    results: Sequence[SimulationResult],
) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
    """Sum counter/gauge metrics across shard registries.

    Keyed by ``(name, sorted label items)``; histograms are skipped
    (quantiles do not merge exactly — read them per shard instead).
    """
    totals: Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float] = {}
    for result in results:
        run_metrics = result.metrics
        if run_metrics is None:
            continue
        for entry in run_metrics.registry.snapshot():
            if entry["kind"] == "histogram":
                continue
            key = (entry["name"], tuple(sorted(entry["labels"].items())))
            totals[key] = totals.get(key, 0.0) + entry["value"]
    return totals


@dataclass
class FederatedResult:
    """The merged outcome of one federated run.

    Per-shard :class:`~repro.sim.SimulationResult`\\ s stay fully
    accessible on ``shard_results``; everything else on this object is
    a deterministic function of them.
    """

    scenario_name: str
    scheduler_name: str
    config: FederationConfig
    routing: RoutingTable
    plan: ReplicationPlan
    shard_results: List[SimulationResult] = field(default_factory=list)

    # -- merged job records ------------------------------------------------

    @property
    def shards(self) -> int:
        """Shard count."""
        return self.config.shards

    @property
    def records(self) -> List[JobRecord]:
        """All shards' completed-job records, in shard order."""
        out: List[JobRecord] = []
        for result in self.shard_results:
            out.extend(result.records)
        return out

    @property
    def jobs_submitted(self) -> int:
        return sum(r.jobs_submitted for r in self.shard_results)

    @property
    def jobs_completed(self) -> int:
        return sum(r.jobs_completed for r in self.shard_results)

    @property
    def tasks_executed(self) -> int:
        return sum(r.tasks_executed for r in self.shard_results)

    @property
    def tasks_hit(self) -> int:
        return sum(r.tasks_hit for r in self.shard_results)

    @property
    def tasks_missed(self) -> int:
        return sum(r.tasks_missed for r in self.shard_results)

    @property
    def events_processed(self) -> int:
        return sum(r.events_processed for r in self.shard_results)

    @property
    def hit_rate(self) -> float:
        """Fleet-wide data-reuse hit rate over executed tasks."""
        total = self.tasks_hit + self.tasks_missed
        if total == 0:
            return 0.0
        return self.tasks_hit / total

    @property
    def horizon(self) -> float:
        """The common trace horizon (max over shards)."""
        return max(r.horizon for r in self.shard_results)

    @property
    def simulated_time(self) -> float:
        """Virtual time at the end of the slowest shard."""
        return max(r.simulated_time for r in self.shard_results)

    @property
    def target_framerate(self) -> float:
        return self.shard_results[0].target_framerate

    @property
    def frame_interval(self) -> float:
        return 1.0 / self.target_framerate

    @property
    def sched_cost_us(self) -> float:
        """Mean scheduling cost per job across shards (job-weighted)."""
        jobs = self.jobs_submitted
        if jobs == 0:
            return 0.0
        return (
            sum(r.sched_cost_us * r.jobs_submitted for r in self.shard_results)
            / jobs
        )

    # -- merged analyses ---------------------------------------------------

    def action_issues(self) -> Dict[int, List[float]]:
        """Union of per-shard issue accounting (action ids are unique)."""
        merged: Dict[int, List[float]] = {}
        for result in self.shard_results:
            merged.update(result.collector.action_issues)
        return merged

    def summary(self) -> SchedulerSummary:
        """One comparison row over the merged records."""
        return summarize(
            self.scheduler_name,
            self.records,
            hit_rate=self.hit_rate,
            sched_cost_us=self.sched_cost_us,
            action_issues=self.action_issues(),
            frame_interval=self.frame_interval,
        )

    @property
    def frontend(self) -> Optional[FrontendStats]:
        """Fleet-summed overload accounting (None without a frontend)."""
        return merge_frontend_stats(
            [r.frontend for r in self.shard_results if r.frontend is not None]
        )

    def metric_totals(
        self,
    ) -> Dict[Tuple[str, Tuple[Tuple[str, str], ...]], float]:
        """Counter/gauge totals across shard registries."""
        return merge_metric_counters(self.shard_results)

    def stream_reports(self) -> List:
        """Per-shard :class:`~repro.obs.stream.StreamReport`\\ s, in
        shard order (empty when the run did not stream)."""
        return [
            r.stream for r in self.shard_results if r.stream is not None
        ]

    def merged_anomalies(self) -> List:
        """All shards' online anomaly records, deterministically merged.

        Sorted by (time, shard, vocabulary order) — a pure function of
        the shard results, so serial and process-pool federated runs
        agree byte for byte.
        """
        from repro.obs.anomaly import merge_anomalies

        return merge_anomalies(
            [r.stream.anomalies for r in self.shard_results if r.stream]
        )

    def evaluate_slos(self, objectives) -> List:
        """Merged :class:`~repro.obs.slo.SLOReport` per objective.

        Each shard is evaluated independently (violation windows are
        per action, and every action lives on exactly one shard), then
        the per-objective reports concatenate windows and sum the
        evaluation denominators.
        """
        from repro.obs.slo import SLOMonitor, SLOReport

        merged: List[SLOReport] = []
        for objective in objectives:
            monitor = SLOMonitor([objective])
            violations = []
            evaluated_time = 0.0
            actions_evaluated = 0
            for result in self.shard_results:
                (report,) = monitor.evaluate(result)
                violations.extend(report.violations)
                evaluated_time += report.evaluated_time
                actions_evaluated += report.actions_evaluated
            merged.append(
                SLOReport(
                    objective=objective,
                    scheduler=self.scheduler_name,
                    scenario=self.scenario_name,
                    violations=violations,
                    evaluated_time=evaluated_time,
                    actions_evaluated=actions_evaluated,
                )
            )
        return merged

    # -- tables / digests --------------------------------------------------

    def shard_rows(self) -> List[List[str]]:
        """Per-shard summary rows (the report grid's data)."""
        rows = []
        for index, result in enumerate(self.shard_results):
            summary = result.summary()
            rows.append(
                [
                    f"{index}",
                    f"{self.routing.counts()[index]}",
                    f"{len(self.plan.home[index])}",
                    f"{result.jobs_submitted}",
                    f"{result.jobs_completed}",
                    f"{summary.interactive_fps:.2f}",
                    f"{summary.interactive_latency * 1000:.1f}",
                    f"{result.hit_rate * 100:.1f}",
                ]
            )
        return rows

    def shard_table(self) -> str:
        """Fixed-width per-shard summary grid."""
        headers = [
            "shard",
            "users",
            "home ds",
            "submitted",
            "completed",
            "fps",
            "latency ms",
            "hit %",
        ]
        rows = [headers] + self.shard_rows()
        widths = [
            max(len(row[col]) for row in rows) for col in range(len(headers))
        ]
        lines = []
        for index, row in enumerate(rows):
            lines.append(
                "  ".join(cell.rjust(w) for cell, w in zip(row, widths))
            )
            if index == 0:
                lines.append("  ".join("-" * w for w in widths))
        summary = self.summary()
        lines.append(
            f"merged [{self.routing.policy}/{self.plan.policy}]: "
            f"{self.jobs_completed}/{self.jobs_submitted} jobs, "
            f"{summary.interactive_fps:.2f} fps, "
            f"{summary.interactive_latency * 1000:.1f} ms latency, "
            f"{self.hit_rate * 100:.1f}% hit rate"
        )
        return "\n".join(lines)

    def digest(self) -> str:
        """Bit-exact sha256 over the merged records and routing.

        Floats hash via :meth:`float.hex`, like the golden assignment
        traces: two federated runs digest equal only when every merged
        record matches to the last bit.  This is what the serial-vs-
        pool parity tests pin.
        """
        h = hashlib.sha256()
        h.update(repr(self.routing.assignments).encode())
        for record in self.records:
            h.update(
                "|".join(
                    value.hex() if isinstance(value, float) else repr(value)
                    for value in record
                ).encode()
            )
            h.update(b"\n")
        return h.hexdigest()


__all__ = [
    "FederatedResult",
    "merge_frontend_stats",
    "merge_metric_counters",
]

"""Fleet-scale sharded federation: the layer above the simulator.

One head node + 64 render nodes caps out far below "millions of
users"; this package runs N independent simulator shards behind a
user router (ROADMAP item 2):

* :class:`FederationConfig` — frozen, picklable run description
  (shard count, router policy, replication policy, per-shard
  :class:`~repro.sim.RunConfig`, pool width),
* :mod:`~repro.federation.router` — consistent-hash and
  locality-aware user→shard placement,
* :mod:`~repro.federation.replication` — mirror / demand-partitioned
  dataset homing (which shard's cache warms which data),
* :func:`run_federation` — split → simulate (serial or process pool,
  bit-identical either way) → merge,
* :class:`FederatedResult` — the deterministic merged report (latency
  summary, SLO windows, frontend conservation accounting, metric
  totals, per-shard grid).

Quickstart::

    from repro import FederationConfig, make_scenario, run_federation

    scenario = make_scenario(4, scale=0.05, users=8)
    merged = run_federation(
        scenario, "OURS", FederationConfig(shards=8, router="locality")
    )
    print(merged.shard_table())
"""

from repro.federation.config import (
    FRONTEND_SCOPES,
    REPLICATION_POLICIES,
    ROUTER_POLICIES,
    FederationConfig,
)
from repro.federation.federation import build_shards, run_federation
from repro.federation.replication import (
    ReplicationPlan,
    dataset_demand,
    plan_replication,
)
from repro.federation.result import (
    FederatedResult,
    merge_frontend_stats,
    merge_metric_counters,
)
from repro.federation.router import (
    ConsistentHashRouter,
    LocalityRouter,
    RoutingTable,
    make_router,
    stable_hash,
)

__all__ = [
    "FederationConfig",
    "ROUTER_POLICIES",
    "REPLICATION_POLICIES",
    "FRONTEND_SCOPES",
    "run_federation",
    "build_shards",
    "ReplicationPlan",
    "plan_replication",
    "dataset_demand",
    "FederatedResult",
    "merge_frontend_stats",
    "merge_metric_counters",
    "RoutingTable",
    "ConsistentHashRouter",
    "LocalityRouter",
    "make_router",
    "stable_hash",
]

"""Cross-shard dataset replication: which data lives on which shard.

Before a federated run starts, every dataset is assigned a *home
shard* (and, under mirroring, replicas everywhere).  The home
assignment drives two things:

* the locality router sends each user to the home shard of their
  dominant dataset, and
* each shard's prewarm pass (the paper's pre-measurement "test run")
  loads its home datasets first, so the shard's cache holds exactly
  the working set routed to it.

Policies are pure functions of the trace — deterministic, no RNG — so
a federated run is reproducible from its inputs alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.workload.trace import WorkloadTrace


@dataclass(frozen=True)
class ReplicationPlan:
    """The resolved dataset→shard placement for one federated run.

    Attributes:
        policy: ``"mirror"`` or ``"partition"``.
        shards: Shard count.
        home: Per-shard tuples of *home* dataset names, each in the
            original suite order (prewarm iterates this order, so
            keeping suite order makes a 1-shard partition identical to
            the un-federated dataset list).
        home_shard: Dataset name → primary home shard.
    """

    policy: str
    shards: int
    home: Tuple[Tuple[str, ...], ...]
    home_shard: Tuple[Tuple[str, int], ...]

    def home_of(self, dataset: str) -> int:
        """Primary home shard of a dataset."""
        for name, shard in self.home_shard:
            if name == dataset:
                return shard
        raise KeyError(dataset)

    def home_map(self) -> Dict[str, int]:
        """Dataset name → home shard, as a dict."""
        return dict(self.home_shard)

    def replica_bytes(self, trace: WorkloadTrace) -> int:
        """Total bytes resident across all shards under this plan."""
        sizes = {ds.name: ds.size for ds in trace.datasets}
        return sum(
            sizes[name] for shard_home in self.home for name in shard_home
        )


def dataset_demand(trace: WorkloadTrace) -> Dict[str, int]:
    """Request count per dataset name (the bin-packing weight)."""
    demand: Dict[str, int] = {ds.name: 0 for ds in trace.datasets}
    for request in trace.requests:
        demand[request.dataset] += 1
    return demand


def plan_replication(
    trace: WorkloadTrace, shards: int, policy: str
) -> ReplicationPlan:
    """Assign every dataset of ``trace`` a home under ``policy``.

    ``mirror`` homes every dataset on every shard (primary home =
    suite index modulo shard count, round-robin).  ``partition`` homes
    each dataset on exactly one shard: datasets are taken in
    descending request-demand order (ties broken by suite order) and
    greedily placed on the least-demand-loaded shard (ties broken by
    lowest shard id) — a deterministic longest-processing-time
    bin-pack that balances *demand*, not byte counts, because demand
    is what the routed users bring with them.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    names = [ds.name for ds in trace.datasets]
    suite_index = {name: i for i, name in enumerate(names)}

    if policy == "mirror":
        home = tuple(tuple(names) for _ in range(shards))
        home_shard = tuple(
            (name, suite_index[name] % shards) for name in names
        )
        return ReplicationPlan(
            policy=policy, shards=shards, home=home, home_shard=home_shard
        )

    if policy != "partition":
        raise ValueError(f"unknown replication policy {policy!r}")

    demand = dataset_demand(trace)
    # LPT order: heaviest demand first, suite order breaking ties.
    order = sorted(names, key=lambda n: (-demand[n], suite_index[n]))
    load = [0] * shards
    assigned: Dict[str, int] = {}
    for name in order:
        shard = min(range(shards), key=lambda k: (load[k], k))
        assigned[name] = shard
        load[shard] += demand[name]
    per_shard: List[List[str]] = [[] for _ in range(shards)]
    for name in names:  # original suite order — the prewarm order
        per_shard[assigned[name]].append(name)
    return ReplicationPlan(
        policy=policy,
        shards=shards,
        home=tuple(tuple(h) for h in per_shard),
        home_shard=tuple((name, assigned[name]) for name in names),
    )


__all__ = ["ReplicationPlan", "plan_replication", "dataset_demand"]

"""User→shard placement: the router in front of the federation.

The router decides, per user, which head-node shard serves all of that
user's requests.  Keeping a user on one shard is what preserves the
paper's per-action cache behaviour — an action's frames reuse the same
chunks, so splitting a user across shards would destroy exactly the
locality the Cache table exploits.

Two policies:

* :class:`ConsistentHashRouter` — a classic vnode hash ring.  Uniform,
  stateless, residency-blind: a user may well land on a shard that
  does not hold their dataset.
* :class:`LocalityRouter` — routes each user to the home shard of
  their *dominant* dataset (the one they request most), so routed
  demand lands where the data already lives.

Both are deterministic pure functions of (trace, plan, shards): no
RNG, no insertion-order dependence — the same inputs always produce
the same :class:`RoutingTable`, on every platform (hashes come from
md5, not Python's seeded ``hash()``).
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.federation.replication import ReplicationPlan
from repro.workload.trace import WorkloadTrace

#: Virtual nodes per shard on the consistent-hash ring.  Enough to
#: bound per-shard spread to a few percent at small shard counts.
VNODES_PER_SHARD = 64


def stable_hash(key: str) -> int:
    """64-bit platform-stable hash (md5 prefix; not for security)."""
    return int.from_bytes(hashlib.md5(key.encode()).digest()[:8], "big")


@dataclass(frozen=True)
class RoutingTable:
    """The resolved user→shard assignment for one federated run."""

    policy: str
    shards: int
    assignments: Tuple[Tuple[int, int], ...]  # (user, shard), user-sorted

    def shard_of(self, user: int) -> int:
        """Shard serving a user."""
        index = bisect.bisect_left(self.assignments, (user, -1))
        if index < len(self.assignments) and self.assignments[index][0] == user:
            return self.assignments[index][1]
        raise KeyError(user)

    def users_of(self, shard: int) -> List[int]:
        """Users routed to a shard, ascending."""
        return [u for u, s in self.assignments if s == shard]

    def counts(self) -> List[int]:
        """Users per shard."""
        out = [0] * self.shards
        for _, shard in self.assignments:
            out[shard] += 1
        return out


class ConsistentHashRouter:
    """Vnode consistent-hash ring over the shard set."""

    name = "hash"

    def __init__(self, shards: int, *, vnodes: int = VNODES_PER_SHARD) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        ring = [
            (stable_hash(f"shard-{shard}-vnode-{v}"), shard)
            for shard in range(shards)
            for v in range(vnodes)
        ]
        ring.sort()
        self.shards = shards
        self._points = [h for h, _ in ring]
        self._targets = [s for _, s in ring]

    def route(self, user: int) -> int:
        """Shard for a user: first ring point at or after the user's hash."""
        index = bisect.bisect_left(self._points, stable_hash(f"user-{user}"))
        if index == len(self._points):
            index = 0
        return self._targets[index]

    def assign(
        self, trace: WorkloadTrace, plan: ReplicationPlan
    ) -> RoutingTable:
        """Route every user of the trace (plan unused — residency-blind)."""
        users = sorted({r.user for r in trace.requests})
        return RoutingTable(
            policy=self.name,
            shards=self.shards,
            assignments=tuple((u, self.route(u)) for u in users),
        )


class LocalityRouter:
    """Route each user to the home shard of their dominant dataset.

    The dominant dataset is the one the user requests most often (ties
    broken by first appearance in the user's time-sorted request
    stream, so the decision is deterministic).  Batch users submit
    exactly one dataset each — their submissions always land on the
    data's home shard, which is what keeps batch-induced cache
    swapping (the Scenario 2/4 memory-pressure mechanism) local.
    """

    name = "locality"

    def __init__(self, shards: int) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = shards

    def assign(
        self, trace: WorkloadTrace, plan: ReplicationPlan
    ) -> RoutingTable:
        """Route every user of the trace by dataset residency."""
        counts: Dict[int, Dict[str, int]] = {}
        first_seen: Dict[Tuple[int, str], int] = {}
        for order, request in enumerate(trace.requests):
            per_user = counts.setdefault(request.user, {})
            per_user[request.dataset] = per_user.get(request.dataset, 0) + 1
            first_seen.setdefault((request.user, request.dataset), order)
        home = plan.home_map()
        assignments = []
        for user in sorted(counts):
            per_user = counts[user]
            dominant = min(
                per_user,
                key=lambda ds: (-per_user[ds], first_seen[(user, ds)]),
            )
            assignments.append((user, home[dominant]))
        return RoutingTable(
            policy=self.name,
            shards=self.shards,
            assignments=tuple(assignments),
        )


def make_router(policy: str, shards: int):
    """Instantiate a router by policy name (``hash`` | ``locality``)."""
    if policy == "hash":
        return ConsistentHashRouter(shards)
    if policy == "locality":
        return LocalityRouter(shards)
    raise ValueError(f"unknown router policy {policy!r}")


__all__ = [
    "RoutingTable",
    "ConsistentHashRouter",
    "LocalityRouter",
    "make_router",
    "stable_hash",
    "VNODES_PER_SHARD",
]

"""Federated run orchestration: split, simulate, merge.

:func:`run_federation` is the first layer *above* the simulator: it
splits one scenario into N per-shard scenarios (router + replication
plan), runs each shard as an ordinary independent simulation — serially
or on a process pool, reusing the ``workers=N`` discipline sweeps
established — and merges the per-shard results deterministically into
one :class:`~repro.federation.FederatedResult`.

The split is exact, not sampled: every request of the input trace
lands on exactly one shard (its user's shard), so fleet totals
conserve the input workload.  A 1-shard federation routes everything
to shard 0 with the original dataset order and job namespace 0 — bit-
identical to a plain :func:`~repro.sim.run_simulation` run, which the
golden-trace tests pin.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import replace as dc_replace
from typing import List, Optional, Tuple, Union

from repro.core.scheduler_base import Scheduler
from repro.frontend.config import FrontendConfig
from repro.sim.run_config import RunConfig
from repro.sim.simulator import SimulationResult, run_simulation
from repro.workload.scenarios import Scenario
from repro.workload.trace import WorkloadTrace
from repro.federation.config import FederationConfig
from repro.federation.replication import ReplicationPlan, plan_replication
from repro.federation.result import FederatedResult
from repro.federation.router import RoutingTable, make_router


def _scoped_frontend(
    frontend: Optional[FrontendConfig], scope: str, shards: int
) -> Optional[FrontendConfig]:
    """Resolve frontend caps for one shard.

    ``shard`` scope passes the config through unchanged; ``global``
    scope treats the configured caps as fleet totals and divides them
    across shards (ceiling, floor 1 — a shard with a zero cap would
    reject everything routed to it).
    """
    if frontend is None or scope == "shard" or shards == 1:
        return frontend

    def split(value, *, floor=1):
        if value is None:
            return None
        if isinstance(value, int):
            return max(floor, -(-value // shards))
        return value / shards

    admission = dc_replace(
        frontend.admission,
        rate=split(frontend.admission.rate),
        max_sessions=split(frontend.admission.max_sessions),
    )
    backpressure = dc_replace(
        frontend.backpressure,
        queue_limit=split(frontend.backpressure.queue_limit),
    )
    return dc_replace(
        frontend, admission=admission, backpressure=backpressure
    )


def build_shards(
    scenario: Scenario, config: FederationConfig
) -> Tuple[ReplicationPlan, RoutingTable, List[Tuple[Scenario, RunConfig]]]:
    """Split one scenario into per-shard (scenario, run-config) pairs.

    Shard ``k`` gets:

    * the requests of every user the router placed on it (an action
      never splits across shards — all its requests share a user),
    * a dataset list ordering its *home* datasets first (in suite
      order), then any foreign datasets its requests reference (suite
      order).  Prewarm loads datasets in list order, so each shard's
      cache warms with its own working set before anything else,
    * ``RunConfig(job_namespace=k)`` so merged job ids never collide,
      with frontend caps scoped per :attr:`FederationConfig.frontend_scope`.
    """
    trace = scenario.trace
    plan = plan_replication(trace, config.shards, config.resolved_replication)
    routing = make_router(config.router, config.shards).assign(trace, plan)

    shard_of = dict(routing.assignments)
    per_shard_requests: List[list] = [[] for _ in range(config.shards)]
    for request in trace.requests:
        per_shard_requests[shard_of[request.user]].append(request)

    suite = {ds.name: ds for ds in trace.datasets}
    pairs: List[Tuple[Scenario, RunConfig]] = []
    for k in range(config.shards):
        requests = per_shard_requests[k]
        home = list(plan.home[k])
        referenced = {r.dataset for r in requests}
        foreign = [
            ds.name
            for ds in trace.datasets
            if ds.name in referenced and ds.name not in set(home)
        ]
        shard_trace = WorkloadTrace(
            requests=list(requests),
            datasets=[suite[name] for name in home + foreign],
            duration=trace.duration,
            target_framerate=trace.target_framerate,
            name=f"{trace.name}-shard{k}",
        )
        shard_scenario = dc_replace(
            scenario,
            name=f"{scenario.name}-shard{k}" if config.shards > 1 else scenario.name,
            trace=shard_trace,
        )
        shard_config = config.run.replace(
            job_namespace=k,
            frontend=_scoped_frontend(
                config.run.frontend, config.frontend_scope, config.shards
            ),
            # One stream file per shard: worker processes never share a
            # write handle, and FederatedResult merges the per-shard
            # anomaly records deterministically afterwards.
            stream=(
                config.run.stream.for_shard(k)
                if config.run.stream is not None and config.shards > 1
                else config.run.stream
            ),
        )
        pairs.append((shard_scenario, shard_config))
    return plan, routing, pairs


def _run_shard(
    scenario: Scenario, scheduler: str, config: RunConfig
) -> SimulationResult:
    """Worker body for one shard run.

    Module-level so it is picklable for :class:`ProcessPoolExecutor`;
    detaches the timeline sampler's service reference (a cycle through
    the whole cluster) before the result crosses the process boundary.
    """
    result = run_simulation(scenario, scheduler, config=config)
    if result.timeline_samples is not None:
        result.timeline_samples._service = None
    return result


def run_federation(
    scenario: Scenario,
    scheduler: Union[str, Scheduler] = "OURS",
    config: Optional[FederationConfig] = None,
) -> FederatedResult:
    """Run ``scenario`` across a federation of simulator shards.

    Args:
        scenario: The *whole-fleet* workload (typically built with a
            ``users=shards`` multiplier so each shard sees about one
            Table II load after routing).
        scheduler: Per-shard scheduling policy (name or instance; every
            shard runs the same policy).
        config: The :class:`FederationConfig`; defaults to
            ``FederationConfig()`` (2 shards, locality router).

    Returns:
        The merged :class:`~repro.federation.FederatedResult`;
        ``workers=1`` and ``workers=N`` produce bit-identical merges.
    """
    if config is None:
        config = FederationConfig()
    scheduler_name = (
        scheduler if isinstance(scheduler, str) else scheduler.name
    )
    plan, routing, pairs = build_shards(scenario, config)
    if config.workers > 1 and config.shards > 1:
        with ProcessPoolExecutor(
            max_workers=min(config.workers, config.shards)
        ) as pool:
            futures = [
                pool.submit(_run_shard, shard_scenario, scheduler_name, cfg)
                for shard_scenario, cfg in pairs
            ]
            results = [f.result() for f in futures]
    else:
        results = [
            _run_shard(shard_scenario, scheduler_name, cfg)
            for shard_scenario, cfg in pairs
        ]
    return FederatedResult(
        scenario_name=scenario.name,
        scheduler_name=scheduler_name,
        config=config,
        routing=routing,
        plan=plan,
        shard_results=results,
    )


__all__ = ["run_federation", "build_shards"]

"""Single funnel for every deprecation shim in the package.

Three legacy surfaces survive from the pre-1.x API:

* ``run_simulation(..., **legacy_kwargs)`` — keyword arguments that
  predate the frozen :class:`repro.sim.RunConfig` (PR 3),
* ``repro.metrics`` — the old name of :mod:`repro.reporting` (it
  collided with the :mod:`repro.obs.metrics` runtime registry),
* ``RunConfig(node_failures=[(t, node), ...])`` — the ad-hoc crash
  pairs that predate :class:`repro.faults.FaultPlan` (PR 6).

All three warn through :func:`warn_deprecated` below, so there is one
tested warning path, one place to flip warnings into errors when a
shim's removal release arrives, and one module to delete afterwards.

Deprecation policy (also in README): a shim warns with
:class:`DeprecationWarning` for at least one minor release before
removal; the warning text names the replacement.  The test suite runs
with first-party ``DeprecationWarning`` promoted to errors, so in-tree
code can never depend on a shim.
"""

from __future__ import annotations

import sys
import warnings

__all__ = ["warn_deprecated", "import_stacklevel"]


def warn_deprecated(message: str, *, stacklevel: int) -> None:
    """Emit a :class:`DeprecationWarning` attributed to the caller.

    ``stacklevel`` counts from the *shim* (the function the user
    actually called), exactly as if the shim invoked
    :func:`warnings.warn` itself — this helper adds one level for its
    own frame, so call sites keep the stacklevel they used before the
    funnel existed.
    """
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel + 1)


def import_stacklevel() -> int:
    """Stack level of the nearest frame outside the import machinery.

    For module-body deprecation warnings (the ``repro.metrics`` alias):
    a plain ``stacklevel=2`` attributes the warning to the import
    machinery when the import came through
    :func:`importlib.import_module` (its ``importlib/__init__.py`` frame
    is *not* one of the bootstrap frames :func:`warnings.warn` skips on
    its own) — misleading in the warning text, and invisible to
    per-module warning filters (pytest's
    ``error::DeprecationWarning:tests...`` config never matched it).
    Walk outward to the first frame that is not import machinery,
    counting levels exactly as ``warn()`` does: frames CPython's
    stacklevel walk treats as internal (importlib bootstrap) don't
    count.

    The returned level is relative to the deprecated module's body, for
    a direct :func:`warnings.warn` call there; when warning through
    :func:`warn_deprecated` instead, pass the value unchanged — the
    helper compensates for its own frame.
    """
    level = 1  # the warn() call in the deprecated module's body
    try:
        frame = sys._getframe(2)  # the module body's caller
    except ValueError:  # imported with no caller frame (direct exec)
        return level + 1
    while frame is not None:
        filename = frame.f_code.co_filename
        if "importlib" in filename and "_bootstrap" in filename:
            # warn() skips these without counting; mirror that.
            frame = frame.f_back
            continue
        level += 1
        if "importlib" not in filename and not filename.startswith("<frozen"):
            break
        frame = frame.f_back
    return level

"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scenario == 1
        assert args.schedulers == "OURS"
        assert args.scale == 1.0

    def test_render_defaults(self):
        args = build_parser().parse_args(["render"])
        assert args.dataset == "supernova"
        assert args.algorithm == "2-3-swap"

    def test_scheduler_alias_and_obs_flags(self):
        args = build_parser().parse_args(
            ["simulate", "--scheduler", "OURS", "--trace", "t.json", "--profile"]
        )
        assert args.schedulers == "OURS"
        assert args.trace == "t.json"
        assert args.profile is True

    def test_obs_flags_default_off(self):
        args = build_parser().parse_args(["simulate"])
        assert args.trace is None
        assert args.profile is False

    def test_overload_flags_default_off(self):
        args = build_parser().parse_args(["simulate"])
        assert args.load == 1.0
        assert args.admission is None
        assert args.queue_limit is None
        assert args.degrade is False

    def test_faults_defaults(self):
        args = build_parser().parse_args(["faults"])
        assert args.scenario == 1
        assert args.scheduler == "OURS"
        assert args.plan is None and args.storm is None
        assert args.no_heal is False
        assert args.rca_tolerance == 2.0
        assert args.report is None

    def test_overload_flags_parse(self):
        args = build_parser().parse_args(
            [
                "simulate",
                "--load", "2.5",
                "--admission", "sessions=8,rate=50",
                "--queue-limit", "32:shed-oldest",
                "--degrade",
            ]
        )
        assert args.load == 2.5
        assert args.admission == "sessions=8,rate=50"
        assert args.queue_limit == "32:shed-oldest"
        assert args.degrade is True


class TestCommands:
    def test_schedulers_lists_all(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        for name in ("OURS", "FCFS", "FCFSL", "FCFSU", "SF", "FS"):
            assert name in out

    def test_scenarios_describe(self, capsys):
        assert main(["scenarios"]) == 0
        out = capsys.readouterr().out
        assert "[1]" in out and "[4]" in out
        assert "linux8" in out and "anl" in out

    def test_simulate_small(self, capsys):
        code = main(
            [
                "simulate",
                "--scenario",
                "1",
                "--scale",
                "0.05",
                "--schedulers",
                "ours,fcfs",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "OURS" in out and "FCFS" in out
        assert "completed" in out

    def test_simulate_unknown_scheduler(self, capsys):
        assert main(["simulate", "--schedulers", "BOGUS"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_simulate_overloaded_with_frontend(self, capsys):
        code = main(
            [
                "simulate",
                "--scenario", "2",
                "--scale", "0.03",
                "--load", "2.5",
                "--admission", "sessions=8",
                "--queue-limit", "32:shed-oldest",
                "--degrade",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "frontend:" in out
        assert "forwarded" in out

    def test_simulate_bad_admission_spec(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--scenario", "2",
                    "--scale", "0.03",
                    "--admission", "bogus=1",
                ]
            )
            == 2
        )
        assert "unknown --admission key" in capsys.readouterr().err

    def test_simulate_bad_queue_limit(self, capsys):
        assert (
            main(
                [
                    "simulate",
                    "--scenario", "2",
                    "--scale", "0.03",
                    "--queue-limit", "fast",
                ]
            )
            == 2
        )
        assert "bad --queue-limit" in capsys.readouterr().err

    def test_simulate_load_rejected_on_scenario_1(self, capsys):
        assert main(["simulate", "--scenario", "1", "--load", "2.0"]) == 2
        assert "load" in capsys.readouterr().err

    def test_simulate_per_action(self, capsys):
        code = main(
            [
                "simulate",
                "--scenario",
                "1",
                "--scale",
                "0.05",
                "--per-action",
            ]
        )
        assert code == 0
        assert "action" in capsys.readouterr().out

    def test_render_writes_ppm(self, tmp_path, capsys):
        out = tmp_path / "img.ppm"
        code = main(
            [
                "render",
                "--dataset",
                "plume",
                "--size",
                "16",
                "--image",
                "24",
                "--ranks",
                "3",
                "--out",
                str(out),
            ]
        )
        assert code == 0
        data = out.read_bytes()
        assert data.startswith(b"P6\n24 24\n255\n")
        assert "wrote" in capsys.readouterr().out


class TestFaultsCommand:
    def test_storm_smoke(self, capsys):
        code = main(
            ["faults", "--scenario", "1", "--scale", "0.05", "--storm", "11"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan (self-healing" in out
        assert "jobs lost" in out
        assert "score vs ground truth" in out

    def test_explicit_plan_no_heal(self, capsys):
        code = main(
            [
                "faults",
                "--scenario", "1",
                "--scale", "0.05",
                "--plan", "crash@1:node=2",
                "--no-heal",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault plan (vanilla" in out

    def test_report_and_audit_written(self, tmp_path, capsys):
        import json

        report = tmp_path / "rca.json"
        audit = tmp_path / "fault-audit.jsonl"
        code = main(
            [
                "faults",
                "--scenario", "1",
                "--scale", "0.05",
                "--plan", "crash@1:node=2,revive=2.2",
                "--audit", str(audit),
                "--report", str(report),
            ]
        )
        assert code == 0
        payload = json.loads(report.read_text())
        assert payload["self_healing"] is True
        assert payload["fault_report"]["jobs_lost"] == 0
        assert audit.exists() and audit.stat().st_size > 0
        capsys.readouterr()

    def test_unknown_scheduler_rejected(self, capsys):
        assert main(["faults", "--scheduler", "BOGUS"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_bad_plan_rejected(self, capsys):
        assert main(["faults", "--plan", "meteor@1:node=0"]) == 2
        assert "unknown fault kind" in capsys.readouterr().err

    def test_plan_and_storm_exclusive(self, capsys):
        assert (
            main(["faults", "--plan", "crash@1:node=0", "--storm", "7"]) == 2
        )
        assert "--plan" in capsys.readouterr().err


class TestAnimateCommand:
    def test_animate_writes_frames(self, tmp_path, capsys):
        code = main(
            [
                "animate",
                "--dataset", "plume",
                "--frames", "2",
                "--size", "14",
                "--image", "16",
                "--ranks", "2",
                "--out", str(tmp_path / "anim"),
            ]
        )
        assert code == 0
        assert (tmp_path / "anim" / "frame_0000.ppm").exists()
        assert (tmp_path / "anim" / "frame_0001.ppm").exists()

    def test_render_shaded(self, tmp_path):
        out = tmp_path / "s.ppm"
        code = main(
            [
                "render", "--dataset", "supernova", "--size", "14",
                "--image", "16", "--ranks", "2", "--shaded",
                "--out", str(out),
            ]
        )
        assert code == 0
        assert out.exists()


class TestVersion:
    def test_version_flag_prints_and_exits(self, capsys):
        from repro import __version__

        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert out.strip() == f"repro {__version__}"


class TestReportCommand:
    def test_report_defaults(self):
        args = build_parser().parse_args(["report"])
        assert args.scenario == 2
        assert args.schedulers == "OURS,FCFS"
        assert args.scale == 0.1
        assert args.out == "run.html"
        assert args.bins == 60
        assert args.svg is None and args.plan is None

    def test_report_writes_selfcontained_ab_html(self, tmp_path, capsys):
        out = tmp_path / "run.html"
        code = main(
            [
                "report", "--scenario", "2", "--scale", "0.03",
                "--schedulers", "OURS,FCFS", "--out", str(out),
            ]
        )
        assert code == 0
        assert f"wrote {out}" in capsys.readouterr().out
        page = out.read_text(encoding="utf-8")
        assert page.startswith("<!DOCTYPE html>")
        assert page.count("<svg") == 2
        assert "First divergence" in page
        assert "<script" not in page
        assert "http" not in page.replace("http://www.w3.org/2000/svg", "")

    def test_report_single_scheduler_with_svg(self, tmp_path):
        out = tmp_path / "run.html"
        svg_out = tmp_path / "tl.svg"
        code = main(
            [
                "report", "--scenario", "1", "--scale", "0.05",
                "--scheduler", "OURS", "--out", str(out),
                "--svg", str(svg_out),
            ]
        )
        assert code == 0
        assert out.exists() and svg_out.exists()
        assert svg_out.read_text(encoding="utf-8").startswith("<svg")

    def test_report_rerun_is_byte_identical(self, tmp_path):
        outs = []
        for name in ("a.html", "b.html"):
            out = tmp_path / name
            assert (
                main(
                    [
                        "report", "--scenario", "2", "--scale", "0.03",
                        "--out", str(out),
                    ]
                )
                == 0
            )
            outs.append(out.read_bytes())
        assert outs[0] == outs[1]

    def test_report_unknown_scheduler(self, capsys):
        assert main(["report", "--schedulers", "BOGUS"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_report_too_many_schedulers(self, capsys):
        assert main(["report", "--schedulers", "OURS,FCFS,SF"]) == 2
        assert "one or two" in capsys.readouterr().err

    def test_report_with_fault_plan(self, tmp_path):
        out = tmp_path / "faulty.html"
        code = main(
            [
                "report", "--scenario", "1", "--scale", "0.1",
                "--scheduler", "OURS", "--drain",
                "--plan", "crash@1:node=1,revive=2",
                "--out", str(out),
            ]
        )
        assert code == 0
        page = out.read_text(encoding="utf-8")
        assert "crash injected" in page


class TestFederate:
    def test_defaults(self):
        args = build_parser().parse_args(["federate"])
        assert args.scenario == 4
        assert args.shards == 2
        assert args.router == "locality"
        assert args.replication == "auto"
        assert args.users is None
        assert args.workers == 1
        assert args.frontend_scope == "shard"
        # Inherited from the shared parents, same spelling as simulate.
        assert args.scheduler == "OURS"
        assert args.load == 1.0 and args.drain is False
        assert args.slo is None and args.metrics is None

    def test_small_run_prints_merged_grid(self, capsys):
        code = main(
            [
                "federate", "--scenario", "2", "--scale", "0.03",
                "--shards", "2", "--router", "locality",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "federation: 2 shard(s), router=locality" in out
        assert "merged [locality/partition]:" in out
        assert "SLO report (merged)" in out

    def test_unknown_scheduler_rejected(self, capsys):
        assert main(["federate", "--scheduler", "BOGUS"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_bad_shards_rejected(self, capsys):
        assert main(["federate", "--shards", "0"]) == 2
        assert "shards" in capsys.readouterr().err

    def test_html_report_written(self, tmp_path):
        out = tmp_path / "fed.html"
        code = main(
            [
                "federate", "--scenario", "2", "--scale", "0.03",
                "--shards", "2", "--out", str(out),
            ]
        )
        assert code == 0
        page = out.read_text(encoding="utf-8")
        assert page.startswith("<!DOCTYPE html>")
        assert "federation report" in page
        assert "Per-shard summary" in page

    def test_shared_parents_cover_all_sim_verbs(self):
        """The consolidation invariant: every simulation verb accepts
        the same core flags with one definition each."""
        parser = build_parser()
        for verb in ("simulate", "federate", "explain", "report", "faults"):
            args = parser.parse_args([verb, "--scenario", "2", "--scale",
                                      "0.05", "--seed", "7", "--load", "1.5"])
            assert args.scenario == 2
            assert args.scale == 0.05
            assert args.seed == 7
            assert args.load == 1.5


class TestStreamFlag:
    def test_stream_parent_covers_all_sim_verbs(self):
        parser = build_parser()
        for verb in ("simulate", "federate", "explain", "report", "faults"):
            args = parser.parse_args(
                [verb, "--stream", "s.ndjson", "--stall-timeout", "30"]
            )
            assert args.stream == "s.ndjson"
            assert args.stall_timeout == 30.0

    def test_stall_timeout_requires_stream(self, capsys):
        assert main(["simulate", "--stall-timeout", "5"]) == 2
        assert "--stall-timeout requires --stream" in capsys.readouterr().err

    def test_simulate_streams_and_prints_throughput(self, tmp_path, capsys):
        stream = tmp_path / "run.ndjson"
        code = main(
            [
                "simulate",
                "--scenario", "1",
                "--scale", "0.1",
                "--stream", str(stream),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "events/s)" in out  # the throughput footer
        assert "stream:" in out and "snapshots" in out
        from repro.obs import read_stream

        records = read_stream(stream)
        assert records[0]["type"] == "run"
        assert records[-1]["type"] == "summary"

    def test_multi_scheduler_stream_names(self, tmp_path):
        stream = tmp_path / "cmp.ndjson"
        code = main(
            [
                "simulate",
                "--scenario", "1",
                "--scale", "0.1",
                "--schedulers", "OURS,FCFS",
                "--stream", str(stream),
            ]
        )
        assert code == 0
        assert (tmp_path / "cmp.OURS.ndjson").exists()
        assert (tmp_path / "cmp.FCFS.ndjson").exists()

    def test_faults_stream_prints_online_score(self, tmp_path, capsys):
        stream = tmp_path / "storm.ndjson"
        code = main(
            [
                "faults",
                "--scenario", "1",
                "--scale", "0.1",
                "--storm", "11",
                "--stream", str(stream),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "online anomaly detection" in out
        assert "events localized online" in out
        assert stream.exists()

    def test_federate_stream_per_shard(self, tmp_path, capsys):
        stream = tmp_path / "fed.ndjson"
        code = main(
            [
                "federate",
                "--scenario", "4",
                "--scale", "0.02",
                "--shards", "2",
                "--stream", str(stream),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fed.shard0.ndjson" in out
        assert (tmp_path / "fed.shard0.ndjson").exists()
        assert (tmp_path / "fed.shard1.ndjson").exists()


class TestWatchCommand:
    def _make_stream(self, tmp_path):
        stream = tmp_path / "run.ndjson"
        assert (
            main(
                [
                    "simulate",
                    "--scenario", "1",
                    "--scale", "0.1",
                    "--stream", str(stream),
                ]
            )
            == 0
        )
        return stream

    def test_watch_once(self, tmp_path, capsys):
        stream = self._make_stream(tmp_path)
        capsys.readouterr()
        assert main(["watch", str(stream), "--once"]) == 0
        out = capsys.readouterr().out
        assert "stream: scenario scenario1" in out
        assert "queue" in out  # status-table header
        assert "run complete:" in out

    def test_watch_follow_exits_on_summary(self, tmp_path, capsys):
        stream = self._make_stream(tmp_path)
        capsys.readouterr()
        assert main(["watch", str(stream), "--poll", "0.01"]) == 0
        assert "run complete:" in capsys.readouterr().out

    def test_watch_once_missing_file(self, tmp_path, capsys):
        assert main(["watch", str(tmp_path / "nope.ndjson"), "--once"]) == 2
        assert "no stream file" in capsys.readouterr().err

    def test_watch_times_out_without_summary(self, tmp_path, capsys):
        dead = tmp_path / "dead.ndjson"
        dead.write_text('{"type": "run", "schema": 1, "scenario": "s", '
                        '"scheduler": "OURS", "horizon": 6.0, '
                        '"interval": 0.1, "shard": 0}\n')
        code = main(
            ["watch", str(dead), "--poll", "0.02", "--idle-timeout", "0.2"]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "went quiet" in captured.err

    def test_watch_rejects_bad_poll(self, capsys):
        assert main(["watch", "x.ndjson", "--poll", "0"]) == 2
        assert "--poll" in capsys.readouterr().err

    def test_watch_shows_faults_and_anomalies(self, tmp_path, capsys):
        stream = tmp_path / "storm.ndjson"
        assert (
            main(
                [
                    "faults",
                    "--scenario", "1",
                    "--scale", "0.1",
                    "--storm", "11",
                    "--stream", str(stream),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["watch", str(stream), "--once"]) == 0
        out = capsys.readouterr().out
        assert "fault planned: crash" in out
        assert "!!" in out  # at least one anomaly line

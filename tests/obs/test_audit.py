"""Decision audit log: ring semantics, reason codes, flight recorder."""

import json

import pytest

from repro.core.job import JobType
from repro.obs.audit import (
    REASON_CACHE_HIT,
    REASON_CODES,
    REASON_FALLBACK,
    REASON_MIN_ESTIMATE,
    REASON_ONLY_AVAILABLE,
    REASON_SHED,
    AuditConfig,
    AuditLog,
    snapshot_candidates,
)
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario
from repro.workload.trace import Request


class FakeChunk:
    def __init__(self, dataset="ds", index=0):
        self.dataset = dataset
        self.index = index


class FakeJob:
    def __init__(self, user=1, action=2, sequence=3):
        self.user = user
        self.action = action
        self.sequence = sequence
        self.job_type = JobType.INTERACTIVE
        self.composite_group_size = 1


class FakeTask:
    def __init__(self, index=0, job=None, chunk=None):
        self.chunk = chunk if chunk is not None else FakeChunk()
        self.job = job if job is not None else FakeJob()
        self.index = index


class FakeTables:
    """Just enough SchedulerTables surface for the audit hooks."""

    def __init__(self, available, cached=()):
        self.available = list(available)
        self._cached = set(cached)

    def is_cached(self, chunk, node):
        return node in self._cached

    def cached_nodes(self, chunk):
        return set(self._cached)

    def min_available_node(self):
        return min(range(len(self.available)), key=self.available.__getitem__)

    def estimate_components(self, chunk, group):
        return 1.0, 5.0  # (cached, cold)


class TestAuditConfig:
    def test_defaults(self):
        cfg = AuditConfig()
        assert cfg.capacity == 4096
        assert cfg.jsonl_path is None
        assert cfg.candidates is True

    def test_unbounded_capacity_allowed(self):
        assert AuditConfig(capacity=None).capacity is None

    def test_bad_capacity_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            AuditConfig(capacity=0)

    def test_bad_max_candidates_rejected(self):
        with pytest.raises(ValueError, match="max_candidates"):
            AuditConfig(max_candidates=0)


class TestReasonDerivation:
    """When the policy states no reason, one is derived from the tables."""

    def record(self, tables, node, reason=None):
        log = AuditLog(AuditConfig(candidates=False))
        log.begin_invocation(0.0, 1)
        log.record_assignment(FakeTask(), node, tables, 1.0, reason)
        (rec,) = log.records
        return rec

    def test_cached_node_is_cache_hit(self):
        rec = self.record(FakeTables([5.0, 0.0], cached={1}), node=1)
        assert rec.reason == REASON_CACHE_HIT

    def test_min_available_node_is_only_available(self):
        rec = self.record(FakeTables([5.0, 0.0]), node=1)
        assert rec.reason == REASON_ONLY_AVAILABLE

    def test_other_node_is_min_estimate(self):
        rec = self.record(FakeTables([5.0, 0.0]), node=0)
        assert rec.reason == REASON_MIN_ESTIMATE

    def test_explicit_reason_passes_through(self):
        rec = self.record(
            FakeTables([5.0, 0.0], cached={1}), node=1, reason=REASON_FALLBACK
        )
        assert rec.reason == REASON_FALLBACK

    def test_record_fields(self):
        rec = self.record(FakeTables([5.0, 0.0], cached={1}), node=1)
        assert rec.time == 1.0
        assert rec.cycle == 1
        assert (rec.user, rec.action, rec.sequence) == (1, 2, 3)
        assert rec.job_type == "interactive"
        assert rec.key() == (1, 2, 3, 0)


class TestRingBuffer:
    def test_eviction_keeps_newest_and_counts_drops(self):
        log = AuditLog(AuditConfig(capacity=4, candidates=False))
        tables = FakeTables([0.0, 1.0])
        for i in range(10):
            log.record_assignment(FakeTask(index=i), 0, tables, float(i), None)
        assert len(log) == 4
        assert log.total_recorded == 10
        assert log.dropped == 6
        assert [r.task_index for r in log] == [6, 7, 8, 9]

    def test_reason_totals_survive_eviction(self):
        log = AuditLog(AuditConfig(capacity=2, candidates=False))
        tables = FakeTables([0.0, 1.0])
        for i in range(5):
            log.record_assignment(FakeTask(index=i), 0, tables, 0.0, None)
        assert log.reason_counts() == {REASON_ONLY_AVAILABLE: 5}
        assert sum(log.reason_counts().values()) == log.total_recorded

    def test_decisions_for_filters_one_job(self):
        log = AuditLog(AuditConfig(candidates=False))
        tables = FakeTables([0.0, 1.0])
        log.record_assignment(
            FakeTask(job=FakeJob(user=7, action=1, sequence=0)), 0, tables, 0.0, None
        )
        log.record_assignment(
            FakeTask(job=FakeJob(user=8, action=1, sequence=0)), 0, tables, 0.0, None
        )
        assert len(log.decisions_for(7, 1, 0)) == 1
        assert log.decisions_for(9, 9, 9) == []

    def test_summary_mentions_counts(self):
        log = AuditLog(AuditConfig(candidates=False))
        log.record_assignment(FakeTask(), 0, FakeTables([0.0]), 0.0, None)
        assert "1 decisions" in log.summary()


class TestFlightRecorder:
    def test_jsonl_stream_sees_evicted_records(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(AuditConfig(capacity=2, jsonl_path=path, candidates=False))
        tables = FakeTables([0.0, 1.0])
        for i in range(5):
            log.record_assignment(FakeTask(index=i), 0, tables, float(i), None)
        log.close()
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert len(rows) == 5  # the ring only holds 2
        assert [r["task_index"] for r in rows] == [0, 1, 2, 3, 4]
        assert rows[0]["reason"] == REASON_ONLY_AVAILABLE

    def test_close_is_idempotent(self, tmp_path):
        log = AuditLog(AuditConfig(jsonl_path=tmp_path / "a.jsonl"))
        log.close()
        log.close()

    def test_candidates_roundtrip_through_json(self, tmp_path):
        path = tmp_path / "audit.jsonl"
        log = AuditLog(AuditConfig(jsonl_path=path))
        log.record_assignment(
            FakeTask(), 0, FakeTables([0.0, 1.0], cached={1}), 0.5, None
        )
        log.close()
        (row,) = [json.loads(line) for line in path.read_text().splitlines()]
        nodes = {c["node"]: c for c in row["candidates"]}
        assert nodes[1]["cached"] is True

    def test_write_jsonl_dumps_ring_only(self, tmp_path):
        log = AuditLog(AuditConfig(capacity=2, candidates=False))
        tables = FakeTables([0.0, 1.0])
        for i in range(5):
            log.record_assignment(FakeTask(index=i), 0, tables, 0.0, None)
        path = log.write_jsonl(tmp_path / "ring.jsonl")
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["task_index"] for r in rows] == [3, 4]


class TestShed:
    def test_record_shed_shape(self):
        log = AuditLog()
        request = Request(0.25, JobType.INTERACTIVE, "engine", 4, 2, 9)
        log.record_shed(0.25, request)
        (rec,) = log.records
        assert rec.reason == REASON_SHED
        assert rec.node == -1
        assert rec.task_index == -1
        assert (rec.user, rec.action, rec.sequence) == (4, 2, 9)
        assert log.shed_count == 1
        assert log.reason_counts() == {REASON_SHED: 1}


class TestSnapshot:
    def test_chosen_first_then_min_available_then_replicas(self):
        tables = FakeTables([3.0, 0.0, 2.0, 1.0], cached={2, 3})
        cands = snapshot_candidates(tables, FakeTask(), chosen=0, max_candidates=8)
        assert [c.node for c in cands] == [0, 1, 2, 3]
        assert cands[0].cached is False and cands[0].estimate == 5.0
        assert cands[2].cached is True and cands[2].estimate == 1.0
        assert cands[1].available == 0.0

    def test_no_duplicates_when_chosen_is_min_available(self):
        tables = FakeTables([0.0, 1.0], cached={0})
        cands = snapshot_candidates(tables, FakeTask(), chosen=0, max_candidates=8)
        assert [c.node for c in cands] == [0]

    def test_max_candidates_caps_replica_fanout(self):
        tables = FakeTables([0.0] * 10, cached=set(range(10)))
        cands = snapshot_candidates(tables, FakeTask(), chosen=5, max_candidates=3)
        assert len(cands) == 3


class TestSimulationWiring:
    """The audit log threaded through a real run."""

    def run(self, scheduler, audit, **kwargs):
        scenario = make_scenario(2, scale=0.05)
        return run_simulation(
            scenario, scheduler, RunConfig(audit=audit, **kwargs)
        )

    def test_off_by_default(self):
        result = self.run("OURS", audit=False)
        assert result.audit is None
        assert result.critical_paths is None

    def test_audit_true_uses_default_config(self):
        result = self.run("OURS", audit=True)
        assert result.audit is not None
        assert result.audit.total_recorded > 0
        assert result.audit.invocations > 0
        assert set(result.audit.reason_counts()) <= set(REASON_CODES)

    def test_audit_off_keeps_golden_hash(self):
        """Auditing must not perturb the simulation (bit-identical)."""
        scenario = make_scenario(2, scale=0.05)
        plain = run_simulation(
            scenario, "OURS", RunConfig(record_assignments=True)
        )
        audited = run_simulation(
            scenario,
            "OURS",
            RunConfig(record_assignments=True, audit=AuditConfig()),
        )
        assert plain.assignment_trace, "trace must not be empty"
        assert (
            plain.assignment_trace_hash() == audited.assignment_trace_hash()
        )

    @pytest.mark.parametrize(
        "scheduler,allowed",
        [
            ("OURS", {REASON_CACHE_HIT, REASON_MIN_ESTIMATE}),
            ("FCFS", {REASON_ONLY_AVAILABLE}),
            ("SF", {REASON_ONLY_AVAILABLE}),
            ("FS", {REASON_ONLY_AVAILABLE}),
            ("FCFSL", {REASON_CACHE_HIT, REASON_MIN_ESTIMATE}),
            ("FCFSU", {REASON_CACHE_HIT, REASON_FALLBACK}),
        ],
    )
    def test_reason_vocabulary_per_scheduler(self, scheduler, allowed):
        result = self.run(scheduler, audit=AuditConfig(candidates=False))
        counts = result.audit.reason_counts()
        assert counts, scheduler
        assert set(counts) <= allowed, counts

    def test_streaming_jsonl_from_run(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        result = self.run(
            "OURS", audit=AuditConfig(capacity=64, jsonl_path=path)
        )
        lines = path.read_text().splitlines()
        assert len(lines) == result.audit.total_recorded
        assert len(result.audit) <= 64
        first = json.loads(lines[0])
        assert first["reason"] in REASON_CODES

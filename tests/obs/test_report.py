"""Tests for the SVG/HTML run-report renderer (repro.obs.report)."""

import xml.dom.minidom

from repro.core.chunks import dataset_suite
from repro.obs import (
    AuditConfig,
    Tracer,
    first_divergence,
    render_report_html,
    render_timeline_svg,
    write_report,
)
from repro.sim.config import system_linux8
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.util.units import GiB
from repro.workload.actions import persistent_actions
from repro.workload.scenarios import Scenario


def tiny_scenario(duration=2.0, datasets=2, nodes=4, prefix="ds"):
    system = system_linux8(node_count=nodes)
    suite = dataset_suite(datasets, 2 * GiB, prefix=prefix)
    trace = persistent_actions(
        suite, duration, target_framerate=100.0 / 3.0, seed=0, name="tiny"
    )
    return Scenario(name="tiny", system=system, trace=trace, prewarm=True)


def traced_run(scheduler="OURS", **scenario_kwargs):
    return run_simulation(
        tiny_scenario(**scenario_kwargs),
        scheduler,
        config=RunConfig(tracer=Tracer(), audit=AuditConfig(capacity=None)),
    )


class TestSvg:
    def test_standalone_svg_is_wellformed_and_selfcontained(self):
        model = traced_run().timeline()
        svg = render_timeline_svg(model)
        xml.dom.minidom.parseString(svg)
        assert svg.startswith("<svg")
        assert "<style>" in svg  # standalone carries its own palette
        assert "prefers-color-scheme: dark" in svg
        # Self-contained: the only URL is the SVG namespace itself.
        assert "http" not in svg.replace("http://www.w3.org/2000/svg", "")
        # The core chart pieces are drawn.
        assert "rr-io" in svg and "rr-render" in svg and "rr-composite" in svg
        assert "cache residency" in svg
        assert "busy fraction" in svg and "queue depth" in svg
        assert "p99 critical path" in svg

    def test_embedded_svg_has_no_style_block(self):
        model = traced_run().timeline()
        assert "<style>" not in render_timeline_svg(model, standalone=False)

    def test_divergence_marker_drawn(self):
        model = traced_run().timeline()
        svg = render_timeline_svg(model, divergence_time=model.end / 2)
        assert "first divergence" in svg
        assert "rr-mark-divergence" in svg


class TestHtml:
    def test_report_is_selfcontained_html(self):
        model = traced_run().timeline()
        page = render_report_html([model], version="0.0.0-test")
        assert page.startswith("<!DOCTYPE html>")
        assert "<script" not in page
        assert "http" not in page.replace("http://www.w3.org/2000/svg", "")
        assert page.count("<svg") == 1
        assert "0.0.0-test" in page
        # Every chart has its table twin.
        assert "<table>" in page

    def test_ab_report_side_by_side_with_divergence(self):
        results = [traced_run("OURS"), traced_run("FCFS")]
        models = [r.timeline() for r in results]
        divergence = first_divergence(
            list(results[0].audit), list(results[1].audit)
        )
        page = render_report_html(models, divergence=divergence)
        assert page.count("<svg") == 2
        assert "rr-cols" in page  # side-by-side layout
        assert "First divergence" in page
        if divergence is not None:
            assert "rr-mark-divergence" in page
            assert f"node {divergence.a.node}" in page

    def test_byte_identical_across_reruns(self):
        def build():
            results = [traced_run("OURS"), traced_run("FCFS")]
            models = [r.timeline() for r in results]
            divergence = first_divergence(
                list(results[0].audit), list(results[1].audit)
            )
            return render_report_html(
                models, divergence=divergence, version="1.0"
            )

        assert build() == build()

    def test_non_ascii_names_are_escaped(self):
        model = traced_run(prefix="数据集<&>").timeline()
        page = render_report_html([model])
        svg = render_timeline_svg(model)
        xml.dom.minidom.parseString(svg)
        for doc in (page, svg):
            assert "数据集" in doc
            assert "<&>" not in doc  # raw brackets never survive escaping
            assert "&lt;&amp;&gt;" in doc

    def test_write_report_roundtrip(self, tmp_path):
        model = traced_run().timeline()
        page = render_report_html([model])
        out = tmp_path / "run.html"
        write_report(str(out), page)
        assert out.read_text(encoding="utf-8") == page

"""Chrome trace-event export: JSON schema and per-lane monotonicity."""

import json
from collections import defaultdict

from repro.obs.chrome import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.tracer import Tracer

VALID_PHASES = {"X", "B", "E", "i", "C", "M"}


def small_tracer() -> Tracer:
    tr = Tracer()
    tr.name_process(0, "head node")
    tr.name_process(1, "render node 0")
    tr.complete(0, "scheduler", "schedule[OURS]", 0.0, 0.0002, category="sched")
    tr.begin(1, "render", "render c0", 0.1, category="render")
    tr.end(1, "render", 0.4)
    tr.complete(1, "io", "load c1", 0.1, 0.25, category="io", args={"bytes": 42})
    tr.instant(1, "cache", "miss", 0.1, category="cache")
    tr.counter(0, "queue depth", 0.0, {"jobs": 3.0})
    tr.counter(0, "queue depth", 0.5, {"jobs": 1.0})
    return tr


class TestSchema:
    def test_every_event_has_required_fields(self):
        rows = chrome_trace_events(small_tracer())
        assert rows, "export produced no events"
        for row in rows:
            assert row["ph"] in VALID_PHASES
            assert isinstance(row["name"], str)
            assert isinstance(row["pid"], int)
            assert isinstance(row["tid"], int)
            if row["ph"] != "M":
                assert isinstance(row["ts"], (int, float))
                assert row["ts"] >= 0
            if row["ph"] == "X":
                assert isinstance(row["dur"], (int, float))
                assert row["dur"] >= 0
            if row["ph"] == "C":
                assert isinstance(row["args"], dict)

    def test_metadata_names_processes_and_threads(self):
        rows = chrome_trace_events(small_tracer())
        meta = [r for r in rows if r["ph"] == "M"]
        process_names = {
            r["pid"]: r["args"]["name"]
            for r in meta
            if r["name"] == "process_name"
        }
        assert process_names == {0: "head node", 1: "render node 0"}
        thread_names = {
            (r["pid"], r["tid"]): r["args"]["name"]
            for r in meta
            if r["name"] == "thread_name"
        }
        assert thread_names[(1, 0)] == "render"
        assert thread_names[(1, 1)] == "io"

    def test_timestamps_are_microseconds(self):
        rows = chrome_trace_events(small_tracer())
        load = next(r for r in rows if r["name"] == "load c1")
        assert load["ts"] == 100000.0
        assert load["dur"] == 250000.0

    def test_per_lane_timestamps_monotonic(self):
        rows = chrome_trace_events(small_tracer())
        last = defaultdict(lambda: -1.0)
        for row in rows:
            if row["ph"] == "M":
                continue
            key = (row["pid"], row["tid"])
            assert row["ts"] >= last[key], f"lane {key} went backwards"
            last[key] = row["ts"]

    def test_json_serializable_roundtrip(self):
        doc = to_chrome_trace(small_tracer(), metadata={"scenario": "s1"})
        blob = json.dumps(doc)
        back = json.loads(blob)
        assert back["displayTimeUnit"] == "ms"
        assert back["otherData"] == {"scenario": "s1"}
        assert len(back["traceEvents"]) == len(doc["traceEvents"])


class TestWrite:
    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(tmp_path / "out.json", small_tracer())
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert {"X", "B", "E", "i", "C", "M"} <= phases

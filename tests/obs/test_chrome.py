"""Chrome trace-event export: JSON schema and per-lane monotonicity."""

import json
from collections import defaultdict

from repro.obs.chrome import chrome_trace_events, to_chrome_trace, write_chrome_trace
from repro.obs.tracer import Tracer

VALID_PHASES = {"X", "B", "E", "i", "C", "M", "s", "t", "f"}


def small_tracer() -> Tracer:
    tr = Tracer()
    tr.name_process(0, "head node")
    tr.name_process(1, "render node 0")
    tr.complete(0, "scheduler", "schedule[OURS]", 0.0, 0.0002, category="sched")
    tr.begin(1, "render", "render c0", 0.1, category="render")
    tr.end(1, "render", 0.4)
    tr.complete(1, "io", "load c1", 0.1, 0.25, category="io", args={"bytes": 42})
    tr.instant(1, "cache", "miss", 0.1, category="cache")
    tr.counter(0, "queue depth", 0.0, {"jobs": 3.0})
    tr.counter(0, "queue depth", 0.5, {"jobs": 1.0})
    return tr


class TestSchema:
    def test_every_event_has_required_fields(self):
        rows = chrome_trace_events(small_tracer())
        assert rows, "export produced no events"
        for row in rows:
            assert row["ph"] in VALID_PHASES
            assert isinstance(row["name"], str)
            assert isinstance(row["pid"], int)
            assert isinstance(row["tid"], int)
            if row["ph"] != "M":
                assert isinstance(row["ts"], (int, float))
                assert row["ts"] >= 0
            if row["ph"] == "X":
                assert isinstance(row["dur"], (int, float))
                assert row["dur"] >= 0
            if row["ph"] == "C":
                assert isinstance(row["args"], dict)

    def test_metadata_names_processes_and_threads(self):
        rows = chrome_trace_events(small_tracer())
        meta = [r for r in rows if r["ph"] == "M"]
        process_names = {
            r["pid"]: r["args"]["name"]
            for r in meta
            if r["name"] == "process_name"
        }
        assert process_names == {0: "head node", 1: "render node 0"}
        thread_names = {
            (r["pid"], r["tid"]): r["args"]["name"]
            for r in meta
            if r["name"] == "thread_name"
        }
        assert thread_names[(1, 0)] == "render"
        assert thread_names[(1, 1)] == "io"

    def test_timestamps_are_microseconds(self):
        rows = chrome_trace_events(small_tracer())
        load = next(r for r in rows if r["name"] == "load c1")
        assert load["ts"] == 100000.0
        assert load["dur"] == 250000.0

    def test_per_lane_timestamps_monotonic(self):
        rows = chrome_trace_events(small_tracer())
        last = defaultdict(lambda: -1.0)
        for row in rows:
            if row["ph"] == "M":
                continue
            key = (row["pid"], row["tid"])
            assert row["ts"] >= last[key], f"lane {key} went backwards"
            last[key] = row["ts"]

    def test_json_serializable_roundtrip(self):
        doc = to_chrome_trace(small_tracer(), metadata={"scenario": "s1"})
        blob = json.dumps(doc)
        back = json.loads(blob)
        assert back["displayTimeUnit"] == "ms"
        assert back["otherData"] == {"scenario": "s1"}
        assert len(back["traceEvents"]) == len(doc["traceEvents"])


class TestFlowExport:
    def flow_tracer(self) -> Tracer:
        tr = Tracer()
        tr.flow_start(0, "jobs", "job 3", 0.0, 3)
        tr.flow_step(1, "render", "job 3", 0.5, 3)
        tr.flow_end(0, "jobs", "job 3", 1.0, 3)
        return tr

    def test_flow_rows_carry_chain_id(self):
        rows = [
            r
            for r in chrome_trace_events(self.flow_tracer())
            if r["ph"] in ("s", "t", "f")
        ]
        assert [r["ph"] for r in rows] == ["s", "t", "f"]
        assert all(r["id"] == 3 for r in rows)
        assert all(r["cat"] == "flow" for r in rows)

    def test_flow_end_binds_to_enclosing_slice(self):
        rows = [
            r
            for r in chrome_trace_events(self.flow_tracer())
            if r["ph"] in ("s", "t", "f")
        ]
        assert rows[-1]["bp"] == "e"
        assert "bp" not in rows[0]
        assert "bp" not in rows[1]


class TestMetadataFallback:
    def test_unnamed_track_still_gets_process_name(self):
        tr = Tracer()
        tr.instant(5, "x", "evt", 0.0)  # pid 5 never named
        rows = chrome_trace_events(tr)
        names = {
            r["pid"]: r["args"]["name"]
            for r in rows
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert names[5] == "track 5"

    def test_named_but_eventless_track_is_kept(self):
        tr = Tracer()
        tr.name_process(9, "spare node")
        names = {
            r["pid"]: r["args"]["name"]
            for r in chrome_trace_events(tr)
            if r["ph"] == "M" and r["name"] == "process_name"
        }
        assert names[9] == "spare node"


class TestAsciiEscaping:
    def test_non_ascii_names_escaped_losslessly(self):
        tr = Tracer()
        tr.name_process(0, "héad")
        tr.instant(0, "lané", "rendér c0", 0.0)
        rows = chrome_trace_events(tr)
        instant = next(r for r in rows if r["ph"] == "i")
        assert instant["name"] == "rend\\xe9r c0"
        process = next(
            r for r in rows if r["ph"] == "M" and r["name"] == "process_name"
        )
        assert process["args"]["name"] == "h\\xe9ad"
        thread = next(
            r for r in rows if r["ph"] == "M" and r["name"] == "thread_name"
        )
        assert thread["args"]["name"] == "lan\\xe9"
        for row in rows:
            assert row["name"].isascii()

    def test_ascii_names_pass_through_unchanged(self):
        tr = Tracer()
        tr.instant(0, "jobs", "plain name", 0.0)
        rows = chrome_trace_events(tr)
        assert any(r["name"] == "plain name" for r in rows)


class TestWrite:
    def test_write_chrome_trace(self, tmp_path):
        path = write_chrome_trace(tmp_path / "out.json", small_tracer())
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)
        phases = {r["ph"] for r in doc["traceEvents"]}
        assert {"X", "B", "E", "i", "C", "M"} <= phases

"""CounterSampler: built-in pressure counters on a live simulation."""

from repro.obs.counters import (
    STANDARD_TRACKS,
    TRACK_BUSY_NODES,
    TRACK_CACHE,
    TRACK_IO_INFLIGHT,
    TRACK_QUEUE,
    default_counter_interval,
)
from repro.obs.tracer import PID_HEAD, Tracer
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1


def traced_run(**kwargs):
    tracer = Tracer()
    result = run_simulation(
        scenario_1(scale=0.05), "OURS", config=RunConfig(tracer=tracer, **kwargs)
    )
    return tracer, result


class TestCounterSampler:
    def test_standard_tracks_present(self):
        tracer, _ = traced_run()
        tracks = tracer.counter_tracks()
        head_tracks = {name for pid, name in tracks if pid == PID_HEAD}
        assert set(STANDARD_TRACKS) <= head_tracks
        assert len(tracks) >= 3

    def test_per_node_cache_tracks(self):
        tracer, result = traced_run()
        cache_pids = {pid for pid, name in tracer.counter_tracks() if name == TRACK_CACHE}
        assert len(cache_pids) == len(result.profile.nodes)
        assert PID_HEAD not in cache_pids

    def test_counter_values_sane(self):
        tracer, _ = traced_run()
        for e in tracer.events:
            if e.phase != "C":
                continue
            for value in e.args.values():
                assert value >= 0.0
            if e.name == TRACK_BUSY_NODES:
                assert e.args["busy"] <= 8

    def test_sampling_respects_interval(self):
        tracer, result = traced_run(counter_interval=0.5)
        queue_samples = [
            e for e in tracer.events if e.phase == "C" and e.name == TRACK_QUEUE
        ]
        # horizon 3s at scale 0.05 → ~7 samples, certainly < 20
        assert 2 <= len(queue_samples) <= 20
        times = [e.ts for e in queue_samples]
        assert times == sorted(times)

    def test_io_inflight_track_exists(self):
        tracer, _ = traced_run()
        assert any(
            e.phase == "C" and e.name == TRACK_IO_INFLIGHT for e in tracer.events
        )


class TestDefaultInterval:
    def test_scales_with_horizon(self):
        assert default_counter_interval(256.0) == 1.0
        assert default_counter_interval(0.0) == 1e-4

    def test_never_zero(self):
        assert default_counter_interval(1e-9) > 0

"""Unit tests for the metrics registry, histograms, and windowing."""

from __future__ import annotations

import json

import pytest

from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    MetricWindow,
    default_window_interval,
    log_buckets,
)
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import scenario_1


class TestCounterGauge:
    def test_counter_increments(self):
        c = Counter("jobs")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_counter_rejects_negative(self):
        c = Counter("jobs")
        with pytest.raises(ValueError):
            c.inc(-1.0)

    def test_gauge_moves_both_ways(self):
        g = Gauge("depth")
        g.set(4.0)
        g.inc()
        g.dec(2.0)
        assert g.value == 3.0


class TestLogBuckets:
    def test_bounds_are_increasing_and_span_range(self):
        bounds = log_buckets(lowest=1e-3, highest=10.0, per_decade=4)
        assert bounds[0] == 1e-3
        assert bounds[-1] >= 10.0 * (1 - 1e-9)
        assert all(b > a for a, b in zip(bounds, bounds[1:]))

    def test_per_decade_controls_resolution(self):
        coarse = log_buckets(lowest=1e-2, highest=1.0, per_decade=1)
        fine = log_buckets(lowest=1e-2, highest=1.0, per_decade=10)
        assert len(fine) > len(coarse)

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            log_buckets(lowest=0.0)
        with pytest.raises(ValueError):
            log_buckets(lowest=1.0, highest=0.5)
        with pytest.raises(ValueError):
            log_buckets(per_decade=0)


class TestHistogram:
    def test_boundary_value_lands_in_inclusive_bucket(self):
        # Prometheus `le` bounds are inclusive: an observation exactly on
        # a bucket bound counts in that bucket, not the next one.
        h = Histogram("lat", bounds=[1.0, 2.0, 4.0])
        h.observe(2.0)
        assert h.bucket_counts == [0, 1, 0, 0]

    def test_below_lowest_and_overflow_buckets(self):
        h = Histogram("lat", bounds=[1.0, 2.0])
        h.observe(0.5)   # below the first bound
        h.observe(99.0)  # above the last bound -> implicit +inf bucket
        assert h.bucket_counts == [1, 0, 1]
        assert h.count == 2

    def test_non_increasing_bounds_rejected(self):
        with pytest.raises(ValueError):
            Histogram("bad", bounds=[1.0, 1.0, 2.0])

    def test_empty_percentile_is_zero(self):
        h = Histogram("lat")
        assert h.percentile(50) == 0.0
        assert h.mean == 0.0

    def test_single_observation_quantiles_exact(self):
        h = Histogram("lat")
        h.observe(0.37)
        # min/max clamping makes every quantile exact for one value.
        assert h.p50 == pytest.approx(0.37)
        assert h.p99 == pytest.approx(0.37)

    def test_quantiles_ordered_and_within_range(self):
        h = Histogram("lat")
        values = [0.01 * i for i in range(1, 101)]
        for v in values:
            h.observe(v)
        assert min(values) <= h.p50 <= h.p95 <= h.p99 <= max(values)
        assert h.p50 == pytest.approx(0.5, rel=0.25)
        assert h.mean == pytest.approx(sum(values) / len(values))

    def test_invalid_quantile_rejected(self):
        h = Histogram("lat")
        with pytest.raises(ValueError):
            h.percentile(101)


class TestRegistry:
    def test_get_or_create_returns_same_object(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_jobs", "help text")
        b = reg.counter("repro_jobs")
        assert a is b
        assert len(reg) == 1

    def test_labels_distinguish_series(self):
        reg = MetricsRegistry()
        a = reg.counter("repro_jobs", labels={"type": "interactive"})
        b = reg.counter("repro_jobs", labels={"type": "batch"})
        assert a is not b
        a.inc(3)
        assert reg.value("repro_jobs", {"type": "interactive"}) == 3.0
        assert reg.value("repro_jobs", {"type": "batch"}) == 0.0

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs")
        with pytest.raises(ValueError):
            reg.gauge("repro_jobs")
        with pytest.raises(ValueError):
            reg.histogram("repro_jobs", labels={"x": "1"})

    def test_value_of_missing_metric_is_zero(self):
        assert MetricsRegistry().value("nope") == 0.0

    def test_value_of_histogram_raises(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat")
        with pytest.raises(TypeError):
            reg.value("repro_lat")

    def test_prometheus_exposition_format(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs", "completed jobs", {"type": "batch"}).inc(7)
        reg.gauge("repro_depth", "queue depth").set(3)
        h = reg.histogram("repro_lat", "latency", bounds=[1.0, 2.0])
        h.observe(0.5)
        h.observe(1.5)
        text = reg.to_prometheus()
        assert "# HELP repro_jobs_total completed jobs" in text
        assert "# TYPE repro_jobs_total counter" in text
        assert 'repro_jobs_total{type="batch"} 7' in text
        assert "repro_depth 3" in text
        # Histogram buckets are cumulative, with +Inf and sum/count.
        assert 'repro_lat_bucket{le="1"} 1' in text
        assert 'repro_lat_bucket{le="2"} 2' in text
        assert 'repro_lat_bucket{le="+Inf"} 2' in text
        assert "repro_lat_sum 2" in text
        assert "repro_lat_count 2" in text

    def test_label_values_escape_quotes_backslashes_newlines(self):
        reg = MetricsRegistry()
        reg.counter(
            "repro_jobs", labels={"dataset": 'vol "a"\\raw\nv2'}
        ).inc(1)
        text = reg.to_prometheus()
        # Prometheus quoted label values escape \, ", and newline.
        assert 'dataset="vol \\"a\\"\\\\raw\\nv2"' in text
        assert "\n\n" not in text  # no raw newline leaked into a line

    def test_label_lines_stay_single_line(self):
        reg = MetricsRegistry()
        reg.gauge("repro_depth", labels={"queue": "a\nb"}).set(2)
        lines = reg.to_prometheus().splitlines()
        series = [l for l in lines if l.startswith("repro_depth")]
        assert series == ['repro_depth{queue="a\\nb"} 2']

    def test_help_text_escapes_backslash_and_newline(self):
        reg = MetricsRegistry()
        reg.counter("repro_jobs", 'path C:\\x\nsecond "line"').inc()
        lines = reg.to_prometheus().splitlines()
        help_line = next(l for l in lines if l.startswith("# HELP"))
        # HELP escapes \ and newline but leaves quotes alone.
        assert help_line == '# HELP repro_jobs_total path C:\\\\x\\nsecond "line"'

    def test_snapshot_includes_quantiles(self):
        reg = MetricsRegistry()
        reg.histogram("repro_lat").observe(1.0)
        reg.counter("repro_jobs").inc()
        rows = {row["name"]: row for row in reg.snapshot()}
        assert rows["repro_jobs"]["value"] == 1.0
        assert rows["repro_lat"]["count"] == 1
        assert rows["repro_lat"]["p99"] == pytest.approx(1.0)


def test_default_window_interval():
    assert default_window_interval(64.0) == pytest.approx(1.0)
    assert default_window_interval(0.0) == pytest.approx(1e-3)


def test_metric_window_event_roundtrip():
    window = MetricWindow(
        start=0.0,
        end=1.0,
        jobs_completed=5,
        interactive_completed=4,
        batch_completed=1,
        fps=4.0,
        latency_p50=0.1,
        latency_p95=0.2,
        latency_p99=0.3,
        cache_hits=9,
        cache_misses=1,
        hit_rate=0.9,
        io_bytes=1024,
    )
    event = window.to_event()
    assert event["type"] == "window"
    assert event["fps"] == 4.0
    assert window.duration == 1.0


class TestSimulationIntegration:
    @pytest.fixture(scope="class")
    def run(self):
        scenario = scenario_1(scale=0.05)
        return run_simulation(scenario, "OURS", config=RunConfig(metrics=True))

    def test_metrics_disabled_by_default(self):
        result = run_simulation(scenario_1(scale=0.05), "OURS")
        assert result.metrics is None

    def test_enabling_metrics_does_not_perturb_the_run(self, run):
        import dataclasses

        baseline = run_simulation(scenario_1(scale=0.05), "OURS")
        # sched_cost_us is wall clock and differs between ANY two runs;
        # every simulated quantity must be bit-identical.
        assert dataclasses.replace(
            run.summary(), sched_cost_us=0.0
        ) == dataclasses.replace(baseline.summary(), sched_cost_us=0.0)
        assert run.jobs_completed == baseline.jobs_completed

    def test_counters_match_result(self, run):
        reg = run.metrics.registry
        completed = sum(
            reg.value("repro_jobs_completed", {"type": t})
            for t in ("interactive", "batch")
        )
        assert completed == run.jobs_completed
        hits = reg.value("repro_cache_hits")
        misses = reg.value("repro_cache_misses")
        assert hits + misses == reg.value("repro_tasks_executed")

    def test_windows_cover_the_run(self, run):
        windows = run.metrics.windows
        assert windows
        assert all(w.end > w.start for w in windows)
        assert all(
            a.end <= b.start + 1e-9 for a, b in zip(windows, windows[1:])
        )
        total = sum(w.interactive_completed for w in windows)
        reg = run.metrics.registry
        assert total == reg.value("repro_jobs_completed", {"type": "interactive"})

    def test_window_series_extraction(self, run):
        fps = run.metrics.window_series("fps")
        assert len(fps) == len(run.metrics.windows)
        assert all(v >= 0.0 for v in fps)

    def test_jsonl_export(self, run, tmp_path):
        path = run.metrics.write_jsonl(tmp_path / "metrics.jsonl")
        events = [json.loads(line) for line in path.read_text().splitlines()]
        assert events[0]["type"] == "run"
        assert events[0]["scheduler"] == "OURS"
        assert events[-1]["type"] == "summary"
        assert sum(1 for e in events if e["type"] == "window") == len(
            run.metrics.windows
        )

    def test_prometheus_export(self, run, tmp_path):
        path = run.metrics.write_prometheus(tmp_path / "metrics.prom")
        text = path.read_text()
        assert "# TYPE repro_jobs_completed_total counter" in text
        assert "# TYPE repro_job_latency_seconds histogram" in text

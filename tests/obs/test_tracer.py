"""Tests for the virtual-time tracer: spans, nesting, ordering, counters."""

import inspect

import pytest

from repro.obs.tracer import (
    PID_HEAD,
    NullTracer,
    TraceError,
    Tracer,
    active_tracer,
    pid_for_node,
)


class TestLanes:
    def test_lane_interning_is_stable(self):
        tr = Tracer()
        a = tr.lane(0, "render")
        b = tr.lane(0, "io")
        assert a != b
        assert tr.lane(0, "render") == a
        assert tr.lane_name(0, a) == "render"

    def test_lanes_are_per_track(self):
        tr = Tracer()
        assert tr.lane(0, "render") == tr.lane(1, "render") == 0
        assert tr.lane(0, "io") == 1

    def test_pid_for_node(self):
        assert pid_for_node(0) == PID_HEAD + 1
        assert pid_for_node(7) == PID_HEAD + 8


class TestSpans:
    def test_complete_span_recorded(self):
        tr = Tracer()
        tr.complete(1, "io", "load c0", 2.0, 0.5, category="io", args={"bytes": 4})
        (e,) = tr.events
        assert (e.phase, e.name, e.ts, e.dur) == ("X", "load c0", 2.0, 0.5)
        assert e.args == {"bytes": 4}
        assert tr.span_count == 1

    def test_negative_duration_rejected(self):
        tr = Tracer()
        with pytest.raises(TraceError):
            tr.complete(0, "x", "bad", 1.0, -0.1)

    def test_nesting_in_virtual_time(self):
        tr = Tracer()
        tr.begin(0, "sched", "outer", 1.0)
        tr.begin(0, "sched", "inner", 1.2)
        tr.end(0, "sched", 1.5)
        tr.end(0, "sched", 2.0)
        phases = [(e.phase, e.name, e.ts) for e in tr.events]
        assert phases == [
            ("B", "outer", 1.0),
            ("B", "inner", 1.2),
            ("E", "inner", 1.5),
            ("E", "outer", 2.0),
        ]
        assert tr.open_spans() == []

    def test_unclosed_spans_reported(self):
        tr = Tracer()
        tr.begin(0, "sched", "outer", 1.0)
        assert tr.open_spans() == [(0, tr.lane(0, "sched"), "outer", 1.0)]

    def test_end_without_begin_raises(self):
        tr = Tracer()
        with pytest.raises(TraceError):
            tr.end(0, "sched", 1.0)

    def test_time_running_backwards_raises(self):
        tr = Tracer()
        tr.instant(0, "jobs", "a", 5.0)
        with pytest.raises(TraceError):
            tr.instant(0, "jobs", "b", 4.0)

    def test_equal_timestamps_allowed(self):
        tr = Tracer()
        tr.instant(0, "jobs", "a", 5.0)
        tr.instant(0, "jobs", "b", 5.0)
        assert len(tr) == 2

    def test_lanes_are_independent_clocks(self):
        tr = Tracer()
        tr.instant(0, "a", "x", 5.0)
        tr.instant(0, "b", "y", 1.0)  # different lane: fine
        tr.instant(1, "a", "z", 0.5)  # different track: fine
        assert len(tr) == 3


class TestCounters:
    def test_counter_tracks_collected(self):
        tr = Tracer()
        tr.counter(0, "queue", 0.0, {"jobs": 1.0})
        tr.counter(0, "queue", 1.0, {"jobs": 2.0})
        tr.counter(2, "cache", 0.5, {"used": 7.0})
        assert tr.counter_tracks() == [(0, "queue"), (2, "cache")]

    def test_counter_values_are_copied(self):
        tr = Tracer()
        values = {"jobs": 1.0}
        tr.counter(0, "queue", 0.0, values)
        values["jobs"] = 99.0
        assert tr.events[0].args == {"jobs": 1.0}


class TestEventsFor:
    def test_filter_by_track_and_lane(self):
        tr = Tracer()
        tr.instant(0, "jobs", "a", 0.0)
        tr.instant(1, "render", "b", 0.0)
        tr.instant(1, "io", "c", 0.0)
        assert [e.name for e in tr.events_for(1)] == ["b", "c"]
        assert [e.name for e in tr.events_for(1, "io")] == ["c"]
        assert tr.events_for(1, "unknown-lane") == []


class TestFlows:
    def test_flow_chain_recorded_with_ids(self):
        tr = Tracer()
        tr.flow_start(0, "jobs", "job 7", 0.0, 7)
        tr.flow_step(1, "render", "job 7", 0.5, 7)
        tr.flow_end(0, "jobs", "job 7", 1.0, 7)
        rows = [(e.phase, e.pid, e.flow_id) for e in tr.events]
        assert rows == [("s", 0, 7), ("t", 1, 7), ("f", 0, 7)]
        assert all(e.category == "flow" for e in tr.events)

    def test_flows_respect_lane_monotonicity(self):
        tr = Tracer()
        tr.instant(0, "jobs", "a", 5.0)
        with pytest.raises(TraceError):
            tr.flow_start(0, "jobs", "job 1", 4.0, 1)

    def test_flows_are_not_spans(self):
        tr = Tracer()
        tr.flow_start(0, "jobs", "job 1", 0.0, 1)
        tr.flow_end(0, "jobs", "job 1", 1.0, 1)
        assert tr.span_count == 0
        assert len(tr) == 2

    def test_non_flow_events_have_no_flow_id(self):
        tr = Tracer()
        tr.instant(0, "jobs", "a", 0.0)
        assert tr.events[0].flow_id is None


def _param_shape(func):
    """Signature shape without annotations: (name, kind, default)."""
    return [
        (p.name, p.kind, p.default)
        for p in inspect.signature(func).parameters.values()
    ]


class TestNullTracer:
    def test_protocol_conformance_with_tracer(self):
        """NullTracer must mirror Tracer's full public API.

        Compared by parameter shape rather than raw signature equality:
        Tracer carries type annotations the no-op stubs drop, but names,
        kinds, and defaults must match so either object is drop-in at
        every call site.
        """
        public = [
            name
            for name, member in vars(Tracer).items()
            if not name.startswith("_") and inspect.isfunction(member)
        ]
        assert "flow_start" in public  # sanity: the reflection is live
        for name in public:
            null_member = inspect.getattr_static(NullTracer, name, None)
            assert null_member is not None, f"NullTracer missing {name}"
            assert _param_shape(getattr(Tracer, name)) == _param_shape(
                getattr(NullTracer, name)
            ), name
        tracer_props = {
            name
            for name, member in vars(Tracer).items()
            if isinstance(member, property)
        }
        null_props = {
            name
            for name, member in vars(NullTracer).items()
            if isinstance(member, property)
        }
        assert tracer_props <= null_props

    def test_disabled_and_empty(self):
        null = NullTracer()
        assert null.enabled is False
        null.complete(0, "io", "x", 0.0, 1.0)
        null.begin(0, "io", "x", 0.0)
        null.end(0, "io", 1.0)
        null.instant(0, "io", "x", 0.0)
        null.counter(0, "c", 0.0, {"v": 1.0})
        null.name_process(0, "head")
        null.flow_start(0, "jobs", "x", 0.0, 1)
        null.flow_step(0, "jobs", "x", 0.5, 1)
        null.flow_end(0, "jobs", "x", 1.0, 1)
        assert len(null) == 0
        assert null.span_count == 0
        assert null.counter_tracks() == []
        assert null.open_spans() == []
        assert null.events_for(0) == []

    def test_active_tracer_normalization(self):
        tr = Tracer()
        assert active_tracer(None) is None
        assert active_tracer(NullTracer()) is None
        assert active_tracer(tr) is tr

"""Online anomaly detection: detectors, vocabulary, ground-truth scoring.

Two layers of guarantees:

* **unit** — the EWMA z-score and CUSUM primitives alarm on genuine
  step changes / sustained drift and stay silent on healthy series;
* **end to end** — the detector bank localizes at least 3 of the 4
  seeded storm faults from the streamed snapshots alone with zero
  false positives, and a fault-free run emits no anomaly at all (the
  determinism the ``BENCH_stream`` regression leaves pin).
"""

import pytest

from repro.faults import FaultPlan
from repro.obs.anomaly import (
    ANOMALY_KINDS,
    FAULT_SIGNATURES,
    AnomalyConfig,
    AnomalyRecord,
    CusumDetector,
    EwmaDetector,
    OnlineAnomalyDetector,
    detect_from_snapshots,
    merge_anomalies,
    score_anomalies,
)
from repro.obs.stream import StreamConfig, read_stream
from repro.sim.run_config import RunConfig
from repro.sim.simulator import run_simulation
from repro.workload.scenarios import make_scenario

#: The smallest scale at which the scale-0.5-tuned storm leaves every
#: fault a signal window (at 0.05 the whole cluster collapses before
#: the wipe and storage events land).
STORM_SCALE = 0.1
STORM_SEED = 11


def _storm_run(tmp_path, *, heal=True):
    scenario = make_scenario(1, scale=STORM_SCALE)
    plan = FaultPlan.storm(
        STORM_SEED,
        node_count=scenario.system.node_count,
        duration=scenario.trace.duration,
        heal=heal,
    )
    result = run_simulation(
        scenario,
        "OURS",
        config=RunConfig(
            drain=True,
            faults=plan,
            stream=StreamConfig(path=tmp_path / "storm.ndjson"),
        ),
    )
    return plan, result


class TestEwmaDetector:
    def test_constant_series_stays_quiet(self):
        detector = EwmaDetector(0.25)
        assert all(abs(detector.update(5.0)) < 1e-9 for _ in range(50))

    def test_step_change_alarms(self):
        detector = EwmaDetector(0.25)
        for _ in range(20):
            detector.update(1.0)
        assert detector.update(10.0) > 4.0

    def test_noise_below_floor_is_absorbed(self):
        detector = EwmaDetector(0.25, rel_floor=0.25)
        values = [1.0, 1.01, 0.99, 1.02, 0.98] * 10
        zs = [detector.update(v) for v in values]
        assert max(abs(z) for z in zs[1:]) < 1.0

    def test_first_sample_seeds_baseline(self):
        detector = EwmaDetector(0.25)
        assert detector.update(42.0) == 0.0
        assert detector.mean == 42.0


class TestCusumDetector:
    def test_flat_series_never_alarms(self):
        detector = CusumDetector(0.15, 1.0, 0.25, min_level=4.0)
        assert all(detector.update(6.0) <= 1e-9 for _ in range(50))

    def test_sustained_drift_alarms(self):
        detector = CusumDetector(0.15, 1.0, 0.25, min_level=4.0)
        for _ in range(10):
            detector.update(5.0)
        # Growth outpacing the EWMA reference (a queue blowing up).
        score = 0.0
        for step in range(15):
            score = detector.update(5.0 * 1.6 ** step)
            if score > 1.0:
                break
        assert score > 1.0

    def test_reset_drops_accumulated_drift(self):
        detector = CusumDetector(0.15, 1.0, 0.25)
        for step in range(10):
            detector.update(float(step * 3))
        assert detector.sum > 0.0
        detector.reset()
        assert detector.sum == 0.0


class TestVocabulary:
    def test_closed_vocabulary(self):
        assert ANOMALY_KINDS == (
            "queue-growth",
            "hit-rate-collapse",
            "latency-spike",
            "throughput-stall",
            "burn-acceleration",
        )

    def test_signatures_cover_all_fault_kinds(self):
        assert set(FAULT_SIGNATURES) == {
            "crash", "straggler", "wipe", "storage",
        }
        for kinds in FAULT_SIGNATURES.values():
            assert set(kinds) <= set(ANOMALY_KINDS)

    def test_record_round_trips_through_dict(self):
        record = AnomalyRecord(
            kind="latency-spike",
            time=3.5,
            window_start=3.0,
            detector="ewma",
            score=5.1,
            value=0.2,
            baseline=0.05,
        )
        payload = record.to_dict()
        assert payload["type"] == "anomaly"
        assert AnomalyRecord.from_dict(payload) == record
        assert "latency-spike" in record.describe()

    def test_config_validation(self):
        with pytest.raises(ValueError):
            AnomalyConfig(z_threshold=0.0)
        with pytest.raises(ValueError):
            AnomalyConfig(warmup=-1)


def _snapshot(t, **overrides):
    base = {
        "t": t,
        "start": t - 1.0,
        "jobs_completed": 10,
        "outstanding": 5,
        "latency_p95": 0.05,
        "cache_hits": 9,
        "cache_misses": 1,
        "hit_rate": 0.9,
        "burn": 1.0,
    }
    base.update(overrides)
    return base


class TestDetectorBank:
    def _warm(self, detector, until=12):
        for k in range(until):
            assert detector.observe(_snapshot(float(k + 1))) == []

    def test_healthy_stream_is_silent(self):
        detector = OnlineAnomalyDetector(target_framerate=33.3)
        self._warm(detector, until=40)

    def test_latency_spike_fires_once_then_cools_down(self):
        detector = OnlineAnomalyDetector()
        self._warm(detector)
        alarms = detector.observe(_snapshot(13.0, latency_p95=2.0))
        assert [a.kind for a in alarms] == ["latency-spike"]
        assert alarms[0].detector == "ewma"
        # Cooldown: the still-elevated next window does not re-alarm.
        assert detector.observe(_snapshot(14.0, latency_p95=2.0)) == []

    def test_throughput_stall_rule(self):
        detector = OnlineAnomalyDetector()
        self._warm(detector)
        alarms = detector.observe(
            _snapshot(13.0, jobs_completed=0, cache_hits=0, cache_misses=0)
        )
        assert [a.kind for a in alarms] == ["throughput-stall"]
        assert alarms[0].detector == "rule"

    def test_hit_rate_collapse(self):
        detector = OnlineAnomalyDetector()
        self._warm(detector, until=20)
        alarms = detector.observe(
            _snapshot(21.0, hit_rate=0.1, cache_hits=1, cache_misses=9)
        )
        assert "hit-rate-collapse" in [a.kind for a in alarms]

    def test_queue_growth_cusum(self):
        detector = OnlineAnomalyDetector()
        self._warm(detector)
        kinds = []
        for step in range(12):
            kinds += [
                a.kind
                for a in detector.observe(
                    _snapshot(13.0 + step, outstanding=5 + 6 * (step + 1))
                )
            ]
        assert "queue-growth" in kinds

    def test_burn_needs_a_target(self):
        untargeted = OnlineAnomalyDetector(target_framerate=0.0)
        self._warm(untargeted)
        for step in range(12):
            alarms = untargeted.observe(
                _snapshot(13.0 + step, burn=2.0 + 3.0 * step)
            )
            assert "burn-acceleration" not in [a.kind for a in alarms]

    def test_warmup_suppresses_early_alarms(self):
        detector = OnlineAnomalyDetector(AnomalyConfig(warmup=6))
        for k in range(5):
            detector.observe(_snapshot(float(k + 1)))
        assert detector.observe(_snapshot(6.0, latency_p95=5.0)) == []


class TestMergeAndScore:
    def _record(self, kind, t):
        return AnomalyRecord(
            kind=kind, time=t, window_start=t - 1.0,
            detector="ewma", score=5.0, value=1.0, baseline=0.1,
        )

    def test_merge_orders_by_time_shard_vocab(self):
        a = self._record("latency-spike", 2.0)
        b = self._record("queue-growth", 1.0)
        c = self._record("hit-rate-collapse", 2.0)
        merged = merge_anomalies([[a], [b, c]])
        # t=1 first; at t=2 shard 0 precedes shard 1.
        assert merged == [b, a, c]

    def test_merge_is_permutation_invariant_on_equal_keys(self):
        a = self._record("queue-growth", 1.0)
        b = self._record("latency-spike", 1.0)
        # Same shard, same time: vocabulary order breaks the tie.
        assert merge_anomalies([[a, b]]) == merge_anomalies([[b, a]])

    def test_score_matches_alarm_to_fault_window(self):
        plan = FaultPlan.parse("straggler@10:node=1,until=20", heal=True)
        grade = score_anomalies(
            [self._record("latency-spike", 12.0)], plan
        )
        assert grade["localized"] == 1
        assert grade["false_positives"] == 0
        assert grade["recall"] == 1.0
        assert grade["precision"] == 1.0
        assert grade["mean_onset_latency"] == pytest.approx(2.0)
        assert grade["events"][0]["matched"] == ["latency-spike"]

    def test_score_counts_unexplained_alarms_as_false_positives(self):
        plan = FaultPlan.parse("straggler@10:node=1,until=20", heal=True)
        grade = score_anomalies(
            [self._record("latency-spike", 50.0)], plan
        )
        assert grade["localized"] == 0
        assert grade["false_positives"] == 1
        assert grade["precision"] == 0.0

    def test_score_ignores_wrong_kind(self):
        plan = FaultPlan.parse("wipe@10:node=1,dataset=0", heal=True)
        grade = score_anomalies([self._record("queue-growth", 11.0)], plan)
        assert grade["localized"] == 0

    def test_score_empty_alarms(self):
        plan = FaultPlan.parse("straggler@10:node=1,until=20", heal=True)
        grade = score_anomalies([], plan)
        assert grade["localized"] == 0
        assert grade["false_positives"] == 0
        assert grade["precision"] == 1.0
        assert grade["mean_onset_latency"] is None

    def test_score_rejects_negative_tolerance(self):
        plan = FaultPlan.parse("straggler@10:node=1,until=20", heal=True)
        with pytest.raises(ValueError, match="onset_tolerance"):
            score_anomalies([], plan, onset_tolerance=-1.0)


class TestEndToEnd:
    def test_storm_localized_with_zero_false_positives(self, tmp_path):
        plan, result = _storm_run(tmp_path)
        grade = score_anomalies(result.stream.anomalies, plan)
        assert grade["total"] == 4
        # The acceptance bar: >= 3/4 faults localized online, nothing
        # flagged that no injected fault explains.
        assert grade["localized"] >= 3
        assert grade["false_positives"] == 0
        assert grade["precision"] == 1.0

    def test_fault_free_run_raises_no_alarm(self, tmp_path):
        scenario = make_scenario(1, scale=STORM_SCALE)
        result = run_simulation(
            scenario,
            "OURS",
            config=RunConfig(
                stream=StreamConfig(path=tmp_path / "quiet.ndjson")
            ),
        )
        assert result.stream.anomalies == []

    def test_offline_twin_matches_online_records(self, tmp_path):
        _, result = _storm_run(tmp_path)
        snapshots = [
            r for r in read_stream(tmp_path / "storm.ndjson")
            if r["type"] == "snapshot"
        ]
        offline = detect_from_snapshots(
            snapshots,
            target_framerate=result.target_framerate,
        )
        assert offline == result.stream.anomalies

    def test_stream_file_carries_fault_markers_and_anomalies(self, tmp_path):
        _, result = _storm_run(tmp_path)
        records = read_stream(tmp_path / "storm.ndjson")
        faults = [r for r in records if r["type"] == "fault"]
        assert {f["kind"] for f in faults} == {
            "crash", "straggler", "wipe", "storage",
        }
        streamed = [
            AnomalyRecord.from_dict(r)
            for r in records
            if r["type"] == "anomaly"
        ]
        assert streamed == result.stream.anomalies
